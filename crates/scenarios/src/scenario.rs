//! The declarative [`Scenario`] description and its bridge into the
//! [`corrfade::GeneratorBuilder`].

use corrfade::{
    ChannelStream, Coloring, CorrelatedRayleighGenerator, GeneratorBuilder, RealtimeConfig,
    RealtimeGenerator,
};
use corrfade_linalg::{c64, CMatrix, Precision};
use corrfade_models::{
    pairwise_delays_from_arrival_times, ChannelParams, JakesSpectralModel, SalzWintersSpatialModel,
};

use crate::error::ScenarioError;
use crate::families;

/// Where a registered scenario comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Defined in the source paper; the string names the equation, figure
    /// and/or Sec. 6 experiment it reproduces (e.g. `"Eq. (22), Fig. 4(a)"`).
    Paper(&'static str),
    /// An extension beyond the paper; the string names the experiment or
    /// bench that motivates it (e.g. `"E7 PSD-forcing ablation"`).
    Extended(&'static str),
}

impl Provenance {
    /// The human-readable reference string, regardless of origin.
    pub fn reference(&self) -> &'static str {
        match self {
            Provenance::Paper(s) | Provenance::Extended(s) => s,
        }
    }

    /// `true` when the scenario reproduces a configuration printed in the
    /// source paper.
    pub fn is_paper(&self) -> bool {
        matches!(self, Provenance::Paper(_))
    }
}

/// How the per-envelope powers of a scenario are specified.
///
/// The profile is applied on top of the correlation *structure* produced by
/// the scenario's [`CovarianceSpec`] — see
/// [`GeneratorBuilder::gaussian_powers`] and
/// [`GeneratorBuilder::envelope_powers`] for the rescaling semantics and the
/// paper's Eq. (11) for the envelope → Gaussian power conversion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PowerProfile {
    /// Keep whatever powers the covariance family itself puts on the
    /// diagonal (most families produce unit powers; the
    /// unequal-power-exponential family produces a geometric profile).
    Intrinsic,
    /// Per-envelope Gaussian powers `σ_g²_j`; the length must equal the
    /// scenario's envelope count.
    Gaussian(&'static [f64]),
    /// Per-envelope Rayleigh-envelope powers `σ_r²_j`, converted to Gaussian
    /// powers through the paper's Eq. (11); the length must equal the
    /// scenario's envelope count.
    Envelope(&'static [f64]),
}

/// The declarative description of where a scenario's desired covariance
/// matrix **K** comes from.
///
/// Physical families (`Spectral`, `Spatial`) go through the corresponding
/// correlation model in `corrfade-models`; synthetic families go through the
/// generators in [`crate::families`]; `Explicit` carries the matrix entries
/// verbatim (row-major `(re, im)` pairs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CovarianceSpec {
    /// Jakes spectral (OFDM-style) correlation — paper Eq. (3)–(4) — between
    /// carriers at the given frequency offsets, with pairwise delays derived
    /// from the per-carrier arrival times. The envelope count is the number
    /// of carriers.
    Spectral {
        /// Maximum Doppler frequency `F_m` in Hz fed to the model. Pinned
        /// here (rather than derived from [`Scenario::channel`]) so paper
        /// scenarios reproduce the rounded value the paper prints.
        max_doppler_hz: f64,
        /// RMS delay spread `σ_τ` of the channel in seconds.
        rms_delay_spread_s: f64,
        /// Carrier-frequency offsets in Hz (only differences matter).
        carrier_offsets_hz: &'static [f64],
        /// Per-carrier signal arrival times in seconds; pairwise delays are
        /// `|t_j − t_k|`.
        arrival_times_s: &'static [f64],
    },
    /// Salz–Winters spatial correlation — paper Eq. (5)–(7) — across a
    /// uniform linear array; the envelope count is the antenna count.
    Spatial {
        /// Antenna spacing `D/λ` in carrier wavelengths.
        spacing_wavelengths: f64,
        /// Mean angle of arrival `Φ` in radians (0 = broadside).
        mean_arrival_rad: f64,
        /// Angular spread `Δ` of the arriving scatter in radians.
        angular_spread_rad: f64,
    },
    /// Real exponential correlation `ρ^{|k−j|}`
    /// ([`families::exponential_correlation`]).
    Exponential {
        /// Adjacent-envelope correlation coefficient in `[0, 1)`.
        rho: f64,
    },
    /// Complex exponential correlation with a phase ramp
    /// ([`families::complex_exponential_correlation`]).
    ComplexExponential {
        /// Adjacent-envelope correlation magnitude in `[0, 1)`.
        rho: f64,
        /// Phase increment per index difference in radians.
        theta: f64,
    },
    /// Exponential correlation with a geometric power profile
    /// ([`families::unequal_power_exponential`]).
    UnequalPowerExponential {
        /// Adjacent-envelope correlation coefficient in `[0, 1)`.
        rho: f64,
        /// Geometric power ratio: envelope `j` has power `base^j`.
        base: f64,
    },
    /// A deliberately indefinite (non-PSD) target
    /// ([`families::indefinite_correlation`]) that exercises the paper's
    /// Sec. 4.2 eigenvalue clipping.
    Indefinite {
        /// Correlation strength; the matrix is indefinite for `rho ≥ 0.6`.
        rho: f64,
    },
    /// A nearly-singular positive-definite target
    /// ([`families::near_singular_correlation`]).
    NearSingular {
        /// Approximate smallest eigenvalue of the matrix.
        eps: f64,
    },
    /// Two equal-power envelopes with a complex correlation coefficient
    /// ([`families::two_envelope_complex`]).
    TwoEnvelopeComplex {
        /// Common Gaussian power `σ_g²`.
        sigma_sq: f64,
        /// Real part of the correlation coefficient.
        rho_re: f64,
        /// Imaginary part of the correlation coefficient.
        rho_im: f64,
    },
    /// An explicit matrix, stored row-major as `(re, im)` pairs; the length
    /// must equal the squared envelope count.
    Explicit {
        /// Row-major matrix entries.
        entries: &'static [(f64, f64)],
    },
}

impl CovarianceSpec {
    /// The envelope count this spec natively describes, when it is fixed:
    /// `Spectral` is pinned to its carrier list, `TwoEnvelopeComplex` to
    /// two envelopes, `Explicit` to the side length of its entry table.
    /// Parametric families (`Spatial` and the synthetic families) return
    /// `None` — they build at whatever size
    /// [`Scenario::with_envelopes`] requests.
    pub fn native_envelopes(&self) -> Option<usize> {
        match self {
            CovarianceSpec::Spectral {
                carrier_offsets_hz, ..
            } => Some(carrier_offsets_hz.len()),
            CovarianceSpec::TwoEnvelopeComplex { .. } => Some(2),
            CovarianceSpec::Explicit { entries } => {
                Some((entries.len() as f64).sqrt().round() as usize)
            }
            _ => None,
        }
    }
}

/// Real-time (Doppler) generation settings of a scenario — the inputs of the
/// paper's Sec. 5 algorithm besides the covariance matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DopplerSettings {
    /// IDFT length `M` (samples per generated block).
    pub idft_size: usize,
    /// Normalized maximum Doppler frequency `f_m = F_m/F_s`. Pinned rather
    /// than derived from [`Scenario::channel`] so paper scenarios use the
    /// rounded `0.05` the paper prints.
    pub normalized_doppler: f64,
    /// Variance `σ²_orig` of the Gaussian sequences feeding the Doppler
    /// filter; the output statistics are invariant to it.
    pub sigma_orig_sq: f64,
}

impl DopplerSettings {
    /// The paper's Sec. 6 settings: `M = 4096`, `f_m = 0.05`,
    /// `σ²_orig = 1/2`.
    pub const PAPER: Self = Self {
        idft_size: 4096,
        normalized_doppler: 0.05,
        sigma_orig_sq: 0.5,
    };
}

/// One named, fully-declarative channel scenario.
///
/// A scenario captures everything the workspace needs to reproduce a
/// generation experiment: the physical channel ([`ChannelParams`]: carrier,
/// mobile speed, sampling rate, delay spread), the envelope count, the
/// desired covariance structure ([`CovarianceSpec`]), the power profile
/// ([`PowerProfile`]) and the real-time Doppler settings
/// ([`DopplerSettings`]). Scenarios are registered by name in
/// [`crate::registry`] and resolved with [`crate::lookup`].
///
/// The bridge into the generator stack is [`Scenario::to_builder`], which
/// returns a pre-configured [`GeneratorBuilder`]; [`Scenario::build`] and
/// [`Scenario::build_realtime`] are one-call shortcuts for the two operating
/// modes.
///
/// # Examples
///
/// ```
/// let scenario = corrfade_scenarios::lookup("fig4b-spatial").unwrap();
/// let mut gen = scenario.build(7).unwrap();
/// let sample = gen.sample();
/// assert_eq!(sample.envelopes.len(), scenario.envelopes);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Unique registry name (kebab-case, e.g. `"fig4a-spectral"`).
    pub name: &'static str,
    /// One-line human-readable title.
    pub title: &'static str,
    /// Paper or extension provenance.
    pub provenance: Provenance,
    /// What the scenario models and which experiments use it.
    pub description: &'static str,
    /// Physical channel parameters (carrier frequency, mobile speed,
    /// sampling frequency, delay spread). For synthetic families these are
    /// descriptive context only; for physical families they are the source
    /// of the derived Doppler quantities.
    pub channel: ChannelParams,
    /// Number of Rayleigh envelopes `N` (carriers / antennas / processes).
    pub envelopes: usize,
    /// Per-envelope power profile applied on top of the covariance family.
    pub powers: PowerProfile,
    /// Declarative source of the desired covariance matrix **K**.
    pub covariance: CovarianceSpec,
    /// Real-time (Doppler) mode settings.
    pub doppler: DopplerSettings,
    /// Sample precision tier of the real-time generator (ARCHITECTURE.md
    /// "Precision tiers"). All registered scenarios default to the bit-exact
    /// [`Precision::F64`] reference tier; opt into the half-width fast tier
    /// per stream with [`Scenario::with_precision`].
    pub precision: Precision,
}

impl Scenario {
    /// Returns a copy of the scenario resized to `n` envelopes.
    ///
    /// Only scenarios whose [`CovarianceSpec`] is parametric in the envelope
    /// count (`Spatial` and the synthetic families,
    /// [`CovarianceSpec::native_envelopes`] = `None`) can be meaningfully
    /// resized; this is how the scaling experiments sweep `N` while still
    /// resolving the family from the registry. Resizing a fixed-size
    /// scenario (`Spectral`, `TwoEnvelopeComplex`, `Explicit`) makes
    /// [`Scenario::covariance_matrix`], [`Scenario::build`] and the other
    /// checked constructors return
    /// [`ScenarioError::DimensionMismatch`].
    ///
    /// ```
    /// let scenario = corrfade_scenarios::lookup("scaling-exp-rho07")
    ///     .unwrap()
    ///     .with_envelopes(32);
    /// assert_eq!(scenario.covariance_matrix().unwrap().rows(), 32);
    ///
    /// // Fixed-size scenarios refuse to resize with a typed error.
    /// let err = corrfade_scenarios::lookup("fig4a-spectral")
    ///     .unwrap()
    ///     .with_envelopes(8)
    ///     .build(1)
    ///     .unwrap_err();
    /// assert!(matches!(
    ///     err,
    ///     corrfade_scenarios::ScenarioError::DimensionMismatch { native: 3, .. }
    /// ));
    /// ```
    pub fn with_envelopes(mut self, n: usize) -> Self {
        self.envelopes = n;
        self
    }

    /// Returns a copy of the scenario with the real-time sample precision
    /// tier replaced — the per-stream opt-in for the f32 fast tier.
    ///
    /// Precision only affects real-time (Doppler) generation; the covariance
    /// resolution, decomposition and single-instant mode are always `f64`.
    ///
    /// ```
    /// use corrfade_linalg::Precision;
    ///
    /// let scenario = corrfade_scenarios::lookup("fig4a-spectral")
    ///     .unwrap()
    ///     .with_precision(Precision::F32);
    /// let cfg = scenario.realtime_config(7).unwrap();
    /// assert_eq!(cfg.precision, Precision::F32);
    /// ```
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Checks that [`Scenario::envelopes`] is realizable by the covariance
    /// family (fixed-size specs cannot be resized).
    fn check_dimension(&self) -> Result<(), ScenarioError> {
        match self.covariance.native_envelopes() {
            Some(native) if native != self.envelopes => Err(ScenarioError::DimensionMismatch {
                name: self.name,
                requested: self.envelopes,
                native,
            }),
            _ => Ok(()),
        }
    }

    /// Bridges the declarative description into a pre-configured
    /// [`GeneratorBuilder`] (covariance source and power profile set; seed
    /// and driving variance left at the builder defaults).
    ///
    /// Fixed-size covariance families always bridge at their native
    /// dimension; use the checked constructors ([`Scenario::build`],
    /// [`Scenario::covariance_matrix`], …) to have an inconsistent
    /// [`Scenario::envelopes`] reported as a typed error instead.
    ///
    /// ```
    /// let scenario = corrfade_scenarios::lookup("fig4a-spectral").unwrap();
    /// let mut gen = scenario.to_builder().seed(42).build().unwrap();
    /// assert_eq!(gen.sample().envelopes.len(), 3);
    /// ```
    pub fn to_builder(&self) -> GeneratorBuilder {
        let builder = GeneratorBuilder::new();
        let builder = match self.covariance {
            CovarianceSpec::Spectral {
                max_doppler_hz,
                rms_delay_spread_s,
                carrier_offsets_hz,
                arrival_times_s,
            } => builder.spectral_scenario(
                JakesSpectralModel::new(1.0, max_doppler_hz, rms_delay_spread_s),
                carrier_offsets_hz.to_vec(),
                pairwise_delays_from_arrival_times(arrival_times_s),
            ),
            CovarianceSpec::Spatial {
                spacing_wavelengths,
                mean_arrival_rad,
                angular_spread_rad,
            } => builder.spatial_scenario(
                SalzWintersSpatialModel::new(
                    1.0,
                    spacing_wavelengths,
                    mean_arrival_rad,
                    angular_spread_rad,
                ),
                self.envelopes,
            ),
            CovarianceSpec::Exponential { rho } => {
                builder.covariance(families::exponential_correlation(self.envelopes, rho))
            }
            CovarianceSpec::ComplexExponential { rho, theta } => builder.covariance(
                families::complex_exponential_correlation(self.envelopes, rho, theta),
            ),
            CovarianceSpec::UnequalPowerExponential { rho, base } => builder.covariance(
                families::unequal_power_exponential(self.envelopes, rho, base),
            ),
            CovarianceSpec::Indefinite { rho } => {
                builder.covariance(families::indefinite_correlation(self.envelopes, rho))
            }
            CovarianceSpec::NearSingular { eps } => {
                builder.covariance(families::near_singular_correlation(self.envelopes, eps))
            }
            CovarianceSpec::TwoEnvelopeComplex {
                sigma_sq,
                rho_re,
                rho_im,
            } => builder.covariance(families::two_envelope_complex(sigma_sq, rho_re, rho_im)),
            CovarianceSpec::Explicit { entries } => {
                let n = (entries.len() as f64).sqrt().round() as usize;
                builder.covariance(CMatrix::from_fn(n, n, |i, j| {
                    let (re, im) = entries[i * n + j];
                    c64(re, im)
                }))
            }
        };
        match self.powers {
            PowerProfile::Intrinsic => builder,
            PowerProfile::Gaussian(p) => builder.gaussian_powers(p),
            PowerProfile::Envelope(p) => builder.envelope_powers(p),
        }
    }

    /// Resolves the desired covariance matrix **K** of the scenario (power
    /// profile applied). Non-PSD families return the matrix *before* the
    /// algorithm's PSD forcing — the infeasible target the generator is
    /// asked for.
    ///
    /// # Errors
    /// [`ScenarioError::DimensionMismatch`] if a fixed-size scenario was
    /// resized; [`ScenarioError::Core`] if the generator stack rejects the
    /// configuration.
    pub fn covariance_matrix(&self) -> Result<CMatrix, ScenarioError> {
        self.check_dimension()?;
        Ok(self.to_builder().resolve_covariance()?)
    }

    /// Builds the single-instant generator (paper Sec. 4.4) for this
    /// scenario with the given RNG seed.
    ///
    /// # Errors
    /// See [`Scenario::covariance_matrix`].
    pub fn build(&self, seed: u64) -> Result<CorrelatedRayleighGenerator, ScenarioError> {
        self.check_dimension()?;
        Ok(self.to_builder().seed(seed).build()?)
    }

    /// The real-time generator configuration (paper Sec. 5) of this
    /// scenario: its covariance matrix combined with its
    /// [`DopplerSettings`].
    ///
    /// # Errors
    /// See [`Scenario::covariance_matrix`].
    pub fn realtime_config(&self, seed: u64) -> Result<RealtimeConfig, ScenarioError> {
        Ok(RealtimeConfig {
            covariance: self.covariance_matrix()?,
            idft_size: self.doppler.idft_size,
            normalized_doppler: self.doppler.normalized_doppler,
            sigma_orig_sq: self.doppler.sigma_orig_sq,
            seed,
            precision: self.precision,
        })
    }

    /// Builds the real-time Doppler generator (paper Sec. 5) for this
    /// scenario with the given RNG seed.
    ///
    /// # Errors
    /// See [`Scenario::covariance_matrix`].
    pub fn build_realtime(&self, seed: u64) -> Result<RealtimeGenerator, ScenarioError> {
        Ok(RealtimeGenerator::new(self.realtime_config(seed)?)?)
    }

    /// Like [`Scenario::build_realtime`], but resolves the eigen-coloring
    /// through the process-wide decomposition cache
    /// ([`corrfade::cached_eigen_coloring`]): the first open of a given
    /// covariance matrix pays for the decomposition, every later open of
    /// *any* scenario with the same matrix — another stream of a fleet, a
    /// reconnecting client — shares it. The produced generator is
    /// bit-identical to the uncached [`Scenario::build_realtime`] path.
    ///
    /// # Errors
    /// See [`Scenario::covariance_matrix`].
    pub fn build_realtime_cached(&self, seed: u64) -> Result<RealtimeGenerator, ScenarioError> {
        let config = self.realtime_config(seed)?;
        let coloring = corrfade::cached_eigen_coloring(&config.covariance)?;
        Ok(RealtimeGenerator::from_coloring(
            Coloring::clone(&coloring),
            config,
        )?)
    }

    /// Opens this scenario as a boxed [`ChannelStream`] in real-time mode
    /// through the decomposition cache — the by-name entry point for
    /// services that open many concurrent streams; see
    /// [`Scenario::build_realtime_cached`] for the sharing contract.
    ///
    /// # Errors
    /// See [`Scenario::covariance_matrix`].
    pub fn stream_cached(&self, seed: u64) -> Result<Box<dyn ChannelStream>, ScenarioError> {
        Ok(Box::new(self.build_realtime_cached(seed)?))
    }

    /// Opens this scenario as a boxed [`ChannelStream`] in real-time
    /// (Doppler) mode — the convenience entry point for services that
    /// resolve a channel simulation by name and stream blocks from it:
    ///
    /// ```
    /// use corrfade::{ChannelStream, SampleBlock};
    ///
    /// let scenario = corrfade_scenarios::lookup("fig4b-spatial").unwrap();
    /// let mut stream = scenario.stream(7).unwrap();
    /// let mut block = SampleBlock::empty();
    /// stream.next_block_into(&mut block).unwrap();
    /// assert_eq!(block.envelopes(), scenario.envelopes);
    /// assert_eq!(block.samples(), scenario.doppler.idft_size);
    /// // Reusing `block` for subsequent calls performs no heap allocation.
    /// stream.next_block_into(&mut block).unwrap();
    /// ```
    ///
    /// # Errors
    /// See [`Scenario::covariance_matrix`].
    pub fn stream(&self, seed: u64) -> Result<Box<dyn ChannelStream>, ScenarioError> {
        Ok(Box::new(self.build_realtime(seed)?))
    }

    /// Opens this scenario as a boxed [`ChannelStream`] in single-instant
    /// mode (paper Sec. 4.4): each block batches independent snapshots.
    ///
    /// # Errors
    /// See [`Scenario::covariance_matrix`].
    pub fn stream_snapshots(&self, seed: u64) -> Result<Box<dyn ChannelStream>, ScenarioError> {
        Ok(Box::new(self.build(seed)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_CHANNEL: ChannelParams = ChannelParams {
        carrier_freq_hz: 900e6,
        mobile_speed_mps: 60.0 / 3.6,
        sampling_freq_hz: 1e3,
        rms_delay_spread_s: 1e-6,
    };

    fn demo(covariance: CovarianceSpec, envelopes: usize) -> Scenario {
        Scenario {
            name: "test-demo",
            title: "test scenario",
            provenance: Provenance::Extended("unit test"),
            description: "unit-test scenario",
            channel: PAPER_CHANNEL,
            envelopes,
            powers: PowerProfile::Intrinsic,
            covariance,
            doppler: DopplerSettings::PAPER,
            precision: Precision::F64,
        }
    }

    #[test]
    fn explicit_spec_round_trips_entries() {
        static ENTRIES: [(f64, f64); 4] = [(1.0, 0.0), (0.5, 0.4), (0.5, -0.4), (1.0, 0.0)];
        let s = demo(CovarianceSpec::Explicit { entries: &ENTRIES }, 2);
        let k = s.covariance_matrix().unwrap();
        assert!((k[(0, 1)].re - 0.5).abs() < 1e-15);
        assert!((k[(0, 1)].im - 0.4).abs() < 1e-15);
        assert!((k[(1, 0)].im + 0.4).abs() < 1e-15);
    }

    #[test]
    fn explicit_spec_rejects_dimension_mismatch_with_typed_error() {
        static ENTRIES: [(f64, f64); 4] = [(1.0, 0.0), (0.5, 0.4), (0.5, -0.4), (1.0, 0.0)];
        let s = demo(CovarianceSpec::Explicit { entries: &ENTRIES }, 3);
        assert!(matches!(
            s.covariance_matrix().unwrap_err(),
            ScenarioError::DimensionMismatch {
                requested: 3,
                native: 2,
                ..
            }
        ));
    }

    #[test]
    fn fixed_size_specs_reject_resizing_in_every_checked_constructor() {
        static OFFSETS: [f64; 2] = [200e3, 0.0];
        static ARRIVALS: [f64; 2] = [0.0, 1e-3];
        let s = demo(
            CovarianceSpec::Spectral {
                max_doppler_hz: 50.0,
                rms_delay_spread_s: 1e-6,
                carrier_offsets_hz: &OFFSETS,
                arrival_times_s: &ARRIVALS,
            },
            2,
        );
        assert_eq!(s.covariance_matrix().unwrap().rows(), 2);
        let resized = s.with_envelopes(5);
        for err in [
            resized.covariance_matrix().map(|_| ()).unwrap_err(),
            resized.build(1).map(|_| ()).unwrap_err(),
            resized.realtime_config(1).map(|_| ()).unwrap_err(),
            resized.build_realtime(1).map(|_| ()).unwrap_err(),
        ] {
            assert!(matches!(
                err,
                ScenarioError::DimensionMismatch {
                    requested: 5,
                    native: 2,
                    ..
                }
            ));
        }

        let two = demo(
            CovarianceSpec::TwoEnvelopeComplex {
                sigma_sq: 1.0,
                rho_re: 0.3,
                rho_im: 0.2,
            },
            2,
        )
        .with_envelopes(4);
        assert!(matches!(
            two.build(1).unwrap_err(),
            ScenarioError::DimensionMismatch { native: 2, .. }
        ));
    }

    #[test]
    fn with_envelopes_resizes_parametric_families() {
        let s = demo(CovarianceSpec::Exponential { rho: 0.7 }, 4);
        for n in [2usize, 8, 17] {
            assert_eq!(
                s.with_envelopes(n).covariance_matrix().unwrap().rows(),
                n,
                "n = {n}"
            );
        }
    }

    #[test]
    fn power_profile_is_applied_by_the_bridge() {
        static POWERS: [f64; 3] = [2.0, 0.5, 1.0];
        let mut s = demo(CovarianceSpec::Exponential { rho: 0.5 }, 3);
        s.powers = PowerProfile::Gaussian(&POWERS);
        let k = s.covariance_matrix().unwrap();
        for (i, &p) in POWERS.iter().enumerate() {
            assert!((k[(i, i)].re - p).abs() < 1e-12);
        }
    }

    #[test]
    fn realtime_config_carries_the_doppler_settings() {
        let mut s = demo(CovarianceSpec::Exponential { rho: 0.5 }, 3);
        s.doppler = DopplerSettings {
            idft_size: 2048,
            normalized_doppler: 0.1,
            sigma_orig_sq: 0.25,
        };
        let cfg = s.realtime_config(9).unwrap();
        assert_eq!(cfg.idft_size, 2048);
        assert!((cfg.normalized_doppler - 0.1).abs() < 1e-15);
        assert!((cfg.sigma_orig_sq - 0.25).abs() < 1e-15);
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn cached_realtime_build_is_bit_identical_to_uncached() {
        let s = demo(CovarianceSpec::Exponential { rho: 0.6 }, 3);
        let mut cached = s.build_realtime_cached(11).unwrap();
        let mut fresh = s.build_realtime(11).unwrap();
        assert_eq!(
            cached.generate_block().gaussian_paths,
            fresh.generate_block().gaussian_paths,
            "the decomposition cache must not change the generated values"
        );
    }

    #[test]
    fn provenance_helpers() {
        assert!(Provenance::Paper("Eq. (22)").is_paper());
        assert!(!Provenance::Extended("E9").is_paper());
        assert_eq!(Provenance::Extended("E9").reference(), "E9");
    }
}

//! The static catalog of named scenarios and the [`lookup`] entry point.
//!
//! Every entry is a fully-declarative [`Scenario`]; the experiment binaries,
//! Criterion benches and examples of the workspace resolve their
//! configuration from here by name instead of hard-coding constructors. The
//! catalog is also rendered as the "Scenario catalog" table in the
//! repository `README.md`.

use core::f64::consts::{FRAC_PI_4, PI};

use corrfade_linalg::Precision;
use corrfade_models::ChannelParams;

use crate::error::ScenarioError;
use crate::scenario::{CovarianceSpec, DopplerSettings, PowerProfile, Provenance, Scenario};

/// The physical channel of the paper's Sec. 6 experiments: GSM 900
/// (900 MHz), 60 km/h, `F_s` = 1 kHz, `σ_τ` = 1 µs — giving `F_m ≈ 50 Hz`
/// and `f_m ≈ 0.05`.
pub const PAPER_CHANNEL: ChannelParams = ChannelParams {
    carrier_freq_hz: 900e6,
    mobile_speed_mps: 60.0 / 3.6,
    sampling_freq_hz: 1e3,
    rms_delay_spread_s: 1e-6,
};

/// Carrier offsets of the paper's spectral experiment: three carriers
/// 200 kHz apart with `f₁ > f₂ > f₃` (only differences matter).
static SPECTRAL_CARRIER_OFFSETS_HZ: [f64; 3] = [400e3, 200e3, 0.0];
/// Arrival times of the paper's spectral experiment: `τ₁,₂ = 1 ms`,
/// `τ₂,₃ = 3 ms`, `τ₁,₃ = 4 ms`.
static SPECTRAL_ARRIVAL_TIMES_S: [f64; 3] = [0.0, 1e-3, 4e-3];

/// Envelope powers `σ_r²` of the `unequal-power-spatial` scenario (E5b).
static UNEQUAL_SPATIAL_ENVELOPE_POWERS: [f64; 3] = [0.5, 2.0, 1.0];

/// The 3 × 3 demo covariance of the `quickstart` example: unit powers,
/// moderate complex correlations.
static QUICKSTART_ENTRIES: [(f64, f64); 9] = [
    (1.0, 0.0),
    (0.55, 0.25),
    (0.10, 0.05),
    (0.55, -0.25),
    (1.0, 0.0),
    (0.45, 0.15),
    (0.10, -0.05),
    (0.45, -0.15),
    (1.0, 0.0),
];

/// Unequal powers (2 / 1 / 0.5) with complex correlations — the
/// `baseline_comparison` stress case no equal-power baseline can realize.
static BASELINE_UNEQUAL_ENTRIES: [(f64, f64); 9] = [
    (2.0, 0.0),
    (0.6, 0.2),
    (0.1, 0.0),
    (0.6, -0.2),
    (1.0, 0.0),
    (0.3, -0.1),
    (0.1, 0.0),
    (0.3, 0.1),
    (0.5, 0.0),
];

/// Every registered scenario, in catalog order (paper scenarios first).
pub static REGISTRY: &[Scenario] = &[
    Scenario {
        name: "fig4a-spectral",
        title: "Three frequency-correlated (OFDM) envelopes, GSM 900",
        provenance: Provenance::Paper("Eq. (22), Fig. 4(a); E1/E3"),
        description: "The paper's first Sec. 6 experiment: three carriers 200 kHz apart \
                      observed through a GSM-900 channel (Fm = 50 Hz, sigma_tau = 1 us) with \
                      arrival delays of 1/3/4 ms. The Jakes spectral model reproduces the \
                      covariance the paper prints as Eq. (22).",
        channel: PAPER_CHANNEL,
        envelopes: 3,
        powers: PowerProfile::Intrinsic,
        covariance: CovarianceSpec::Spectral {
            max_doppler_hz: 50.0,
            rms_delay_spread_s: 1e-6,
            carrier_offsets_hz: &SPECTRAL_CARRIER_OFFSETS_HZ,
            arrival_times_s: &SPECTRAL_ARRIVAL_TIMES_S,
        },
        doppler: DopplerSettings::PAPER,
        precision: Precision::F64,
    },
    Scenario {
        name: "fig4b-spatial",
        title: "Three spatially-correlated (MIMO ULA) envelopes, D/lambda = 1",
        provenance: Provenance::Paper("Eq. (23), Fig. 4(b); E2/E4"),
        description: "The paper's second Sec. 6 experiment: a three-element uniform linear \
                      array spaced one wavelength apart (33.3 cm at GSM 900) with all scatter \
                      arriving within +-10 degrees of broadside. The Salz-Winters model \
                      reproduces the covariance the paper prints as Eq. (23).",
        channel: PAPER_CHANNEL,
        envelopes: 3,
        powers: PowerProfile::Intrinsic,
        covariance: CovarianceSpec::Spatial {
            spacing_wavelengths: 1.0,
            mean_arrival_rad: 0.0,
            angular_spread_rad: PI / 18.0,
        },
        doppler: DopplerSettings::PAPER,
        precision: Precision::F64,
    },
    Scenario {
        name: "mimo-ula-halfwave",
        title: "Four-element half-wavelength ULA, 30-degree spread",
        provenance: Provenance::Extended("mimo_spatial example"),
        description: "A denser, more scattered array than the paper's: half-wavelength \
                      spacing with a 30-degree angular spread, broadside arrival. Adjacent \
                      antennas stay strongly correlated while the outer pair decorrelates.",
        channel: PAPER_CHANNEL,
        envelopes: 4,
        powers: PowerProfile::Intrinsic,
        covariance: CovarianceSpec::Spatial {
            spacing_wavelengths: 0.5,
            mean_arrival_rad: 0.0,
            angular_spread_rad: PI / 6.0,
        },
        doppler: DopplerSettings::PAPER,
        precision: Precision::F64,
    },
    Scenario {
        name: "mimo-offbroadside",
        title: "Off-broadside ULA (Phi = 45 degrees) — complex covariance",
        provenance: Provenance::Extended("mimo_spatial example; covariance_build bench"),
        description: "Scatter arriving 45 degrees off broadside makes the spatial covariance \
                      genuinely complex — the general case the paper's algorithm supports and \
                      several conventional methods (refs [4]/[5]) do not.",
        channel: PAPER_CHANNEL,
        envelopes: 3,
        powers: PowerProfile::Intrinsic,
        covariance: CovarianceSpec::Spatial {
            spacing_wavelengths: 0.5,
            mean_arrival_rad: FRAC_PI_4,
            angular_spread_rad: 0.3,
        },
        doppler: DopplerSettings::PAPER,
        precision: Precision::F64,
    },
    Scenario {
        name: "unequal-power-spatial",
        title: "Paper spatial correlation with unequal envelope powers",
        provenance: Provenance::Extended("E5b; unequal_power example"),
        description: "The paper's Eq. (23) correlation structure with desired envelope powers \
                      sigma_r^2 = [0.5, 2.0, 1.0], converted to Gaussian powers through \
                      Eq. (11) — the unequal-power generalization the paper's title promises.",
        channel: PAPER_CHANNEL,
        envelopes: 3,
        powers: PowerProfile::Envelope(&UNEQUAL_SPATIAL_ENVELOPE_POWERS),
        covariance: CovarianceSpec::Spatial {
            spacing_wavelengths: 1.0,
            mean_arrival_rad: 0.0,
            angular_spread_rad: PI / 18.0,
        },
        doppler: DopplerSettings::PAPER,
        precision: Precision::F64,
    },
    Scenario {
        name: "unequal-power-geometric",
        title: "Geometric power profile on an exponential correlation",
        provenance: Provenance::Extended("E10 S4"),
        description: "Exponential correlation rho = 0.6 with powers halving per envelope \
                      (p_j = 0.5^j) — trips the equal-power restriction of the conventional \
                      baselines in the E10 shortcoming matrix.",
        channel: PAPER_CHANNEL,
        envelopes: 3,
        powers: PowerProfile::Intrinsic,
        covariance: CovarianceSpec::UnequalPowerExponential {
            rho: 0.6,
            base: 0.5,
        },
        doppler: DopplerSettings::PAPER,
        precision: Precision::F64,
    },
    Scenario {
        name: "two-envelope-complex",
        title: "Two envelopes with a complex correlation coefficient",
        provenance: Provenance::Extended("E10 S3"),
        description: "N = 2, equal powers, correlation 0.5 + 0.4i — the restricted setting of \
                      the paper's two-envelope references, used to show which baselines only \
                      handle this case.",
        channel: PAPER_CHANNEL,
        envelopes: 2,
        powers: PowerProfile::Intrinsic,
        covariance: CovarianceSpec::TwoEnvelopeComplex {
            sigma_sq: 1.0,
            rho_re: 0.5,
            rho_im: 0.4,
        },
        doppler: DopplerSettings::PAPER,
        precision: Precision::F64,
    },
    Scenario {
        name: "indefinite-rho08",
        title: "Indefinite covariance target, rho = 0.8",
        provenance: Provenance::Extended("PSD-forcing stress case"),
        description: "A jointly-infeasible correlation chain (one sign flipped) at moderate \
                      strength: Hermitian but with a negative eigenvalue, so the paper's \
                      Sec. 4.2 zero-clipping engages.",
        channel: PAPER_CHANNEL,
        envelopes: 4,
        powers: PowerProfile::Intrinsic,
        covariance: CovarianceSpec::Indefinite { rho: 0.8 },
        doppler: DopplerSettings::PAPER,
        precision: Precision::F64,
    },
    Scenario {
        name: "indefinite-rho09",
        title: "Indefinite covariance target, rho = 0.9",
        provenance: Provenance::Extended("E5c; E7; E10 S5; unequal_power example"),
        description: "The strongly-infeasible variant used by the PSD-forcing ablations: at \
                      N = 3 the correlation triangle +0.9/+0.9/-0.9 is jointly impossible, so \
                      zero-clipping (proposed) engages while epsilon-replacement (ref. [6]) \
                      distorts more and raw Cholesky aborts.",
        channel: PAPER_CHANNEL,
        envelopes: 3,
        powers: PowerProfile::Intrinsic,
        covariance: CovarianceSpec::Indefinite { rho: 0.9 },
        doppler: DopplerSettings::PAPER,
        precision: Precision::F64,
    },
    Scenario {
        name: "near-singular-eps1e6",
        title: "Near-singular PD target, min eigenvalue ~ 1e-6",
        provenance: Provenance::Extended("E7"),
        description: "All pairwise correlations equal to 1 - 1e-6: positive definite but with \
                      a tiny smallest eigenvalue, the regime where MATLAB-style Cholesky \
                      round-off failures live.",
        channel: PAPER_CHANNEL,
        envelopes: 6,
        powers: PowerProfile::Intrinsic,
        covariance: CovarianceSpec::NearSingular { eps: 1e-6 },
        doppler: DopplerSettings::PAPER,
        precision: Precision::F64,
    },
    Scenario {
        name: "near-singular-eps1e9",
        title: "Near-singular PD target, min eigenvalue ~ 1e-9",
        provenance: Provenance::Extended("E7; E10 S6"),
        description: "Pairwise correlations 1 - 1e-9 — close enough to singular that raw \
                      Cholesky fails in double precision while the eigen coloring proceeds.",
        channel: PAPER_CHANNEL,
        envelopes: 4,
        powers: PowerProfile::Intrinsic,
        covariance: CovarianceSpec::NearSingular { eps: 1e-9 },
        doppler: DopplerSettings::PAPER,
        precision: Precision::F64,
    },
    Scenario {
        name: "near-singular-eps1e13",
        title: "Near-singular PD target, min eigenvalue ~ 1e-13",
        provenance: Provenance::Extended("E7"),
        description: "The hardest near-singular case of the E7 sweep: the smallest eigenvalue \
                      sits at the edge of double-precision round-off.",
        channel: PAPER_CHANNEL,
        envelopes: 6,
        powers: PowerProfile::Intrinsic,
        covariance: CovarianceSpec::NearSingular { eps: 1e-13 },
        doppler: DopplerSettings::PAPER,
        precision: Precision::F64,
    },
    Scenario {
        name: "quickstart-demo",
        title: "Hand-picked 3x3 complex demo covariance",
        provenance: Provenance::Extended("quickstart example"),
        description: "Unit powers with moderate complex correlations — a small, well-behaved \
                      matrix for first contact with the API.",
        channel: PAPER_CHANNEL,
        envelopes: 3,
        powers: PowerProfile::Intrinsic,
        covariance: CovarianceSpec::Explicit {
            entries: &QUICKSTART_ENTRIES,
        },
        doppler: DopplerSettings::PAPER,
        precision: Precision::F64,
    },
    Scenario {
        name: "baseline-unequal",
        title: "Unequal powers with complex correlations",
        provenance: Provenance::Extended("baseline_comparison example"),
        description: "Powers 2/1/0.5 with complex off-diagonals: realizable by the paper's \
                      algorithm but outside the equal-power and real-covariance restrictions \
                      of the conventional baselines.",
        channel: PAPER_CHANNEL,
        envelopes: 3,
        powers: PowerProfile::Intrinsic,
        covariance: CovarianceSpec::Explicit {
            entries: &BASELINE_UNEQUAL_ENTRIES,
        },
        doppler: DopplerSettings::PAPER,
        precision: Precision::F64,
    },
    Scenario {
        name: "scaling-exp-rho07",
        title: "Exponential correlation rho = 0.7 (scaling family)",
        provenance: Provenance::Extended("E9 scaling; decomposition/parallel benches"),
        description: "The always-PD equal-power family K_kj = 0.7^|k-j|, resizable to any N \
                      with Scenario::with_envelopes — the workhorse of the decomposition and \
                      throughput scaling sweeps.",
        channel: PAPER_CHANNEL,
        envelopes: 16,
        powers: PowerProfile::Intrinsic,
        covariance: CovarianceSpec::Exponential { rho: 0.7 },
        doppler: DopplerSettings::PAPER,
        precision: Precision::F64,
    },
    Scenario {
        name: "complex-exp-rho08",
        title: "Complex exponential correlation with phase ramp",
        provenance: Provenance::Extended("decomposition bench, complex path"),
        description: "K_kj = 0.8^|k-j| * exp(0.7i*(k-j)): Hermitian positive definite with \
                      genuinely complex entries, exercising the complex-covariance path that \
                      ref. [5] cannot represent.",
        channel: PAPER_CHANNEL,
        envelopes: 16,
        powers: PowerProfile::Intrinsic,
        covariance: CovarianceSpec::ComplexExponential {
            rho: 0.8,
            theta: 0.7,
        },
        doppler: DopplerSettings::PAPER,
        precision: Precision::F64,
    },
];

/// Iterates over every registered scenario in catalog order.
///
/// ```
/// let paper_count = corrfade_scenarios::iter()
///     .filter(|s| s.provenance.is_paper())
///     .count();
/// assert_eq!(paper_count, 2);
/// ```
pub fn iter() -> impl Iterator<Item = &'static Scenario> {
    REGISTRY.iter()
}

/// The names of every registered scenario, in catalog order.
pub fn names() -> Vec<&'static str> {
    REGISTRY.iter().map(|s| s.name).collect()
}

/// Looks a scenario up by its registry name. Names in the `network/`
/// namespace resolve through the generated families of [`crate::generated`]
/// (built, leaked and cached on first use) instead of the static catalog.
///
/// # Errors
/// Returns [`ScenarioError::UnknownScenario`] — including a closest-name
/// suggestion when one exists — if no scenario with that name is registered
/// and it does not match a generated family.
///
/// ```
/// let scenario = corrfade_scenarios::lookup("near-singular-eps1e6").unwrap();
/// assert_eq!(scenario.envelopes, 6);
///
/// let err = corrfade_scenarios::lookup("near-singular-eps1e7").unwrap_err();
/// assert!(err.to_string().contains("did you mean"));
/// ```
pub fn lookup(name: &str) -> Result<&'static Scenario, ScenarioError> {
    REGISTRY
        .iter()
        .find(|s| s.name == name)
        .or_else(|| crate::generated::resolve(name))
        .ok_or_else(|| ScenarioError::UnknownScenario {
            name: name.to_string(),
            suggestion: closest_name(name),
        })
}

/// The registered name sharing the longest prefix with `name` (at least
/// four characters), if any — the "did you mean" suggestion attached to
/// [`ScenarioError::UnknownScenario`], exported so remote-facing layers
/// (the `corrfade-serve` wire protocol) can embed the same suggestion in
/// their own typed error frames.
///
/// ```
/// assert_eq!(
///     corrfade_scenarios::suggest("fig4a-spektral"),
///     Some("fig4a-spectral")
/// );
/// assert_eq!(corrfade_scenarios::suggest("zzz"), None);
/// ```
#[must_use]
pub fn suggest(name: &str) -> Option<&'static str> {
    closest_name(name)
}

fn closest_name(name: &str) -> Option<&'static str> {
    REGISTRY
        .iter()
        .map(|s| (common_prefix_len(s.name, name), s.name))
        .filter(|&(len, _)| len >= 4)
        .max_by_key(|&(len, _)| len)
        .map(|(_, n)| n)
}

fn common_prefix_len(a: &str, b: &str) -> usize {
    a.bytes().zip(b.bytes()).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_finds_every_registered_name() {
        for s in iter() {
            assert_eq!(lookup(s.name).unwrap().name, s.name);
        }
    }

    #[test]
    fn unknown_name_is_a_typed_error_with_suggestion() {
        let err = lookup("fig4a-spectrel").unwrap_err();
        let ScenarioError::UnknownScenario { name, suggestion } = &err else {
            panic!("expected UnknownScenario, got {err:?}");
        };
        assert_eq!(name, "fig4a-spectrel");
        assert_eq!(*suggestion, Some("fig4a-spectral"));

        // A name nothing resembles has no suggestion.
        let err = lookup("zzz").unwrap_err();
        let ScenarioError::UnknownScenario { suggestion, .. } = &err else {
            panic!("expected UnknownScenario, got {err:?}");
        };
        assert!(suggestion.is_none());
    }

    #[test]
    fn names_are_unique_and_kebab_case() {
        let names = names();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "duplicate scenario names");
        for n in names {
            assert!(
                n.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-'),
                "name `{n}` is not kebab-case"
            );
        }
    }

    #[test]
    fn registry_has_the_documented_size() {
        assert!(
            (10..=20).contains(&REGISTRY.len()),
            "catalog drifted to {} entries — update README.md",
            REGISTRY.len()
        );
    }
}

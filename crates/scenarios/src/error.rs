//! Error type of the scenario registry.

use core::fmt;

use corrfade::CorrfadeError;

/// Errors produced while resolving scenarios from the registry.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// No scenario with the requested name is registered.
    UnknownScenario {
        /// The name that was looked up.
        name: String,
        /// The closest registered name, when one resembles the request.
        suggestion: Option<&'static str>,
    },
    /// [`Scenario::with_envelopes`](crate::Scenario::with_envelopes) was
    /// used on a scenario whose covariance family has a fixed envelope
    /// count (`Spectral`, `TwoEnvelopeComplex`, `Explicit`).
    DimensionMismatch {
        /// Name of the offending scenario.
        name: &'static str,
        /// The envelope count requested via `with_envelopes`.
        requested: usize,
        /// The envelope count the covariance family natively describes.
        native: usize,
    },
    /// An error bubbled up from the generator stack while building the
    /// configured scenario.
    Core(CorrfadeError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnknownScenario { name, suggestion } => {
                write!(f, "unknown scenario `{name}`")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean `{s}`?)")?;
                }
                write!(f, "; see corrfade_scenarios::names() for the full catalog")
            }
            ScenarioError::DimensionMismatch {
                name,
                requested,
                native,
            } => write!(
                f,
                "scenario `{name}` cannot be resized to {requested} envelopes: its covariance \
                 family has a fixed dimension of {native}"
            ),
            ScenarioError::Core(e) => write!(f, "scenario failed to build: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CorrfadeError> for ScenarioError {
    fn from(e: CorrfadeError) -> Self {
        ScenarioError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_name_and_suggestion() {
        let e = ScenarioError::UnknownScenario {
            name: "fig4a-spektral".into(),
            suggestion: Some("fig4a-spectral"),
        };
        let s = e.to_string();
        assert!(s.contains("fig4a-spektral"));
        assert!(s.contains("did you mean `fig4a-spectral`"));

        let e = ScenarioError::UnknownScenario {
            name: "nope".into(),
            suggestion: None,
        };
        assert!(!e.to_string().contains("did you mean"));
    }

    #[test]
    fn dimension_mismatch_names_both_sizes() {
        let e = ScenarioError::DimensionMismatch {
            name: "fig4a-spectral",
            requested: 8,
            native: 3,
        };
        let s = e.to_string();
        assert!(s.contains("fig4a-spectral") && s.contains('8') && s.contains('3'));
    }

    #[test]
    fn core_errors_preserve_the_source() {
        use std::error::Error;
        let e: ScenarioError = CorrfadeError::MissingCovariance.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("no covariance source"));
    }
}

//! # corrfade-scenarios
//!
//! A declarative, named registry of channel scenarios for the `corrfade`
//! workspace.
//!
//! The paper's experiments each pin a concrete channel operating point —
//! carrier frequency, mobile speed, array geometry, correlation family.
//! Instead of hard-coding those constructors inside every experiment binary,
//! bench and example, this crate captures each operating point as a
//! [`Scenario`]: a plain-data description of the physical channel
//! ([`corrfade_models::ChannelParams`]), the envelope count, the covariance
//! family ([`CovarianceSpec`]), the power profile ([`PowerProfile`]) and the
//! real-time Doppler settings ([`DopplerSettings`]).
//!
//! Scenarios are registered under stable kebab-case names (the two paper
//! scenarios `fig4a-spectral` / `fig4b-spatial` plus extended stress cases
//! such as `near-singular-eps1e6` and `indefinite-rho09`) and resolved with
//! [`lookup`]; [`iter`] walks the whole catalog. The bridge into the
//! generator stack is [`Scenario::to_builder`], which returns a
//! pre-configured [`corrfade::GeneratorBuilder`].
//!
//! Selecting scenarios by name composes with the zero-allocation streaming
//! API: [`Scenario::stream`] opens a named scenario as a boxed
//! [`corrfade::ChannelStream`] whose blocks are written into caller-owned
//! planar [`corrfade::SampleBlock`] buffers — a request can name its
//! scenario instead of shipping a covariance matrix, and the service layer
//! can pool one block per connection.
//!
//! # Examples
//!
//! Resolve a paper scenario and generate from it:
//!
//! ```
//! use corrfade_scenarios::lookup;
//!
//! let scenario = lookup("fig4b-spatial").unwrap();
//! assert_eq!(scenario.envelopes, 3);
//!
//! // Single-instant mode (paper Sec. 4.4).
//! let mut gen = scenario.build(7).unwrap();
//! assert_eq!(gen.sample().envelopes.len(), 3);
//!
//! // Real-time Doppler mode (paper Sec. 5) with the scenario's settings.
//! let mut rt = scenario.build_realtime(7).unwrap();
//! assert_eq!(rt.block_len(), 4096);
//! ```
//!
//! Stream a named scenario through the zero-allocation block API:
//!
//! ```
//! use corrfade::{ChannelStream, SampleBlock};
//! use corrfade_scenarios::lookup;
//!
//! let mut stream = lookup("fig4a-spectral").unwrap().stream(7).unwrap();
//! let mut block = SampleBlock::empty();
//! for _ in 0..2 {
//!     // After the first call has sized `block`, subsequent calls reuse it
//!     // without any heap allocation.
//!     stream.next_block_into(&mut block).unwrap();
//! }
//! assert_eq!(block.envelopes(), 3);
//! assert_eq!(block.samples(), 4096);
//! ```
//!
//! Unknown names are a typed error, not a panic:
//!
//! ```
//! use corrfade_scenarios::{lookup, ScenarioError};
//!
//! let err = lookup("no-such-scenario").unwrap_err();
//! assert!(matches!(err, ScenarioError::UnknownScenario { .. }));
//! ```
//!
//! Customize a registered scenario through the builder bridge:
//!
//! ```
//! use corrfade_scenarios::lookup;
//!
//! let mut gen = lookup("fig4a-spectral")
//!     .unwrap()
//!     .to_builder()
//!     .envelope_powers(&[0.5, 1.0, 2.0])
//!     .seed(42)
//!     .build()
//!     .unwrap();
//! assert!((gen.desired_covariance()[(2, 2)].re - 2.0 / 0.2146).abs() < 0.1);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod families;
pub mod generated;
pub mod registry;
pub mod scenario;

pub use error::ScenarioError;
pub use registry::{iter, lookup, names, suggest, PAPER_CHANNEL, REGISTRY};
pub use scenario::{CovarianceSpec, DopplerSettings, PowerProfile, Provenance, Scenario};

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_models::{paper_covariance_matrix_22, paper_covariance_matrix_23};

    /// The satellite acceptance test: every registered scenario bridges into
    /// a generator that actually builds.
    #[test]
    fn every_registered_scenario_builds_a_valid_generator() {
        for s in iter() {
            let gen = s.to_builder().seed(1).build();
            assert!(
                gen.is_ok(),
                "scenario `{}` failed to build: {gen:?}",
                s.name
            );
            assert_eq!(
                gen.unwrap().dimension(),
                s.envelopes,
                "scenario `{}` dimension mismatch",
                s.name
            );
        }
    }

    #[test]
    fn every_registered_scenario_builds_a_realtime_generator() {
        for s in iter() {
            let gen = s.build_realtime(1);
            assert!(
                gen.is_ok(),
                "scenario `{}` failed to build in real-time mode: {gen:?}",
                s.name
            );
        }
    }

    #[test]
    fn every_registered_scenario_streams_both_modes() {
        use corrfade::{ChannelStream, SampleBlock};
        let mut block = SampleBlock::empty();
        for s in iter() {
            let mut rt = s.stream(1).unwrap();
            rt.next_block_into(&mut block).unwrap();
            assert_eq!(block.envelopes(), s.envelopes, "scenario `{}`", s.name);
            assert_eq!(
                block.samples(),
                s.doppler.idft_size,
                "scenario `{}`",
                s.name
            );
            let mut si = s.stream_snapshots(1).unwrap();
            si.next_block_into(&mut block).unwrap();
            assert_eq!(block.envelopes(), s.envelopes, "scenario `{}`", s.name);
            assert_eq!(block.samples(), si.block_len(), "scenario `{}`", s.name);
        }
    }

    #[test]
    fn paper_scenarios_reproduce_the_reported_matrices() {
        let k22 = lookup("fig4a-spectral")
            .unwrap()
            .covariance_matrix()
            .unwrap();
        assert!(k22.max_abs_diff(&paper_covariance_matrix_22()) < 5e-4);

        let k23 = lookup("fig4b-spatial")
            .unwrap()
            .covariance_matrix()
            .unwrap();
        assert!(k23.max_abs_diff(&paper_covariance_matrix_23()) < 5e-4);
    }

    #[test]
    fn paper_channel_derives_the_reported_doppler_quantities() {
        assert!((PAPER_CHANNEL.max_doppler_hz() - 50.0).abs() < 0.1);
        assert!((PAPER_CHANNEL.normalized_doppler() - 0.05).abs() < 1e-4);
        assert_eq!(PAPER_CHANNEL.doppler_band_edge(4096), 204);
    }

    #[test]
    fn stress_scenarios_are_forced_psd_but_still_build() {
        for name in ["indefinite-rho08", "indefinite-rho09"] {
            let gen = lookup(name).unwrap().build(3).unwrap();
            assert!(
                gen.coloring().psd.clipped_count > 0,
                "scenario `{name}` should need eigenvalue clipping"
            );
        }
    }
}

//! Parametric covariance-matrix families.
//!
//! These functions build the synthetic covariance matrices behind the
//! extended entries of the [scenario registry](crate::registry) — scaling
//! sweeps, PSD-forcing stress cases, unequal-power profiles. They are also
//! used directly by the ablation experiments (E7, E9, E10) and the
//! decomposition / scaling benches in `corrfade-bench` whenever a parameter
//! sweep needs matrices outside the registered operating points.
//!
//! Every family is parameterized by the envelope count `n`, so a registered
//! [`Scenario`](crate::Scenario) using one of these families can be resized
//! with [`Scenario::with_envelopes`](crate::Scenario::with_envelopes).

use corrfade_linalg::{c64, CMatrix};

/// An exponentially-decaying equal-power correlation matrix
/// `K_{kj} = ρ^{|k−j|}` — always positive definite; used for scaling
/// benchmarks at arbitrary `N`.
pub fn exponential_correlation(n: usize, rho: f64) -> CMatrix {
    assert!((0.0..1.0).contains(&rho), "rho must lie in [0, 1)");
    CMatrix::from_fn(n, n, |i, j| c64(rho.powi((i as i32 - j as i32).abs()), 0.0))
}

/// A complex-valued Hermitian positive-definite covariance with phase ramp
/// `K_{kj} = ρ^{|k−j|}·e^{iθ(k−j)}` — exercises the complex-covariance path
/// that ref. \[5\] cannot represent.
pub fn complex_exponential_correlation(n: usize, rho: f64, theta: f64) -> CMatrix {
    assert!((0.0..1.0).contains(&rho), "rho must lie in [0, 1)");
    CMatrix::from_fn(n, n, |i, j| {
        let d = i as i32 - j as i32;
        corrfade_linalg::Complex64::from_polar(rho.powi(d.abs()), theta * d as f64)
    })
}

/// A deliberately **indefinite** "covariance" matrix: a consistent
/// exponential-correlation matrix whose single most-negative-impact entry
/// pair is overwritten with an inconsistent sign. Used to exercise the
/// PSD-forcing path. The returned matrix is Hermitian but has at least
/// one negative eigenvalue for `n ≥ 3` and `rho ≥ 0.6`.
pub fn indefinite_correlation(n: usize, rho: f64) -> CMatrix {
    assert!(
        n >= 3,
        "need at least 3 envelopes to build an indefinite example"
    );
    let mut k = exponential_correlation(n, rho);
    // Make the (0, n-1) correlation strongly negative while the chain of
    // intermediate correlations stays strongly positive — jointly infeasible.
    k[(0, n - 1)] = c64(-rho, 0.0);
    k[(n - 1, 0)] = c64(-rho, 0.0);
    k
}

/// A nearly-singular positive-definite matrix: equal powers, pairwise
/// correlation `1 − eps` between all envelopes. For small `eps` the smallest
/// eigenvalue is ≈ `eps`, which is where MATLAB-style Cholesky round-off
/// failures live.
pub fn near_singular_correlation(n: usize, eps: f64) -> CMatrix {
    assert!(eps > 0.0 && eps < 1.0, "eps must lie in (0, 1)");
    CMatrix::from_fn(n, n, |i, j| {
        if i == j {
            c64(1.0, 0.0)
        } else {
            c64(1.0 - eps, 0.0)
        }
    })
}

/// Unequal-power variant of [`exponential_correlation`]: powers follow a
/// geometric profile `p_j = base^j`.
pub fn unequal_power_exponential(n: usize, rho: f64, base: f64) -> CMatrix {
    let corr = exponential_correlation(n, rho);
    let powers: Vec<f64> = (0..n).map(|j| base.powi(j as i32)).collect();
    CMatrix::from_fn(n, n, |i, j| {
        corr[(i, j)].scale((powers[i] * powers[j]).sqrt())
    })
}

/// The covariance matrix of exactly two envelopes with equal power
/// `sigma_sq` and complex correlation coefficient `rho` — the restricted
/// setting of the paper's two-envelope references, used by the
/// `two-envelope-complex` registry entry.
pub fn two_envelope_complex(sigma_sq: f64, rho_re: f64, rho_im: f64) -> CMatrix {
    assert!(sigma_sq > 0.0, "power must be strictly positive");
    let rho = c64(rho_re, rho_im);
    CMatrix::from_rows(&[
        vec![c64(sigma_sq, 0.0), rho.scale(sigma_sq)],
        vec![rho.conj().scale(sigma_sq), c64(sigma_sq, 0.0)],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_linalg::{hermitian_eigen, is_positive_definite};

    #[test]
    fn exponential_correlation_is_positive_definite() {
        for n in [2usize, 4, 8, 16] {
            let k = exponential_correlation(n, 0.7);
            assert!(k.is_hermitian(1e-12));
            assert!(is_positive_definite(&k), "n = {n}");
        }
    }

    #[test]
    fn complex_exponential_is_hermitian_positive_definite() {
        let k = complex_exponential_correlation(6, 0.8, 0.9);
        assert!(k.is_hermitian(1e-12));
        assert!(is_positive_definite(&k));
        assert!(
            k[(0, 1)].im.abs() > 0.1,
            "must have genuinely complex entries"
        );
    }

    #[test]
    fn indefinite_correlation_has_a_negative_eigenvalue() {
        for n in [3usize, 5, 8] {
            let k = indefinite_correlation(n, 0.9);
            let e = hermitian_eigen(&k).unwrap();
            assert!(
                e.eigenvalues.last().copied().unwrap() < -1e-6,
                "n = {n}: {:?}",
                e.eigenvalues
            );
        }
    }

    #[test]
    fn near_singular_matrix_has_tiny_smallest_eigenvalue() {
        let eps = 1e-8;
        let k = near_singular_correlation(4, eps);
        let e = hermitian_eigen(&k).unwrap();
        let min = e.eigenvalues.last().copied().unwrap();
        assert!(min > 0.0 && min < 10.0 * eps, "min eigenvalue {min}");
    }

    #[test]
    fn unequal_power_profile_is_on_the_diagonal() {
        let k = unequal_power_exponential(4, 0.5, 0.5);
        assert!((k[(0, 0)].re - 1.0).abs() < 1e-12);
        assert!((k[(1, 1)].re - 0.5).abs() < 1e-12);
        assert!((k[(3, 3)].re - 0.125).abs() < 1e-12);
        assert!(is_positive_definite(&k));
    }

    #[test]
    fn two_envelope_complex_is_hermitian() {
        let k = two_envelope_complex(1.0, 0.5, 0.4);
        assert_eq!(k.rows(), 2);
        assert!(k.is_hermitian(1e-12));
        assert!((k[(0, 1)].im - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rho must lie")]
    fn invalid_rho_rejected() {
        let _ = exponential_correlation(3, 1.5);
    }
}

//! Generated scenario families: names resolved on demand instead of being
//! hand-written into [`crate::registry::REGISTRY`].
//!
//! The `network/` namespace exposes the WSN link fields of the
//! `corrfade-network` layer to every consumer that selects scenarios by name
//! (the `corrfade-serve` wire protocol, load generators, benches):
//!
//! * `network/grid16` — all 24 links of a 4×4 unit grid as one correlated
//!   scenario (the covariance is the spatial link-field covariance of
//!   [`corrfade_models::wsn`]),
//! * `network/grid16/link<K>` — the single link `K` (0 ≤ K < 24) as a
//!   one-envelope scenario with that link's mean-SNR power.
//!
//! The grammar is deliberately bounded: 25 resolvable names in total. Each
//! resolves at most once per process — the built [`Scenario`] (and the
//! strings/entry tables it borrows) is leaked into `'static` storage and
//! cached, which is what lets generated scenarios flow through the same
//! `&'static Scenario` plumbing as the hand-written catalog.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use corrfade_linalg::Precision;
use corrfade_models::wsn::{
    grid_positions, link_field_covariance, links_within_radius, LinkCorrelationModel,
    LogDistancePathLoss,
};

use crate::registry::PAPER_CHANNEL;
use crate::scenario::{CovarianceSpec, DopplerSettings, PowerProfile, Provenance, Scenario};

/// Grid side of the `network/grid16` family (16 nodes, 24 links).
const GRID_SIDE: usize = 4;
/// Link count of the 4×4 unit grid at connectivity radius 1.25.
const GRID16_LINKS: usize = 24;

/// Doppler settings of the generated network scenarios: a shorter block than
/// the paper's 4096 keeps per-link streaming cheap at network scale.
const NETWORK_DOPPLER: DopplerSettings = DopplerSettings {
    idft_size: 1024,
    normalized_doppler: 0.05,
    sigma_orig_sq: 0.5,
};

/// The spatial models pinned by the family definition. Kept in one place so
/// `network/grid16` and its per-link scenarios stay mutually consistent.
fn grid16_models() -> (LinkCorrelationModel, LogDistancePathLoss) {
    (
        LinkCorrelationModel::distance_only(1.0),
        LogDistancePathLoss {
            reference_snr_db: 15.0,
            reference_distance: 1.0,
            exponent: 3.0,
        },
    )
}

/// Row-major `(re, im)` entries of the full 24-link field covariance.
fn grid16_entries() -> Vec<(f64, f64)> {
    let positions = grid_positions(GRID_SIDE, GRID_SIDE, 1.0);
    let links = links_within_radius(&positions, 1.25);
    assert_eq!(links.len(), GRID16_LINKS, "grid16 link count drifted");
    let (correlation, path_loss) = grid16_models();
    let k = link_field_covariance(&positions, &links, &correlation, &path_loss)
        .expect("grid16 covariance must build");
    let n = k.rows();
    let mut entries = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            let z = k[(i, j)];
            entries.push((z.re, z.im));
        }
    }
    entries
}

fn build_grid16(name: &'static str) -> Scenario {
    let entries: &'static [(f64, f64)] = Box::leak(grid16_entries().into_boxed_slice());
    Scenario {
        name,
        title: "WSN link field: all 24 links of a 4x4 unit grid",
        provenance: Provenance::Extended("corrfade-network generated family"),
        description: "Spatially correlated link field of a 4x4 sensor grid with unit spacing: \
                      exponential midpoint-distance correlation (Dc = 1) and log-distance path \
                      loss (15 dB at 1 m, exponent 3). Generated, not hand-registered — the \
                      covariance is the corrfade_models::wsn link-field matrix.",
        channel: PAPER_CHANNEL,
        envelopes: GRID16_LINKS,
        powers: PowerProfile::Intrinsic,
        covariance: CovarianceSpec::Explicit { entries },
        doppler: NETWORK_DOPPLER,
        precision: Precision::F64,
    }
}

fn build_grid16_link(name: &'static str, link: usize) -> Scenario {
    let entries = grid16_entries();
    let diag = entries[link * GRID16_LINKS + link];
    let single: &'static [(f64, f64)] = Box::leak(vec![diag].into_boxed_slice());
    Scenario {
        name,
        title: "WSN link field: one link of the 4x4 unit grid",
        provenance: Provenance::Extended("corrfade-network generated family"),
        description: "A single link of the network/grid16 field as a one-envelope scenario: \
                      its Gaussian power is the link's path-loss mean SNR, so streaming it \
                      reproduces that link's marginal fading statistics.",
        channel: PAPER_CHANNEL,
        envelopes: 1,
        powers: PowerProfile::Intrinsic,
        covariance: CovarianceSpec::Explicit { entries: single },
        doppler: NETWORK_DOPPLER,
        precision: Precision::F64,
    }
}

/// Resolves a generated scenario name, leaking and caching it on first use.
/// Returns `None` for names outside the bounded `network/` grammar.
/// [`crate::lookup`] falls back to this automatically; it is public so
/// tooling can distinguish "generated" from "catalogued" names.
pub fn resolve(name: &str) -> Option<&'static Scenario> {
    if !name.starts_with("network/") {
        return None;
    }
    // Validate against the bounded grammar (rejecting empty, non-numeric,
    // zero-padded and out-of-range link indices) before touching the cache,
    // so invalid names never leak memory.
    let link_index = match name {
        "network/grid16" => None,
        _ => {
            let index = name.strip_prefix("network/grid16/link")?;
            if index.is_empty() || index.len() > 2 || !index.bytes().all(|b| b.is_ascii_digit()) {
                return None;
            }
            if index.len() == 2 && index.starts_with('0') {
                return None;
            }
            let link: usize = index.parse().ok()?;
            if link >= GRID16_LINKS {
                return None;
            }
            Some(link)
        }
    };

    static CACHE: OnceLock<Mutex<BTreeMap<String, &'static Scenario>>> = OnceLock::new();
    let mut cache = CACHE
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .expect("generated-scenario cache poisoned");
    if let Some(&scenario) = cache.get(name) {
        return Some(scenario);
    }
    let leaked_name: &'static str = Box::leak(name.to_string().into_boxed_str());
    let scenario: &'static Scenario = Box::leak(Box::new(match link_index {
        None => build_grid16(leaked_name),
        Some(link) => build_grid16_link(leaked_name, link),
    }));
    cache.insert(name.to_string(), scenario);
    Some(scenario)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid16_resolves_to_a_24_link_scenario() {
        let s = resolve("network/grid16").unwrap();
        assert_eq!(s.envelopes, 24);
        assert_eq!(s.name, "network/grid16");
        assert_eq!(s.doppler.idft_size, 1024);
        // Resolution is cached: same 'static pointer both times.
        let again = resolve("network/grid16").unwrap();
        assert!(core::ptr::eq(s, again));
    }

    #[test]
    fn per_link_scenarios_carry_the_field_diagonal() {
        let field = grid16_entries();
        for link in [0usize, 7, 23] {
            let s = resolve(&format!("network/grid16/link{link}")).unwrap();
            assert_eq!(s.envelopes, 1);
            let CovarianceSpec::Explicit { entries } = s.covariance else {
                panic!("expected explicit covariance");
            };
            assert_eq!(entries.len(), 1);
            assert_eq!(entries[0], field[link * GRID16_LINKS + link]);
        }
    }

    #[test]
    fn invalid_network_names_do_not_resolve() {
        for bad in [
            "network/",
            "network/grid16/",
            "network/grid16/link",
            "network/grid16/link24",
            "network/grid16/link007",
            "network/grid16/link03",
            "network/grid16/linkxy",
            "network/grid99",
            "network/grid16extra",
        ] {
            assert!(resolve(bad).is_none(), "`{bad}` should not resolve");
        }
        assert!(resolve("fig4a-spectral").is_none());
    }
}

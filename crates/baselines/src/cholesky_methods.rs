//! Baselines \[4\] and \[5\]: Cholesky-coloring generators.
//!
//! * **Beaulieu & Merani \[4\]** — generalizes the two-envelope method to
//!   `N ≥ 2` **equal-power** envelopes by Cholesky-factorizing the desired
//!   covariance matrix. Requires positive definiteness.
//! * **Natarajan, Nassar & Chandrasekhar \[5\]** — allows **unequal** powers,
//!   but (a) still relies on Cholesky factorization and (b) forces the
//!   covariances of the complex Gaussians to be **real** (Eq. 8 of that
//!   letter), which biases the result whenever the true covariances are
//!   complex (e.g. the paper's Eq. 22 scenario).
//!
//! Both are reproduced with their original restrictions so that the
//! experiment harness can chart exactly where they fail and by how much.

use corrfade::{ChannelStream, CorrfadeError};
use corrfade_linalg::{cholesky, CMatrix, Complex64, LinalgError, SampleBlock};
use corrfade_randn::{ComplexGaussian, RandomStream};

use crate::error::BaselineError;
use crate::streaming::{fill_snapshot_block, SNAPSHOT_STREAM_BLOCK_LEN};

fn validate_square_hermitian(k: &CMatrix, _method: &'static str) -> Result<(), BaselineError> {
    if !k.is_square() || k.rows() == 0 {
        return Err(BaselineError::Invalid {
            reason: "covariance matrix must be square and non-empty",
        });
    }
    if !k.is_hermitian(1e-9 * k.max_abs().max(1.0)) {
        return Err(BaselineError::Invalid {
            reason: "covariance matrix must be Hermitian",
        });
    }
    Ok(())
}

fn cholesky_or_error(k: &CMatrix, method: &'static str) -> Result<CMatrix, BaselineError> {
    match cholesky(k) {
        Ok(l) => Ok(l),
        Err(LinalgError::NotPositiveDefinite { pivot, .. }) => {
            Err(BaselineError::CholeskyFailed { method, pivot })
        }
        Err(_) => Err(BaselineError::Invalid {
            reason: "Cholesky factorization failed",
        }),
    }
}

/// The Beaulieu–Merani equal-power, N ≥ 2, Cholesky-based generator
/// (baseline \[4\]).
///
/// Implements [`ChannelStream`] by batching independent snapshots into
/// planar blocks.
#[derive(Debug, Clone)]
pub struct BeaulieuMeraniGenerator {
    coloring: CMatrix,
    rng: RandomStream,
    gaussian: ComplexGaussian,
    /// White/colored vector scratch for the streaming path.
    w: Vec<Complex64>,
    z: Vec<Complex64>,
}

impl BeaulieuMeraniGenerator {
    /// Builds the generator from the desired covariance matrix.
    ///
    /// # Errors
    /// Unequal powers and non-positive-definite covariances are rejected —
    /// the two restrictions the paper's Sec. 1 attributes to this method.
    pub fn new(k: &CMatrix, seed: u64) -> Result<Self, BaselineError> {
        const METHOD: &str = "Beaulieu-Merani [4]";
        validate_square_hermitian(k, METHOD)?;
        let p0 = k[(0, 0)].re;
        for i in 0..k.rows() {
            if (k[(i, i)].re - p0).abs() > 1e-9 * p0.abs().max(1.0) {
                return Err(BaselineError::UnequalPowersUnsupported { method: METHOD });
            }
        }
        let coloring = cholesky_or_error(k, METHOD)?;
        Ok(Self {
            coloring,
            rng: RandomStream::new(seed),
            gaussian: ComplexGaussian::default(),
            w: Vec::new(),
            z: Vec::new(),
        })
    }

    /// Number of envelopes.
    pub fn dimension(&self) -> usize {
        self.coloring.rows()
    }

    /// Draws one correlated complex Gaussian vector.
    pub fn sample_gaussian(&mut self) -> Vec<Complex64> {
        let w = self
            .gaussian
            .sample_vec(&mut self.rng, self.coloring.rows(), 1.0);
        self.coloring.matvec(&w)
    }

    /// Draws one vector of correlated Rayleigh envelopes.
    pub fn sample_envelopes(&mut self) -> Vec<f64> {
        self.sample_gaussian().iter().map(|z| z.abs()).collect()
    }

    /// Draws `count` snapshots.
    pub fn generate_snapshots(&mut self, count: usize) -> Vec<Vec<Complex64>> {
        (0..count).map(|_| self.sample_gaussian()).collect()
    }
}

impl ChannelStream for BeaulieuMeraniGenerator {
    fn dimension(&self) -> usize {
        self.coloring.rows()
    }

    fn block_len(&self) -> usize {
        SNAPSHOT_STREAM_BLOCK_LEN
    }

    fn next_block_into(&mut self, block: &mut SampleBlock) -> Result<(), CorrfadeError> {
        let Self {
            coloring,
            gaussian,
            rng,
            w,
            z,
        } = self;
        fill_snapshot_block(coloring, gaussian, rng, w, z, block);
        Ok(())
    }
}

/// The Natarajan–Nassar–Chandrasekhar generator (baseline \[5\]): arbitrary
/// powers, Cholesky coloring, covariances forced to be real.
///
/// Implements [`ChannelStream`] by batching independent snapshots into
/// planar blocks.
#[derive(Debug, Clone)]
pub struct NatarajanGenerator {
    coloring: CMatrix,
    target_after_realification: CMatrix,
    rng: RandomStream,
    gaussian: ComplexGaussian,
    /// White/colored vector scratch for the streaming path.
    w: Vec<Complex64>,
    z: Vec<Complex64>,
}

impl NatarajanGenerator {
    /// Builds the generator, **rejecting** covariance matrices with
    /// significant imaginary parts (the honest behaviour: the method cannot
    /// represent them).
    ///
    /// # Errors
    /// [`BaselineError::ComplexCovarianceUnsupported`] when any off-diagonal
    /// entry has `|Im| > 1e−9`, plus the usual Cholesky/validation failures.
    pub fn new(k: &CMatrix, seed: u64) -> Result<Self, BaselineError> {
        const METHOD: &str = "Natarajan [5]";
        validate_square_hermitian(k, METHOD)?;
        let max_imag = (0..k.rows())
            .flat_map(|i| (0..k.cols()).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j)
            .map(|(i, j)| k[(i, j)].im.abs())
            .fold(0.0f64, f64::max);
        if max_imag > 1e-9 * k.max_abs().max(1.0) {
            return Err(BaselineError::ComplexCovarianceUnsupported {
                method: METHOD,
                max_imaginary: max_imag,
            });
        }
        Self::new_lossy(k, seed)
    }

    /// Builds the generator the way ref. \[5\] actually behaves on complex
    /// covariances: the imaginary parts are silently dropped (`K ← Re(K)`)
    /// and generation proceeds. Used by the E10 experiment to quantify the
    /// resulting bias.
    ///
    /// # Errors
    /// Validation and Cholesky failures.
    pub fn new_lossy(k: &CMatrix, seed: u64) -> Result<Self, BaselineError> {
        const METHOD: &str = "Natarajan [5]";
        validate_square_hermitian(k, METHOD)?;
        let realified = k.real().complexify();
        let coloring = cholesky_or_error(&realified, METHOD)?;
        Ok(Self {
            coloring,
            target_after_realification: realified,
            rng: RandomStream::new(seed),
            gaussian: ComplexGaussian::default(),
            w: Vec::new(),
            z: Vec::new(),
        })
    }

    /// Number of envelopes.
    pub fn dimension(&self) -> usize {
        self.coloring.rows()
    }

    /// The covariance this generator actually targets after dropping the
    /// imaginary parts — compare against the original to measure the bias.
    pub fn realified_covariance(&self) -> &CMatrix {
        &self.target_after_realification
    }

    /// Draws one correlated complex Gaussian vector.
    pub fn sample_gaussian(&mut self) -> Vec<Complex64> {
        let w = self
            .gaussian
            .sample_vec(&mut self.rng, self.coloring.rows(), 1.0);
        self.coloring.matvec(&w)
    }

    /// Draws one vector of correlated Rayleigh envelopes.
    pub fn sample_envelopes(&mut self) -> Vec<f64> {
        self.sample_gaussian().iter().map(|z| z.abs()).collect()
    }

    /// Draws `count` snapshots.
    pub fn generate_snapshots(&mut self, count: usize) -> Vec<Vec<Complex64>> {
        (0..count).map(|_| self.sample_gaussian()).collect()
    }
}

impl ChannelStream for NatarajanGenerator {
    fn dimension(&self) -> usize {
        self.coloring.rows()
    }

    fn block_len(&self) -> usize {
        SNAPSHOT_STREAM_BLOCK_LEN
    }

    fn next_block_into(&mut self, block: &mut SampleBlock) -> Result<(), CorrfadeError> {
        let Self {
            coloring,
            gaussian,
            rng,
            w,
            z,
            ..
        } = self;
        fill_snapshot_block(coloring, gaussian, rng, w, z, block);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_linalg::c64;
    use corrfade_models::{paper_covariance_matrix_22, paper_covariance_matrix_23};
    use corrfade_stats::{relative_frobenius_error, sample_covariance};

    #[test]
    fn beaulieu_merani_reproduces_equal_power_pd_covariance() {
        let k = paper_covariance_matrix_23();
        let mut g = BeaulieuMeraniGenerator::new(&k, 2).unwrap();
        assert_eq!(g.dimension(), 3);
        let snaps = g.generate_snapshots(60_000);
        let khat = sample_covariance(&snaps);
        assert!(relative_frobenius_error(&khat, &k) < 0.04);
        assert_eq!(g.sample_envelopes().len(), 3);
    }

    #[test]
    fn beaulieu_merani_rejects_unequal_powers_and_singular_matrices() {
        let unequal = CMatrix::from_real_slice(2, 2, &[1.0, 0.1, 0.1, 3.0]);
        assert!(matches!(
            BeaulieuMeraniGenerator::new(&unequal, 1),
            Err(BaselineError::UnequalPowersUnsupported { .. })
        ));
        let singular = CMatrix::from_real_slice(2, 2, &[1.0, 1.0, 1.0, 1.0]);
        assert!(matches!(
            BeaulieuMeraniGenerator::new(&singular, 1),
            Err(BaselineError::CholeskyFailed { .. })
        ));
    }

    #[test]
    fn natarajan_supports_unequal_powers_with_real_covariances() {
        let k = CMatrix::from_real_slice(3, 3, &[2.0, 0.4, 0.1, 0.4, 1.0, 0.3, 0.1, 0.3, 0.5]);
        let mut g = NatarajanGenerator::new(&k, 4).unwrap();
        let snaps = g.generate_snapshots(60_000);
        let khat = sample_covariance(&snaps);
        assert!(relative_frobenius_error(&khat, &k) < 0.04);
    }

    #[test]
    fn natarajan_rejects_complex_covariances_honestly() {
        let k = paper_covariance_matrix_22();
        assert!(matches!(
            NatarajanGenerator::new(&k, 1),
            Err(BaselineError::ComplexCovarianceUnsupported { .. })
        ));
    }

    #[test]
    fn natarajan_lossy_mode_is_biased_on_complex_covariances() {
        // E10's quantitative point: dropping the imaginary parts realizes the
        // wrong covariance matrix.
        let k = paper_covariance_matrix_22();
        let mut g = NatarajanGenerator::new_lossy(&k, 7).unwrap();
        assert_eq!(g.dimension(), 3);
        let snaps = g.generate_snapshots(60_000);
        let khat = sample_covariance(&snaps);
        // It converges to Re(K) ...
        assert!(relative_frobenius_error(&khat, g.realified_covariance()) < 0.04);
        // ... which is far from the true target K.
        assert!(relative_frobenius_error(g.realified_covariance(), &k) > 0.2);
    }

    #[test]
    fn malformed_inputs_rejected() {
        let non_herm = CMatrix::from_rows(&[
            vec![c64(1.0, 0.0), c64(0.5, 0.0)],
            vec![c64(0.2, 0.0), c64(1.0, 0.0)],
        ]);
        assert!(BeaulieuMeraniGenerator::new(&non_herm, 1).is_err());
        assert!(NatarajanGenerator::new(&CMatrix::zeros(0, 0), 1).is_err());
    }
}

//! Baseline \[1\]: Salz & Winters' real-embedding generator.
//!
//! Salz & Winters (paper ref. \[1\]) generate `N` correlated complex Gaussian
//! fades by coloring a vector of `2N` **real** Gaussian variables with a
//! square root of the `2N × 2N` real covariance matrix
//! `[[Rxx, Rxy], [Ryx, Ryy]]` assembled from the four covariance blocks of
//! Eq. (1)–(2). The square root is taken through the symmetric
//! eigendecomposition.
//!
//! Shortcomings reproduced here (and called out in the paper's Sec. 1):
//!
//! * only **equal-power** envelopes are supported (the derivation assumes a
//!   common `σ²`),
//! * if the desired covariance matrix is **not positive semi-definite**, the
//!   square root would be complex and the method fails — this implementation
//!   reports [`BaselineError::NotPositiveSemidefinite`] instead of silently
//!   producing a wrong (complex) coloring matrix.

use corrfade::{ChannelStream, CorrfadeError};
use corrfade_linalg::{c64, symmetric_eigen, CMatrix, Complex64, RMatrix, SampleBlock};
use corrfade_randn::{NormalSampler, RandomStream};

use crate::error::BaselineError;
use crate::streaming::SNAPSHOT_STREAM_BLOCK_LEN;

/// Relative tolerance below which a negative eigenvalue of the real
/// embedding is attributed to round-off rather than genuine indefiniteness.
const PSD_TOL: f64 = 1e-10;

/// The Salz–Winters real-embedding generator (baseline \[1\]).
///
/// Implements [`ChannelStream`] by batching independent snapshots into
/// planar blocks, like the proposed single-instant generator.
#[derive(Debug, Clone)]
pub struct SalzWintersGenerator {
    n: usize,
    /// Real coloring matrix of the 2N×2N embedding.
    coloring: RMatrix,
    rng: RandomStream,
    sampler: NormalSampler,
    /// White `2N` real vector scratch for the streaming path.
    a: Vec<f64>,
    /// Colored `2N` real vector scratch for the streaming path.
    c: Vec<f64>,
}

impl SalzWintersGenerator {
    /// Builds the generator for a desired complex covariance matrix `K`
    /// (equal powers on the diagonal).
    ///
    /// # Errors
    /// * [`BaselineError::UnequalPowersUnsupported`] if the diagonal entries
    ///   differ (the method was derived for equal powers only),
    /// * [`BaselineError::NotPositiveSemidefinite`] if the embedding has a
    ///   negative eigenvalue (the real square root does not exist),
    /// * [`BaselineError::Invalid`] for malformed input.
    pub fn new(k: &CMatrix, seed: u64) -> Result<Self, BaselineError> {
        if !k.is_square() || k.rows() == 0 {
            return Err(BaselineError::Invalid {
                reason: "covariance matrix must be square and non-empty",
            });
        }
        if !k.is_hermitian(1e-9 * k.max_abs().max(1.0)) {
            return Err(BaselineError::Invalid {
                reason: "covariance matrix must be Hermitian",
            });
        }
        let n = k.rows();
        let p0 = k[(0, 0)].re;
        for i in 0..n {
            if (k[(i, i)].re - p0).abs() > 1e-9 * p0.abs().max(1.0) {
                return Err(BaselineError::UnequalPowersUnsupported {
                    method: "Salz-Winters [1]",
                });
            }
        }

        // 2N×2N real covariance of (x_1..x_N, y_1..y_N). For a circularly
        // symmetric complex Gaussian vector with covariance K = A + iB:
        // Cov(x,x) = Cov(y,y) = A/2, Cov(x,y) = -B/2, Cov(y,x) = B/2.
        let embedding = k.real_embedding().scale(0.5);
        let eig = symmetric_eigen(&embedding).map_err(|_| BaselineError::Invalid {
            reason: "eigendecomposition of the real embedding failed",
        })?;
        let lambda_max = eig.eigenvalues.first().copied().unwrap_or(0.0).max(1e-300);
        if eig.eigenvalues.iter().any(|&l| l < -PSD_TOL * lambda_max) {
            return Err(BaselineError::NotPositiveSemidefinite {
                method: "Salz-Winters [1]",
                min_eigenvalue: *eig.eigenvalues.last().expect("non-empty eigenvalue list"),
            });
        }

        // Real coloring matrix: V·√Λ (clamping round-off negatives to zero).
        let dim = 2 * n;
        let mut coloring = RMatrix::zeros(dim, dim);
        for i in 0..dim {
            for j in 0..dim {
                coloring[(i, j)] = eig.eigenvectors[(i, j)] * eig.eigenvalues[j].max(0.0).sqrt();
            }
        }

        Ok(Self {
            n,
            coloring,
            rng: RandomStream::new(seed),
            sampler: NormalSampler::default(),
            a: Vec::new(),
            c: Vec::new(),
        })
    }

    /// Number of envelopes.
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// Draws one real `2N` colored embedding vector into the internal
    /// scratch — the allocation-free primitive behind both the legacy
    /// sampling methods and the streaming path.
    fn draw_embedding(&mut self) {
        let dim = 2 * self.n;
        self.a.resize(dim, 0.0);
        self.c.resize(dim, 0.0);
        let Self {
            rng, sampler, a, ..
        } = self;
        sampler.fill(rng, a, 0.0, 1.0);
        self.coloring.matvec_into(&self.a, &mut self.c);
    }

    /// Draws one correlated complex Gaussian vector.
    pub fn sample_gaussian(&mut self) -> Vec<Complex64> {
        self.draw_embedding();
        (0..self.n)
            .map(|j| c64(self.c[j], self.c[j + self.n]))
            .collect()
    }

    /// Draws one vector of correlated Rayleigh envelopes.
    pub fn sample_envelopes(&mut self) -> Vec<f64> {
        self.sample_gaussian().iter().map(|z| z.abs()).collect()
    }

    /// Draws `count` snapshots of the complex Gaussian vector.
    pub fn generate_snapshots(&mut self, count: usize) -> Vec<Vec<Complex64>> {
        (0..count).map(|_| self.sample_gaussian()).collect()
    }
}

impl ChannelStream for SalzWintersGenerator {
    fn dimension(&self) -> usize {
        self.n
    }

    fn block_len(&self) -> usize {
        SNAPSHOT_STREAM_BLOCK_LEN
    }

    fn next_block_into(&mut self, block: &mut SampleBlock) -> Result<(), CorrfadeError> {
        let n = self.n;
        let m = SNAPSHOT_STREAM_BLOCK_LEN;
        block.resize(n, m);
        for l in 0..m {
            self.draw_embedding();
            let data = block.as_mut_slice();
            for j in 0..n {
                data[j * m + l] = c64(self.c[j], self.c[j + self.n]);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_models::{paper_covariance_matrix_22, paper_covariance_matrix_23};
    use corrfade_stats::{relative_frobenius_error, sample_covariance};

    #[test]
    fn reproduces_equal_power_psd_covariance() {
        for k in [paper_covariance_matrix_22(), paper_covariance_matrix_23()] {
            let mut g = SalzWintersGenerator::new(&k, 5).unwrap();
            assert_eq!(g.dimension(), 3);
            let snaps = g.generate_snapshots(60_000);
            let khat = sample_covariance(&snaps);
            let err = relative_frobenius_error(&khat, &k);
            assert!(err < 0.04, "relative covariance error {err}");
        }
    }

    #[test]
    fn envelopes_are_rayleigh_distributed() {
        let k = paper_covariance_matrix_23();
        let mut g = SalzWintersGenerator::new(&k, 9).unwrap();
        let env: Vec<f64> = (0..20_000).map(|_| g.sample_envelopes()[0]).collect();
        let sigma = corrfade_stats::rayleigh_scale(1.0);
        let t = corrfade_stats::ks_test(&env, |r| corrfade_specfun::rayleigh_cdf(r, sigma));
        assert!(t.passes(0.001), "{t:?}");
    }

    #[test]
    fn rejects_unequal_powers() {
        let k = CMatrix::from_real_slice(2, 2, &[1.0, 0.2, 0.2, 2.0]);
        assert!(matches!(
            SalzWintersGenerator::new(&k, 1),
            Err(BaselineError::UnequalPowersUnsupported { .. })
        ));
    }

    #[test]
    fn rejects_non_psd_covariance() {
        // The failure mode the paper highlights: a non-PSD target makes the
        // real square root complex, so the method cannot proceed.
        let k = CMatrix::from_real_slice(3, 3, &[1.0, 0.9, -0.9, 0.9, 1.0, 0.9, -0.9, 0.9, 1.0]);
        assert!(matches!(
            SalzWintersGenerator::new(&k, 1),
            Err(BaselineError::NotPositiveSemidefinite { .. })
        ));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(SalzWintersGenerator::new(&CMatrix::zeros(2, 3), 1).is_err());
        let non_herm = CMatrix::from_rows(&[
            vec![c64(1.0, 0.0), c64(0.5, 0.0)],
            vec![c64(0.1, 0.0), c64(1.0, 0.0)],
        ]);
        assert!(SalzWintersGenerator::new(&non_herm, 1).is_err());
    }

    #[test]
    fn handles_singular_psd_covariance() {
        // Fully correlated equal-power pair — PSD but singular; the
        // eigen-based square root still exists.
        let k = CMatrix::from_real_slice(2, 2, &[1.0, 1.0, 1.0, 1.0]);
        let mut g = SalzWintersGenerator::new(&k, 3).unwrap();
        let s = g.sample_gaussian();
        assert!(
            (s[0] - s[1]).abs() < 1e-9,
            "fully correlated fades must coincide"
        );
    }
}

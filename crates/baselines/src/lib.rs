//! # corrfade-baselines
//!
//! Faithful reproductions of the conventional correlated-Rayleigh generation
//! methods the paper compares against (its references \[1\]–\[7\]), **including
//! their original restrictions and flaws**, so the experiment harness can
//! chart where each one fails and quantify the advantage of the proposed
//! algorithm:
//!
//! | Baseline | Module | Restrictions reproduced |
//! |----------|--------|------------------------|
//! | Salz & Winters \[1\] | [`salz_winters_gen`] | equal powers; covariance must be PSD |
//! | Ertel & Reed \[2\] | [`two_envelope`] | N = 2, equal powers |
//! | Beaulieu \[3\] | [`two_envelope`] | N = 2, equal powers, real covariance |
//! | Beaulieu & Merani \[4\] | [`cholesky_methods`] | equal powers, Cholesky (PD required) |
//! | Natarajan et al. \[5\] | [`cholesky_methods`] | Cholesky (PD required), covariances forced real |
//! | Sorooshyari & Daut \[6\] | [`sorooshyari_daut`] | equal powers, ε-PSD forcing + Cholesky, unit-variance Doppler combination |
//! | Young & Beaulieu \[7\] | re-exported from `corrfade-dsp` | single envelope only (no cross-correlation) |
//!
//! The proposed algorithm itself lives in the `corrfade` crate.
//!
//! The constructible `N ≥ 2` baselines (\[1\], \[4\], \[5\], \[6\] in both
//! modes) also implement [`corrfade::ChannelStream`], writing planar
//! [`corrfade::SampleBlock`] buffers like the proposed generators, so the
//! E8/E10 ablations compare every method through one streaming interface
//! ([`BaselineMethod::try_stream`]).

#![warn(missing_docs)]

pub mod cholesky_methods;
pub mod error;
pub mod salz_winters_gen;
pub mod sorooshyari_daut;
mod streaming;
pub mod two_envelope;

pub use cholesky_methods::{BeaulieuMeraniGenerator, NatarajanGenerator};
pub use error::BaselineError;
pub use salz_winters_gen::SalzWintersGenerator;
pub use sorooshyari_daut::{
    epsilon_psd_forcing, SorooshyariDautGenerator, SorooshyariDautRealtimeGenerator,
    DEFAULT_EPSILON,
};
pub use two_envelope::{two_envelope_covariance, BeaulieuGenerator, ErtelReedGenerator};

// Baseline [7] — the stand-alone Young–Beaulieu IDFT generator for a single
// envelope — is the substrate the real-time algorithms are built on; it lives
// in `corrfade-dsp` and is re-exported here under its baseline name.
pub use corrfade_dsp::IdftRayleighGenerator as YoungBeaulieuGenerator;

/// Identifies one of the reproduced conventional methods (used by the
/// experiment harness to build the E10 shortcoming matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineMethod {
    /// Salz & Winters \[1\].
    SalzWinters,
    /// Ertel & Reed \[2\].
    ErtelReed,
    /// Beaulieu \[3\].
    Beaulieu,
    /// Beaulieu & Merani \[4\].
    BeaulieuMerani,
    /// Natarajan, Nassar & Chandrasekhar \[5\].
    Natarajan,
    /// Sorooshyari & Daut \[6\].
    SorooshyariDaut,
}

impl BaselineMethod {
    /// All reproduced methods, in citation order.
    pub const ALL: [BaselineMethod; 6] = [
        BaselineMethod::SalzWinters,
        BaselineMethod::ErtelReed,
        BaselineMethod::Beaulieu,
        BaselineMethod::BeaulieuMerani,
        BaselineMethod::Natarajan,
        BaselineMethod::SorooshyariDaut,
    ];

    /// Human-readable name with the paper's reference number.
    pub fn name(self) -> &'static str {
        match self {
            BaselineMethod::SalzWinters => "Salz-Winters [1]",
            BaselineMethod::ErtelReed => "Ertel-Reed [2]",
            BaselineMethod::Beaulieu => "Beaulieu [3]",
            BaselineMethod::BeaulieuMerani => "Beaulieu-Merani [4]",
            BaselineMethod::Natarajan => "Natarajan [5]",
            BaselineMethod::SorooshyariDaut => "Sorooshyari-Daut [6]",
        }
    }

    /// Attempts to build the method for the given covariance matrix and draw
    /// a single snapshot, returning the failure if the method cannot handle
    /// the scenario. This is the primitive behind the E10 shortcoming
    /// matrix.
    pub fn try_generate(
        self,
        k: &corrfade_linalg::CMatrix,
        seed: u64,
    ) -> Result<Vec<corrfade_linalg::Complex64>, BaselineError> {
        match self {
            BaselineMethod::SalzWinters => {
                SalzWintersGenerator::new(k, seed).map(|mut g| g.sample_gaussian())
            }
            BaselineMethod::ErtelReed => {
                ErtelReedGenerator::new(k, seed).map(|mut g| g.sample_gaussian())
            }
            BaselineMethod::Beaulieu => {
                BeaulieuGenerator::new(k, seed).map(|mut g| g.sample_gaussian())
            }
            BaselineMethod::BeaulieuMerani => {
                BeaulieuMeraniGenerator::new(k, seed).map(|mut g| g.sample_gaussian())
            }
            BaselineMethod::Natarajan => {
                NatarajanGenerator::new(k, seed).map(|mut g| g.sample_gaussian())
            }
            BaselineMethod::SorooshyariDaut => {
                SorooshyariDautGenerator::new(k, seed).map(|mut g| g.sample_gaussian())
            }
        }
    }

    /// Attempts to build the method as a boxed
    /// [`corrfade::ChannelStream`] for the given covariance matrix, so the
    /// E10 shortcoming matrix (and any service layer) can drive every
    /// constructible baseline through the same streaming interface as the
    /// proposed algorithm.
    ///
    /// # Errors
    /// Construction failures (the method cannot handle the scenario), or
    /// [`BaselineError::StreamingUnsupported`] for the two-envelope methods
    /// \[2\]/\[3\], whose historical formulations are reproduced
    /// sample-by-sample only.
    pub fn try_stream(
        self,
        k: &corrfade_linalg::CMatrix,
        seed: u64,
    ) -> Result<Box<dyn corrfade::ChannelStream>, BaselineError> {
        match self {
            BaselineMethod::SalzWinters => SalzWintersGenerator::new(k, seed)
                .map(|g| Box::new(g) as Box<dyn corrfade::ChannelStream>),
            BaselineMethod::BeaulieuMerani => BeaulieuMeraniGenerator::new(k, seed)
                .map(|g| Box::new(g) as Box<dyn corrfade::ChannelStream>),
            BaselineMethod::Natarajan => NatarajanGenerator::new(k, seed)
                .map(|g| Box::new(g) as Box<dyn corrfade::ChannelStream>),
            BaselineMethod::SorooshyariDaut => SorooshyariDautGenerator::new(k, seed)
                .map(|g| Box::new(g) as Box<dyn corrfade::ChannelStream>),
            BaselineMethod::ErtelReed | BaselineMethod::Beaulieu => {
                Err(BaselineError::StreamingUnsupported {
                    method: self.name(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_linalg::CMatrix;
    use corrfade_models::{paper_covariance_matrix_22, paper_covariance_matrix_23};

    #[test]
    fn shortcoming_matrix_on_paper_scenarios() {
        // Spatial scenario (Eq. 23): real, PD, equal powers, N = 3 — every
        // N≥3 method works; the N=2-only ones fail.
        let k23 = paper_covariance_matrix_23();
        assert!(BaselineMethod::SalzWinters.try_generate(&k23, 1).is_ok());
        assert!(BaselineMethod::BeaulieuMerani.try_generate(&k23, 1).is_ok());
        assert!(BaselineMethod::Natarajan.try_generate(&k23, 1).is_ok());
        assert!(BaselineMethod::SorooshyariDaut
            .try_generate(&k23, 1)
            .is_ok());
        assert!(BaselineMethod::ErtelReed.try_generate(&k23, 1).is_err());
        assert!(BaselineMethod::Beaulieu.try_generate(&k23, 1).is_err());

        // Spectral scenario (Eq. 22): complex covariances — Natarajan's
        // real-covariance restriction bites.
        let k22 = paper_covariance_matrix_22();
        assert!(matches!(
            BaselineMethod::Natarajan.try_generate(&k22, 1),
            Err(BaselineError::ComplexCovarianceUnsupported { .. })
        ));
        assert!(BaselineMethod::SalzWinters.try_generate(&k22, 1).is_ok());

        // Unequal powers: only the proposed algorithm and (for real
        // covariances) Natarajan survive.
        let unequal =
            CMatrix::from_real_slice(3, 3, &[2.0, 0.3, 0.1, 0.3, 1.0, 0.2, 0.1, 0.2, 0.5]);
        assert!(BaselineMethod::SalzWinters
            .try_generate(&unequal, 1)
            .is_err());
        assert!(BaselineMethod::BeaulieuMerani
            .try_generate(&unequal, 1)
            .is_err());
        assert!(BaselineMethod::SorooshyariDaut
            .try_generate(&unequal, 1)
            .is_err());
        assert!(BaselineMethod::Natarajan.try_generate(&unequal, 1).is_ok());

        // Non-PSD target: the Cholesky- and PSD-requiring methods fail;
        // Sorooshyari-Daut survives through its epsilon forcing.
        let indefinite =
            CMatrix::from_real_slice(3, 3, &[1.0, 0.9, -0.9, 0.9, 1.0, 0.9, -0.9, 0.9, 1.0]);
        assert!(BaselineMethod::SalzWinters
            .try_generate(&indefinite, 1)
            .is_err());
        assert!(BaselineMethod::BeaulieuMerani
            .try_generate(&indefinite, 1)
            .is_err());
        assert!(BaselineMethod::SorooshyariDaut
            .try_generate(&indefinite, 1)
            .is_ok());
    }

    #[test]
    fn streaming_baselines_match_their_legacy_sampling_bit_for_bit() {
        use corrfade::{ChannelStream, SampleBlock};
        let k = paper_covariance_matrix_23();
        let mut block = SampleBlock::empty();
        for method in [
            BaselineMethod::SalzWinters,
            BaselineMethod::BeaulieuMerani,
            BaselineMethod::Natarajan,
            BaselineMethod::SorooshyariDaut,
        ] {
            let mut stream = method.try_stream(&k, 42).unwrap();
            stream.next_block_into(&mut block).unwrap();
            let m = block.samples();
            assert_eq!(block.envelopes(), 3, "{}", method.name());
            // The same seed through the legacy per-snapshot API must produce
            // the identical sample sequence.
            let legacy_snaps = match method {
                BaselineMethod::SalzWinters => SalzWintersGenerator::new(&k, 42)
                    .unwrap()
                    .generate_snapshots(m),
                BaselineMethod::BeaulieuMerani => BeaulieuMeraniGenerator::new(&k, 42)
                    .unwrap()
                    .generate_snapshots(m),
                BaselineMethod::Natarajan => NatarajanGenerator::new(&k, 42)
                    .unwrap()
                    .generate_snapshots(m),
                BaselineMethod::SorooshyariDaut => SorooshyariDautGenerator::new(&k, 42)
                    .unwrap()
                    .generate_snapshots(m),
                _ => unreachable!(),
            };
            for (l, snap) in legacy_snaps.iter().enumerate() {
                for (j, &expected) in snap.iter().enumerate() {
                    assert_eq!(block.path(j)[l], expected, "{} sample {l}", method.name());
                }
            }
        }
        // The two-envelope methods report a typed streaming gap.
        let k2 = two_envelope_covariance(1.0, corrfade_linalg::c64(0.5, 0.0));
        assert!(matches!(
            BaselineMethod::ErtelReed.try_stream(&k2, 1),
            Err(BaselineError::StreamingUnsupported { .. })
        ));
    }

    #[test]
    fn names_are_unique_and_cite_the_reference() {
        let mut names: Vec<&str> = BaselineMethod::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BaselineMethod::ALL.len());
        for m in BaselineMethod::ALL {
            assert!(m.name().contains('['));
        }
    }
}

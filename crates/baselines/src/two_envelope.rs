//! Baselines \[2\] and \[3\]: the two-envelope, equal-power generators of
//! Ertel & Reed and of Beaulieu.
//!
//! Both papers predate the general-N methods and generate exactly **two**
//! equal-power correlated Rayleigh envelopes:
//!
//! * **Ertel–Reed \[2\]** — draws an independent pair `(u₁, u₂)` of unit
//!   complex Gaussians and forms `z₁ = u₁`,
//!   `z₂ = ρ*·u₁ + √(1 − |ρ|²)·u₂`, where `ρ` is the desired complex
//!   correlation coefficient of the underlying Gaussians.
//! * **Beaulieu \[3\]** — an equivalent construction restricted to a **real**
//!   correlation coefficient (the in-phase/quadrature rotation used in that
//!   letter cannot produce a complex cross-covariance).
//!
//! Their shortcomings, as listed in the paper's Sec. 1, are reproduced
//! faithfully: `N = 2` only, equal power only, and (for \[3\]) real
//! correlations only.

use corrfade_linalg::{c64, CMatrix, Complex64};
use corrfade_randn::{ComplexGaussian, RandomStream};

use crate::error::BaselineError;

/// Checks the target covariance and extracts `(σ², ρ)` for a two-envelope
/// equal-power generator.
fn extract_two_envelope_params(
    k: &CMatrix,
    method: &'static str,
) -> Result<(f64, Complex64), BaselineError> {
    if !k.is_square() || k.rows() == 0 {
        return Err(BaselineError::Invalid {
            reason: "covariance matrix must be square and non-empty",
        });
    }
    if k.rows() != 2 {
        return Err(BaselineError::UnsupportedDimension {
            method,
            supported: 2,
            requested: k.rows(),
        });
    }
    if !k.is_hermitian(1e-9 * k.max_abs().max(1.0)) {
        return Err(BaselineError::Invalid {
            reason: "covariance matrix must be Hermitian",
        });
    }
    let p0 = k[(0, 0)].re;
    let p1 = k[(1, 1)].re;
    if p0 <= 0.0 || p1 <= 0.0 {
        return Err(BaselineError::Invalid {
            reason: "powers must be strictly positive",
        });
    }
    if (p0 - p1).abs() > 1e-9 * p0.max(1.0) {
        return Err(BaselineError::UnequalPowersUnsupported { method });
    }
    let rho = k[(0, 1)].unscale(p0);
    if rho.abs() > 1.0 + 1e-9 {
        return Err(BaselineError::NotPositiveSemidefinite {
            method,
            min_eigenvalue: p0 * (1.0 - rho.abs()),
        });
    }
    Ok((p0, rho))
}

/// The Ertel–Reed two-envelope generator (baseline \[2\]).
#[derive(Debug, Clone)]
pub struct ErtelReedGenerator {
    sigma_sq: f64,
    rho: Complex64,
    rng: RandomStream,
    gaussian: ComplexGaussian,
}

impl ErtelReedGenerator {
    /// Builds the generator from the desired 2×2 covariance matrix of the
    /// complex Gaussians.
    ///
    /// # Errors
    /// See [`BaselineError`]; N ≠ 2 and unequal powers are rejected.
    pub fn new(k: &CMatrix, seed: u64) -> Result<Self, BaselineError> {
        let (sigma_sq, rho) = extract_two_envelope_params(k, "Ertel-Reed [2]")?;
        Ok(Self {
            sigma_sq,
            rho,
            rng: RandomStream::new(seed),
            gaussian: ComplexGaussian::default(),
        })
    }

    /// The complex correlation coefficient in use.
    pub fn rho(&self) -> Complex64 {
        self.rho
    }

    /// Draws one correlated complex Gaussian pair.
    pub fn sample_gaussian(&mut self) -> Vec<Complex64> {
        let u1 = self.gaussian.sample(&mut self.rng, self.sigma_sq);
        let u2 = self.gaussian.sample(&mut self.rng, self.sigma_sq);
        // z2 = conj(rho)·u1 + sqrt(1-|rho|²)·u2 so that E[z1·conj(z2)] = rho·σ².
        let z2 = self.rho.conj() * u1 + u2.scale((1.0 - self.rho.norm_sqr()).max(0.0).sqrt());
        vec![u1, z2]
    }

    /// Draws one pair of correlated Rayleigh envelopes.
    pub fn sample_envelopes(&mut self) -> Vec<f64> {
        self.sample_gaussian().iter().map(|z| z.abs()).collect()
    }

    /// Draws `count` snapshots.
    pub fn generate_snapshots(&mut self, count: usize) -> Vec<Vec<Complex64>> {
        (0..count).map(|_| self.sample_gaussian()).collect()
    }
}

/// The Beaulieu two-envelope generator (baseline \[3\]), which additionally
/// requires the cross-covariance to be **real**.
#[derive(Debug, Clone)]
pub struct BeaulieuGenerator {
    inner: ErtelReedGenerator,
}

impl BeaulieuGenerator {
    /// Builds the generator from the desired 2×2 covariance matrix.
    ///
    /// # Errors
    /// In addition to the [`ErtelReedGenerator`] restrictions, a complex
    /// cross-covariance is rejected with
    /// [`BaselineError::ComplexCovarianceUnsupported`].
    pub fn new(k: &CMatrix, seed: u64) -> Result<Self, BaselineError> {
        let (_, rho) = extract_two_envelope_params(k, "Beaulieu [3]")?;
        if rho.im.abs() > 1e-9 {
            return Err(BaselineError::ComplexCovarianceUnsupported {
                method: "Beaulieu [3]",
                max_imaginary: rho.im.abs(),
            });
        }
        Ok(Self {
            inner: ErtelReedGenerator::new(k, seed)?,
        })
    }

    /// Draws one correlated complex Gaussian pair.
    pub fn sample_gaussian(&mut self) -> Vec<Complex64> {
        self.inner.sample_gaussian()
    }

    /// Draws one pair of correlated Rayleigh envelopes.
    pub fn sample_envelopes(&mut self) -> Vec<f64> {
        self.inner.sample_envelopes()
    }

    /// Draws `count` snapshots.
    pub fn generate_snapshots(&mut self, count: usize) -> Vec<Vec<Complex64>> {
        self.inner.generate_snapshots(count)
    }
}

/// Builds the 2×2 equal-power covariance matrix with complex correlation
/// coefficient `rho` — a convenience for tests and benches.
pub fn two_envelope_covariance(sigma_sq: f64, rho: Complex64) -> CMatrix {
    CMatrix::from_rows(&[
        vec![c64(sigma_sq, 0.0), rho.scale(sigma_sq)],
        vec![rho.conj().scale(sigma_sq), c64(sigma_sq, 0.0)],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_stats::{relative_frobenius_error, sample_covariance};

    #[test]
    fn ertel_reed_achieves_the_desired_complex_correlation() {
        let rho = c64(0.5, 0.3);
        let k = two_envelope_covariance(1.0, rho);
        let mut g = ErtelReedGenerator::new(&k, 11).unwrap();
        assert!(g.rho().approx_eq(rho, 1e-12));
        let snaps = g.generate_snapshots(80_000);
        let khat = sample_covariance(&snaps);
        assert!(relative_frobenius_error(&khat, &k) < 0.03);
    }

    #[test]
    fn ertel_reed_envelopes_are_rayleigh() {
        let k = two_envelope_covariance(2.0, c64(0.7, 0.0));
        let mut g = ErtelReedGenerator::new(&k, 3).unwrap();
        let env: Vec<f64> = (0..20_000).map(|_| g.sample_envelopes()[1]).collect();
        let sigma = corrfade_stats::rayleigh_scale(2.0);
        let t = corrfade_stats::ks_test(&env, |r| corrfade_specfun::rayleigh_cdf(r, sigma));
        assert!(t.passes(0.001), "{t:?}");
    }

    #[test]
    fn ertel_reed_rejects_more_than_two_envelopes() {
        let k = corrfade_models::paper_covariance_matrix_22();
        assert!(matches!(
            ErtelReedGenerator::new(&k, 1),
            Err(BaselineError::UnsupportedDimension {
                supported: 2,
                requested: 3,
                ..
            })
        ));
    }

    #[test]
    fn ertel_reed_rejects_unequal_powers() {
        let k = CMatrix::from_real_slice(2, 2, &[1.0, 0.3, 0.3, 2.0]);
        assert!(matches!(
            ErtelReedGenerator::new(&k, 1),
            Err(BaselineError::UnequalPowersUnsupported { .. })
        ));
    }

    #[test]
    fn ertel_reed_rejects_infeasible_correlation() {
        let k = two_envelope_covariance(1.0, c64(0.9, 0.9));
        assert!(matches!(
            ErtelReedGenerator::new(&k, 1),
            Err(BaselineError::NotPositiveSemidefinite { .. })
        ));
    }

    #[test]
    fn beaulieu_accepts_real_and_rejects_complex_correlation() {
        let real_k = two_envelope_covariance(1.0, c64(0.6, 0.0));
        let mut g = BeaulieuGenerator::new(&real_k, 5).unwrap();
        let snaps = g.generate_snapshots(60_000);
        let khat = sample_covariance(&snaps);
        assert!(relative_frobenius_error(&khat, &real_k) < 0.03);
        assert_eq!(g.sample_envelopes().len(), 2);

        let complex_k = two_envelope_covariance(1.0, c64(0.4, 0.4));
        assert!(matches!(
            BeaulieuGenerator::new(&complex_k, 5),
            Err(BaselineError::ComplexCovarianceUnsupported { .. })
        ));
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(ErtelReedGenerator::new(&CMatrix::zeros(0, 0), 1).is_err());
        let non_herm = CMatrix::from_rows(&[
            vec![c64(1.0, 0.0), c64(0.5, 0.0)],
            vec![c64(0.2, 0.0), c64(1.0, 0.0)],
        ]);
        assert!(ErtelReedGenerator::new(&non_herm, 1).is_err());
        let bad_power = CMatrix::from_real_slice(2, 2, &[0.0, 0.0, 0.0, 0.0]);
        assert!(ErtelReedGenerator::new(&bad_power, 1).is_err());
    }
}

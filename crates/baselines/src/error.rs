//! Error type shared by the baseline (conventional) generators.
//!
//! Each variant corresponds to one of the shortcomings the paper's Sec. 1
//! attributes to the conventional methods; the experiment harness (E10)
//! tabulates which method fails on which scenario by matching on these
//! variants.

use core::fmt;

/// Failure modes of the conventional correlated-Rayleigh generators.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// The method only supports equal-power envelopes (refs \[1\], \[2\], \[3\],
    /// \[4\], \[6\]).
    UnequalPowersUnsupported {
        /// Human-readable method name.
        method: &'static str,
    },
    /// The method only supports a fixed number of envelopes (refs \[2\], \[3\]
    /// support N = 2 only).
    UnsupportedDimension {
        /// Human-readable method name.
        method: &'static str,
        /// The dimension the method supports.
        supported: usize,
        /// The dimension requested.
        requested: usize,
    },
    /// The method requires a positive-definite covariance matrix and its
    /// Cholesky factorization failed (refs \[4\], \[5\], and \[6\] when the
    /// ε-forced matrix is still numerically singular).
    CholeskyFailed {
        /// Human-readable method name.
        method: &'static str,
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// The method requires a positive semi-definite covariance matrix
    /// (ref. \[1\]).
    NotPositiveSemidefinite {
        /// Human-readable method name.
        method: &'static str,
        /// The most negative eigenvalue encountered.
        min_eigenvalue: f64,
    },
    /// The method cannot represent complex covariances (ref. \[5\] forces them
    /// to be real). This is reported when the requested covariance has a
    /// significant imaginary part so the caller knows the result will be
    /// biased.
    ComplexCovarianceUnsupported {
        /// Human-readable method name.
        method: &'static str,
        /// Largest imaginary magnitude found among the off-diagonal entries.
        max_imaginary: f64,
    },
    /// The method has no block-streaming (`ChannelStream`) reproduction
    /// (the two-envelope formulations of refs \[2\]/\[3\] are reproduced
    /// sample-by-sample only).
    StreamingUnsupported {
        /// Human-readable method name.
        method: &'static str,
    },
    /// Any other invalid configuration.
    Invalid {
        /// Description of the problem.
        reason: &'static str,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::UnequalPowersUnsupported { method } => {
                write!(f, "{method} only supports equal-power envelopes")
            }
            BaselineError::UnsupportedDimension {
                method,
                supported,
                requested,
            } => write!(
                f,
                "{method} only supports N = {supported} envelopes (requested {requested})"
            ),
            BaselineError::CholeskyFailed { method, pivot } => write!(
                f,
                "{method}: Cholesky factorization failed at pivot {pivot} (covariance not positive definite)"
            ),
            BaselineError::NotPositiveSemidefinite {
                method,
                min_eigenvalue,
            } => write!(
                f,
                "{method}: covariance is not positive semi-definite (min eigenvalue {min_eigenvalue:.3e})"
            ),
            BaselineError::ComplexCovarianceUnsupported { method, max_imaginary } => write!(
                f,
                "{method} forces covariances to be real but the target has imaginary parts up to {max_imaginary:.3e}"
            ),
            BaselineError::StreamingUnsupported { method } => {
                write!(f, "{method} has no block-streaming reproduction")
            }
            BaselineError::Invalid { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for BaselineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_method() {
        let e = BaselineError::UnequalPowersUnsupported {
            method: "Ertel-Reed [2]",
        };
        assert!(e.to_string().contains("Ertel-Reed"));
        let e = BaselineError::UnsupportedDimension {
            method: "Beaulieu [3]",
            supported: 2,
            requested: 5,
        };
        assert!(e.to_string().contains("N = 2"));
        let e = BaselineError::CholeskyFailed {
            method: "Natarajan [5]",
            pivot: 3,
        };
        assert!(e.to_string().contains("pivot 3"));
        let e = BaselineError::NotPositiveSemidefinite {
            method: "Salz-Winters [1]",
            min_eigenvalue: -0.2,
        };
        assert!(e.to_string().contains("semi-definite"));
        let e = BaselineError::ComplexCovarianceUnsupported {
            method: "Natarajan [5]",
            max_imaginary: 0.4,
        };
        assert!(e.to_string().contains("imaginary"));
        let e = BaselineError::StreamingUnsupported {
            method: "Ertel-Reed [2]",
        };
        assert!(e.to_string().contains("streaming"));
        let e = BaselineError::Invalid { reason: "empty" };
        assert!(e.to_string().contains("empty"));
    }
}

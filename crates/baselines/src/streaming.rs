//! Shared plumbing for the baselines' [`corrfade::ChannelStream`]
//! implementations.
//!
//! The single-instant baselines (\[1\], \[4\], \[5\], \[6\]) all color a
//! white complex Gaussian vector with a precomputed matrix; their streaming
//! implementations batch [`SNAPSHOT_STREAM_BLOCK_LEN`] independent snapshots
//! into one planar block using only generator-owned scratch, so the E10
//! shortcoming matrix can drive every method through the interface of the
//! proposed algorithm.

use corrfade_linalg::{CMatrix, Complex64, SampleBlock};
use corrfade_randn::{ComplexGaussian, RandomStream};

/// Snapshots batched per `ChannelStream` block by the single-instant
/// baseline generators — the proposed generator's default batch length, so
/// like-for-like comparisons see identical batch shapes.
pub(crate) const SNAPSHOT_STREAM_BLOCK_LEN: usize =
    corrfade::CorrelatedRayleighGenerator::DEFAULT_STREAM_BLOCK_LEN;

/// Fills `block` with [`SNAPSHOT_STREAM_BLOCK_LEN`] unit-variance snapshots
/// colored by `coloring`, drawing the white vectors in exactly the order of
/// the generator's legacy `sample_gaussian` loop (bit-identical for equal
/// seeds). `w`/`z` are generator-owned scratch vectors; nothing is
/// allocated once they and `block` are warm.
pub(crate) fn fill_snapshot_block(
    coloring: &CMatrix,
    gaussian: &mut ComplexGaussian,
    rng: &mut RandomStream,
    w: &mut Vec<Complex64>,
    z: &mut Vec<Complex64>,
    block: &mut SampleBlock,
) {
    let n = coloring.rows();
    let m = SNAPSHOT_STREAM_BLOCK_LEN;
    block.resize(n, m);
    w.resize(n, Complex64::ZERO);
    z.resize(n, Complex64::ZERO);
    let data = block.as_mut_slice();
    for l in 0..m {
        gaussian.fill(rng, w, 1.0);
        coloring.matvec_into(w, z);
        for j in 0..n {
            data[j * m + l] = z[j];
        }
    }
}

//! Baseline \[6\]: Sorooshyari & Daut's generator, including its flawed
//! real-time (Doppler) combination.
//!
//! Sorooshyari & Daut handle covariance matrices that are not positive
//! definite by replacing every non-positive eigenvalue with a small
//! `ε > 0` and then Cholesky-factorizing the rebuilt matrix. Compared with
//! the paper's zero-clipping this is (a) a strictly worse Frobenius
//! approximation, and (b) still at the mercy of Cholesky round-off when the
//! resulting matrix is near-singular.
//!
//! For the real-time scenario, ref. \[6\] feeds Young–Beaulieu Doppler
//! generator outputs into its coloring step **assuming unit variance** of
//! those outputs. In reality the Doppler filter changes the variance to
//! `σ_g² = 2·σ²_orig/M²·ΣF[k]²` (paper Eq. 19), so the realized covariance is
//! scaled by `σ_g²` — this is "the main shortcoming" the paper corrects.
//! [`SorooshyariDautRealtimeGenerator`] reproduces the flawed combination so
//! experiment E8 can quantify the error.

use corrfade_dsp::{DopplerFilter, IdftRayleighGenerator};
use corrfade_linalg::{cholesky, hermitian_eigen, CMatrix, Complex64, LinalgError};
use corrfade_randn::{ComplexGaussian, RandomStream};

use crate::error::BaselineError;

/// The default ε used when rebuilding a non-PSD covariance matrix, matching
/// the "small positive number" of ref. \[6\].
pub const DEFAULT_EPSILON: f64 = 1e-4;

/// Replaces every non-positive eigenvalue of `k` with `epsilon` and rebuilds
/// the matrix (the ref.-\[6\] approximation). Returns the rebuilt matrix and
/// the number of replaced eigenvalues.
///
/// # Errors
/// [`BaselineError::Invalid`] when the matrix is not square/Hermitian.
pub fn epsilon_psd_forcing(k: &CMatrix, epsilon: f64) -> Result<(CMatrix, usize), BaselineError> {
    if !k.is_square() || k.rows() == 0 {
        return Err(BaselineError::Invalid {
            reason: "covariance matrix must be square and non-empty",
        });
    }
    let eig = hermitian_eigen(k).map_err(|_| BaselineError::Invalid {
        reason: "covariance matrix must be Hermitian",
    })?;
    let replaced = eig.eigenvalues.iter().filter(|&&l| l <= 0.0).count();
    if replaced == 0 {
        return Ok((k.clone(), 0));
    }
    let adjusted: Vec<f64> = eig
        .eigenvalues
        .iter()
        .map(|&l| if l > 0.0 { l } else { epsilon })
        .collect();
    Ok((eig.reconstruct_with(&adjusted), replaced))
}

/// The Sorooshyari–Daut single-instant generator (baseline \[6\]): equal-power
/// envelopes, ε-forced PSD approximation, Cholesky coloring.
#[derive(Debug, Clone)]
pub struct SorooshyariDautGenerator {
    coloring: CMatrix,
    forced: CMatrix,
    replaced_eigenvalues: usize,
    rng: RandomStream,
    gaussian: ComplexGaussian,
}

impl SorooshyariDautGenerator {
    /// Builds the generator with the default ε.
    pub fn new(k: &CMatrix, seed: u64) -> Result<Self, BaselineError> {
        Self::with_epsilon(k, DEFAULT_EPSILON, seed)
    }

    /// Builds the generator with an explicit ε.
    ///
    /// # Errors
    /// Unequal powers are rejected; Cholesky failure on the ε-forced matrix
    /// (which ref. \[6\] reports happening in MATLAB for some complex
    /// covariances) is surfaced as [`BaselineError::CholeskyFailed`].
    pub fn with_epsilon(k: &CMatrix, epsilon: f64, seed: u64) -> Result<Self, BaselineError> {
        const METHOD: &str = "Sorooshyari-Daut [6]";
        if !k.is_square() || k.rows() == 0 {
            return Err(BaselineError::Invalid {
                reason: "covariance matrix must be square and non-empty",
            });
        }
        if !k.is_hermitian(1e-9 * k.max_abs().max(1.0)) {
            return Err(BaselineError::Invalid {
                reason: "covariance matrix must be Hermitian",
            });
        }
        let p0 = k[(0, 0)].re;
        for i in 0..k.rows() {
            if (k[(i, i)].re - p0).abs() > 1e-9 * p0.abs().max(1.0) {
                return Err(BaselineError::UnequalPowersUnsupported { method: METHOD });
            }
        }
        let (forced, replaced_eigenvalues) = epsilon_psd_forcing(k, epsilon)?;
        let coloring = match cholesky(&forced) {
            Ok(l) => l,
            Err(LinalgError::NotPositiveDefinite { pivot, .. }) => {
                return Err(BaselineError::CholeskyFailed {
                    method: METHOD,
                    pivot,
                })
            }
            Err(_) => {
                return Err(BaselineError::Invalid {
                    reason: "Cholesky factorization failed",
                })
            }
        };
        Ok(Self {
            coloring,
            forced,
            replaced_eigenvalues,
            rng: RandomStream::new(seed),
            gaussian: ComplexGaussian::default(),
        })
    }

    /// Number of envelopes.
    pub fn dimension(&self) -> usize {
        self.coloring.rows()
    }

    /// The ε-forced covariance the generator actually targets.
    pub fn forced_covariance(&self) -> &CMatrix {
        &self.forced
    }

    /// How many eigenvalues were replaced by ε.
    pub fn replaced_eigenvalues(&self) -> usize {
        self.replaced_eigenvalues
    }

    /// Draws one correlated complex Gaussian vector (unit-variance white
    /// input, as in ref. \[6\]).
    pub fn sample_gaussian(&mut self) -> Vec<Complex64> {
        let w = self
            .gaussian
            .sample_vec(&mut self.rng, self.coloring.rows(), 1.0);
        self.coloring.matvec(&w)
    }

    /// Draws one vector of correlated Rayleigh envelopes.
    pub fn sample_envelopes(&mut self) -> Vec<f64> {
        self.sample_gaussian().iter().map(|z| z.abs()).collect()
    }

    /// Draws `count` snapshots.
    pub fn generate_snapshots(&mut self, count: usize) -> Vec<Vec<Complex64>> {
        (0..count).map(|_| self.sample_gaussian()).collect()
    }
}

/// The flawed real-time combination of ref. \[6\]: Doppler-filtered sequences
/// are colored **as if they had unit variance**, ignoring the Eq.-19 variance
/// change of the Doppler filter.
#[derive(Debug, Clone)]
pub struct SorooshyariDautRealtimeGenerator {
    coloring: CMatrix,
    idft: IdftRayleighGenerator,
    rng: RandomStream,
    n: usize,
}

impl SorooshyariDautRealtimeGenerator {
    /// Builds the flawed real-time generator.
    ///
    /// # Errors
    /// Same construction errors as [`SorooshyariDautGenerator`], plus the
    /// Doppler-filter design errors.
    pub fn new(
        k: &CMatrix,
        idft_size: usize,
        normalized_doppler: f64,
        sigma_orig_sq: f64,
        seed: u64,
    ) -> Result<Self, BaselineError> {
        let single = SorooshyariDautGenerator::new(k, seed)?;
        let filter = DopplerFilter::new(idft_size, normalized_doppler).map_err(|_| {
            BaselineError::Invalid {
                reason: "invalid Doppler filter parameters",
            }
        })?;
        let idft = IdftRayleighGenerator::new(filter, sigma_orig_sq).map_err(|_| {
            BaselineError::Invalid {
                reason: "invalid Doppler generator variance",
            }
        })?;
        Ok(Self {
            n: single.dimension(),
            coloring: single.coloring,
            idft,
            rng: RandomStream::new(seed),
        })
    }

    /// Number of envelopes.
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// The true output variance of the Doppler generators (Eq. 19) — the
    /// value this method *should* use but does not.
    pub fn actual_doppler_variance(&self) -> f64 {
        self.idft.output_variance()
    }

    /// Generates one block of `M` time samples per envelope using the flawed
    /// unit-variance assumption: `Z[l] = L·W[l]` with no `1/σ_g` scaling.
    pub fn generate_block(&mut self) -> Vec<Vec<Complex64>> {
        let n = self.n;
        let m = self.idft.filter().len();
        let raw: Vec<Vec<Complex64>> = (0..n).map(|_| self.idft.generate(&mut self.rng)).collect();
        let mut paths = vec![Vec::with_capacity(m); n];
        let mut w = vec![Complex64::ZERO; n];
        for l in 0..m {
            for (wj, raw_j) in w.iter_mut().zip(&raw) {
                *wj = raw_j[l];
            }
            // Flaw reproduced on purpose: ref. [6] inserts the Doppler
            // outputs into its step 6 as if their variance were 1.
            let z = self.coloring.matvec(&w);
            for j in 0..n {
                paths[j].push(z[j]);
            }
        }
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_models::{paper_covariance_matrix_22, paper_covariance_matrix_23};
    use corrfade_stats::{
        relative_frobenius_error, sample_covariance, sample_covariance_from_paths,
    };

    #[test]
    fn single_instant_mode_works_on_pd_covariances() {
        let k = paper_covariance_matrix_23();
        let mut g = SorooshyariDautGenerator::new(&k, 3).unwrap();
        assert_eq!(g.dimension(), 3);
        assert_eq!(g.replaced_eigenvalues(), 0);
        let snaps = g.generate_snapshots(60_000);
        let khat = sample_covariance(&snaps);
        assert!(relative_frobenius_error(&khat, &k) < 0.04);
        assert_eq!(g.sample_envelopes().len(), 3);
    }

    #[test]
    fn epsilon_forcing_is_less_precise_than_zero_clipping() {
        // E7's core comparison.
        let k = CMatrix::from_real_slice(3, 3, &[1.0, 0.9, -0.9, 0.9, 1.0, 0.9, -0.9, 0.9, 1.0]);
        let (eps_forced, replaced) = epsilon_psd_forcing(&k, 1e-3).unwrap();
        assert_eq!(replaced, 1);
        let zero_forced = corrfade::force_positive_semidefinite(&k).unwrap().forced;
        assert!(
            zero_forced.frobenius_distance(&k) < eps_forced.frobenius_distance(&k),
            "zero clipping must approximate K at least as well as epsilon replacement"
        );
        // PSD input passes through unchanged.
        let (same, zero) = epsilon_psd_forcing(&paper_covariance_matrix_23(), 1e-3).unwrap();
        assert_eq!(zero, 0);
        assert!(same.approx_eq(&paper_covariance_matrix_23(), 1e-12));
    }

    #[test]
    fn indefinite_covariance_is_handled_via_epsilon() {
        let k = CMatrix::from_real_slice(3, 3, &[1.0, 0.9, -0.9, 0.9, 1.0, 0.9, -0.9, 0.9, 1.0]);
        let g = SorooshyariDautGenerator::new(&k, 5).unwrap();
        assert_eq!(g.replaced_eigenvalues(), 1);
        // The forced covariance differs from K (it must — K is not PSD).
        assert!(g.forced_covariance().max_abs_diff(&k) > 1e-3);
    }

    #[test]
    fn unequal_powers_rejected() {
        let k = CMatrix::from_real_slice(2, 2, &[1.0, 0.1, 0.1, 2.0]);
        assert!(matches!(
            SorooshyariDautGenerator::new(&k, 1),
            Err(BaselineError::UnequalPowersUnsupported { .. })
        ));
    }

    #[test]
    fn flawed_realtime_combination_misses_the_desired_covariance() {
        // E8's core demonstration: the realized covariance is scaled by the
        // Doppler output variance σ_g² ≠ 1 because the method ignores Eq. 19.
        let k = paper_covariance_matrix_22();
        let mut flawed = SorooshyariDautRealtimeGenerator::new(&k, 1024, 0.05, 0.5, 11).unwrap();
        assert_eq!(flawed.dimension(), 3);
        let sigma_g_sq = flawed.actual_doppler_variance();
        assert!(
            (sigma_g_sq - 1.0).abs() > 0.05,
            "test premise: σ_g² must differ from 1"
        );

        let mut paths: Vec<Vec<Complex64>> = vec![Vec::new(); 3];
        for _ in 0..30 {
            let block = flawed.generate_block();
            for j in 0..3 {
                paths[j].extend_from_slice(&block[j]);
            }
        }
        let khat = sample_covariance_from_paths(&paths);
        // Large error against the desired covariance ...
        let err_against_desired = relative_frobenius_error(&khat, &k);
        // ... but consistent with the σ_g²-scaled covariance, confirming the
        // error is exactly the ignored variance factor.
        let scaled = k.scale_real(sigma_g_sq);
        let err_against_scaled = relative_frobenius_error(&khat, &scaled);
        assert!(
            err_against_desired > 3.0 * err_against_scaled.max(0.02),
            "flawed method should miss the target ({err_against_desired:.3}) \
             but match the σ_g²-scaled matrix ({err_against_scaled:.3})"
        );
    }
}

//! Baseline \[6\]: Sorooshyari & Daut's generator, including its flawed
//! real-time (Doppler) combination.
//!
//! Sorooshyari & Daut handle covariance matrices that are not positive
//! definite by replacing every non-positive eigenvalue with a small
//! `ε > 0` and then Cholesky-factorizing the rebuilt matrix. Compared with
//! the paper's zero-clipping this is (a) a strictly worse Frobenius
//! approximation, and (b) still at the mercy of Cholesky round-off when the
//! resulting matrix is near-singular.
//!
//! For the real-time scenario, ref. \[6\] feeds Young–Beaulieu Doppler
//! generator outputs into its coloring step **assuming unit variance** of
//! those outputs. In reality the Doppler filter changes the variance to
//! `σ_g² = 2·σ²_orig/M²·ΣF[k]²` (paper Eq. 19), so the realized covariance is
//! scaled by `σ_g²` — this is "the main shortcoming" the paper corrects.
//! [`SorooshyariDautRealtimeGenerator`] reproduces the flawed combination so
//! experiment E8 can quantify the error.

use corrfade::{ChannelStream, CorrfadeError};
use corrfade_dsp::{DopplerFilter, IdftRayleighGenerator};
use corrfade_linalg::{cholesky, hermitian_eigen, CMatrix, Complex64, LinalgError, SampleBlock};
use corrfade_randn::{ComplexGaussian, RandomStream};

use crate::error::BaselineError;
use crate::streaming::{fill_snapshot_block, SNAPSHOT_STREAM_BLOCK_LEN};

/// The default ε used when rebuilding a non-PSD covariance matrix, matching
/// the "small positive number" of ref. \[6\].
pub const DEFAULT_EPSILON: f64 = 1e-4;

/// Replaces every non-positive eigenvalue of `k` with `epsilon` and rebuilds
/// the matrix (the ref.-\[6\] approximation). Returns the rebuilt matrix and
/// the number of replaced eigenvalues.
///
/// # Errors
/// [`BaselineError::Invalid`] when the matrix is not square/Hermitian.
pub fn epsilon_psd_forcing(k: &CMatrix, epsilon: f64) -> Result<(CMatrix, usize), BaselineError> {
    if !k.is_square() || k.rows() == 0 {
        return Err(BaselineError::Invalid {
            reason: "covariance matrix must be square and non-empty",
        });
    }
    let eig = hermitian_eigen(k).map_err(|_| BaselineError::Invalid {
        reason: "covariance matrix must be Hermitian",
    })?;
    let replaced = eig.eigenvalues.iter().filter(|&&l| l <= 0.0).count();
    if replaced == 0 {
        return Ok((k.clone(), 0));
    }
    let adjusted: Vec<f64> = eig
        .eigenvalues
        .iter()
        .map(|&l| if l > 0.0 { l } else { epsilon })
        .collect();
    Ok((eig.reconstruct_with(&adjusted), replaced))
}

/// The Sorooshyari–Daut single-instant generator (baseline \[6\]): equal-power
/// envelopes, ε-forced PSD approximation, Cholesky coloring.
///
/// Implements [`ChannelStream`] by batching independent snapshots into
/// planar blocks, so the E10 shortcoming matrix drives it through the same
/// interface as the proposed algorithm.
#[derive(Debug, Clone)]
pub struct SorooshyariDautGenerator {
    coloring: CMatrix,
    forced: CMatrix,
    replaced_eigenvalues: usize,
    rng: RandomStream,
    gaussian: ComplexGaussian,
    /// White-vector scratch for the streaming path.
    w: Vec<Complex64>,
    /// Colored-vector scratch for the streaming path.
    z: Vec<Complex64>,
}

impl SorooshyariDautGenerator {
    /// Builds the generator with the default ε.
    pub fn new(k: &CMatrix, seed: u64) -> Result<Self, BaselineError> {
        Self::with_epsilon(k, DEFAULT_EPSILON, seed)
    }

    /// Builds the generator with an explicit ε.
    ///
    /// # Errors
    /// Unequal powers are rejected; Cholesky failure on the ε-forced matrix
    /// (which ref. \[6\] reports happening in MATLAB for some complex
    /// covariances) is surfaced as [`BaselineError::CholeskyFailed`].
    pub fn with_epsilon(k: &CMatrix, epsilon: f64, seed: u64) -> Result<Self, BaselineError> {
        const METHOD: &str = "Sorooshyari-Daut [6]";
        if !k.is_square() || k.rows() == 0 {
            return Err(BaselineError::Invalid {
                reason: "covariance matrix must be square and non-empty",
            });
        }
        if !k.is_hermitian(1e-9 * k.max_abs().max(1.0)) {
            return Err(BaselineError::Invalid {
                reason: "covariance matrix must be Hermitian",
            });
        }
        let p0 = k[(0, 0)].re;
        for i in 0..k.rows() {
            if (k[(i, i)].re - p0).abs() > 1e-9 * p0.abs().max(1.0) {
                return Err(BaselineError::UnequalPowersUnsupported { method: METHOD });
            }
        }
        let (forced, replaced_eigenvalues) = epsilon_psd_forcing(k, epsilon)?;
        let coloring = match cholesky(&forced) {
            Ok(l) => l,
            Err(LinalgError::NotPositiveDefinite { pivot, .. }) => {
                return Err(BaselineError::CholeskyFailed {
                    method: METHOD,
                    pivot,
                })
            }
            Err(_) => {
                return Err(BaselineError::Invalid {
                    reason: "Cholesky factorization failed",
                })
            }
        };
        Ok(Self {
            coloring,
            forced,
            replaced_eigenvalues,
            rng: RandomStream::new(seed),
            gaussian: ComplexGaussian::default(),
            w: Vec::new(),
            z: Vec::new(),
        })
    }

    /// Number of envelopes.
    pub fn dimension(&self) -> usize {
        self.coloring.rows()
    }

    /// The ε-forced covariance the generator actually targets.
    pub fn forced_covariance(&self) -> &CMatrix {
        &self.forced
    }

    /// How many eigenvalues were replaced by ε.
    pub fn replaced_eigenvalues(&self) -> usize {
        self.replaced_eigenvalues
    }

    /// Draws one correlated complex Gaussian vector (unit-variance white
    /// input, as in ref. \[6\]).
    pub fn sample_gaussian(&mut self) -> Vec<Complex64> {
        let w = self
            .gaussian
            .sample_vec(&mut self.rng, self.coloring.rows(), 1.0);
        self.coloring.matvec(&w)
    }

    /// Draws one vector of correlated Rayleigh envelopes.
    pub fn sample_envelopes(&mut self) -> Vec<f64> {
        self.sample_gaussian().iter().map(|z| z.abs()).collect()
    }

    /// Draws `count` snapshots.
    pub fn generate_snapshots(&mut self, count: usize) -> Vec<Vec<Complex64>> {
        (0..count).map(|_| self.sample_gaussian()).collect()
    }
}

impl ChannelStream for SorooshyariDautGenerator {
    fn dimension(&self) -> usize {
        self.coloring.rows()
    }

    fn block_len(&self) -> usize {
        SNAPSHOT_STREAM_BLOCK_LEN
    }

    fn next_block_into(&mut self, block: &mut SampleBlock) -> Result<(), CorrfadeError> {
        let Self {
            coloring,
            gaussian,
            rng,
            w,
            z,
            ..
        } = self;
        fill_snapshot_block(coloring, gaussian, rng, w, z, block);
        Ok(())
    }
}

/// The flawed real-time combination of ref. \[6\]: Doppler-filtered sequences
/// are colored **as if they had unit variance**, ignoring the Eq.-19 variance
/// change of the Doppler filter.
///
/// Implements [`ChannelStream`] so the E8 ablation can drive the proposed
/// and flawed combinations through the identical streaming code path.
#[derive(Debug, Clone)]
pub struct SorooshyariDautRealtimeGenerator {
    coloring: CMatrix,
    idft: IdftRayleighGenerator,
    rng: RandomStream,
    n: usize,
    /// Planar `N × M` scratch for the raw Doppler sequences.
    raw: Vec<Complex64>,
    /// Per-instant input/output vector scratch.
    w: Vec<Complex64>,
    z: Vec<Complex64>,
}

impl SorooshyariDautRealtimeGenerator {
    /// Builds the flawed real-time generator.
    ///
    /// # Errors
    /// Same construction errors as [`SorooshyariDautGenerator`], plus the
    /// Doppler-filter design errors.
    pub fn new(
        k: &CMatrix,
        idft_size: usize,
        normalized_doppler: f64,
        sigma_orig_sq: f64,
        seed: u64,
    ) -> Result<Self, BaselineError> {
        let single = SorooshyariDautGenerator::new(k, seed)?;
        let filter = DopplerFilter::new(idft_size, normalized_doppler).map_err(|_| {
            BaselineError::Invalid {
                reason: "invalid Doppler filter parameters",
            }
        })?;
        let idft = IdftRayleighGenerator::new(filter, sigma_orig_sq).map_err(|_| {
            BaselineError::Invalid {
                reason: "invalid Doppler generator variance",
            }
        })?;
        Ok(Self {
            n: single.dimension(),
            coloring: single.coloring,
            idft,
            rng: RandomStream::new(seed),
            raw: Vec::new(),
            w: Vec::new(),
            z: Vec::new(),
        })
    }

    /// Number of envelopes.
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// The true output variance of the Doppler generators (Eq. 19) — the
    /// value this method *should* use but does not.
    pub fn actual_doppler_variance(&self) -> f64 {
        self.idft.output_variance()
    }

    /// Generates one block of `M` time samples per envelope using the flawed
    /// unit-variance assumption: `Z[l] = L·W[l]` with no `1/σ_g` scaling.
    ///
    /// Compatibility wrapper over the [`ChannelStream`] path.
    pub fn generate_block(&mut self) -> Vec<Vec<Complex64>> {
        let mut block = SampleBlock::empty();
        self.next_block_into(&mut block)
            .expect("baseline streaming is infallible after construction");
        block.to_paths()
    }
}

impl ChannelStream for SorooshyariDautRealtimeGenerator {
    fn dimension(&self) -> usize {
        self.n
    }

    fn block_len(&self) -> usize {
        self.idft.filter().len()
    }

    fn next_block_into(&mut self, block: &mut SampleBlock) -> Result<(), CorrfadeError> {
        let n = self.n;
        let m = self.idft.filter().len();
        block.resize(n, m);
        self.raw.resize(n * m, Complex64::ZERO);
        self.w.resize(n, Complex64::ZERO);
        self.z.resize(n, Complex64::ZERO);
        for j in 0..n {
            self.idft
                .generate_into(&mut self.rng, &mut self.raw[j * m..(j + 1) * m]);
        }
        let data = block.as_mut_slice();
        for l in 0..m {
            for j in 0..n {
                self.w[j] = self.raw[j * m + l];
            }
            // Flaw reproduced on purpose: ref. [6] inserts the Doppler
            // outputs into its step 6 as if their variance were 1.
            self.coloring.matvec_into(&self.w, &mut self.z);
            for j in 0..n {
                data[j * m + l] = self.z[j];
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_models::{paper_covariance_matrix_22, paper_covariance_matrix_23};
    use corrfade_stats::{
        relative_frobenius_error, sample_covariance, sample_covariance_from_paths,
    };

    #[test]
    fn single_instant_mode_works_on_pd_covariances() {
        let k = paper_covariance_matrix_23();
        let mut g = SorooshyariDautGenerator::new(&k, 3).unwrap();
        assert_eq!(g.dimension(), 3);
        assert_eq!(g.replaced_eigenvalues(), 0);
        let snaps = g.generate_snapshots(60_000);
        let khat = sample_covariance(&snaps);
        assert!(relative_frobenius_error(&khat, &k) < 0.04);
        assert_eq!(g.sample_envelopes().len(), 3);
    }

    #[test]
    fn epsilon_forcing_is_less_precise_than_zero_clipping() {
        // E7's core comparison.
        let k = CMatrix::from_real_slice(3, 3, &[1.0, 0.9, -0.9, 0.9, 1.0, 0.9, -0.9, 0.9, 1.0]);
        let (eps_forced, replaced) = epsilon_psd_forcing(&k, 1e-3).unwrap();
        assert_eq!(replaced, 1);
        let zero_forced = corrfade::force_positive_semidefinite(&k).unwrap().forced;
        assert!(
            zero_forced.frobenius_distance(&k) < eps_forced.frobenius_distance(&k),
            "zero clipping must approximate K at least as well as epsilon replacement"
        );
        // PSD input passes through unchanged.
        let (same, zero) = epsilon_psd_forcing(&paper_covariance_matrix_23(), 1e-3).unwrap();
        assert_eq!(zero, 0);
        assert!(same.approx_eq(&paper_covariance_matrix_23(), 1e-12));
    }

    #[test]
    fn indefinite_covariance_is_handled_via_epsilon() {
        let k = CMatrix::from_real_slice(3, 3, &[1.0, 0.9, -0.9, 0.9, 1.0, 0.9, -0.9, 0.9, 1.0]);
        let g = SorooshyariDautGenerator::new(&k, 5).unwrap();
        assert_eq!(g.replaced_eigenvalues(), 1);
        // The forced covariance differs from K (it must — K is not PSD).
        assert!(g.forced_covariance().max_abs_diff(&k) > 1e-3);
    }

    #[test]
    fn unequal_powers_rejected() {
        let k = CMatrix::from_real_slice(2, 2, &[1.0, 0.1, 0.1, 2.0]);
        assert!(matches!(
            SorooshyariDautGenerator::new(&k, 1),
            Err(BaselineError::UnequalPowersUnsupported { .. })
        ));
    }

    #[test]
    fn flawed_realtime_combination_misses_the_desired_covariance() {
        // E8's core demonstration: the realized covariance is scaled by the
        // Doppler output variance σ_g² ≠ 1 because the method ignores Eq. 19.
        let k = paper_covariance_matrix_22();
        let mut flawed = SorooshyariDautRealtimeGenerator::new(&k, 1024, 0.05, 0.5, 11).unwrap();
        assert_eq!(flawed.dimension(), 3);
        let sigma_g_sq = flawed.actual_doppler_variance();
        assert!(
            (sigma_g_sq - 1.0).abs() > 0.05,
            "test premise: σ_g² must differ from 1"
        );

        let mut paths: Vec<Vec<Complex64>> = vec![Vec::new(); 3];
        for _ in 0..30 {
            let block = flawed.generate_block();
            for j in 0..3 {
                paths[j].extend_from_slice(&block[j]);
            }
        }
        let khat = sample_covariance_from_paths(&paths);
        // Large error against the desired covariance ...
        let err_against_desired = relative_frobenius_error(&khat, &k);
        // ... but consistent with the σ_g²-scaled covariance, confirming the
        // error is exactly the ignored variance factor.
        let scaled = k.scale_real(sigma_g_sq);
        let err_against_scaled = relative_frobenius_error(&khat, &scaled);
        assert!(
            err_against_desired > 3.0 * err_against_scaled.max(0.02),
            "flawed method should miss the target ({err_against_desired:.3}) \
             but match the σ_g²-scaled matrix ({err_against_scaled:.3})"
        );
    }
}

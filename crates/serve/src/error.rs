//! Error type of the serving layer.

use core::fmt;

use crate::protocol::ProtocolError;

/// Everything that can go wrong while serving or consuming a channel
/// stream over a socket.
#[derive(Debug)]
pub enum ServeError {
    /// A socket operation failed (connect, read, write, timeout, …).
    Io(std::io::Error),
    /// Bytes on the wire violated the protocol (see [`ProtocolError`]).
    Protocol(ProtocolError),
    /// The server reported a typed error frame; `code` is one of
    /// [`crate::protocol::code`]'s values.
    Server {
        /// Stable wire code of the server-side error.
        code: u16,
        /// The server's rendered error message.
        message: String,
    },
    /// The peer sent a well-formed frame of the wrong type for the current
    /// protocol state (e.g. a block before the header).
    UnexpectedFrame {
        /// What the state machine was waiting for.
        expected: &'static str,
        /// The tag byte actually received.
        got: u8,
    },
    /// The connection closed cleanly where more data was required.
    ConnectionClosed {
        /// Which protocol step the close interrupted.
        during: &'static str,
    },
    /// The shared fleet rejected an operation (stale stream key, scenario
    /// build failure, …).
    Fleet(corrfade_parallel::ParallelError),
    /// A retrying operation (connect-with-retry, resuming stream) exhausted
    /// its attempt budget; `last` is the error of the final attempt.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// The error the final attempt failed with.
        last: Box<ServeError>,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket error: {e}"),
            ServeError::Protocol(e) => write!(f, "protocol error: {e}"),
            ServeError::Server { code, message } => {
                write!(f, "server error (code {code}): {message}")
            }
            ServeError::UnexpectedFrame { expected, got } => write!(
                f,
                "unexpected frame: waiting for {expected}, received tag {got}"
            ),
            ServeError::ConnectionClosed { during } => {
                write!(f, "connection closed during {during}")
            }
            ServeError::Fleet(e) => write!(f, "fleet error: {e}"),
            ServeError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s); last error: {last}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Protocol(e) => Some(e),
            ServeError::Fleet(e) => Some(e),
            ServeError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            ServeError::Server { .. }
            | ServeError::UnexpectedFrame { .. }
            | ServeError::ConnectionClosed { .. } => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<ProtocolError> for ServeError {
    fn from(e: ProtocolError) -> Self {
        ServeError::Protocol(e)
    }
}

impl From<corrfade_parallel::ParallelError> for ServeError {
    fn from(e: corrfade_parallel::ParallelError) -> Self {
        ServeError::Fleet(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e = ServeError::from(ProtocolError::ServerShutdown);
        assert!(e.to_string().contains("shutting down"));
        assert!(e.source().is_some());

        let e = ServeError::Server {
            code: 7,
            message: "unknown scenario".into(),
        };
        assert!(e.to_string().contains("code 7"));
        assert!(e.source().is_none());

        let e = ServeError::ConnectionClosed { during: "header" };
        assert!(e.to_string().contains("header"));

        let e = ServeError::from(std::io::Error::new(std::io::ErrorKind::TimedOut, "slow"));
        assert!(e.to_string().contains("socket error"));
        assert!(e.source().is_some());
    }
}

//! Blocking client for the `corrfade-serve` wire protocol.
//!
//! A [`Client`] drives one connection through the protocol's linear state
//! machine: connect → [`Client::subscribe`] (request + header frame) →
//! repeated [`Client::next_block_into`] until the end frame. Frame bytes
//! land in one reusable internal buffer and samples are decoded straight
//! into the caller's [`SampleBlock`], so a warm receive loop performs zero
//! heap allocation — the mirror image of the server's send path.

use std::io::{Read, Write};
use std::time::Duration;

use corrfade::SampleBlock;

use crate::error::ServeError;
use crate::net::{Conn, ServeAddr};
use crate::protocol::{
    decode_block_payload, decode_frame_payload, encode_request, tag, Frame, ProtocolError, Request,
    MAX_FRAME_LEN,
};
use crate::retry::{Backoff, RetryPolicy};

/// Shape echo the server sends before the first block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHeader {
    /// Envelope count `N` of every block.
    pub envelopes: u32,
    /// Samples `M` per envelope per block.
    pub samples: u32,
    /// Number of block frames the server will stream.
    pub blocks: u32,
}

/// A blocking protocol client over TCP or a Unix-domain socket.
///
/// See the crate docs for a complete subscribe-and-stream example.
#[derive(Debug)]
pub struct Client {
    conn: Conn,
    /// Reusable frame buffer: every read lands here, capacity persists.
    frame: Vec<u8>,
    header: Option<StreamHeader>,
}

impl Client {
    /// Connects to a server with the default 30-second I/O timeout.
    ///
    /// # Errors
    /// [`ServeError::Io`] when the connection cannot be established.
    pub fn connect(addr: &ServeAddr) -> Result<Self, ServeError> {
        Self::connect_timeout(addr, Duration::from_secs(30))
    }

    /// Connects with an explicit connect/read/write timeout.
    ///
    /// # Errors
    /// [`ServeError::Io`] when the connection cannot be established.
    pub fn connect_timeout(addr: &ServeAddr, timeout: Duration) -> Result<Self, ServeError> {
        let conn = Conn::connect(addr, timeout)?;
        Ok(Self {
            conn,
            frame: Vec::new(),
            header: None,
        })
    }

    /// Connects with retries under `policy`: exponential backoff with
    /// jitter between attempts, giving up with a typed
    /// [`ServeError::RetriesExhausted`] once the attempt budget is spent.
    /// What a client racing a server restart — or a loadgen racing the
    /// accept backlog — uses instead of hand-rolling a retry loop.
    ///
    /// # Errors
    /// [`ServeError::RetriesExhausted`] wrapping the final attempt's error.
    pub fn connect_with_retry(addr: &ServeAddr, policy: &RetryPolicy) -> Result<Self, ServeError> {
        let mut backoff = Backoff::new(policy);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match Self::connect_timeout(addr, policy.io_timeout) {
                Ok(client) => return Ok(client),
                Err(e) if attempts >= policy.max_attempts => {
                    return Err(ServeError::RetriesExhausted {
                        attempts,
                        last: Box::new(e),
                    });
                }
                Err(_) => backoff.sleep(),
            }
        }
    }

    /// Sends the request and reads the stream header. Must be called once,
    /// before the first [`Client::next_block_into`].
    ///
    /// # Errors
    /// [`ServeError::Server`] carries the server's typed error frame
    /// (unknown scenario with a did-you-mean suggestion, version mismatch,
    /// …); [`ServeError::Io`] / [`ServeError::Protocol`] cover transport
    /// and framing failures.
    pub fn subscribe(
        &mut self,
        scenario: &str,
        seed: u64,
        blocks: u32,
    ) -> Result<StreamHeader, ServeError> {
        self.subscribe_at(scenario, seed, blocks, 0)
    }

    /// [`Client::subscribe`] starting at a block cursor: a non-zero
    /// `cursor` sends a **v2 resume request**, making the server
    /// fast-forward the `(scenario, seed)` stream so the delivered blocks
    /// are `cursor..cursor + blocks` of the uninterrupted stream,
    /// bit-identically. Cursor `0` is a plain v1 subscribe.
    ///
    /// # Errors
    /// As [`Client::subscribe`]; additionally the server rejects cursors
    /// whose span would overflow the `u32` wire block-index space.
    pub fn subscribe_at(
        &mut self,
        scenario: &str,
        seed: u64,
        blocks: u32,
        cursor: u64,
    ) -> Result<StreamHeader, ServeError> {
        let request = Request {
            scenario: scenario.to_string(),
            seed,
            blocks,
            cursor,
        };
        self.frame.clear();
        encode_request(&request, &mut self.frame);
        self.conn.write_all(&self.frame)?;

        let payload = read_frame(&mut self.conn, &mut self.frame, "stream header")?;
        match decode_frame_payload(payload)? {
            Frame::Header {
                envelopes,
                samples,
                blocks,
            } => {
                let header = StreamHeader {
                    envelopes,
                    samples,
                    blocks,
                };
                self.header = Some(header);
                Ok(header)
            }
            Frame::Error { code, message } => Err(ServeError::Server { code, message }),
            Frame::Block { .. } => Err(ServeError::UnexpectedFrame {
                expected: "header frame",
                got: tag::BLOCK,
            }),
            Frame::End { .. } => Err(ServeError::UnexpectedFrame {
                expected: "header frame",
                got: tag::END,
            }),
        }
    }

    /// The stream header, once [`Client::subscribe`] has succeeded.
    #[must_use]
    pub fn header(&self) -> Option<StreamHeader> {
        self.header
    }

    /// Reads the next frame and decodes it into `block`.
    ///
    /// Returns `Ok(Some(index))` for a block frame (with `block` holding
    /// its samples bit-exactly), `Ok(None)` on the clean end-of-stream
    /// frame. After warm-up, a block-frame read performs zero heap
    /// allocation: the frame buffer and `block` both reuse their capacity.
    ///
    /// # Errors
    /// [`ServeError::Server`] for a mid-stream error frame (e.g. server
    /// shutdown), [`ServeError::Protocol`] for malformed bytes,
    /// [`ServeError::Io`] for transport failures, and
    /// [`ServeError::UnexpectedFrame`] if the server violates frame order.
    pub fn next_block_into(&mut self, block: &mut SampleBlock) -> Result<Option<u32>, ServeError> {
        let Some(header) = self.header else {
            return Err(ServeError::UnexpectedFrame {
                expected: "subscribe() before next_block_into()",
                got: 0,
            });
        };
        let payload = read_frame(&mut self.conn, &mut self.frame, "block stream")?;
        match payload.first().copied() {
            Some(tag::BLOCK) => {
                let (index, bytes) = decode_block_payload(payload)?;
                block
                    .decode_le_from(header.envelopes as usize, header.samples as usize, bytes)
                    .map_err(|e| {
                        ServeError::Protocol(ProtocolError::FrameSizeMismatch {
                            what: "block",
                            expected: e.expected,
                            got: e.got,
                        })
                    })?;
                Ok(Some(index))
            }
            Some(tag::END) => match decode_frame_payload(payload)? {
                Frame::End { .. } => Ok(None),
                _ => unreachable!("tag::END decodes to Frame::End or errors"),
            },
            _ => match decode_frame_payload(payload)? {
                Frame::Error { code, message } => Err(ServeError::Server { code, message }),
                Frame::Header { .. } => Err(ServeError::UnexpectedFrame {
                    expected: "block or end frame",
                    got: tag::HEADER,
                }),
                _ => unreachable!("block/end tags handled above"),
            },
        }
    }

    /// Reads the whole stream into freshly allocated blocks — the
    /// convenience path for tests and small transfers; hot paths should
    /// loop [`Client::next_block_into`] over one pooled block instead.
    ///
    /// # Errors
    /// Any error [`Client::next_block_into`] can produce.
    pub fn collect_blocks(&mut self) -> Result<Vec<SampleBlock>, ServeError> {
        let mut blocks = Vec::new();
        loop {
            let mut block = SampleBlock::empty();
            match self.next_block_into(&mut block)? {
                Some(_) => blocks.push(block),
                None => return Ok(blocks),
            }
        }
    }
}

/// Reads one length-prefixed frame into `frame` (reusing its capacity) and
/// returns the payload slice.
fn read_frame<'a>(
    conn: &mut Conn,
    frame: &'a mut Vec<u8>,
    during: &'static str,
) -> Result<&'a [u8], ServeError> {
    let mut prefix = [0u8; 4];
    read_exact_or_closed(conn, &mut prefix, during)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len == 0 {
        return Err(ServeError::Protocol(ProtocolError::FrameSizeMismatch {
            what: "frame",
            expected: 1,
            got: 0,
        }));
    }
    if len > MAX_FRAME_LEN {
        return Err(ServeError::Protocol(ProtocolError::Oversized {
            what: "frame payload",
            len,
            max: MAX_FRAME_LEN,
        }));
    }
    frame.clear();
    frame.resize(len, 0);
    read_exact_or_closed(conn, frame, during)?;
    Ok(frame)
}

/// `read_exact` that maps a clean EOF to [`ServeError::ConnectionClosed`].
fn read_exact_or_closed(
    conn: &mut Conn,
    buf: &mut [u8],
    during: &'static str,
) -> Result<(), ServeError> {
    conn.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ServeError::ConnectionClosed { during }
        } else {
            ServeError::Io(e)
        }
    })
}

//! Deterministic fault injection for the serving path.
//!
//! [`ChaosProxy`] sits between a client and a real server, forwarding
//! bytes while injecting transport faults from a **seeded schedule**: the
//! server→client direction can be fragmented into tiny partial
//! writes/short reads, stalled, and **cut** (truncated + abruptly
//! disconnected) at a schedule-chosen byte offset. Every fault decision is
//! a pure function of `(schedule seed, connection index)`, so a failing
//! chaos test replays byte-for-byte identically from its seed.
//!
//! The proxy faults at most [`ChaosSchedule::max_faults`] connections and
//! passes the rest through untouched — a resuming client is therefore
//! guaranteed to finish eventually, and the test asserts the *output* is
//! bit-identical to the fault-free stream.
//!
//! This lives in the crate (not the test tree) so the chaos-smoke CI job,
//! integration tests, and future soak binaries all drive one
//! implementation.

use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::error::ServeError;
use crate::net::{is_timeout, Conn, Listener, ServeAddr};
use crate::retry::splitmix64;

/// Poll interval of the forwarding loops: reads time out this often to
/// check the shutdown flag, so proxy teardown is bounded.
const POLL: Duration = Duration::from_millis(25);

/// The seeded fault plan of a [`ChaosProxy`].
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    /// Root seed; every per-connection decision derives from it.
    pub seed: u64,
    /// Number of connections to fault before passing the rest through
    /// cleanly (so a resuming client always finishes).
    pub max_faults: u32,
    /// Earliest server→client byte offset at which a faulted connection is
    /// cut.
    pub min_bytes_before_cut: u64,
    /// Latest such offset; the actual cut lands uniformly in
    /// `min..=max` (per-connection, seed-derived).
    pub max_bytes_before_cut: u64,
    /// Forward the server→client bytes in seed-sized fragments of 1..=7
    /// bytes, exercising every partial-read path in the client decoder.
    pub fragment: bool,
    /// Injected stall right before the cut (models a hung server; pair
    /// with a client read timeout to exercise the timeout-resume path).
    pub stall: Option<Duration>,
}

impl Default for ChaosSchedule {
    fn default() -> Self {
        Self {
            seed: 0xC4A0_5EED,
            max_faults: 3,
            min_bytes_before_cut: 1,
            max_bytes_before_cut: 4096,
            fragment: true,
            stall: None,
        }
    }
}

/// One connection's resolved fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ConnPlan {
    /// Cut (truncate + abruptly disconnect) after this many server→client
    /// bytes; `None` passes the connection through.
    cut_after: Option<u64>,
    fragment: bool,
    stall_nanos: Option<u64>,
    /// Seed of this connection's fragment-size PRNG.
    seed: u64,
}

impl ChaosSchedule {
    /// The deterministic plan of connection `index` given how many
    /// connections were already faulted.
    fn plan(&self, index: u32, already_faulted: u32) -> ConnPlan {
        let mut s = self
            .seed
            .wrapping_add(u64::from(index).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let seed = splitmix64(&mut s);
        if already_faulted >= self.max_faults {
            return ConnPlan {
                cut_after: None,
                fragment: self.fragment,
                stall_nanos: None,
                seed,
            };
        }
        let lo = self.min_bytes_before_cut.min(self.max_bytes_before_cut);
        let hi = self.min_bytes_before_cut.max(self.max_bytes_before_cut);
        let span = hi - lo;
        let cut = lo
            + if span == 0 {
                0
            } else {
                splitmix64(&mut s) % (span + 1)
            };
        ConnPlan {
            cut_after: Some(cut),
            fragment: self.fragment,
            stall_nanos: self
                .stall
                .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)),
            seed,
        }
    }
}

/// A fault-injecting proxy in front of a real server. See the
/// [module docs](self).
pub struct ChaosProxy {
    local_addr: ServeAddr,
    shutting_down: Arc<AtomicBool>,
    faulted: Arc<AtomicU32>,
    accept: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("local_addr", &self.local_addr)
            .field("faulted", &self.faulted.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ChaosProxy {
    /// Binds `listen` and forwards every accepted connection to
    /// `upstream`, injecting faults per `schedule`.
    ///
    /// # Errors
    /// [`ServeError::Io`] when `listen` cannot be bound.
    pub fn spawn(
        listen: ServeAddr,
        upstream: ServeAddr,
        schedule: ChaosSchedule,
    ) -> Result<Self, ServeError> {
        let (listener, local_addr) = Listener::bind(&listen)?;
        let shutting_down = Arc::new(AtomicBool::new(false));
        let faulted = Arc::new(AtomicU32::new(0));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shutting_down = Arc::clone(&shutting_down);
            let faulted = Arc::clone(&faulted);
            let workers = Arc::clone(&workers);
            std::thread::Builder::new()
                .name("corrfade-chaos-accept".into())
                .spawn(move || {
                    accept_loop(
                        &listener,
                        &upstream,
                        &schedule,
                        &shutting_down,
                        &faulted,
                        &workers,
                    );
                })
                .map_err(ServeError::Io)?
        };
        Ok(Self {
            local_addr,
            shutting_down,
            faulted,
            accept: Some(accept),
            workers,
        })
    }

    /// The address clients should connect to (TCP port resolved).
    #[must_use]
    pub fn local_addr(&self) -> &ServeAddr {
        &self.local_addr
    }

    /// Connections cut so far (saturates at the schedule's `max_faults`).
    #[must_use]
    pub fn faulted_connections(&self) -> u32 {
        self.faulted.load(Ordering::Relaxed)
    }

    /// Stops accepting, winds down every forwarding thread (bounded by the
    /// poll interval), and removes the Unix socket file.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.shutting_down.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = Conn::connect(&self.local_addr, Duration::from_millis(250));
        let _ = accept.join();
        let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
        drop(workers);
        #[cfg(unix)]
        if let ServeAddr::Unix(path) = &self.local_addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn accept_loop(
    listener: &Listener,
    upstream: &ServeAddr,
    schedule: &ChaosSchedule,
    shutting_down: &Arc<AtomicBool>,
    faulted: &Arc<AtomicU32>,
    workers: &Mutex<Vec<JoinHandle<()>>>,
) {
    let mut index = 0u32;
    loop {
        let client = match listener.accept() {
            Ok(conn) => conn,
            Err(_) if shutting_down.load(Ordering::SeqCst) => return,
            Err(_) => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        if shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let plan = schedule.plan(index, faulted.load(Ordering::Relaxed));
        index = index.wrapping_add(1);
        if plan.cut_after.is_some() {
            faulted.fetch_add(1, Ordering::Relaxed);
        }
        let Ok(server) = Conn::connect(upstream, Duration::from_secs(5)) else {
            // Upstream gone (e.g. killed by a kill-server test): dropping
            // the client conn gives the client a clean reset to retry on.
            continue;
        };
        let (Ok(client_w), Ok(server_w)) = (client.try_clone(), server.try_clone()) else {
            continue;
        };
        let up = spawn_forward("corrfade-chaos-up", client, server_w, None, shutting_down);
        let down = spawn_forward(
            "corrfade-chaos-down",
            server,
            client_w,
            Some(plan),
            shutting_down,
        );
        let mut entries = workers.lock().unwrap_or_else(PoisonError::into_inner);
        entries.retain(|h| !h.is_finished());
        entries.extend(up.into_iter().chain(down));
    }
}

fn spawn_forward(
    name: &str,
    from: Conn,
    to: Conn,
    plan: Option<ConnPlan>,
    shutting_down: &Arc<AtomicBool>,
) -> Option<JoinHandle<()>> {
    let shutting_down = Arc::clone(shutting_down);
    std::thread::Builder::new()
        .name(name.into())
        .spawn(move || forward(from, to, plan, &shutting_down))
        .ok()
}

/// Pumps `from` into `to`. With a plan, applies fragmentation and the cut:
/// after `cut_after` forwarded bytes the remainder is discarded, the
/// optional stall is injected, and both sockets are shut down — the client
/// sees a truncated stream ending in an abrupt disconnect.
fn forward(mut from: Conn, mut to: Conn, plan: Option<ConnPlan>, shutting_down: &AtomicBool) {
    let _ = from.set_timeouts(Some(POLL), Some(Duration::from_secs(5)));
    let _ = to.set_timeouts(Some(POLL), Some(Duration::from_secs(5)));
    let mut rng = plan.map_or(0, |p| p.seed);
    let mut forwarded = 0u64;
    let mut buf = [0u8; 4096];
    loop {
        if shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if is_timeout(&e) => continue,
            Err(_) => break,
        };
        let mut rest = &buf[..n];
        while !rest.is_empty() {
            let take = match plan {
                Some(p) if p.fragment => {
                    // 1..=7-byte fragments: every frame boundary in the
                    // peer's decoder sees partial reads.
                    (1 + usize::try_from(splitmix64(&mut rng) % 7).expect("< 7")).min(rest.len())
                }
                _ => rest.len(),
            };
            if let Some(ConnPlan {
                cut_after: Some(cut),
                stall_nanos,
                ..
            }) = plan
            {
                if forwarded + take as u64 > cut {
                    let allowed = usize::try_from(cut.saturating_sub(forwarded)).unwrap_or(0);
                    let _ = to.write_all(&rest[..allowed.min(rest.len())]);
                    if let Some(nanos) = stall_nanos {
                        std::thread::sleep(Duration::from_nanos(nanos));
                    }
                    to.shutdown_both();
                    from.shutdown_both();
                    return;
                }
            }
            if to.write_all(&rest[..take]).is_err() {
                from.shutdown_both();
                return;
            }
            forwarded += take as u64;
            rest = &rest[take..];
        }
    }
    // Clean EOF (or shutdown): propagate end-of-stream to the reader.
    to.shutdown_write();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_in_seed_and_index() {
        let schedule = ChaosSchedule::default();
        for index in 0..8 {
            assert_eq!(schedule.plan(index, 0), schedule.plan(index, 0));
        }
        // Different connections get different cut offsets (with this
        // schedule's 4 KiB span, a collision across 4 indices would be a
        // seeding bug, not chance).
        let cuts: Vec<_> = (0..4).map(|i| schedule.plan(i, 0).cut_after).collect();
        let mut unique = cuts.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), cuts.len(), "cut offsets collide: {cuts:?}");
        // A different seed reshuffles the schedule.
        let other = ChaosSchedule {
            seed: 1,
            ..ChaosSchedule::default()
        };
        assert_ne!(
            schedule.plan(0, 0).cut_after,
            other.plan(0, 0).cut_after,
            "seed must drive the schedule"
        );
    }

    #[test]
    fn faulted_budget_turns_plans_clean() {
        let schedule = ChaosSchedule {
            max_faults: 2,
            ..ChaosSchedule::default()
        };
        assert!(schedule.plan(0, 0).cut_after.is_some());
        assert!(schedule.plan(5, 1).cut_after.is_some());
        assert!(schedule.plan(9, 2).cut_after.is_none(), "budget spent");
        let plan = schedule.plan(3, 7);
        assert_eq!(plan.cut_after, None);
        assert_eq!(plan.stall_nanos, None);
    }

    #[test]
    fn cut_offsets_respect_the_configured_window() {
        let schedule = ChaosSchedule {
            min_bytes_before_cut: 100,
            max_bytes_before_cut: 200,
            ..ChaosSchedule::default()
        };
        for index in 0..64 {
            let cut = schedule.plan(index, 0).cut_after.expect("faulted");
            assert!((100..=200).contains(&cut), "cut {cut} outside window");
        }
    }
}

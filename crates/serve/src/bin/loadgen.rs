//! `loadgen` — concurrent-session load generator for `corrfade-serve`.
//!
//! Boots an in-process server (or targets an external one), opens
//! `--sessions` concurrent connections, releases them through a barrier,
//! and streams `--blocks` Doppler blocks per session, recording per-block
//! and per-session latency. Reports p50/p95/p99 block latency, session
//! p50 and aggregate samples/sec; with `--json-dir` (or the
//! `CORRFADE_BENCH_JSON_DIR` environment variable) the medians land in
//! `BENCH_serve_loadgen.json` in the workspace bench-report format, so
//! `bench_regression_check` gates them like any other benchmark.
//!
//! ```text
//! loadgen [--sessions N] [--blocks B] [--scenario a,b,...] [--seed S]
//!         [--tcp HOST:PORT | --unix PATH          — bind in-process server]
//!         [--connect-tcp HOST:PORT | --connect-unix PATH — external server]
//!         [--timeout-secs T] [--json-dir DIR]
//! ```
//!
//! Defaults: 1000 sessions × 2 blocks of `two-envelope-complex` over an
//! in-process Unix-socket server in the system temp directory.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use corrfade::SampleBlock;
use corrfade_serve::{Client, RetryPolicy, ServeAddr, Server, ServerConfig};

/// Parsed command line.
struct Args {
    sessions: usize,
    blocks: u32,
    scenarios: Vec<String>,
    seed: u64,
    /// `None` boots an in-process server on `bind`; `Some` targets an
    /// already-running one.
    connect: Option<ServeAddr>,
    bind: ServeAddr,
    timeout: Duration,
    json_dir: Option<PathBuf>,
}

fn default_bind() -> ServeAddr {
    #[cfg(unix)]
    {
        ServeAddr::Unix(
            std::env::temp_dir().join(format!("corrfade-loadgen-{}.sock", std::process::id())),
        )
    }
    #[cfg(not(unix))]
    {
        ServeAddr::Tcp("127.0.0.1:0".parse().expect("static addr parses"))
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sessions: 1000,
        blocks: 2,
        scenarios: vec!["two-envelope-complex".to_string()],
        seed: 0x5EED,
        connect: None,
        bind: default_bind(),
        timeout: Duration::from_secs(60),
        json_dir: std::env::var_os("CORRFADE_BENCH_JSON_DIR").map(PathBuf::from),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--sessions" => {
                args.sessions = value("--sessions")?
                    .parse()
                    .map_err(|e| format!("--sessions: {e}"))?;
            }
            "--blocks" => {
                args.blocks = value("--blocks")?
                    .parse()
                    .map_err(|e| format!("--blocks: {e}"))?;
            }
            "--scenario" => {
                args.scenarios = value("--scenario")?
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--tcp" => {
                args.bind =
                    ServeAddr::Tcp(value("--tcp")?.parse().map_err(|e| format!("--tcp: {e}"))?);
            }
            #[cfg(unix)]
            "--unix" => args.bind = ServeAddr::Unix(PathBuf::from(value("--unix")?)),
            "--connect-tcp" => {
                args.connect = Some(ServeAddr::Tcp(
                    value("--connect-tcp")?
                        .parse()
                        .map_err(|e| format!("--connect-tcp: {e}"))?,
                ));
            }
            #[cfg(unix)]
            "--connect-unix" => {
                args.connect = Some(ServeAddr::Unix(PathBuf::from(value("--connect-unix")?)));
            }
            "--timeout-secs" => {
                args.timeout = Duration::from_secs(
                    value("--timeout-secs")?
                        .parse()
                        .map_err(|e| format!("--timeout-secs: {e}"))?,
                );
            }
            "--json-dir" => args.json_dir = Some(PathBuf::from(value("--json-dir")?)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.sessions == 0 {
        return Err("--sessions must be at least 1".to_string());
    }
    if args.scenarios.iter().any(String::is_empty) {
        return Err("--scenario names must be non-empty".to_string());
    }
    Ok(args)
}

/// What one session thread brings home.
struct SessionResult {
    /// Per-block `next_block_into` latency, nanoseconds.
    block_ns: Vec<u64>,
    /// Subscribe-to-end-frame wall time, nanoseconds.
    session_ns: u64,
    /// Complex samples received.
    samples: u64,
    error: Option<String>,
}

/// Connects with retry: the listener backlog (128) is far smaller than the
/// session count, so early connects race the accept loop and must back
/// off. Uses the public [`Client::connect_with_retry`] policy (jittered
/// backoff), sized to the `--timeout-secs` budget.
fn connect_with_retry(addr: &ServeAddr, timeout: Duration) -> Result<Client, String> {
    Client::connect_with_retry(addr, &RetryPolicy::within(timeout))
        .map_err(|e| format!("connect to {addr}: {e}"))
}

fn run_session(
    addr: &ServeAddr,
    scenario: &str,
    seed: u64,
    blocks: u32,
    timeout: Duration,
    start: &Barrier,
    peak_probe: &AtomicU64,
) -> SessionResult {
    let mut result = SessionResult {
        block_ns: Vec::with_capacity(blocks as usize),
        session_ns: 0,
        samples: 0,
        error: None,
    };
    let mut client = match connect_with_retry(addr, timeout) {
        Ok(client) => client,
        Err(e) => {
            result.error = Some(e);
            start.wait();
            return result;
        }
    };
    // All sessions hold their connection open here — the barrier is the
    // concurrency high-water mark.
    peak_probe.fetch_add(1, Ordering::Relaxed);
    start.wait();

    let session_start = Instant::now();
    let header = match client.subscribe(scenario, seed, blocks) {
        Ok(header) => header,
        Err(e) => {
            result.error = Some(format!("subscribe `{scenario}`: {e}"));
            return result;
        }
    };
    let block_samples = u64::from(header.envelopes) * u64::from(header.samples);
    let mut block = SampleBlock::empty();
    loop {
        let t = Instant::now();
        match client.next_block_into(&mut block) {
            Ok(Some(_)) => {
                result
                    .block_ns
                    .push(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
                result.samples += block_samples;
            }
            Ok(None) => break,
            Err(e) => {
                result.error = Some(format!("stream `{scenario}`: {e}"));
                break;
            }
        }
    }
    result.session_ns = u64::try_from(session_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    result
}

/// Nearest-rank percentile of a **sorted** slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn format_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn write_json_report(
    dir: &std::path::Path,
    block_sorted: &[u64],
    session_sorted: &[u64],
    wall_ns_per_block: f64,
    samples_per_block: u64,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_serve_loadgen.json");
    let mut out = std::fs::File::create(&path)?;
    writeln!(out, "{{")?;
    writeln!(out, "  \"bench\": \"serve_loadgen\",")?;
    writeln!(out, "  \"results\": [")?;
    writeln!(
        out,
        "    {{\"id\": \"serve/loadgen/block_p50\", \"median_ns\": {:.1}}},",
        percentile(block_sorted, 50.0) as f64
    )?;
    writeln!(
        out,
        "    {{\"id\": \"serve/loadgen/block_p95\", \"median_ns\": {:.1}}},",
        percentile(block_sorted, 95.0) as f64
    )?;
    writeln!(
        out,
        "    {{\"id\": \"serve/loadgen/block_p99\", \"median_ns\": {:.1}}},",
        percentile(block_sorted, 99.0) as f64
    )?;
    writeln!(
        out,
        "    {{\"id\": \"serve/loadgen/session_p50\", \"median_ns\": {:.1}}},",
        percentile(session_sorted, 50.0) as f64
    )?;
    writeln!(
        out,
        "    {{\"id\": \"serve/loadgen/wall_per_block\", \"median_ns\": {wall_ns_per_block:.1}, \
         \"throughput\": {{\"elements\": {samples_per_block}}}}}"
    )?;
    writeln!(out, "  ]")?;
    writeln!(out, "}}")?;
    eprintln!("loadgen: wrote {}", path.display());
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };

    // Boot the in-process server unless an external one was given.
    let server = if args.connect.is_none() {
        match Server::bind(args.bind.clone(), ServerConfig::default()) {
            Ok(server) => Some(server),
            Err(e) => {
                eprintln!("loadgen: bind {}: {e}", args.bind);
                std::process::exit(1);
            }
        }
    } else {
        None
    };
    let addr = args
        .connect
        .clone()
        .unwrap_or_else(|| server.as_ref().expect("bound above").local_addr().clone());

    println!(
        "serve-loadgen: {} sessions x {} blocks, scenario(s) {} via {addr}",
        args.sessions,
        args.blocks,
        args.scenarios.join(",")
    );

    let barrier = Arc::new(Barrier::new(args.sessions + 1));
    let peak_probe = Arc::new(AtomicU64::new(0));
    let addr = Arc::new(addr);
    let scenarios: Arc<Vec<String>> = Arc::new(args.scenarios.clone());

    let mut handles = Vec::with_capacity(args.sessions);
    for i in 0..args.sessions {
        let barrier = Arc::clone(&barrier);
        let peak_probe = Arc::clone(&peak_probe);
        let addr = Arc::clone(&addr);
        let scenarios = Arc::clone(&scenarios);
        let blocks = args.blocks;
        let timeout = args.timeout;
        let seed = args.seed.wrapping_add(i as u64);
        let handle = std::thread::Builder::new()
            .name(format!("loadgen-{i}"))
            // Sessions mostly block on sockets; a small stack keeps
            // thousands of them cheap.
            .stack_size(128 * 1024)
            .spawn(move || {
                let scenario = &scenarios[i % scenarios.len()];
                run_session(
                    &addr,
                    scenario,
                    seed,
                    blocks,
                    timeout,
                    &barrier,
                    &peak_probe,
                )
            })
            .expect("spawning a session thread");
        handles.push(handle);
    }

    // Releases every session at once; the wall clock starts here.
    barrier.wait();
    let concurrent = peak_probe.load(Ordering::Relaxed);
    let wall_start = Instant::now();

    let mut block_ns = Vec::new();
    let mut session_ns = Vec::new();
    let mut total_samples = 0u64;
    let mut failures: Vec<String> = Vec::new();
    for handle in handles {
        let result = handle.join().expect("session thread panicked");
        block_ns.extend_from_slice(&result.block_ns);
        if result.error.is_none() {
            session_ns.push(result.session_ns);
        } else if let Some(e) = result.error {
            failures.push(e);
        }
        total_samples += result.samples;
    }
    let wall = wall_start.elapsed();

    block_ns.sort_unstable();
    session_ns.sort_unstable();
    let ok = args.sessions - failures.len();
    let total_blocks = block_ns.len() as u64;
    let wall_ns = wall.as_nanos() as f64;
    let samples_per_sec = if wall.as_secs_f64() > 0.0 {
        total_samples as f64 / wall.as_secs_f64()
    } else {
        0.0
    };

    println!("  sessions_ok ....... {ok}/{}", args.sessions);
    println!("  concurrent_at_bar . {concurrent}");
    println!(
        "  block p50/p95/p99 . {} / {} / {}",
        format_ns(percentile(&block_ns, 50.0)),
        format_ns(percentile(&block_ns, 95.0)),
        format_ns(percentile(&block_ns, 99.0)),
    );
    println!(
        "  session p50 ....... {}",
        format_ns(percentile(&session_ns, 50.0))
    );
    println!("  blocks/samples .... {total_blocks} / {total_samples}");
    println!(
        "  samples/sec ....... {samples_per_sec:.3e}  (wall {})",
        format_ns(wall.as_nanos().min(u128::from(u64::MAX)) as u64)
    );
    for e in failures.iter().take(5) {
        eprintln!("  failure: {e}");
    }
    if failures.len() > 5 {
        eprintln!("  … and {} more failures", failures.len() - 5);
    }

    if let Some(dir) = &args.json_dir {
        let samples_per_block = total_samples.checked_div(total_blocks).unwrap_or(0);
        let wall_per_block = if total_blocks > 0 {
            wall_ns / total_blocks as f64
        } else {
            0.0
        };
        if let Err(e) = write_json_report(
            dir,
            &block_ns,
            &session_ns,
            wall_per_block,
            samples_per_block,
        ) {
            eprintln!("loadgen: writing JSON report: {e}");
            std::process::exit(1);
        }
    }

    if let Some(server) = server {
        let stats = server.stats();
        println!(
            "  server stats ...... accepted {} blocks_sent {} error_frames {}",
            stats.accepted, stats.blocks_sent, stats.error_frames
        );
        if let Err(e) = server.shutdown() {
            eprintln!("loadgen: shutdown: {e}");
            std::process::exit(1);
        }
    }

    if !failures.is_empty() {
        std::process::exit(1);
    }
}

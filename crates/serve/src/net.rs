//! Transport abstraction: one address/listener/stream surface over TCP and
//! Unix-domain sockets, std-only.
//!
//! The protocol and server logic are transport-agnostic; this module is the
//! only place that knows whether bytes ride on `TcpStream` or `UnixStream`.
//! Unix sockets are the low-overhead local transport (the CI smoke job and
//! the allocation-regression test use them); TCP is the cross-host one.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::time::Duration;

/// Whether an I/O error is a socket **read/write timeout**. Which kind a
/// timed-out socket operation yields is platform-dependent — Unix sockets
/// report `WouldBlock`, TCP on some platforms reports `TimedOut` — so every
/// retry/idle decision in the client and server goes through this one
/// predicate instead of matching either kind directly.
#[must_use]
pub fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Where a server listens (or a client connects): a TCP socket address or a
/// Unix-domain socket path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeAddr {
    /// TCP transport. Port `0` asks the OS for an ephemeral port; the bound
    /// server reports the real one via `Server::local_addr`.
    Tcp(SocketAddr),
    /// Unix-domain socket path. The server unlinks a stale file at bind and
    /// removes the live one on shutdown.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl std::fmt::Display for ServeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeAddr::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            ServeAddr::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// A bound listener on either transport.
#[derive(Debug)]
pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Binds `addr`, replacing a stale Unix socket file if one exists.
    pub(crate) fn bind(addr: &ServeAddr) -> std::io::Result<(Self, ServeAddr)> {
        match addr {
            ServeAddr::Tcp(tcp) => {
                let listener = TcpListener::bind(tcp)?;
                let local = ServeAddr::Tcp(listener.local_addr()?);
                Ok((Listener::Tcp(listener), local))
            }
            #[cfg(unix)]
            ServeAddr::Unix(path) => {
                // A previous unclean shutdown leaves the socket file behind;
                // binding over it requires removing it first.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                Ok((Listener::Unix(listener), ServeAddr::Unix(path.clone())))
            }
        }
    }

    /// Blocks until the next inbound connection.
    pub(crate) fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(listener) => listener.accept().map(|(s, _)| {
                // Frames are small and written in one `write_all`; Nagle
                // batching only adds latency on the block boundary.
                let _ = s.set_nodelay(true);
                Conn::Tcp(s)
            }),
            #[cfg(unix)]
            Listener::Unix(listener) => listener.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

/// One accepted or dialed connection on either transport.
#[derive(Debug)]
pub enum Conn {
    /// TCP connection (`TCP_NODELAY` enabled).
    Tcp(TcpStream),
    /// Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Dials `addr`, waiting at most `timeout` for TCP connection setup.
    /// (Unix-domain connects either succeed immediately or fail; the
    /// timeout applies to the subsequent reads/writes for both transports.)
    pub fn connect(addr: &ServeAddr, timeout: Duration) -> std::io::Result<Self> {
        let conn = match addr {
            ServeAddr::Tcp(tcp) => {
                let stream = TcpStream::connect_timeout(tcp, timeout)?;
                let _ = stream.set_nodelay(true);
                Conn::Tcp(stream)
            }
            #[cfg(unix)]
            ServeAddr::Unix(path) => Conn::Unix(UnixStream::connect(path)?),
        };
        conn.set_timeouts(Some(timeout), Some(timeout))?;
        Ok(conn)
    }

    /// Applies read/write timeouts (`None` blocks forever).
    pub(crate) fn set_timeouts(
        &self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => {
                s.set_read_timeout(read)?;
                s.set_write_timeout(write)
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                s.set_read_timeout(read)?;
                s.set_write_timeout(write)
            }
        }
    }

    /// A second handle to the same socket (used by the server to force
    /// blocked connection threads off their reads during shutdown).
    pub(crate) fn try_clone(&self) -> std::io::Result<Self> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    /// Shuts the write direction down, signalling end-of-stream to the
    /// peer while leaving the read side open for draining.
    pub(crate) fn shutdown_write(&self) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Write);
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Write);
            }
        }
    }

    /// Shuts both directions down, waking any thread blocked on this
    /// socket with an immediate end-of-stream/error.
    pub(crate) fn shutdown_both(&self) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shows_the_transport() {
        let tcp = ServeAddr::Tcp("127.0.0.1:9000".parse().unwrap());
        assert_eq!(tcp.to_string(), "tcp://127.0.0.1:9000");
        #[cfg(unix)]
        {
            let unix = ServeAddr::Unix(PathBuf::from("/tmp/corrfade.sock"));
            assert_eq!(unix.to_string(), "unix:///tmp/corrfade.sock");
        }
    }
}

//! Fault-tolerant client machinery: retrying connects and self-resuming
//! streams.
//!
//! [`RetryPolicy`] is the one retry/backoff knob set of the crate —
//! exponential backoff with jitter (deterministic when seeded, so tests
//! can pin schedules) and an attempt budget that turns into a typed
//! [`ServeError::RetriesExhausted`] give-up. [`Client::connect_with_retry`]
//! uses it for connection establishment (promoted from the loadgen binary,
//! which now shares the same tested path), and [`ResumingStream`] builds on
//! it to survive mid-stream faults: on a read timeout, EOF, reset, or a
//! transient server refusal (`BUSY`, `SERVER_SHUTDOWN`) it reconnects and
//! sends a **v2 resume request** at its current block cursor, so the
//! delivered sample sequence is bit-identical to an uninterrupted stream —
//! no block replayed, none skipped. The chaos test suite drives both
//! through deterministic fault injection to pin that guarantee.

use std::time::Duration;

use corrfade::SampleBlock;

use crate::client::{Client, StreamHeader};
use crate::error::ServeError;
use crate::net::{is_timeout, ServeAddr};
use crate::protocol::code;

/// Exponential backoff with jitter plus an attempt budget.
///
/// Attempt `k` (zero-based) sleeps a uniformly jittered duration in
/// `[base/2, base]` where `base = min(initial_backoff · 2^k, max_backoff)`
/// — jitter decorrelates clients that all lost the same server, so the
/// reconnect stampede spreads out instead of arriving in lockstep.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts before giving up with [`ServeError::RetriesExhausted`].
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub initial_backoff: Duration,
    /// Backoff growth cap.
    pub max_backoff: Duration,
    /// Connect/read/write timeout applied to every attempt's socket.
    pub io_timeout: Duration,
    /// Seed of the jitter PRNG. `None` (the default) seeds from process
    /// entropy; tests pin a seed for reproducible schedules.
    pub jitter_seed: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            io_timeout: Duration::from_secs(30),
            jitter_seed: None,
        }
    }
}

impl RetryPolicy {
    /// A policy sized for a wall-clock budget: retries with the default
    /// backoff shape for roughly `budget` before giving up (what loadgen
    /// uses to translate its `--timeout-secs` into an attempt count).
    #[must_use]
    pub fn within(budget: Duration) -> Self {
        let policy = Self {
            io_timeout: budget,
            ..Self::default()
        };
        // Steady-state sleep is ~3/4 of max_backoff per attempt.
        let steady = policy.max_backoff.as_millis().max(1) * 3 / 4;
        Self {
            max_attempts: u32::try_from((budget.as_millis() / steady).max(10)).unwrap_or(u32::MAX),
            ..policy
        }
    }
}

/// SplitMix64 step — the crate-local PRNG behind backoff jitter and the
/// chaos layer's fault schedules (no external deps; the statistical
/// quality bar for either is low).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One retry loop's backoff state.
pub(crate) struct Backoff {
    base: Duration,
    max: Duration,
    rng: u64,
}

impl Backoff {
    pub(crate) fn new(policy: &RetryPolicy) -> Self {
        let rng = policy.jitter_seed.unwrap_or_else(|| {
            use std::hash::{BuildHasher, Hasher};
            // Randomly seeded per process by std — entropy without a
            // dependency on an RNG crate.
            std::collections::hash_map::RandomState::new()
                .build_hasher()
                .finish()
        });
        Self {
            base: policy.initial_backoff,
            max: policy.max_backoff,
            rng,
        }
    }

    /// The next jittered backoff duration (advances the schedule).
    pub(crate) fn next_delay(&mut self) -> Duration {
        let base = self.base;
        self.base = (self.base * 2).min(self.max);
        let nanos = u64::try_from(base.as_nanos()).unwrap_or(u64::MAX);
        let jittered = nanos / 2 + splitmix64(&mut self.rng) % (nanos / 2 + 1);
        Duration::from_nanos(jittered)
    }

    /// Sleeps for the next jittered backoff.
    pub(crate) fn sleep(&mut self) {
        std::thread::sleep(self.next_delay());
    }
}

/// Whether `error` is a transient fault worth a reconnect-and-resume:
/// socket timeouts ([`is_timeout`] — `WouldBlock` and `TimedOut` are the
/// same platform-dependent condition), resets, EOFs, and the server's two
/// transient refusals (`BUSY` admission control, `SERVER_SHUTDOWN`).
/// Protocol violations and typed request rejections are real errors and
/// surface immediately.
#[must_use]
pub fn is_resumable(error: &ServeError) -> bool {
    match error {
        ServeError::Io(e) => {
            is_timeout(e)
                || matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::ConnectionRefused
                        | std::io::ErrorKind::BrokenPipe
                        | std::io::ErrorKind::UnexpectedEof
                )
        }
        ServeError::ConnectionClosed { .. } => true,
        ServeError::Server { code, .. } => *code == code::BUSY || *code == code::SERVER_SHUTDOWN,
        _ => false,
    }
}

/// A [`Client`] stream that transparently survives connection loss.
///
/// Wraps the subscribe-and-stream state machine with a block cursor: every
/// delivered block advances the cursor, and any resumable fault (see
/// [`is_resumable`]) tears the connection down, reconnects with the
/// policy's backoff, and re-subscribes **at the cursor** via a v2 resume
/// request. The server fast-forwards a fresh stream to that position, so
/// the caller observes one gapless, duplicate-free, bit-exact block
/// sequence regardless of how many times the transport failed underneath.
///
/// When the retry budget runs out mid-stream, the stream yields
/// [`ServeError::RetriesExhausted`] carrying the final attempt's error.
#[derive(Debug)]
pub struct ResumingStream {
    addr: ServeAddr,
    policy: RetryPolicy,
    scenario: String,
    seed: u64,
    /// Total blocks the caller asked for.
    blocks: u32,
    /// Absolute index of the first block of this stream (initial cursor).
    start: u64,
    /// Absolute index of the next expected block.
    cursor: u64,
    header: Option<StreamHeader>,
    client: Option<Client>,
    reconnects: u32,
    done: bool,
}

impl ResumingStream {
    /// Connects (with retry) and subscribes a fresh stream.
    ///
    /// # Errors
    /// [`ServeError::RetriesExhausted`] when the policy's budget runs out,
    /// or any non-transient subscribe error (unknown scenario, …).
    pub fn open(
        addr: &ServeAddr,
        policy: RetryPolicy,
        scenario: &str,
        seed: u64,
        blocks: u32,
    ) -> Result<Self, ServeError> {
        Self::open_at(addr, policy, scenario, seed, blocks, 0)
    }

    /// [`ResumingStream::open`] starting at an explicit block cursor — what
    /// a consumer that persisted its position across a process restart uses
    /// to continue where it stopped.
    ///
    /// # Errors
    /// As [`ResumingStream::open`].
    pub fn open_at(
        addr: &ServeAddr,
        policy: RetryPolicy,
        scenario: &str,
        seed: u64,
        blocks: u32,
        cursor: u64,
    ) -> Result<Self, ServeError> {
        let mut stream = Self {
            addr: addr.clone(),
            policy,
            scenario: scenario.to_string(),
            seed,
            blocks,
            start: cursor,
            cursor,
            header: None,
            client: None,
            reconnects: 0,
            done: false,
        };
        stream.resubscribe()?;
        Ok(stream)
    }

    /// The stream header from the first successful subscribe.
    #[must_use]
    pub fn header(&self) -> Option<StreamHeader> {
        self.header
    }

    /// Absolute index of the next block this stream expects.
    #[must_use]
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Reconnect-and-resume cycles performed so far.
    #[must_use]
    pub fn reconnects(&self) -> u32 {
        self.reconnects
    }

    /// Blocks not yet delivered.
    fn remaining(&self) -> u32 {
        let delivered = u32::try_from(self.cursor - self.start).unwrap_or(u32::MAX);
        self.blocks.saturating_sub(delivered)
    }

    /// Connects and subscribes at the current cursor, retrying transient
    /// failures within the policy's budget.
    fn resubscribe(&mut self) -> Result<(), ServeError> {
        let mut backoff = Backoff::new(&self.policy);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let attempt = Client::connect_timeout(&self.addr, self.policy.io_timeout).and_then(
                |mut client| {
                    client
                        .subscribe_at(&self.scenario, self.seed, self.remaining(), self.cursor)
                        .map(|header| (client, header))
                },
            );
            match attempt {
                Ok((client, header)) => {
                    if self.header.is_none() {
                        self.header = Some(header);
                    }
                    self.client = Some(client);
                    return Ok(());
                }
                Err(e) if !is_resumable(&e) => return Err(e),
                Err(e) if attempts >= self.policy.max_attempts => {
                    return Err(ServeError::RetriesExhausted {
                        attempts,
                        last: Box::new(e),
                    });
                }
                Err(_) => backoff.sleep(),
            }
        }
    }

    /// Reads the next block, reconnecting and resuming across any number
    /// of transient faults. Returns `Ok(Some(absolute_index))` per block
    /// and `Ok(None)` once all requested blocks arrived.
    ///
    /// A faulted frame never reaches `block`: the client buffers a full
    /// frame before decoding, so an interrupted read leaves `block` at its
    /// previous contents and the retry delivers the same index exactly
    /// once.
    ///
    /// # Errors
    /// [`ServeError::RetriesExhausted`] when a reconnect budget runs out;
    /// any non-transient protocol/server error immediately.
    pub fn next_block_into(&mut self, block: &mut SampleBlock) -> Result<Option<u32>, ServeError> {
        if self.done {
            return Ok(None);
        }
        loop {
            if self.client.is_none() {
                self.reconnects += 1;
                self.resubscribe()?;
            }
            let client = self.client.as_mut().expect("subscribed above");
            match client.next_block_into(block) {
                Ok(Some(index)) => {
                    self.cursor += 1;
                    return Ok(Some(index));
                }
                Ok(None) => {
                    if self.remaining() == 0 {
                        self.done = true;
                        self.client = None;
                        return Ok(None);
                    }
                    // End frame before every block arrived: the server cut
                    // the stream short (drain). Resume for the rest.
                    self.client = None;
                }
                Err(e) if is_resumable(&e) => {
                    self.client = None;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads the whole (remaining) stream into freshly allocated blocks —
    /// the convenience mirror of [`Client::collect_blocks`].
    ///
    /// # Errors
    /// Any error [`ResumingStream::next_block_into`] can produce.
    pub fn collect_blocks(&mut self) -> Result<Vec<SampleBlock>, ServeError> {
        let mut blocks = Vec::new();
        loop {
            let mut block = SampleBlock::empty();
            match self.next_block_into(&mut block)? {
                Some(_) => blocks.push(block),
                None => return Ok(blocks),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_backoff_schedules_are_deterministic_and_jittered() {
        let policy = RetryPolicy {
            jitter_seed: Some(7),
            ..RetryPolicy::default()
        };
        let delays = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(&RetryPolicy {
                jitter_seed: Some(seed),
                ..policy.clone()
            });
            (0..8).map(|_| b.next_delay()).collect()
        };
        assert_eq!(delays(7), delays(7), "same seed, same schedule");
        assert_ne!(delays(7), delays(8), "different seed, different jitter");
        for (k, d) in delays(7).iter().enumerate() {
            let base = (policy.initial_backoff * 2u32.pow(u32::try_from(k).unwrap().min(10)))
                .min(policy.max_backoff);
            assert!(
                *d >= base / 2 && *d <= base,
                "attempt {k}: {d:?} outside [{:?}, {base:?}]",
                base / 2
            );
        }
    }

    #[test]
    fn within_budget_scales_the_attempt_count() {
        let short = RetryPolicy::within(Duration::from_millis(500));
        let long = RetryPolicy::within(Duration::from_secs(60));
        assert!(long.max_attempts > short.max_attempts);
        assert!(short.max_attempts >= 10);
    }

    #[test]
    fn resumable_classification_matches_the_contract() {
        use std::io::{Error, ErrorKind};
        for kind in [
            ErrorKind::WouldBlock,
            ErrorKind::TimedOut,
            ErrorKind::ConnectionReset,
            ErrorKind::ConnectionRefused,
            ErrorKind::BrokenPipe,
            ErrorKind::UnexpectedEof,
        ] {
            assert!(
                is_resumable(&ServeError::Io(Error::new(kind, "x"))),
                "{kind:?} should be resumable"
            );
        }
        assert!(is_resumable(&ServeError::ConnectionClosed { during: "x" }));
        for code in [code::BUSY, code::SERVER_SHUTDOWN] {
            assert!(is_resumable(&ServeError::Server {
                code,
                message: String::new()
            }));
        }
        assert!(!is_resumable(&ServeError::Server {
            code: code::UNKNOWN_SCENARIO,
            message: String::new()
        }));
        assert!(!is_resumable(&ServeError::Protocol(
            crate::protocol::ProtocolError::ServerShutdown
        )));
    }
}

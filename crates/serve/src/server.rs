//! The channel-as-a-service server: accepts TCP/Unix-socket connections,
//! resolves each request against the scenario registry, and streams
//! length-prefixed [`SampleBlock`](corrfade::SampleBlock)-framed Doppler
//! blocks from a shared [`StreamFleet`].
//!
//! ## Threading model
//!
//! One accept thread plus one thread per live connection. Every connection
//! subscribes its `(scenario, seed)` stream into the shared fleet (behind
//! an `RwLock`: subscribe/unsubscribe take the write lock for microseconds,
//! block generation takes read locks, so connections generate
//! concurrently), owns **one pooled block** inside its fleet slot and one
//! pooled wire buffer — after the first block, a connection's steady state
//! performs **zero heap allocation** (encode into the warm buffer, generate
//! into the pooled block, `write_all` to the socket; the workspace
//! allocation-regression test measures this through a real socket).
//!
//! ## Failure behavior
//!
//! * Malformed requests, unknown scenarios (with a did-you-mean
//!   suggestion), version mismatches and build failures are answered with a
//!   typed **error frame** before the connection closes — never a silent
//!   drop.
//! * A client that disappears mid-stream only tears down its own
//!   subscription; the fleet and every other connection are untouched.
//! * When [`ServerConfig::max_sessions`] is set, a connection beyond the
//!   cap is answered with a typed `BUSY` error frame (admission control)
//!   instead of queueing behind the accept backlog; the client's retry
//!   machinery treats it as transient and backs off.
//! * A v2 **resume** request (non-zero block cursor) fast-forwards a fresh
//!   subscription past the cursor — replaying only the RNG draws, skipping
//!   IDFT/coloring work — so the resumed stream is bit-identical to the
//!   uninterrupted one from that cursor.
//! * [`Server::shutdown`] stops accepting, then **drains**: in-flight
//!   connections get [`ServerConfig::drain_timeout`] to finish their
//!   current block and send a `SERVER_SHUTDOWN` error frame before any
//!   still-blocked socket is forcibly interrupted; all threads are joined
//!   and the Unix socket file is removed.

use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use corrfade_parallel::{StreamFleet, StreamKey};
use corrfade_scenarios::{lookup, ScenarioError};

use crate::error::ServeError;
use crate::net::{Conn, Listener, ServeAddr};
use crate::protocol::{
    decode_request_cursor, decode_request_header, decode_request_name, encode_block_frame,
    encode_end_frame, encode_error_frame, encode_header_frame, ProtocolError, Request,
    REQUEST_HEADER_LEN,
};

/// Number of distinct wire error codes (plus the unused slot 0) tracked by
/// the per-code counters: codes `1..=12` index directly into the array.
pub const ERROR_CODE_SLOTS: usize = 13;

/// Server tuning knobs. `Default` suits tests and local use.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Longest the server waits for a client's request bytes before giving
    /// the connection up — the per-connection idle deadline: a client that
    /// connects and never completes a request is dropped after this long.
    pub read_timeout: Duration,
    /// Longest one frame write may block on a slow consumer.
    pub write_timeout: Duration,
    /// Admission control: maximum concurrent sessions. A connection beyond
    /// the cap is answered with a typed `BUSY` error frame and closed.
    /// `None` (the default) accepts everything.
    pub max_sessions: Option<u64>,
    /// How long [`Server::shutdown`] waits for in-flight connections to
    /// finish their current block (and send the `SERVER_SHUTDOWN` frame)
    /// before forcibly interrupting their sockets.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_sessions: None,
            drain_timeout: Duration::from_secs(1),
        }
    }
}

/// Monotonic counters the lifecycle tests and operators read; all relaxed,
/// all cheap.
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    active: AtomicU64,
    blocks_sent: AtomicU64,
    error_frames: AtomicU64,
    resumed_sessions: AtomicU64,
    /// Error frames broken down by wire code (index = code, slot 0 unused).
    errors_by_code: [AtomicU64; ERROR_CODE_SLOTS],
}

/// A point-in-time snapshot of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted since bind.
    pub accepted: u64,
    /// Connections currently being served.
    pub active: u64,
    /// Block frames written since bind.
    pub blocks_sent: u64,
    /// Error frames written since bind.
    pub error_frames: u64,
    /// Sessions that resumed at a non-zero v2 cursor since bind.
    pub resumed_sessions: u64,
    /// Error frames broken down by wire code: `errors_by_code[code]` for
    /// codes `1..=12` (slot 0 is unused); see [`ServerStats::error_count`].
    pub errors_by_code: [u64; ERROR_CODE_SLOTS],
    /// Live fleet subscriptions (one per streaming connection).
    pub subscribers: usize,
}

impl ServerStats {
    /// Error frames sent under wire code `code` (see
    /// [`crate::protocol::code`]); zero for out-of-range codes.
    #[must_use]
    pub fn error_count(&self, code: u16) -> u64 {
        self.errors_by_code
            .get(usize::from(code))
            .copied()
            .unwrap_or(0)
    }
}

/// State shared between the accept thread, the connection threads and the
/// owning [`Server`] handle.
struct Shared {
    fleet: RwLock<StreamFleet>,
    config: ServerConfig,
    shutting_down: AtomicBool,
    counters: Counters,
}

impl Shared {
    fn fleet_read(&self) -> std::sync::RwLockReadGuard<'_, StreamFleet> {
        self.fleet.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn fleet_write(&self) -> std::sync::RwLockWriteGuard<'_, StreamFleet> {
        self.fleet.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Join handle + socket handle of one spawned connection thread; the socket
/// handle lets shutdown interrupt a blocked read/write.
struct ConnEntry {
    join: JoinHandle<()>,
    socket: Option<Conn>,
}

/// A running channel-as-a-service server. See the [module docs](self).
///
/// Dropping the server performs a full [`Server::shutdown`].
///
/// # Examples
///
/// ```
/// use corrfade_serve::{Client, ServeAddr, Server, ServerConfig};
///
/// let server = Server::bind(
///     ServeAddr::Tcp("127.0.0.1:0".parse().unwrap()),
///     ServerConfig::default(),
/// )
/// .unwrap();
///
/// let mut client = Client::connect(server.local_addr()).unwrap();
/// let header = client.subscribe("two-envelope-complex", 7, 2).unwrap();
/// assert_eq!(header.envelopes, 2);
///
/// let mut block = corrfade::SampleBlock::empty();
/// let mut received = 0;
/// while client.next_block_into(&mut block).unwrap().is_some() {
///     received += 1;
/// }
/// assert_eq!(received, 2);
/// server.shutdown().unwrap();
/// ```
pub struct Server {
    shared: Arc<Shared>,
    connections: Arc<Mutex<Vec<ConnEntry>>>,
    accept: Option<JoinHandle<()>>,
    local_addr: ServeAddr,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `addr` and starts accepting connections on a background
    /// thread. TCP port `0` picks an ephemeral port —
    /// [`Server::local_addr`] reports the bound one.
    ///
    /// # Errors
    /// [`ServeError::Io`] when the address cannot be bound.
    pub fn bind(addr: ServeAddr, config: ServerConfig) -> Result<Self, ServeError> {
        let (listener, local_addr) = Listener::bind(&addr)?;
        let shared = Arc::new(Shared {
            fleet: RwLock::new(StreamFleet::open(&[], 0).expect("an empty fleet always opens")),
            config,
            shutting_down: AtomicBool::new(false),
            counters: Counters::default(),
        });
        let connections = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("corrfade-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &connections))
                .map_err(ServeError::Io)?
        };
        Ok(Self {
            shared,
            connections,
            accept: Some(accept),
            local_addr,
        })
    }

    /// The address the server actually listens on (TCP port resolved).
    #[must_use]
    pub fn local_addr(&self) -> &ServeAddr {
        &self.local_addr
    }

    /// A snapshot of the serving counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        let mut errors_by_code = [0u64; ERROR_CODE_SLOTS];
        for (slot, counter) in errors_by_code.iter_mut().zip(&c.errors_by_code) {
            *slot = counter.load(Ordering::Relaxed);
        }
        ServerStats {
            accepted: c.accepted.load(Ordering::Relaxed),
            active: c.active.load(Ordering::Relaxed),
            blocks_sent: c.blocks_sent.load(Ordering::Relaxed),
            error_frames: c.error_frames.load(Ordering::Relaxed),
            resumed_sessions: c.resumed_sessions.load(Ordering::Relaxed),
            errors_by_code,
            subscribers: self.shared.fleet_read().subscriber_count(),
        }
    }

    /// Stops accepting, interrupts and joins every connection thread, joins
    /// the accept thread, and removes the Unix socket file. Idempotent with
    /// [`Drop`] (which performs the same teardown).
    ///
    /// # Errors
    /// [`ServeError::Io`] when the accept thread cannot be woken; join
    /// panics are propagated.
    pub fn shutdown(mut self) -> Result<(), ServeError> {
        self.shutdown_in_place()
    }

    fn shutdown_in_place(&mut self) -> Result<(), ServeError> {
        let Some(accept) = self.accept.take() else {
            return Ok(());
        };
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // The accept thread sits in a blocking accept(); a throwaway
        // connection wakes it so it can observe the flag. Failure is fine
        // when it already exited (e.g. listener error path).
        let _ = Conn::connect(&self.local_addr, Duration::from_secs(1));
        accept.join().expect("accept thread panicked");

        // Drain: connection threads observe the shutdown flag at their next
        // block boundary, finish the block in flight, send the
        // SERVER_SHUTDOWN frame and exit on their own. Only sockets still
        // blocked after the drain window are forcibly interrupted.
        let mut entries = self
            .connections
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let deadline = Instant::now() + self.shared.config.drain_timeout;
        while !entries.iter().all(|e| e.join.is_finished()) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        for entry in entries.iter() {
            if !entry.join.is_finished() {
                if let Some(socket) = &entry.socket {
                    socket.shutdown_both();
                }
            }
        }
        for entry in entries.drain(..) {
            let _ = entry.join.join();
        }
        drop(entries);

        #[cfg(unix)]
        if let ServeAddr::Unix(path) = &self.local_addr {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.shutdown_in_place();
    }
}

/// Accepts until shutdown; each connection gets its own thread and a
/// registry entry so shutdown can interrupt and join it.
fn accept_loop(listener: &Listener, shared: &Arc<Shared>, connections: &Mutex<Vec<ConnEntry>>) {
    loop {
        let conn = match listener.accept() {
            Ok(conn) => conn,
            Err(_) if shared.shutting_down.load(Ordering::SeqCst) => return,
            Err(_) => {
                // Transient accept failure (EMFILE, aborted handshake…):
                // back off briefly instead of spinning.
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            // The shutdown wake-up connection (or a late real client):
            // close it and stop accepting.
            return;
        }
        shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
        let socket = conn.try_clone().ok();
        let handle = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name("corrfade-serve-conn".into())
                .spawn(move || serve_connection(&shared, conn))
        };
        let Ok(join) = handle else {
            // Thread spawn failed (resource exhaustion): drop the
            // connection; the client sees a clean close.
            continue;
        };
        let mut entries = connections.lock().unwrap_or_else(PoisonError::into_inner);
        // Reap finished threads so the registry tracks the concurrency
        // high-water mark, not the all-time connection count.
        entries.retain(|e| !e.join.is_finished());
        entries.push(ConnEntry { join, socket });
    }
}

/// RAII guard for the active-connections gauge.
struct ActiveGuard<'a>(&'a Counters);

impl<'a> ActiveGuard<'a> {
    fn new(counters: &'a Counters) -> Self {
        counters.active.fetch_add(1, Ordering::Relaxed);
        Self(counters)
    }
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Reads the fixed-size request header, the v2 cursor when present, and
/// the scenario name.
fn read_request(conn: &mut Conn, wire: &mut Vec<u8>) -> Result<Request, ServeError> {
    let mut header = [0u8; REQUEST_HEADER_LEN];
    conn.read_exact(&mut header)?;
    let head = decode_request_header(&header)?;
    wire.clear();
    wire.resize(head.trailing_len(), 0);
    conn.read_exact(wire)?;
    let cursor = if head.cursor_len() == 0 {
        0
    } else {
        decode_request_cursor(wire, head.blocks)?
    };
    let scenario = decode_request_name(&wire[head.cursor_len()..])?.to_string();
    Ok(Request {
        scenario,
        seed: head.seed,
        blocks: head.blocks,
        cursor,
    })
}

/// Sends `error` as a typed error frame, counting it; write failures are
/// ignored (the peer may already be gone). The connection closes after an
/// error frame, so this also performs the graceful close sequence: without
/// it, unread request bytes in the TCP receive queue would turn the close
/// into a reset that can discard the error frame before the client reads
/// it. Write side first (the client sees the frame then end-of-stream),
/// then a bounded drain of whatever the client had in flight.
fn send_error_frame(conn: &mut Conn, wire: &mut Vec<u8>, shared: &Shared, error: &ProtocolError) {
    shared.counters.error_frames.fetch_add(1, Ordering::Relaxed);
    if let Some(counter) = shared
        .counters
        .errors_by_code
        .get(usize::from(error.code()))
    {
        counter.fetch_add(1, Ordering::Relaxed);
    }
    wire.clear();
    encode_error_frame(wire, error);
    let _ = conn.write_all(wire);
    conn.shutdown_write();
    let _ = conn.set_timeouts(Some(Duration::from_millis(250)), None);
    let mut scratch = [0u8; 256];
    // Bounded (16 KiB / 250 ms per read): a peer cannot pin the thread.
    for _ in 0..64 {
        match conn.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Drives one connection from request to end frame, then closes the
/// socket for real: the shutdown registry holds a clone of it, so merely
/// dropping our handle would leave the peer hanging without an
/// end-of-stream until the registry entry is reaped.
fn serve_connection(shared: &Shared, mut conn: Conn) {
    serve_session(shared, &mut conn);
    conn.shutdown_both();
}

/// One session from request to end frame. Every exit path either sent an
/// error frame or finished the stream; the fleet subscription is always
/// released.
fn serve_session(shared: &Shared, conn: &mut Conn) {
    let _active = ActiveGuard::new(&shared.counters);
    if conn
        .set_timeouts(
            Some(shared.config.read_timeout),
            Some(shared.config.write_timeout),
        )
        .is_err()
    {
        return;
    }

    // The one wire buffer of this connection: request name, then every
    // frame it ever sends — steady-state writes reuse its capacity.
    let mut wire: Vec<u8> = Vec::new();

    // Admission control: the guard above already counted this connection,
    // so the gauge exceeding the cap means we are the one over the line.
    // Answered before reading the request — the refusal must not wait on a
    // slow sender (the error-frame close sequence drains what it did send).
    if let Some(max) = shared.config.max_sessions {
        let active = shared.counters.active.load(Ordering::Relaxed);
        if active > max {
            send_error_frame(
                conn,
                &mut wire,
                shared,
                &ProtocolError::Busy { active, max },
            );
            return;
        }
    }

    let request = match read_request(conn, &mut wire) {
        Ok(request) => request,
        Err(ServeError::Protocol(e)) => {
            send_error_frame(conn, &mut wire, shared, &e);
            return;
        }
        // Idle deadline: the client sat on the connection without
        // completing a request within `read_timeout`. Whether the timed-out
        // read surfaces as WouldBlock or TimedOut is platform-dependent, so
        // the check goes through the one `is_timeout` predicate.
        Err(ServeError::Io(e)) if crate::net::is_timeout(&e) => return,
        // Closed or failed before a full request: nothing to answer.
        Err(_) => return,
    };

    let scenario = match lookup(&request.scenario) {
        Ok(scenario) => scenario,
        Err(ScenarioError::UnknownScenario { name, suggestion }) => {
            let e = ProtocolError::UnknownScenario {
                name,
                suggestion: suggestion.map(str::to_string),
            };
            send_error_frame(conn, &mut wire, shared, &e);
            return;
        }
        Err(other) => {
            let e = ProtocolError::ScenarioRejected {
                message: other.to_string(),
            };
            send_error_frame(conn, &mut wire, shared, &e);
            return;
        }
    };

    let key = match shared.fleet_write().subscribe(scenario, request.seed) {
        Ok(key) => key,
        Err(e) => {
            let e = ProtocolError::ScenarioRejected {
                message: e.to_string(),
            };
            send_error_frame(conn, &mut wire, shared, &e);
            return;
        }
    };

    // v2 resume: fast-forward the fresh subscription past the cursor by
    // replaying only its RNG draws (no IDFT/coloring work), so the blocks
    // streamed below are bit-identical to `cursor..` of the uninterrupted
    // stream.
    if request.cursor > 0 {
        if shared
            .fleet_read()
            .skip_subscriber_blocks(key, request.cursor)
            .is_err()
        {
            // Stale key this early can only mean shutdown raced us.
            send_error_frame(conn, &mut wire, shared, &ProtocolError::ServerShutdown);
            shared.fleet_write().unsubscribe(key);
            return;
        }
        shared
            .counters
            .resumed_sessions
            .fetch_add(1, Ordering::Relaxed);
    }

    stream_blocks(shared, conn, &mut wire, key, scenario, &request);
    shared.fleet_write().unsubscribe(key);
}

/// Header + blocks + end. Split out so `serve_connection` can guarantee the
/// unsubscribe on every path.
fn stream_blocks(
    shared: &Shared,
    conn: &mut Conn,
    wire: &mut Vec<u8>,
    key: StreamKey,
    scenario: &corrfade_scenarios::Scenario,
    request: &Request,
) {
    let envelopes = u32::try_from(scenario.envelopes).unwrap_or(u32::MAX);
    let samples = u32::try_from(scenario.doppler.idft_size).unwrap_or(u32::MAX);
    wire.clear();
    encode_header_frame(wire, envelopes, samples, request.blocks);
    if conn.write_all(wire).is_err() {
        return;
    }

    let mut sent = 0u32;
    while sent < request.blocks {
        if shared.shutting_down.load(Ordering::Relaxed) {
            send_error_frame(conn, wire, shared, &ProtocolError::ServerShutdown);
            return;
        }
        // Wire block indices are absolute stream positions: a resumed
        // stream labels its frames `cursor..cursor + blocks`, so a client
        // stitching runs together can verify continuity. The decode-time
        // cursor validation guarantees this fits u32.
        let index = u32::try_from(request.cursor + u64::from(sent)).unwrap_or(u32::MAX);
        let encoded = shared.fleet_read().advance_subscriber_with(key, |block| {
            wire.clear();
            encode_block_frame(wire, index, block);
        });
        if encoded.is_err() {
            // Stale key mid-stream can only mean shutdown raced us.
            send_error_frame(conn, wire, shared, &ProtocolError::ServerShutdown);
            return;
        }
        if conn.write_all(wire).is_err() {
            // Client went away; its subscription is released by the caller.
            return;
        }
        shared.counters.blocks_sent.fetch_add(1, Ordering::Relaxed);
        sent += 1;
    }

    wire.clear();
    encode_end_frame(wire, sent);
    let _ = conn.write_all(wire);
}

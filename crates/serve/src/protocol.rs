//! The versioned binary wire protocol of `corrfade-serve`.
//!
//! The protocol is deliberately tiny: a client opens a connection, sends
//! **one request** naming a registry scenario, a seed and a block count,
//! and then only reads — the server answers with a header frame followed
//! by the requested number of `SampleBlock`-framed Doppler blocks and a
//! terminating end frame. Anything that goes wrong is reported as a typed
//! **error frame** on the wire (and as a [`ProtocolError`] in process),
//! never as a silently dropped connection.
//!
//! ## Request (client → server, exactly once)
//!
//! Two negotiated versions share the fixed 20-byte prefix; the version
//! field selects the layout of what follows:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = "CFDS"
//! 4       2     version = 1 or 2            (u16 LE)
//! 6       2     scenario name length        (u16 LE, 1..=64)
//! 8       8     RNG seed                    (u64 LE)
//! 16      4     requested block count       (u32 LE)
//! --- version 1 ---
//! 20      n     scenario name               (UTF-8, registry name)
//! --- version 2 (resume) ---
//! 20      8     block cursor                (u64 LE)
//! 28      n     scenario name               (UTF-8, registry name)
//! ```
//!
//! A v2 request is a **resume**: the server fast-forwards a fresh
//! `(scenario, seed)` stream past `cursor` blocks (replaying only the RNG
//! draws — no generation work) and then streams `blocks` blocks with wire
//! indices `cursor..cursor + blocks`, bit-identical to the corresponding
//! span of the uninterrupted stream. A v1 request is exactly a v2 request
//! with cursor 0; v1 clients keep working unchanged.
//!
//! ## Response frames (server → client)
//!
//! Every frame is a `u32` little-endian **payload length** followed by the
//! payload; the payload's first byte is the frame tag:
//!
//! ```text
//! Header  tag=1 | envelopes u32 | samples u32 | blocks u32
//! Block   tag=2 | index u32     | N·M × (re f64 LE, im f64 LE)  planar
//! Error   tag=3 | code u16      | message length u16 | message UTF-8
//! End     tag=4 | blocks_sent u32
//! ```
//!
//! Block payloads carry the exact planar layout of
//! [`SampleBlock::as_slice`](corrfade::SampleBlock::as_slice) through
//! [`SampleBlock::encode_le_into`](corrfade::SampleBlock::encode_le_into),
//! so the bytes a client decodes are **bit-identical** to the blocks a
//! standalone `Scenario::build_realtime(seed)` stream produces — the
//! wire-equivalence test suite pins this with `f64::to_bits` comparisons.
//!
//! All decoders in this module are *total*: any byte string — truncated,
//! oversized, wrong-tagged, non-UTF-8 — decodes to a [`ProtocolError`],
//! never a panic (enforced by the adversarial property tests).

use corrfade::SampleBlock;

/// The 4-byte connection preamble every request starts with.
pub const MAGIC: [u8; 4] = *b"CFDS";

/// The original protocol version: fixed-start streams only.
pub const VERSION_V1: u16 = 1;

/// The resume-capable protocol version: the request carries a block
/// cursor (fast-forward on the server) and the server may answer a
/// [`code::BUSY`] error frame under admission control.
pub const VERSION_V2: u16 = 2;

/// Baseline protocol version (compatibility alias for [`VERSION_V1`]).
pub const VERSION: u16 = VERSION_V1;

/// Fixed byte length of the version-independent request prefix (v1
/// requests carry the scenario name immediately after it; v2 requests
/// insert [`REQUEST_CURSOR_LEN`] cursor bytes in between).
pub const REQUEST_HEADER_LEN: usize = 20;

/// Byte length of the v2 block-cursor field that follows the fixed
/// request prefix.
pub const REQUEST_CURSOR_LEN: usize = 8;

/// Longest accepted scenario name on the wire.
pub const MAX_NAME_LEN: usize = 64;

/// Largest accepted frame payload (64 MiB) — bounds what a `u32` length
/// prefix can make a peer allocate.
pub const MAX_FRAME_LEN: usize = 1 << 26;

/// Frame tags (first payload byte) of the four response frame types.
pub mod tag {
    /// Stream header: shape echo that precedes the first block.
    pub const HEADER: u8 = 1;
    /// One planar sample block.
    pub const BLOCK: u8 = 2;
    /// Typed error report.
    pub const ERROR: u8 = 3;
    /// Clean end of stream.
    pub const END: u8 = 4;
}

/// Stable error codes carried by error frames (`u16` on the wire).
pub mod code {
    /// Request did not start with [`super::MAGIC`].
    pub const BAD_MAGIC: u16 = 1;
    /// Request version differs from [`super::VERSION`].
    pub const UNSUPPORTED_VERSION: u16 = 2;
    /// A buffer ended before the structure it claimed to hold.
    pub const TRUNCATED: u16 = 3;
    /// A declared length exceeded its protocol maximum.
    pub const OVERSIZED: u16 = 4;
    /// Unknown frame tag byte.
    pub const UNKNOWN_FRAME_TAG: u16 = 5;
    /// Scenario name was empty or not UTF-8.
    pub const BAD_SCENARIO_NAME: u16 = 6;
    /// Scenario name is not in the registry.
    pub const UNKNOWN_SCENARIO: u16 = 7;
    /// The scenario exists but failed to build server-side.
    pub const SCENARIO_REJECTED: u16 = 8;
    /// A frame payload length contradicted its declared contents.
    pub const FRAME_SIZE_MISMATCH: u16 = 9;
    /// The server is shutting down and stopped the stream early.
    pub const SERVER_SHUTDOWN: u16 = 10;
    /// The request asked for a sample precision the protocol version cannot
    /// stream (the f32 fast tier is reserved for a future wire revision).
    pub const PRECISION_UNSUPPORTED: u16 = 11;
    /// The server is at its configured session capacity and declined the
    /// request; retry with backoff. (Wire v2; a v1-era client sees it as an
    /// ordinary typed error frame.)
    pub const BUSY: u16 = 12;
}

/// Request-header flag (bit 15 of the name-length field, which
/// [`MAX_NAME_LEN`] leaves free) reserved for requesting an f32 fast-tier
/// stream. Wire v1 carries every block as planar little-endian `f64`
/// ([`SampleBlock::encode_le_into`]), so a v1 server answers the flag with a
/// typed [`code::PRECISION_UNSUPPORTED`] error frame instead of silently
/// widening; a future v2 will honour it with half-width block frames.
pub const FLAG_F32_STREAM: u16 = 1 << 15;

/// Everything that can be wrong with bytes on the wire, as a typed error.
///
/// Server-side, a `ProtocolError` is encoded into an error frame
/// ([`encode_error_frame`]) and sent to the client before the connection
/// closes; client-side, decoding failures surface through
/// [`crate::ServeError::Protocol`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The request preamble was not [`MAGIC`].
    BadMagic {
        /// The four bytes actually received.
        got: [u8; 4],
    },
    /// The peer speaks a different protocol version.
    UnsupportedVersion {
        /// Version the peer sent.
        got: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// A buffer ended before the structure it claimed to hold.
    Truncated {
        /// Which structure was being decoded.
        what: &'static str,
        /// Bytes the structure required.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A declared length exceeded its protocol maximum.
    Oversized {
        /// Which length field overflowed.
        what: &'static str,
        /// The declared length.
        len: usize,
        /// The protocol maximum.
        max: usize,
    },
    /// The frame tag byte is not one of [`tag`]'s values.
    UnknownFrameTag {
        /// The tag byte received.
        tag: u8,
    },
    /// The scenario name was empty, too long, or not UTF-8.
    BadScenarioName {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The requested scenario is not in the registry.
    UnknownScenario {
        /// The name that was requested.
        name: String,
        /// Closest registered name, when one resembles the request.
        suggestion: Option<String>,
    },
    /// The scenario exists but could not be built into a stream.
    ScenarioRejected {
        /// The builder's error message.
        message: String,
    },
    /// A frame payload length contradicted its declared contents.
    FrameSizeMismatch {
        /// Which frame type was being decoded.
        what: &'static str,
        /// Payload bytes the declared contents require.
        expected: usize,
        /// Payload bytes actually present.
        got: usize,
    },
    /// The request set a precision flag this protocol version cannot serve.
    PrecisionUnsupported {
        /// The raw flag bits the peer set (currently only
        /// [`FLAG_F32_STREAM`]).
        flags: u16,
    },
    /// The server is shutting down and ended the stream early.
    ServerShutdown,
    /// The server is at its configured session capacity (admission
    /// control); the client should back off and retry.
    Busy {
        /// Sessions currently being served.
        active: u64,
        /// The configured session cap.
        max: u64,
    },
}

impl ProtocolError {
    /// The stable wire code (see [`code`]) this error is reported under.
    #[must_use]
    pub fn code(&self) -> u16 {
        match self {
            ProtocolError::BadMagic { .. } => code::BAD_MAGIC,
            ProtocolError::UnsupportedVersion { .. } => code::UNSUPPORTED_VERSION,
            ProtocolError::Truncated { .. } => code::TRUNCATED,
            ProtocolError::Oversized { .. } => code::OVERSIZED,
            ProtocolError::UnknownFrameTag { .. } => code::UNKNOWN_FRAME_TAG,
            ProtocolError::BadScenarioName { .. } => code::BAD_SCENARIO_NAME,
            ProtocolError::UnknownScenario { .. } => code::UNKNOWN_SCENARIO,
            ProtocolError::ScenarioRejected { .. } => code::SCENARIO_REJECTED,
            ProtocolError::FrameSizeMismatch { .. } => code::FRAME_SIZE_MISMATCH,
            ProtocolError::PrecisionUnsupported { .. } => code::PRECISION_UNSUPPORTED,
            ProtocolError::ServerShutdown => code::SERVER_SHUTDOWN,
            ProtocolError::Busy { .. } => code::BUSY,
        }
    }

    /// Whether a client that received this error frame should retry the
    /// request (with backoff) rather than give up: capacity and shutdown
    /// refusals are transient, everything else is a peer bug.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ProtocolError::Busy { .. } | ProtocolError::ServerShutdown
        )
    }
}

impl core::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtocolError::BadMagic { got } => {
                write!(f, "bad request magic {got:?} (expected {MAGIC:?})")
            }
            ProtocolError::UnsupportedVersion { got, supported } => write!(
                f,
                "unsupported protocol version {got} (this server speaks versions \
                 {VERSION_V1}..={supported})"
            ),
            ProtocolError::Truncated { what, needed, got } => {
                write!(f, "truncated {what}: needed {needed} byte(s), got {got}")
            }
            ProtocolError::Oversized { what, len, max } => write!(
                f,
                "oversized {what}: declared {len} byte(s), maximum is {max}"
            ),
            ProtocolError::UnknownFrameTag { tag } => write!(f, "unknown frame tag {tag}"),
            ProtocolError::BadScenarioName { reason } => {
                write!(f, "bad scenario name: {reason}")
            }
            ProtocolError::UnknownScenario { name, suggestion } => {
                write!(f, "unknown scenario `{name}`")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean `{s}`?)")?;
                }
                Ok(())
            }
            ProtocolError::ScenarioRejected { message } => {
                write!(f, "scenario rejected: {message}")
            }
            ProtocolError::FrameSizeMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "{what} frame size mismatch: contents require {expected} byte(s), payload has {got}"
            ),
            ProtocolError::PrecisionUnsupported { flags } => write!(
                f,
                "precision flags {flags:#06x} are not supported by wire \
                 version {VERSION}; this server streams f64 blocks only"
            ),
            ProtocolError::ServerShutdown => {
                write!(f, "server is shutting down; stream ended early")
            }
            ProtocolError::Busy { active, max } => write!(
                f,
                "server is at capacity ({active}/{max} sessions); retry with backoff"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A decoded client request: which scenario, which seed, how many blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Registry name of the requested scenario.
    pub scenario: String,
    /// RNG seed of the stream (used exactly; the delivered blocks are
    /// bit-identical to `Scenario::build_realtime(seed)` standalone).
    pub seed: u64,
    /// Number of blocks the client wants streamed.
    pub blocks: u32,
    /// Resume cursor: the zero-based index of the first block to stream.
    /// `0` is a fresh stream (encoded as wire v1 for compatibility); a
    /// non-zero cursor makes the server fast-forward the `(scenario,
    /// seed)` stream past that many blocks before sending, so the
    /// delivered blocks are bit-identical to `cursor..cursor + blocks` of
    /// the uninterrupted stream.
    pub cursor: u64,
}

/// The validated fixed-size request prefix, as returned by
/// [`decode_request_header`]: the server reads [`REQUEST_HEADER_LEN`]
/// bytes, decodes this, then reads [`RequestHead::trailing_len`] more
/// (cursor, when v2, followed by the scenario name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestHead {
    /// Negotiated wire version ([`VERSION_V1`] or [`VERSION_V2`]).
    pub version: u16,
    /// RNG seed of the stream.
    pub seed: u64,
    /// Requested block count.
    pub blocks: u32,
    /// Declared scenario-name byte length (validated `1..=MAX_NAME_LEN`).
    pub name_len: usize,
}

impl RequestHead {
    /// Bytes of cursor field following the prefix: [`REQUEST_CURSOR_LEN`]
    /// for a v2 request, zero for v1.
    #[must_use]
    pub fn cursor_len(&self) -> usize {
        if self.version >= VERSION_V2 {
            REQUEST_CURSOR_LEN
        } else {
            0
        }
    }

    /// Total bytes that follow the fixed prefix (cursor + name).
    #[must_use]
    pub fn trailing_len(&self) -> usize {
        self.cursor_len() + self.name_len
    }
}

/// A fully decoded response frame — the owned, test-friendly view. Hot
/// paths skip this allocation and use [`split_frame`] +
/// [`decode_block_payload`] to lift samples straight into a pooled
/// [`SampleBlock`].
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Stream shape echo sent before the first block.
    Header {
        /// Envelope count `N` of every block.
        envelopes: u32,
        /// Samples `M` per envelope per block.
        samples: u32,
        /// Number of block frames the server will send.
        blocks: u32,
    },
    /// One planar sample block.
    Block {
        /// Zero-based block index within the stream.
        index: u32,
        /// `N·M × 16` bytes of planar little-endian complex samples.
        payload: Vec<u8>,
    },
    /// Typed error report; the connection closes after this frame.
    Error {
        /// Stable wire code (see [`code`]).
        code: u16,
        /// Human-readable message.
        message: String,
    },
    /// Clean end of stream after the last block.
    End {
        /// Number of block frames actually sent.
        blocks_sent: u32,
    },
}

fn u16_at(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(buf[at..at + 2].try_into().expect("slice is 2 bytes"))
}

fn u32_at(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("slice is 4 bytes"))
}

fn u64_at(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("slice is 8 bytes"))
}

/// Appends the wire encoding of a request to `buf`. A request with cursor
/// `0` encodes as wire v1 — byte-identical to what a pre-resume client
/// sends — and a non-zero cursor selects the v2 layout.
pub fn encode_request(request: &Request, buf: &mut Vec<u8>) {
    encode_request_with_flags(request, 0, buf);
}

/// [`encode_request`] with explicit header flag bits OR-ed into the
/// name-length field (currently only [`FLAG_F32_STREAM`]). What a
/// forward-looking client — or the lifecycle test pinning the v1 guard —
/// uses to ask for a fast-tier stream.
pub fn encode_request_with_flags(request: &Request, flags: u16, buf: &mut Vec<u8>) {
    let version = if request.cursor == 0 {
        VERSION_V1
    } else {
        VERSION_V2
    };
    encode_request_versioned(request, flags, version, buf);
}

/// Encodes a request in an explicitly chosen wire version — what the
/// property tests use to pin the v2 layout even for cursor `0`.
///
/// # Panics
/// When asked to encode a non-zero cursor in the v1 layout, which cannot
/// carry one.
pub fn encode_request_versioned(request: &Request, flags: u16, version: u16, buf: &mut Vec<u8>) {
    assert!(
        version >= VERSION_V2 || request.cursor == 0,
        "wire v1 cannot carry a resume cursor"
    );
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&version.to_le_bytes());
    let name_len = u16::try_from(request.scenario.len()).unwrap_or(u16::MAX);
    buf.extend_from_slice(&(name_len | flags).to_le_bytes());
    buf.extend_from_slice(&request.seed.to_le_bytes());
    buf.extend_from_slice(&request.blocks.to_le_bytes());
    if version >= VERSION_V2 {
        buf.extend_from_slice(&request.cursor.to_le_bytes());
    }
    buf.extend_from_slice(request.scenario.as_bytes());
}

/// Validates the fixed-size request prefix and returns the decoded
/// [`RequestHead`] — the server reads exactly [`REQUEST_HEADER_LEN`]
/// bytes, calls this, then reads [`RequestHead::trailing_len`] more.
///
/// # Errors
/// [`ProtocolError`] on short input, wrong magic, a version outside
/// `1..=2`, a set precision flag ([`FLAG_F32_STREAM`] — the wire streams
/// `f64` only), or a name length outside `1..=`[`MAX_NAME_LEN`].
pub fn decode_request_header(buf: &[u8]) -> Result<RequestHead, ProtocolError> {
    if buf.len() < REQUEST_HEADER_LEN {
        return Err(ProtocolError::Truncated {
            what: "request header",
            needed: REQUEST_HEADER_LEN,
            got: buf.len(),
        });
    }
    let got: [u8; 4] = buf[..4].try_into().expect("slice is 4 bytes");
    if got != MAGIC {
        return Err(ProtocolError::BadMagic { got });
    }
    let version = u16_at(buf, 4);
    if !(VERSION_V1..=VERSION_V2).contains(&version) {
        return Err(ProtocolError::UnsupportedVersion {
            got: version,
            supported: VERSION_V2,
        });
    }
    // Bit 15 of the name-length field carries the (v2-reserved) precision
    // flag; mask it off before any length validation so a flagged request
    // earns the typed precision error, not a bogus size complaint.
    let raw_len = u16_at(buf, 6);
    let flags = raw_len & FLAG_F32_STREAM;
    if flags != 0 {
        return Err(ProtocolError::PrecisionUnsupported { flags });
    }
    let name_len = usize::from(raw_len & !FLAG_F32_STREAM);
    if name_len == 0 {
        return Err(ProtocolError::BadScenarioName {
            reason: "scenario name is empty",
        });
    }
    if name_len > MAX_NAME_LEN {
        return Err(ProtocolError::Oversized {
            what: "scenario name",
            len: name_len,
            max: MAX_NAME_LEN,
        });
    }
    Ok(RequestHead {
        version,
        seed: u64_at(buf, 8),
        blocks: u32_at(buf, 16),
        name_len,
    })
}

/// Decodes and validates a v2 resume cursor from the bytes that follow
/// the request prefix, checking that `cursor + blocks` stays within the
/// `u32` wire block-index space (block frames carry `u32` indices).
///
/// # Errors
/// [`ProtocolError::Truncated`] on short input,
/// [`ProtocolError::Oversized`] when the resumed span would overflow the
/// wire index space.
pub fn decode_request_cursor(bytes: &[u8], blocks: u32) -> Result<u64, ProtocolError> {
    if bytes.len() < REQUEST_CURSOR_LEN {
        return Err(ProtocolError::Truncated {
            what: "resume cursor",
            needed: REQUEST_CURSOR_LEN,
            got: bytes.len(),
        });
    }
    let cursor = u64_at(bytes, 0);
    match cursor.checked_add(u64::from(blocks)) {
        Some(end) if end <= u64::from(u32::MAX) => Ok(cursor),
        _ => Err(ProtocolError::Oversized {
            what: "resume cursor",
            len: usize::try_from(cursor).unwrap_or(usize::MAX),
            max: u32::MAX as usize,
        }),
    }
}

/// Decodes a complete request (header + cursor + name) from one buffer —
/// the single-shot counterpart of [`decode_request_header`] used by tests
/// and by servers that read the whole request at once.
///
/// # Errors
/// [`ProtocolError`] on any malformed input; never panics.
pub fn decode_request(buf: &[u8]) -> Result<Request, ProtocolError> {
    let head = decode_request_header(buf)?;
    let rest = buf.get(REQUEST_HEADER_LEN..).unwrap_or(&[]);
    let cursor = if head.cursor_len() == 0 {
        0
    } else {
        decode_request_cursor(rest, head.blocks)?
    };
    let name_at = REQUEST_HEADER_LEN + head.cursor_len();
    let end = name_at + head.name_len;
    if buf.len() < end {
        return Err(ProtocolError::Truncated {
            what: "scenario name",
            needed: end,
            got: buf.len(),
        });
    }
    let name =
        core::str::from_utf8(&buf[name_at..end]).map_err(|_| ProtocolError::BadScenarioName {
            reason: "scenario name is not valid UTF-8",
        })?;
    Ok(Request {
        scenario: name.to_string(),
        seed: head.seed,
        blocks: head.blocks,
        cursor,
    })
}

/// Validates the scenario-name bytes that follow the request header.
///
/// # Errors
/// [`ProtocolError::BadScenarioName`] when the bytes are not UTF-8.
pub fn decode_request_name(bytes: &[u8]) -> Result<&str, ProtocolError> {
    core::str::from_utf8(bytes).map_err(|_| ProtocolError::BadScenarioName {
        reason: "scenario name is not valid UTF-8",
    })
}

/// Appends a header frame (length prefix included) to `buf`.
pub fn encode_header_frame(buf: &mut Vec<u8>, envelopes: u32, samples: u32, blocks: u32) {
    buf.extend_from_slice(&13u32.to_le_bytes());
    buf.push(tag::HEADER);
    buf.extend_from_slice(&envelopes.to_le_bytes());
    buf.extend_from_slice(&samples.to_le_bytes());
    buf.extend_from_slice(&blocks.to_le_bytes());
}

/// Appends a block frame (length prefix included) carrying `block`'s planar
/// samples to `buf` — zero heap allocation once `buf`'s capacity is warm.
pub fn encode_block_frame(buf: &mut Vec<u8>, index: u32, block: &SampleBlock) {
    let payload_len = 5 + block.wire_len();
    buf.reserve(4 + payload_len);
    buf.extend_from_slice(
        &u32::try_from(payload_len)
            .expect("block exceeds u32")
            .to_le_bytes(),
    );
    buf.push(tag::BLOCK);
    buf.extend_from_slice(&index.to_le_bytes());
    block.encode_le_into(buf);
}

/// Appends an error frame (length prefix included) for `error` to `buf`.
/// The message is truncated to `u16` length if the rendering is enormous.
pub fn encode_error_frame(buf: &mut Vec<u8>, error: &ProtocolError) {
    let message = error.to_string();
    encode_error_frame_raw(buf, error.code(), &message);
}

/// Appends an error frame from a raw `(code, message)` pair — what the
/// round-trip tests and forward-compatible senders use.
pub fn encode_error_frame_raw(buf: &mut Vec<u8>, code: u16, message: &str) {
    let msg = &message.as_bytes()[..message.len().min(usize::from(u16::MAX))];
    let payload_len = 5 + msg.len();
    buf.extend_from_slice(
        &u32::try_from(payload_len)
            .expect("message fits u32")
            .to_le_bytes(),
    );
    buf.push(tag::ERROR);
    buf.extend_from_slice(&code.to_le_bytes());
    buf.extend_from_slice(
        &u16::try_from(msg.len())
            .expect("truncated above")
            .to_le_bytes(),
    );
    buf.extend_from_slice(msg);
}

/// Appends an end frame (length prefix included) to `buf`.
pub fn encode_end_frame(buf: &mut Vec<u8>, blocks_sent: u32) {
    buf.extend_from_slice(&5u32.to_le_bytes());
    buf.push(tag::END);
    buf.extend_from_slice(&blocks_sent.to_le_bytes());
}

/// Splits a buffer that starts with a length-prefixed frame into
/// `(payload, total_consumed)` without copying.
///
/// # Errors
/// [`ProtocolError`] when the prefix is short, the declared length is zero
/// or exceeds [`MAX_FRAME_LEN`], or the payload is incomplete.
pub fn split_frame(buf: &[u8]) -> Result<(&[u8], usize), ProtocolError> {
    if buf.len() < 4 {
        return Err(ProtocolError::Truncated {
            what: "frame length prefix",
            needed: 4,
            got: buf.len(),
        });
    }
    let len = u32_at(buf, 0) as usize;
    if len == 0 {
        return Err(ProtocolError::FrameSizeMismatch {
            what: "frame",
            expected: 1,
            got: 0,
        });
    }
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized {
            what: "frame payload",
            len,
            max: MAX_FRAME_LEN,
        });
    }
    if buf.len() < 4 + len {
        return Err(ProtocolError::Truncated {
            what: "frame payload",
            needed: 4 + len,
            got: buf.len(),
        });
    }
    Ok((&buf[4..4 + len], 4 + len))
}

/// Decodes a block-frame payload into `(index, sample bytes)` without
/// copying — the zero-allocation client read path; pair with
/// [`SampleBlock::decode_le_from`](corrfade::SampleBlock::decode_le_from).
///
/// # Errors
/// [`ProtocolError`] when the payload is not a block frame or too short.
pub fn decode_block_payload(payload: &[u8]) -> Result<(u32, &[u8]), ProtocolError> {
    if payload.first() != Some(&tag::BLOCK) {
        return Err(ProtocolError::UnknownFrameTag {
            tag: payload.first().copied().unwrap_or(0),
        });
    }
    if payload.len() < 5 {
        return Err(ProtocolError::Truncated {
            what: "block frame",
            needed: 5,
            got: payload.len(),
        });
    }
    Ok((u32_at(payload, 1), &payload[5..]))
}

/// Decodes one frame payload (the bytes after the length prefix) into the
/// owned [`Frame`] view.
///
/// # Errors
/// [`ProtocolError`] on any malformed payload; never panics.
pub fn decode_frame_payload(payload: &[u8]) -> Result<Frame, ProtocolError> {
    match payload.first() {
        None => Err(ProtocolError::Truncated {
            what: "frame tag",
            needed: 1,
            got: 0,
        }),
        Some(&tag::HEADER) => {
            if payload.len() != 13 {
                return Err(ProtocolError::FrameSizeMismatch {
                    what: "header",
                    expected: 13,
                    got: payload.len(),
                });
            }
            Ok(Frame::Header {
                envelopes: u32_at(payload, 1),
                samples: u32_at(payload, 5),
                blocks: u32_at(payload, 9),
            })
        }
        Some(&tag::BLOCK) => {
            let (index, bytes) = decode_block_payload(payload)?;
            Ok(Frame::Block {
                index,
                payload: bytes.to_vec(),
            })
        }
        Some(&tag::ERROR) => {
            if payload.len() < 5 {
                return Err(ProtocolError::Truncated {
                    what: "error frame",
                    needed: 5,
                    got: payload.len(),
                });
            }
            let code = u16_at(payload, 1);
            let msg_len = usize::from(u16_at(payload, 3));
            if payload.len() != 5 + msg_len {
                return Err(ProtocolError::FrameSizeMismatch {
                    what: "error",
                    expected: 5 + msg_len,
                    got: payload.len(),
                });
            }
            let message = core::str::from_utf8(&payload[5..])
                .map_err(|_| ProtocolError::BadScenarioName {
                    reason: "error message is not valid UTF-8",
                })?
                .to_string();
            Ok(Frame::Error { code, message })
        }
        Some(&tag::END) => {
            if payload.len() != 5 {
                return Err(ProtocolError::FrameSizeMismatch {
                    what: "end",
                    expected: 5,
                    got: payload.len(),
                });
            }
            Ok(Frame::End {
                blocks_sent: u32_at(payload, 1),
            })
        }
        Some(&other) => Err(ProtocolError::UnknownFrameTag { tag: other }),
    }
}

/// Encodes a [`Frame`] (length prefix included) — the inverse of
/// [`split_frame`] + [`decode_frame_payload`], used by the round-trip
/// property tests.
pub fn encode_frame(frame: &Frame, buf: &mut Vec<u8>) {
    match frame {
        Frame::Header {
            envelopes,
            samples,
            blocks,
        } => encode_header_frame(buf, *envelopes, *samples, *blocks),
        Frame::Block { index, payload } => {
            let payload_len = 5 + payload.len();
            buf.extend_from_slice(
                &u32::try_from(payload_len)
                    .expect("payload fits u32")
                    .to_le_bytes(),
            );
            buf.push(tag::BLOCK);
            buf.extend_from_slice(&index.to_le_bytes());
            buf.extend_from_slice(payload);
        }
        Frame::Error { code, message } => encode_error_frame_raw(buf, *code, message),
        Frame::End { blocks_sent } => encode_end_frame(buf, *blocks_sent),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let request = Request {
            scenario: "fig4a-spectral".into(),
            seed: 0xDEAD_BEEF_0BAD_F00D,
            blocks: 17,
            cursor: 0,
        };
        let mut wire = Vec::new();
        encode_request(&request, &mut wire);
        assert_eq!(wire.len(), REQUEST_HEADER_LEN + 14);
        // Cursor 0 encodes as wire v1, byte-stable with pre-resume clients.
        assert_eq!(u16_at(&wire, 4), VERSION_V1);
        assert_eq!(decode_request(&wire).unwrap(), request);
    }

    #[test]
    fn resume_request_round_trips_as_v2() {
        let request = Request {
            scenario: "fig4a-spectral".into(),
            seed: 42,
            blocks: 5,
            cursor: 1_000,
        };
        let mut wire = Vec::new();
        encode_request(&request, &mut wire);
        assert_eq!(u16_at(&wire, 4), VERSION_V2);
        assert_eq!(wire.len(), REQUEST_HEADER_LEN + REQUEST_CURSOR_LEN + 14);
        assert_eq!(decode_request(&wire).unwrap(), request);

        // The explicit-version encoder pins the v2 layout for cursor 0 too,
        // and both decoders agree on it.
        let fresh = Request {
            cursor: 0,
            ..request
        };
        let mut v2 = Vec::new();
        encode_request_versioned(&fresh, 0, VERSION_V2, &mut v2);
        assert_eq!(u16_at(&v2, 4), VERSION_V2);
        assert_eq!(decode_request(&v2).unwrap(), fresh);
        let head = decode_request_header(&v2).unwrap();
        assert_eq!(head.cursor_len(), REQUEST_CURSOR_LEN);
        assert_eq!(head.trailing_len(), REQUEST_CURSOR_LEN + 14);
    }

    #[test]
    fn hostile_cursors_are_rejected_not_wrapped() {
        // Truncated cursor field.
        let request = Request {
            scenario: "x".into(),
            seed: 1,
            blocks: 1,
            cursor: 7,
        };
        let mut wire = Vec::new();
        encode_request(&request, &mut wire);
        assert!(matches!(
            decode_request(&wire[..REQUEST_HEADER_LEN + 3]),
            Err(ProtocolError::Truncated { .. })
        ));

        // cursor + blocks must stay within the u32 wire index space.
        assert!(matches!(
            decode_request_cursor(&u64::MAX.to_le_bytes(), 1),
            Err(ProtocolError::Oversized { .. })
        ));
        assert!(matches!(
            decode_request_cursor(&(u64::from(u32::MAX)).to_le_bytes(), 1),
            Err(ProtocolError::Oversized { .. })
        ));
        assert_eq!(
            decode_request_cursor(&(u64::from(u32::MAX) - 1).to_le_bytes(), 1),
            Ok(u64::from(u32::MAX) - 1)
        );
    }

    #[test]
    fn request_rejections_are_typed() {
        let mut wire = Vec::new();
        encode_request(
            &Request {
                scenario: "x".into(),
                seed: 1,
                blocks: 1,
                cursor: 0,
            },
            &mut wire,
        );

        let mut bad_magic = wire.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            decode_request(&bad_magic),
            Err(ProtocolError::BadMagic { got }) if got[0] == b'X'
        ));

        let mut bad_version = wire.clone();
        bad_version[4] = 9;
        assert!(matches!(
            decode_request(&bad_version),
            Err(ProtocolError::UnsupportedVersion {
                got: 9,
                supported: VERSION_V2
            })
        ));

        let mut zero_version = wire.clone();
        zero_version[4] = 0;
        assert!(matches!(
            decode_request(&zero_version),
            Err(ProtocolError::UnsupportedVersion { got: 0, .. })
        ));

        assert!(matches!(
            decode_request(&wire[..10]),
            Err(ProtocolError::Truncated { .. })
        ));

        let mut empty_name = wire.clone();
        empty_name[6] = 0;
        assert!(matches!(
            decode_request(&empty_name),
            Err(ProtocolError::BadScenarioName { .. })
        ));

        let mut huge_name = wire;
        // 0x7FFF: every length bit set but the precision flag (bit 15)
        // clear, so this is an oversized *name*, not a precision request.
        huge_name[6] = 0xFF;
        huge_name[7] = 0x7F;
        assert!(matches!(
            decode_request(&huge_name),
            Err(ProtocolError::Oversized { .. })
        ));
    }

    #[test]
    fn block_frame_carries_planar_samples_bit_exactly() {
        let mut block = SampleBlock::new(2, 3);
        for (i, z) in block.as_mut_slice().iter_mut().enumerate() {
            *z = corrfade_linalg::c64(i as f64, -(i as f64) / 3.0);
        }
        let mut wire = Vec::new();
        encode_block_frame(&mut wire, 7, &block);
        let (payload, consumed) = split_frame(&wire).unwrap();
        assert_eq!(consumed, wire.len());
        let (index, bytes) = decode_block_payload(payload).unwrap();
        assert_eq!(index, 7);
        let mut decoded = SampleBlock::empty();
        decoded.decode_le_from(2, 3, bytes).unwrap();
        assert_eq!(decoded, block);
    }

    #[test]
    fn error_frames_embed_the_suggestion() {
        let e = ProtocolError::UnknownScenario {
            name: "fig4a-spektral".into(),
            suggestion: Some("fig4a-spectral".into()),
        };
        let mut wire = Vec::new();
        encode_error_frame(&mut wire, &e);
        let (payload, _) = split_frame(&wire).unwrap();
        let Frame::Error { code, message } = decode_frame_payload(payload).unwrap() else {
            panic!("expected an error frame");
        };
        assert_eq!(code, code::UNKNOWN_SCENARIO);
        assert!(message.contains("did you mean `fig4a-spectral`"));
    }

    #[test]
    fn oversized_and_zero_length_prefixes_are_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.push(tag::END);
        assert!(matches!(
            split_frame(&wire),
            Err(ProtocolError::Oversized { .. })
        ));
        let zero = 0u32.to_le_bytes();
        assert!(matches!(
            split_frame(&zero),
            Err(ProtocolError::FrameSizeMismatch { .. })
        ));
    }

    #[test]
    fn every_error_code_is_unique_and_stable() {
        let variants = [
            ProtocolError::BadMagic { got: [0; 4] },
            ProtocolError::UnsupportedVersion {
                got: 0,
                supported: 1,
            },
            ProtocolError::Truncated {
                what: "x",
                needed: 1,
                got: 0,
            },
            ProtocolError::Oversized {
                what: "x",
                len: 2,
                max: 1,
            },
            ProtocolError::UnknownFrameTag { tag: 0 },
            ProtocolError::BadScenarioName { reason: "x" },
            ProtocolError::UnknownScenario {
                name: String::new(),
                suggestion: None,
            },
            ProtocolError::ScenarioRejected {
                message: String::new(),
            },
            ProtocolError::FrameSizeMismatch {
                what: "x",
                expected: 1,
                got: 0,
            },
            ProtocolError::ServerShutdown,
            ProtocolError::PrecisionUnsupported {
                flags: FLAG_F32_STREAM,
            },
            ProtocolError::Busy { active: 1, max: 1 },
        ];
        let mut codes: Vec<u16> = variants.iter().map(ProtocolError::code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), variants.len(), "duplicate wire codes");
        assert_eq!(codes, (1..=12).collect::<Vec<_>>());
    }

    #[test]
    fn f32_flagged_requests_earn_the_typed_precision_error() {
        let request = Request {
            scenario: "fig4a-spectral".to_string(),
            seed: 7,
            blocks: 2,
            cursor: 0,
        };
        let mut wire = Vec::new();
        encode_request_with_flags(&request, FLAG_F32_STREAM, &mut wire);
        // The flag must win over every name-length check: the masked length
        // is valid here, and the error is the precision one, not Oversized.
        assert_eq!(
            decode_request_header(&wire),
            Err(ProtocolError::PrecisionUnsupported {
                flags: FLAG_F32_STREAM
            })
        );
        // Unflagged encoding of the identical request still round-trips.
        let mut plain = Vec::new();
        encode_request(&request, &mut plain);
        assert_eq!(decode_request(&plain).unwrap(), request);
        // The flag bit cannot collide with a legal name length.
        assert!(u16::try_from(MAX_NAME_LEN).unwrap() & FLAG_F32_STREAM == 0);
    }
}

//! # corrfade-serve — channel-as-a-service over TCP and Unix sockets
//!
//! The serving layer of the corrfade workspace: a std-only socket server
//! that streams correlated-Rayleigh Doppler blocks — the real-time
//! generator of Tran, Wysocki, Seberry & Mertins — to remote consumers
//! over a small versioned binary protocol.
//!
//! * [`protocol`] — the wire format: one request (magic, version, registry
//!   scenario name, seed, block count), then length-prefixed response
//!   frames (header / block / error / end). All decoders are total: hostile
//!   bytes produce typed [`ProtocolError`]s, never panics.
//! * [`server`] — [`Server`]: thread-per-connection on a shared
//!   [`StreamFleet`](corrfade_parallel::StreamFleet); one pooled block and
//!   one pooled wire buffer per connection give a zero-allocation
//!   steady-state send path. Graceful shutdown joins every thread.
//! * [`client`] — [`Client`]: blocking consumer that decodes frames
//!   straight into a caller-owned [`SampleBlock`](corrfade::SampleBlock).
//! * [`retry`] — fault tolerance: [`RetryPolicy`] (jittered exponential
//!   backoff) behind [`Client::connect_with_retry`], and
//!   [`ResumingStream`], which reconnects and **resumes at its block
//!   cursor** (wire v2) across timeouts, EOFs and resets, delivering a
//!   gapless bit-exact stream.
//! * [`chaos`] — deterministic fault injection: [`ChaosProxy`] forwards a
//!   connection while injecting seeded partial writes, stalls, truncations
//!   and disconnects, so the chaos test suite can prove resume
//!   bit-exactness under fire.
//! * [`net`] — the TCP/Unix-socket transport abstraction ([`ServeAddr`]).
//!
//! Delivered samples are **bit-identical** (`f64::to_bits`) to what the
//! same `Scenario::build_realtime(seed)` stream produces in-process; the
//! workspace `wire_equivalence` test suite pins this guarantee.
//!
//! ## Quick start
//!
//! ```
//! use corrfade_serve::{Client, ServeAddr, Server, ServerConfig};
//!
//! // Bind an ephemeral TCP port (Unix sockets: `ServeAddr::Unix(path)`).
//! let server = Server::bind(
//!     ServeAddr::Tcp("127.0.0.1:0".parse().unwrap()),
//!     ServerConfig::default(),
//! )
//! .unwrap();
//!
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let header = client.subscribe("fig4a-spectral", 42, 3).unwrap();
//! assert_eq!((header.envelopes, header.samples), (3, 4096));
//!
//! let mut block = corrfade::SampleBlock::empty();
//! while let Some(index) = client.next_block_into(&mut block).unwrap() {
//!     assert!(index < 3);
//!     assert_eq!(block.envelopes(), 3);
//! }
//! server.shutdown().unwrap();
//! ```

pub mod chaos;
pub mod client;
pub mod error;
pub mod net;
pub mod protocol;
pub mod retry;
pub mod server;

pub use chaos::{ChaosProxy, ChaosSchedule};
pub use client::{Client, StreamHeader};
pub use error::ServeError;
pub use net::{is_timeout, Conn, ServeAddr};
pub use protocol::{Frame, ProtocolError, Request};
pub use retry::{is_resumable, ResumingStream, RetryPolicy};
pub use server::{Server, ServerConfig, ServerStats};

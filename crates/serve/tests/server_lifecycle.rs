//! Server lifecycle tests: concurrent independent clients, mid-stream
//! disconnects, protocol-error frames, and graceful shutdown.
//!
//! These exercise the thread-per-connection server end to end over real
//! sockets (TCP on a loopback ephemeral port; the Unix transport is
//! covered by the workspace `wire_equivalence` suite and the CI smoke
//! job).

use std::io::{Read, Write};
use std::time::{Duration, Instant};

use corrfade::{ChannelStream, SampleBlock};
use corrfade_scenarios::lookup;
use corrfade_serve::protocol::{
    code, decode_frame_payload, encode_request, encode_request_with_flags, split_frame, Frame,
    Request, FLAG_F32_STREAM, MAGIC,
};
use corrfade_serve::{Client, Conn, ServeAddr, ServeError, Server, ServerConfig};

fn tcp_server_with(config: ServerConfig) -> Server {
    Server::bind(ServeAddr::Tcp("127.0.0.1:0".parse().unwrap()), config)
        .expect("binding an ephemeral loopback port")
}

fn tcp_server() -> Server {
    Server::bind(
        ServeAddr::Tcp("127.0.0.1:0".parse().unwrap()),
        ServerConfig::default(),
    )
    .expect("binding an ephemeral loopback port")
}

/// Bit pattern of a block, for exact comparisons.
fn bits(block: &SampleBlock) -> Vec<u64> {
    block
        .as_slice()
        .iter()
        .flat_map(|z| [z.re.to_bits(), z.im.to_bits()])
        .collect()
}

/// Streams `blocks` blocks of `scenario` standalone, as bit patterns.
fn standalone(scenario: &str, seed: u64, blocks: u32) -> Vec<Vec<u64>> {
    let mut stream = lookup(scenario).unwrap().build_realtime(seed).unwrap();
    let mut block = SampleBlock::empty();
    (0..blocks)
        .map(|_| {
            stream.next_block_into(&mut block).unwrap();
            bits(&block)
        })
        .collect()
}

/// Polls `f` until it returns true or the deadline expires.
fn wait_until(what: &str, mut f: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !f() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn concurrent_clients_get_independent_deterministic_streams() {
    let server = tcp_server();
    let addr = server.local_addr().clone();

    // Two clients per (scenario, seed) pair: same pair → identical bytes;
    // the pairs differ from each other. All six run concurrently.
    let jobs: Vec<(&str, u64)> = vec![
        ("two-envelope-complex", 11),
        ("two-envelope-complex", 11),
        ("two-envelope-complex", 12),
        ("fig4a-spectral", 11),
        ("fig4a-spectral", 77),
        ("fig4b-spatial", 11),
    ];
    let handles: Vec<_> = jobs
        .iter()
        .map(|&(scenario, seed)| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client.subscribe(scenario, seed, 3).unwrap();
                let streamed: Vec<Vec<u64>> =
                    client.collect_blocks().unwrap().iter().map(bits).collect();
                (scenario, seed, streamed)
            })
        })
        .collect();
    let results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .collect();

    for (scenario, seed, streamed) in &results {
        assert_eq!(
            *streamed,
            standalone(scenario, *seed, 3),
            "stream ({scenario}, seed {seed}) is not bit-identical to standalone"
        );
    }
    // Duplicated pair agrees; distinct seeds diverge.
    assert_eq!(results[0].2, results[1].2);
    assert_ne!(results[1].2, results[2].2);

    // Every subscription was released.
    wait_until("all subscriptions released", || {
        server.stats().subscribers == 0
    });
    let stats = server.stats();
    assert_eq!(stats.accepted, 6);
    assert_eq!(stats.blocks_sent, 18);
    assert_eq!(stats.error_frames, 0);
    assert_eq!(stats.resumed_sessions, 0, "no v2 resumes happened");
    assert_eq!(
        stats.errors_by_code.iter().sum::<u64>(),
        0,
        "no per-code errors on the happy path"
    );
    server.shutdown().unwrap();
}

#[test]
fn mid_stream_disconnect_does_not_poison_the_fleet() {
    let server = tcp_server();
    let addr = server.local_addr().clone();

    // A client asks for a long stream, reads one block, and vanishes.
    {
        let mut client = Client::connect(&addr).unwrap();
        client.subscribe("two-envelope-complex", 5, 10_000).unwrap();
        let mut block = SampleBlock::empty();
        assert_eq!(client.next_block_into(&mut block).unwrap(), Some(0));
        // Dropped here: the connection closes with the server mid-stream.
    }

    // The server notices the broken pipe and releases the subscription.
    wait_until("disconnect cleanup", || server.stats().subscribers == 0);

    // The fleet still serves new clients, bit-identically — including the
    // exact (scenario, seed) the dropped client was using.
    let mut client = Client::connect(&addr).unwrap();
    client.subscribe("two-envelope-complex", 5, 2).unwrap();
    let streamed: Vec<Vec<u64>> = client.collect_blocks().unwrap().iter().map(bits).collect();
    assert_eq!(streamed, standalone("two-envelope-complex", 5, 2));
    server.shutdown().unwrap();
}

#[test]
fn protocol_errors_arrive_as_typed_frames() {
    let server = tcp_server();
    let addr = server.local_addr().clone();

    // Unknown scenario: typed code plus a did-you-mean suggestion.
    let mut client = Client::connect(&addr).unwrap();
    let err = client.subscribe("fig4a-spektral", 1, 1).unwrap_err();
    let ServeError::Server { code: c, message } = err else {
        panic!("expected a server error frame, got {err}");
    };
    assert_eq!(c, code::UNKNOWN_SCENARIO);
    assert!(
        message.contains("did you mean `fig4a-spectral`"),
        "suggestion missing from: {message}"
    );

    // Version mismatch, sent as raw bytes to control the header exactly.
    let mut request = Vec::new();
    encode_request(
        &Request {
            scenario: "two-envelope-complex".into(),
            seed: 1,
            blocks: 1,
            cursor: 0,
        },
        &mut request,
    );
    request[4] = 0xFE; // version := 0xFFFE
    request[5] = 0xFF;
    let mut raw = Conn::connect(&addr, Duration::from_secs(10)).unwrap();
    raw.write_all(&request).unwrap();
    let mut response = Vec::new();
    raw.read_to_end(&mut response).unwrap();
    let (payload, _) = split_frame(&response).unwrap();
    let Frame::Error { code: c, .. } = decode_frame_payload(payload).unwrap() else {
        panic!("expected an error frame");
    };
    assert_eq!(c, code::UNSUPPORTED_VERSION);

    // Bad magic.
    let mut bad_magic = request.clone();
    bad_magic[..4].copy_from_slice(b"XXXX");
    assert_ne!(&bad_magic[..4], &MAGIC);
    let mut raw = Conn::connect(&addr, Duration::from_secs(10)).unwrap();
    raw.write_all(&bad_magic).unwrap();
    let mut response = Vec::new();
    raw.read_to_end(&mut response).unwrap();
    let (payload, _) = split_frame(&response).unwrap();
    let Frame::Error { code: c, .. } = decode_frame_payload(payload).unwrap() else {
        panic!("expected an error frame");
    };
    assert_eq!(c, code::BAD_MAGIC);

    // Each rejected request was counted — totals and exact per-code
    // breakdown — and none left a subscription.
    wait_until("error-frame counters", || server.stats().error_frames == 3);
    let stats = server.stats();
    assert_eq!(stats.error_count(code::UNKNOWN_SCENARIO), 1);
    assert_eq!(stats.error_count(code::UNSUPPORTED_VERSION), 1);
    assert_eq!(stats.error_count(code::BAD_MAGIC), 1);
    assert_eq!(
        stats.errors_by_code.iter().sum::<u64>(),
        3,
        "no error was counted under any other code: {:?}",
        stats.errors_by_code
    );
    assert_eq!(stats.error_count(code::BUSY), 0);
    assert_eq!(stats.subscribers, 0);
    server.shutdown().unwrap();
}

#[test]
fn f32_stream_requests_get_a_typed_precision_error_frame() {
    // Wire v1 streams f64 blocks only; the f32 fast tier's header flag is
    // reserved for v2. A flagged request must not be misread as an oversized
    // name or silently served widened — it earns its own typed error frame
    // and leaves no subscription behind.
    let server = tcp_server();
    let addr = server.local_addr().clone();

    let mut request = Vec::new();
    encode_request_with_flags(
        &Request {
            scenario: "two-envelope-complex".into(),
            seed: 1,
            blocks: 1,
            cursor: 0,
        },
        FLAG_F32_STREAM,
        &mut request,
    );
    let mut raw = Conn::connect(&addr, Duration::from_secs(10)).unwrap();
    raw.write_all(&request).unwrap();
    let mut response = Vec::new();
    raw.read_to_end(&mut response).unwrap();
    let (payload, _) = split_frame(&response).unwrap();
    let Frame::Error { code: c, message } = decode_frame_payload(payload).unwrap() else {
        panic!("expected an error frame");
    };
    assert_eq!(c, code::PRECISION_UNSUPPORTED);
    assert!(
        message.contains("f64"),
        "the error should say what the server can stream: {message}"
    );

    wait_until("error-frame counter", || server.stats().error_frames == 1);
    assert_eq!(server.stats().error_count(code::PRECISION_UNSUPPORTED), 1);
    assert_eq!(server.stats().subscribers, 0);
    server.shutdown().unwrap();
}

#[test]
fn resumed_sessions_are_bit_identical_and_counted() {
    let server = tcp_server();
    let addr = server.local_addr().clone();
    let full = standalone("two-envelope-complex", 21, 7);

    // A v2 resume at cursor 3 delivers exactly blocks 3..7 of the
    // uninterrupted stream, with absolute wire indices.
    let mut client = Client::connect(&addr).unwrap();
    let header = client
        .subscribe_at("two-envelope-complex", 21, 4, 3)
        .unwrap();
    assert_eq!(header.blocks, 4);
    let mut block = SampleBlock::empty();
    for expect in 3..7u32 {
        assert_eq!(client.next_block_into(&mut block).unwrap(), Some(expect));
        assert_eq!(
            bits(&block),
            full[expect as usize],
            "resumed block {expect} is not bit-identical to the uninterrupted stream"
        );
    }
    assert_eq!(client.next_block_into(&mut block).unwrap(), None);

    // A cursor-0 subscribe stays a v1 request and does not count.
    let mut fresh = Client::connect(&addr).unwrap();
    fresh.subscribe("two-envelope-complex", 21, 1).unwrap();
    fresh.collect_blocks().unwrap();

    wait_until("subscriptions released", || server.stats().subscribers == 0);
    let stats = server.stats();
    assert_eq!(stats.resumed_sessions, 1);
    assert_eq!(stats.blocks_sent, 5);
    assert_eq!(stats.error_frames, 0);
    server.shutdown().unwrap();
}

#[test]
fn admission_control_answers_busy_and_counts_it() {
    let server = tcp_server_with(ServerConfig {
        max_sessions: Some(1),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().clone();

    // First session occupies the only slot mid-stream.
    let mut holder = Client::connect(&addr).unwrap();
    holder.subscribe("two-envelope-complex", 1, 1000).unwrap();
    let mut block = SampleBlock::empty();
    holder.next_block_into(&mut block).unwrap();
    wait_until("holder session active", || server.stats().active == 1);

    // Second session is refused with the typed BUSY frame.
    let mut second = Client::connect(&addr).unwrap();
    let err = second.subscribe("two-envelope-complex", 2, 1).unwrap_err();
    let ServeError::Server { code: c, message } = err else {
        panic!("expected a BUSY server frame, got {err}");
    };
    assert_eq!(c, code::BUSY);
    assert!(
        message.contains("capacity"),
        "BUSY message should say why: {message}"
    );
    assert!(corrfade_serve::is_resumable(&ServeError::Server {
        code: c,
        message,
    }));

    // The refusal is counted under its own code and took no subscription.
    wait_until("busy counter", || {
        server.stats().error_count(code::BUSY) == 1
    });
    assert_eq!(server.stats().subscribers, 1, "only the holder subscribes");

    // Once the slot frees up, the same client address is admitted again.
    drop(holder);
    wait_until("slot released", || server.stats().active == 0);
    let mut third = Client::connect(&addr).unwrap();
    third.subscribe("two-envelope-complex", 3, 1).unwrap();
    assert_eq!(third.collect_blocks().unwrap().len(), 1);
    server.shutdown().unwrap();
}

#[test]
fn idle_connections_are_dropped_at_the_read_deadline() {
    let server = tcp_server_with(ServerConfig {
        read_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().clone();

    // Connect and send nothing: the server must drop us at the idle
    // deadline (no error frame — there is no request to answer) instead of
    // holding the connection open.
    let mut idler = Conn::connect(&addr, Duration::from_secs(10)).unwrap();
    let mut buf = [0u8; 16];
    let started = Instant::now();
    let n = idler.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "idle connection should close without any frame");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "the idle deadline should fire well before the client timeout"
    );

    wait_until("idle connection reaped", || server.stats().active == 0);
    let stats = server.stats();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.error_frames, 0);
    server.shutdown().unwrap();
}

#[test]
fn shutdown_joins_all_connection_threads_and_stops_streams() {
    let server = tcp_server();
    let addr = server.local_addr().clone();

    // Three clients in the middle of very long streams.
    let clients: Vec<_> = (0..3)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client
                    .subscribe("two-envelope-complex", 100 + i, u32::MAX)
                    .unwrap();
                let mut block = SampleBlock::empty();
                let mut received = 0u64;
                loop {
                    match client.next_block_into(&mut block) {
                        Ok(Some(_)) => received += 1,
                        // The stream must terminate (shutdown frame, reset,
                        // or close) — never hang and never end cleanly,
                        // since u32::MAX blocks were requested.
                        Ok(None) => panic!("stream ended cleanly during shutdown"),
                        Err(e) => {
                            if let ServeError::Server { code: c, .. } = &e {
                                assert_eq!(*c, code::SERVER_SHUTDOWN);
                            }
                            return received;
                        }
                    }
                }
            })
        })
        .collect();
    wait_until("all three streams active", || {
        server.stats().subscribers == 3
    });

    // shutdown() blocks until the accept thread and every connection
    // thread have been joined — when it returns, nothing is left running.
    server.shutdown().unwrap();

    for handle in clients {
        handle.join().expect("client thread panicked");
    }

    // The listener is gone: new connections are refused.
    assert!(Conn::connect(&addr, Duration::from_millis(500)).is_err());
}

//! Fault-injection integration tests: a [`ResumingStream`] read through a
//! [`ChaosProxy`] — partial writes, short reads, stalls, truncations and
//! abrupt disconnects — must deliver the exact bit pattern of a fault-free
//! standalone run, on both transports. A killed-and-rebound server must be
//! equally invisible to the consumer.

use std::time::Duration;

use corrfade::{ChannelStream, SampleBlock};
use corrfade_scenarios::lookup;
use corrfade_serve::{
    ChaosProxy, ChaosSchedule, ResumingStream, RetryPolicy, ServeAddr, Server, ServerConfig,
};

const SCENARIO: &str = "two-envelope-complex";
const SEED: u64 = 0xFA57_F0E5;

fn tcp_addr() -> ServeAddr {
    ServeAddr::Tcp("127.0.0.1:0".parse().unwrap())
}

#[cfg(unix)]
fn unix_addr(tag: &str) -> ServeAddr {
    ServeAddr::Unix(
        std::env::temp_dir().join(format!("corrfade-chaos-{tag}-{}.sock", std::process::id())),
    )
}

/// A policy with a pinned jitter seed so every run retries on the same
/// schedule, and a budget comfortably above the chaos fault count.
fn pinned_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 32,
        initial_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
        io_timeout: Duration::from_secs(10),
        jitter_seed: Some(0xBAC0_FF5E),
    }
}

/// Bit pattern of a block, for exact comparisons.
fn bits(block: &SampleBlock) -> Vec<u64> {
    block
        .as_slice()
        .iter()
        .flat_map(|z| [z.re.to_bits(), z.im.to_bits()])
        .collect()
}

/// Streams `blocks` blocks of `SCENARIO` standalone, as bit patterns.
fn standalone(blocks: u32) -> Vec<Vec<u64>> {
    let mut stream = lookup(SCENARIO).unwrap().build_realtime(SEED).unwrap();
    let mut block = SampleBlock::empty();
    (0..blocks)
        .map(|_| {
            stream.next_block_into(&mut block).unwrap();
            bits(&block)
        })
        .collect()
}

/// Drains `stream` to completion, returning `(absolute_index, bits)` per
/// delivered block — the indices prove no block was dropped or duplicated
/// across reconnects.
fn drain(stream: &mut ResumingStream) -> Vec<(u32, Vec<u64>)> {
    let mut out = Vec::new();
    let mut block = SampleBlock::empty();
    while let Some(index) = stream.next_block_into(&mut block).unwrap() {
        out.push((index, bits(&block)));
    }
    out
}

/// Asserts the drained stream is exactly blocks `0..blocks`, each
/// bit-identical to the fault-free standalone run.
fn assert_bit_exact(got: &[(u32, Vec<u64>)], blocks: u32) {
    let reference = standalone(blocks);
    assert_eq!(got.len(), blocks as usize, "wrong number of blocks");
    for (at, (index, pattern)) in got.iter().enumerate() {
        assert_eq!(*index, u32::try_from(at).unwrap(), "index gap at {at}");
        assert_eq!(
            pattern, &reference[at],
            "block {at} is not bit-identical to the fault-free run"
        );
    }
}

/// Runs the full chaos-cut scenario against a server at `server_addr`,
/// proxied via `proxy_addr`.
fn chaos_cut_case(server_addr: ServeAddr, proxy_addr: ServeAddr) {
    let server = Server::bind(server_addr, ServerConfig::default()).expect("bind server");
    let schedule = ChaosSchedule {
        seed: 0xD15C_0C0D,
        max_faults: 3,
        // Past the first full block frame (~128 KiB for this scenario):
        // every faulted connection dies mid-stream with at least one block
        // delivered, so the reconnect resumes at a non-zero cursor.
        min_bytes_before_cut: 150_000,
        max_bytes_before_cut: 350_000,
        fragment: true,
        stall: None,
    };
    let proxy = ChaosProxy::spawn(proxy_addr, server.local_addr().clone(), schedule)
        .expect("spawn chaos proxy");

    const BLOCKS: u32 = 4;
    let mut stream =
        ResumingStream::open(proxy.local_addr(), pinned_policy(), SCENARIO, SEED, BLOCKS)
            .expect("open through the chaos proxy");
    let got = drain(&mut stream);

    assert_bit_exact(&got, BLOCKS);
    assert!(
        stream.reconnects() >= 1,
        "the chaos schedule must have forced at least one reconnect"
    );
    assert_eq!(
        proxy.faulted_connections(),
        3,
        "all three budgeted faults should have fired before the clean pass"
    );
    let stats = server.stats();
    assert!(
        stats.resumed_sessions >= 1,
        "at least one reconnect must have resumed mid-stream (got {})",
        stats.resumed_sessions
    );

    proxy.shutdown();
    server.shutdown().unwrap();
}

#[test]
fn chaos_cut_streams_resume_bit_exactly_over_tcp() {
    chaos_cut_case(tcp_addr(), tcp_addr());
}

#[cfg(unix)]
#[test]
fn chaos_cut_streams_resume_bit_exactly_over_unix() {
    chaos_cut_case(unix_addr("upstream"), unix_addr("proxy"));
}

/// A proxy that stalls mid-block (hung server) is survived through the
/// client's read timeout: the stream reconnects and still delivers the
/// exact fault-free bits.
#[test]
fn stalled_connections_resume_via_the_read_timeout() {
    let server = Server::bind(tcp_addr(), ServerConfig::default()).expect("bind server");
    let schedule = ChaosSchedule {
        seed: 0x57A1_1ED5,
        max_faults: 1,
        min_bytes_before_cut: 512,
        max_bytes_before_cut: 2048,
        fragment: false,
        stall: Some(Duration::from_millis(500)),
    };
    let proxy = ChaosProxy::spawn(tcp_addr(), server.local_addr().clone(), schedule)
        .expect("spawn chaos proxy");

    const BLOCKS: u32 = 3;
    let policy = RetryPolicy {
        // Shorter than the stall: the client must classify the hang as a
        // timeout and resume, rather than wait the stall out.
        io_timeout: Duration::from_millis(100),
        ..pinned_policy()
    };
    let mut stream = ResumingStream::open(proxy.local_addr(), policy, SCENARIO, SEED, BLOCKS)
        .expect("open through the stalling proxy");
    let got = drain(&mut stream);

    assert_bit_exact(&got, BLOCKS);
    assert!(
        stream.reconnects() >= 1,
        "the stall must have tripped the read timeout into a reconnect"
    );

    proxy.shutdown();
    server.shutdown().unwrap();
}

/// Kill the server mid-stream, rebind a fresh one on the same address, and
/// the consumer — without any special handling — receives every block
/// bit-identically. This is the crash-restart story end to end.
#[test]
fn killed_and_rebound_servers_are_invisible_to_the_consumer() {
    let first = Server::bind(tcp_addr(), ServerConfig::default()).expect("bind first server");
    let addr = first.local_addr().clone();

    // Enough blocks that the server cannot park the whole stream in socket
    // buffers: the kill below lands mid-stream, not after the fact.
    const BLOCKS: u32 = 32;
    let mut stream = ResumingStream::open(&addr, pinned_policy(), SCENARIO, SEED, BLOCKS)
        .expect("open against the first server");

    let mut got = Vec::new();
    let mut block = SampleBlock::empty();
    for _ in 0..2 {
        let index = stream
            .next_block_into(&mut block)
            .unwrap()
            .expect("stream ended early");
        got.push((index, bits(&block)));
    }

    // Kill the first server while the stream is mid-flight, then rebind on
    // the very same address (retry while the OS releases the port).
    first.shutdown().unwrap();
    let second = {
        let mut attempt = 0;
        loop {
            match Server::bind(addr.clone(), ServerConfig::default()) {
                Ok(server) => break server,
                Err(e) if attempt < 100 => {
                    attempt += 1;
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("rebinding {addr} failed: {e}"),
            }
        }
    };

    got.extend(drain(&mut stream));
    assert_bit_exact(&got, BLOCKS);
    assert!(
        stream.reconnects() >= 1,
        "the kill must have forced a reconnect"
    );
    let stats = second.stats();
    assert_eq!(
        stats.resumed_sessions, 1,
        "the rebound server should have served exactly one resume"
    );
    assert!(
        stats.blocks_sent < u64::from(BLOCKS),
        "the resumed session must have skipped the already-delivered prefix"
    );
    second.shutdown().unwrap();
}

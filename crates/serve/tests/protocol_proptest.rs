//! Property tests of the `corrfade-serve` wire protocol.
//!
//! Two families:
//!
//! 1. **Round trips** — every frame type and every request survives
//!    encode → split → decode bit-exactly.
//! 2. **Adversarial decoding** — random, truncated, corrupted and
//!    oversized byte strings never panic any decoder: every outcome is
//!    `Ok` or a typed [`ProtocolError`].

use proptest::prelude::*;

use corrfade_serve::protocol::{
    code, decode_block_payload, decode_frame_payload, decode_request, decode_request_cursor,
    decode_request_header, encode_error_frame_raw, encode_frame, encode_request,
    encode_request_versioned, split_frame, Frame, ProtocolError, Request, MAX_NAME_LEN,
    REQUEST_CURSOR_LEN, REQUEST_HEADER_LEN, VERSION_V2,
};

/// Maps arbitrary bytes onto printable ASCII so generated strings are
/// always valid UTF-8 (the shim has no string strategies).
fn ascii(bytes: &[u8]) -> String {
    bytes.iter().map(|b| (b' ' + b % 95) as char).collect()
}

/// Builds one of the four frame variants from undifferentiated randomness.
fn frame_from_parts(kind: u8, a: u32, b: u32, c: u32, bytes: Vec<u8>) -> Frame {
    match kind {
        0 => Frame::Header {
            envelopes: a,
            samples: b,
            blocks: c,
        },
        1 => Frame::Block {
            index: a,
            payload: bytes,
        },
        2 => Frame::Error {
            code: a as u16,
            message: ascii(&bytes),
        },
        _ => Frame::End { blocks_sent: a },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every frame type round-trips through the wire encoding exactly,
    /// and `split_frame` consumes precisely the bytes that were written.
    #[test]
    fn frames_round_trip(
        kind in 0u8..4,
        a in 0u32..=u32::MAX,
        b in 0u32..=u32::MAX,
        c in 0u32..=u32::MAX,
        bytes in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let frame = frame_from_parts(kind, a, b, c, bytes);
        let mut wire = Vec::new();
        encode_frame(&frame, &mut wire);
        let (payload, consumed) = split_frame(&wire).unwrap();
        prop_assert_eq!(consumed, wire.len());
        let decoded = decode_frame_payload(payload).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    /// Block payload bytes come back bit-for-bit through the zero-copy
    /// decoder, regardless of content (including NaN-patterned bytes).
    #[test]
    fn block_payloads_are_bit_exact(
        index in 0u32..=u32::MAX,
        bytes in proptest::collection::vec(0u8..=255, 0..512),
    ) {
        let frame = Frame::Block { index, payload: bytes.clone() };
        let mut wire = Vec::new();
        encode_frame(&frame, &mut wire);
        let (payload, _) = split_frame(&wire).unwrap();
        let (got_index, got_bytes) = decode_block_payload(payload).unwrap();
        prop_assert_eq!(got_index, index);
        prop_assert_eq!(got_bytes, &bytes[..]);
    }

    /// Requests round-trip for every legal scenario-name length. A zero
    /// cursor encodes as wire v1, a non-zero one as a v2 resume; both
    /// decode back to the identical request.
    #[test]
    fn requests_round_trip(
        name_bytes in proptest::collection::vec(0u8..=255, 1..=MAX_NAME_LEN),
        seed in 0u64..=u64::MAX,
        blocks in 0u32..=u32::MAX,
        cursor in 0u64..=u64::MAX,
    ) {
        // Keep the resumed span within the u32 wire index space, which is
        // the only legal region (the hostile test covers the rest).
        let cursor = cursor % (u64::from(u32::MAX) - u64::from(blocks) + 1);
        let request = Request { scenario: ascii(&name_bytes), seed, blocks, cursor };
        let mut wire = Vec::new();
        encode_request(&request, &mut wire);
        prop_assert_eq!(decode_request(&wire).unwrap(), request);
    }

    /// The explicit v2 encoding round-trips for every cursor, including 0,
    /// and the streaming header/cursor decoders agree with the one-shot
    /// decoder.
    #[test]
    fn v2_requests_round_trip(
        name_bytes in proptest::collection::vec(0u8..=255, 1..=MAX_NAME_LEN),
        seed in 0u64..=u64::MAX,
        blocks in 0u32..=u32::MAX,
        cursor in 0u64..=u64::MAX,
    ) {
        let cursor = cursor % (u64::from(u32::MAX) - u64::from(blocks) + 1);
        let request = Request { scenario: ascii(&name_bytes), seed, blocks, cursor };
        let mut wire = Vec::new();
        encode_request_versioned(&request, 0, VERSION_V2, &mut wire);
        prop_assert_eq!(decode_request(&wire).unwrap(), request.clone());
        let head = decode_request_header(&wire).unwrap();
        prop_assert_eq!(head.version, VERSION_V2);
        prop_assert_eq!(head.cursor_len(), REQUEST_CURSOR_LEN);
        prop_assert_eq!(
            decode_request_cursor(&wire[REQUEST_HEADER_LEN..], head.blocks).unwrap(),
            cursor
        );
    }

    /// Hostile cursors: any `(cursor, blocks)` pair either decodes to the
    /// exact cursor or earns a typed error — overflowing spans are
    /// rejected, never wrapped into the u32 wire index space.
    #[test]
    fn hostile_cursors_never_panic_or_wrap(
        cursor in 0u64..=u64::MAX,
        blocks in 0u32..=u32::MAX,
        short in 0usize..REQUEST_CURSOR_LEN,
    ) {
        match decode_request_cursor(&cursor.to_le_bytes(), blocks) {
            Ok(got) => {
                prop_assert_eq!(got, cursor);
                prop_assert!(cursor + u64::from(blocks) <= u64::from(u32::MAX));
            }
            Err(ProtocolError::Oversized { .. }) => {
                prop_assert!(
                    cursor.checked_add(u64::from(blocks))
                        .is_none_or(|end| end > u64::from(u32::MAX))
                );
            }
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
        // A truncated cursor field is always the typed truncation error.
        prop_assert!(matches!(
            decode_request_cursor(&cursor.to_le_bytes()[..short], blocks),
            Err(ProtocolError::Truncated { .. })
        ));
    }

    /// Truncating or bit-flipping a valid v2 resume request never panics
    /// the request decoders; every outcome is `Ok` or a typed error.
    #[test]
    fn mutated_v2_requests_never_panic(
        name_bytes in proptest::collection::vec(0u8..=255, 1..=MAX_NAME_LEN),
        cursor in 0u64..=u64::MAX,
        cut in 0usize..=usize::MAX,
        flip_at in 0usize..=usize::MAX,
        flip_bits in 1u8..=255,
    ) {
        let request = Request {
            scenario: ascii(&name_bytes),
            seed: 7,
            blocks: 3,
            cursor: cursor % 1_000_000,
        };
        let mut wire = Vec::new();
        encode_request_versioned(&request, 0, VERSION_V2, &mut wire);

        let _ = decode_request(&wire[..cut % (wire.len() + 1)]);

        let at = flip_at % wire.len();
        wire[at] ^= flip_bits;
        let _ = decode_request(&wire);
        let _ = decode_request_header(&wire);
    }

    /// `BUSY` error frames round-trip like every other code, and arbitrary
    /// `(code, message)` pairs — hostile codes included — survive the
    /// error-frame encoder/decoder exactly.
    #[test]
    fn busy_and_arbitrary_error_frames_round_trip(
        raw_code in 0u16..=u16::MAX,
        msg_bytes in proptest::collection::vec(0u8..=255, 0..128),
        pick_busy in 0u8..2,
    ) {
        let code = if pick_busy == 1 { code::BUSY } else { raw_code };
        let message = ascii(&msg_bytes);
        let mut wire = Vec::new();
        encode_error_frame_raw(&mut wire, code, &message);
        let (payload, consumed) = split_frame(&wire).unwrap();
        prop_assert_eq!(consumed, wire.len());
        let Frame::Error { code: got_code, message: got_message } =
            decode_frame_payload(payload).unwrap() else {
            panic!("expected an error frame");
        };
        prop_assert_eq!(got_code, code);
        prop_assert_eq!(got_message, message);
    }

    /// Arbitrary garbage never panics any decoder.
    #[test]
    fn random_bytes_never_panic_decoders(
        raw in proptest::collection::vec(0u8..=255, 0..128),
    ) {
        let _ = decode_request(&raw);
        let _ = decode_frame_payload(&raw);
        let _ = decode_block_payload(&raw);
        if let Ok((payload, consumed)) = split_frame(&raw) {
            prop_assert!(consumed <= raw.len());
            let _ = decode_frame_payload(payload);
        }
    }

    /// A declared length prefix pointing anywhere — zero, beyond the
    /// buffer, beyond `MAX_FRAME_LEN` — yields a typed error or a
    /// payload decode, never a panic or out-of-bounds read.
    #[test]
    fn hostile_length_prefixes_never_panic(
        declared in 0u32..=u32::MAX,
        raw in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let mut wire = declared.to_le_bytes().to_vec();
        wire.extend_from_slice(&raw);
        if let Ok((payload, consumed)) = split_frame(&wire) {
            prop_assert_eq!(consumed, 4 + payload.len());
            prop_assert!(consumed <= wire.len());
            let _ = decode_frame_payload(payload);
        }
    }

    /// Truncating or corrupting a valid frame never panics: truncation of
    /// the prefix or payload is a typed error; a flipped byte decodes to
    /// `Ok` or a typed error.
    #[test]
    fn mutated_valid_frames_never_panic(
        kind in 0u8..4,
        a in 0u32..=u32::MAX,
        bytes in proptest::collection::vec(0u8..=255, 0..64),
        cut in 0usize..=usize::MAX,
        flip_at in 0usize..=usize::MAX,
        flip_bits in 1u8..=255,
    ) {
        let frame = frame_from_parts(kind, a, a ^ 0x5555_5555, !a, bytes);
        let mut wire = Vec::new();
        encode_frame(&frame, &mut wire);

        // Truncation at every possible cut point.
        let truncated = &wire[..cut % wire.len()];
        if let Ok((payload, _)) = split_frame(truncated) {
            let _ = decode_frame_payload(payload);
        }

        // Single corrupted byte (never a no-op flip).
        let at = flip_at % wire.len();
        wire[at] ^= flip_bits;
        if let Ok((payload, _)) = split_frame(&wire) {
            let _ = decode_frame_payload(payload);
        }
    }
}

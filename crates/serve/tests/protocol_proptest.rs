//! Property tests of the `corrfade-serve` wire protocol.
//!
//! Two families:
//!
//! 1. **Round trips** — every frame type and every request survives
//!    encode → split → decode bit-exactly.
//! 2. **Adversarial decoding** — random, truncated, corrupted and
//!    oversized byte strings never panic any decoder: every outcome is
//!    `Ok` or a typed [`ProtocolError`].

use proptest::prelude::*;

use corrfade_serve::protocol::{
    decode_block_payload, decode_frame_payload, decode_request, encode_frame, encode_request,
    split_frame, Frame, Request, MAX_NAME_LEN,
};

/// Maps arbitrary bytes onto printable ASCII so generated strings are
/// always valid UTF-8 (the shim has no string strategies).
fn ascii(bytes: &[u8]) -> String {
    bytes.iter().map(|b| (b' ' + b % 95) as char).collect()
}

/// Builds one of the four frame variants from undifferentiated randomness.
fn frame_from_parts(kind: u8, a: u32, b: u32, c: u32, bytes: Vec<u8>) -> Frame {
    match kind {
        0 => Frame::Header {
            envelopes: a,
            samples: b,
            blocks: c,
        },
        1 => Frame::Block {
            index: a,
            payload: bytes,
        },
        2 => Frame::Error {
            code: a as u16,
            message: ascii(&bytes),
        },
        _ => Frame::End { blocks_sent: a },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every frame type round-trips through the wire encoding exactly,
    /// and `split_frame` consumes precisely the bytes that were written.
    #[test]
    fn frames_round_trip(
        kind in 0u8..4,
        a in 0u32..=u32::MAX,
        b in 0u32..=u32::MAX,
        c in 0u32..=u32::MAX,
        bytes in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let frame = frame_from_parts(kind, a, b, c, bytes);
        let mut wire = Vec::new();
        encode_frame(&frame, &mut wire);
        let (payload, consumed) = split_frame(&wire).unwrap();
        prop_assert_eq!(consumed, wire.len());
        let decoded = decode_frame_payload(payload).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    /// Block payload bytes come back bit-for-bit through the zero-copy
    /// decoder, regardless of content (including NaN-patterned bytes).
    #[test]
    fn block_payloads_are_bit_exact(
        index in 0u32..=u32::MAX,
        bytes in proptest::collection::vec(0u8..=255, 0..512),
    ) {
        let frame = Frame::Block { index, payload: bytes.clone() };
        let mut wire = Vec::new();
        encode_frame(&frame, &mut wire);
        let (payload, _) = split_frame(&wire).unwrap();
        let (got_index, got_bytes) = decode_block_payload(payload).unwrap();
        prop_assert_eq!(got_index, index);
        prop_assert_eq!(got_bytes, &bytes[..]);
    }

    /// Requests round-trip for every legal scenario-name length.
    #[test]
    fn requests_round_trip(
        name_bytes in proptest::collection::vec(0u8..=255, 1..=MAX_NAME_LEN),
        seed in 0u64..=u64::MAX,
        blocks in 0u32..=u32::MAX,
    ) {
        let request = Request { scenario: ascii(&name_bytes), seed, blocks };
        let mut wire = Vec::new();
        encode_request(&request, &mut wire);
        prop_assert_eq!(decode_request(&wire).unwrap(), request);
    }

    /// Arbitrary garbage never panics any decoder.
    #[test]
    fn random_bytes_never_panic_decoders(
        raw in proptest::collection::vec(0u8..=255, 0..128),
    ) {
        let _ = decode_request(&raw);
        let _ = decode_frame_payload(&raw);
        let _ = decode_block_payload(&raw);
        if let Ok((payload, consumed)) = split_frame(&raw) {
            prop_assert!(consumed <= raw.len());
            let _ = decode_frame_payload(payload);
        }
    }

    /// A declared length prefix pointing anywhere — zero, beyond the
    /// buffer, beyond `MAX_FRAME_LEN` — yields a typed error or a
    /// payload decode, never a panic or out-of-bounds read.
    #[test]
    fn hostile_length_prefixes_never_panic(
        declared in 0u32..=u32::MAX,
        raw in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let mut wire = declared.to_le_bytes().to_vec();
        wire.extend_from_slice(&raw);
        if let Ok((payload, consumed)) = split_frame(&wire) {
            prop_assert_eq!(consumed, 4 + payload.len());
            prop_assert!(consumed <= wire.len());
            let _ = decode_frame_payload(payload);
        }
    }

    /// Truncating or corrupting a valid frame never panics: truncation of
    /// the prefix or payload is a typed error; a flipped byte decodes to
    /// `Ok` or a typed error.
    #[test]
    fn mutated_valid_frames_never_panic(
        kind in 0u8..4,
        a in 0u32..=u32::MAX,
        bytes in proptest::collection::vec(0u8..=255, 0..64),
        cut in 0usize..=usize::MAX,
        flip_at in 0usize..=usize::MAX,
        flip_bits in 1u8..=255,
    ) {
        let frame = frame_from_parts(kind, a, a ^ 0x5555_5555, !a, bytes);
        let mut wire = Vec::new();
        encode_frame(&frame, &mut wire);

        // Truncation at every possible cut point.
        let truncated = &wire[..cut % wire.len()];
        if let Ok((payload, _)) = split_frame(truncated) {
            let _ = decode_frame_payload(payload);
        }

        // Single corrupted byte (never a no-op flip).
        let at = flip_at % wire.len();
        wire[at] ^= flip_bits;
        if let Ok((payload, _)) = split_frame(&wire) {
            let _ = decode_frame_payload(payload);
        }
    }
}

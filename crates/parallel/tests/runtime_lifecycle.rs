//! Lifecycle regression tests for the persistent worker-pool runtime:
//! the global pool must be race-safe under concurrent first use, explicit
//! pools must shut down cleanly when dropped (no leaked jobs, no hangs),
//! and pool reuse must never change the produced values.
//!
//! (The proof that `Drop` actually joins every worker thread lives in the
//! runtime's unit tests, where the pool's internal reference counts are
//! observable.)

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use corrfade_parallel::{generate_snapshots, generate_snapshots_on, ParallelConfig, Runtime};

fn paper_k() -> corrfade_linalg::CMatrix {
    corrfade_models::paper_covariance_matrix_22()
}

#[test]
fn global_runtime_is_race_safe_under_concurrent_first_use() {
    // Many threads race `Runtime::global()` and immediately submit work.
    // Exactly one pool may be created, every submitter must complete, and
    // all of them must observe the same instance.
    const RACERS: usize = 8;
    let barrier = Arc::new(Barrier::new(RACERS));
    let completed = Arc::new(AtomicUsize::new(0));
    let mut addresses = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..RACERS {
            let barrier = Arc::clone(&barrier);
            let completed = Arc::clone(&completed);
            handles.push(scope.spawn(move || {
                barrier.wait();
                let rt = Runtime::global();
                let hits = AtomicUsize::new(0);
                rt.run(&|_, _| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(hits.load(Ordering::Relaxed), rt.workers());
                completed.fetch_add(1, Ordering::Relaxed);
                std::ptr::from_ref(rt) as usize
            }));
        }
        for handle in handles {
            addresses.push(handle.join().unwrap());
        }
    });
    assert_eq!(completed.load(Ordering::Relaxed), RACERS);
    assert!(
        addresses.windows(2).all(|w| w[0] == w[1]),
        "every racer must resolve the same global pool instance"
    );
}

#[test]
fn dropping_an_explicit_pool_shuts_down_cleanly() {
    // A dedicated pool processes jobs, then drops without hanging; work
    // submitted before the drop is fully completed (graceful, not abortive).
    let processed = AtomicUsize::new(0);
    {
        let rt = Runtime::new(3);
        assert_eq!(rt.workers(), 3);
        for _ in 0..10 {
            rt.run(&|_, _| {
                processed.fetch_add(1, Ordering::Relaxed);
            });
        }
    } // Drop joins here; a leak or lost wakeup would hang the test.
    assert_eq!(processed.load(Ordering::Relaxed), 30);
}

#[test]
fn pool_reuse_across_many_calls_is_deterministic() {
    // The same pool answering a stream of requests must produce exactly the
    // same ensembles as fresh pools and as the global pool — reuse cannot
    // leak state between calls.
    let k = paper_k();
    let cfg = ParallelConfig {
        threads: 2,
        chunk_size: 128,
        seed: 99,
    };
    let reused = Runtime::new(2);
    let first = generate_snapshots_on(&reused, &k, 600, &cfg).unwrap();
    for _ in 0..3 {
        assert_eq!(
            first,
            generate_snapshots_on(&reused, &k, 600, &cfg).unwrap()
        );
    }
    let fresh = Runtime::new(4);
    assert_eq!(first, generate_snapshots_on(&fresh, &k, 600, &cfg).unwrap());
    assert_eq!(first, generate_snapshots(&k, 600, &cfg).unwrap());
}

#[test]
fn pools_of_different_sizes_agree() {
    let k = paper_k();
    let cfg = ParallelConfig {
        threads: 0,
        chunk_size: 256,
        seed: 7,
    };
    let small = Runtime::new(1);
    let large = Runtime::new(4);
    assert_eq!(
        generate_snapshots_on(&small, &k, 1500, &cfg).unwrap(),
        generate_snapshots_on(&large, &k, 1500, &cfg).unwrap(),
        "worker count must never influence the ensemble"
    );
}

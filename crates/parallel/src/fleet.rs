//! The multi-stream batch engine: many named scenarios, one worker pool.
//!
//! A production channel emulator does not serve one stream — it serves
//! *fleets* of them: K clients, each subscribed to a named scenario from
//! `corrfade-scenarios`, each expecting its next block of correlated
//! Doppler-shaped samples. [`StreamFleet`] is that serving surface:
//!
//! * **Open by name** — [`StreamFleet::open`] resolves each name through
//!   the scenario registry and builds its real-time generator through the
//!   process-wide decomposition cache
//!   ([`corrfade::cached_eigen_coloring`]), so K streams over the same
//!   covariance matrix pay for one eigendecomposition; the FFT plan cache
//!   in `corrfade-dsp` is shared the same way. Per-stream setup is paid
//!   once, at open.
//! * **Generate in batch** — [`StreamFleet::advance`] produces the next
//!   block for *every* stream concurrently on the persistent
//!   [`Runtime`] pool: streams are dealt into per-executor work-stealing
//!   lanes (stable affinity, stealing for skew — see
//!   [`crate::stealing`]), the submitting thread participates as executor
//!   0, and each stream's block lands in that stream's own pooled
//!   [`SampleBlock`]. After warm-up an advance performs **zero heap
//!   allocation** (the workspace's allocation-regression test measures
//!   this end to end through the pool, including the re-dealt lanes).
//! * **Isolation by construction** — stream `i` owns an independent RNG
//!   stream seeded with [`stream_seed`]`(master_seed, i)`. Which worker
//!   generates which block, and how many workers exist, cannot influence
//!   the output: every stream's blocks are **bit-identical** to running
//!   that scenario alone with the same per-stream seed
//!   ([`Scenario::build_realtime`] + repeated `next_block_into`), on any
//!   thread count and both kernel backends.

use std::sync::{Mutex, PoisonError};

use corrfade::{ChannelStream, RealtimeGenerator, SampleBlock};
use corrfade_scenarios::{lookup, Scenario};

use crate::error::ParallelError;
use crate::partition::chunk_seed;
use crate::runtime::Runtime;
use crate::stealing::StealQueues;

/// Derives the RNG seed of fleet stream `index` from the fleet's master
/// seed (the same SplitMix64 derivation as [`chunk_seed`]). Running
/// `scenario.build_realtime(stream_seed(master_seed, index))` standalone
/// reproduces fleet stream `index` bit for bit.
#[must_use]
pub fn stream_seed(master_seed: u64, index: usize) -> u64 {
    chunk_seed(master_seed, index)
}

/// One fleet member: its generator and the pooled block the engine writes
/// into. Behind a `Mutex` so pool workers can fill disjoint streams
/// concurrently; the locks are uncontended by construction (each index is
/// claimed by exactly one worker per advance).
struct FleetSlot {
    stream: RealtimeGenerator,
    block: SampleBlock,
}

/// Handle to a dynamically subscribed fleet stream, returned by
/// [`StreamFleet::subscribe`] and consumed by
/// [`StreamFleet::advance_subscriber_with`] /
/// [`StreamFleet::unsubscribe`].
///
/// Keys are generation-stamped: after `unsubscribe`, any retained copy of
/// the key goes stale and is reported as
/// [`ParallelError::UnknownStream`] instead of silently reading whichever
/// newer subscriber happens to reuse the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamKey {
    index: usize,
    generation: u64,
}

/// One dynamic-subscriber slot: the generation stamp outlives the
/// subscription so stale keys are detectable, and the pooled [`FleetSlot`]
/// is dropped on unsubscribe (a later subscriber re-sizes a fresh block —
/// steady-state zero allocation is a per-connection property, not a
/// cross-connection one).
struct SubscriberSlot {
    generation: u64,
    live: Option<FleetSlot>,
}

/// Recovers a subscriber-slot guard from poisoning: a panic inside one
/// connection's generation only concerns that connection, and the slot is
/// either unsubscribed (cleanup path) or re-initialized (slot reuse) before
/// any other stream touches it.
fn lock_subscriber(slot: &Mutex<SubscriberSlot>) -> std::sync::MutexGuard<'_, SubscriberSlot> {
    slot.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A batch of named real-time channel streams generated together on the
/// persistent worker pool. See the [module docs](self).
///
/// # Examples
///
/// ```
/// use corrfade_parallel::StreamFleet;
///
/// let mut fleet = StreamFleet::open(&["fig4a-spectral", "fig4b-spatial"], 7).unwrap();
/// fleet.advance().unwrap(); // next block for every stream, in parallel
/// assert_eq!(fleet.block(0).envelopes(), 3);
/// assert_eq!(fleet.block(1).samples(), 4096);
/// ```
pub struct StreamFleet {
    /// The registry scenarios backing the fixed streams; empty for fleets
    /// assembled from pre-built generators ([`StreamFleet::open_streams`]).
    scenarios: Vec<&'static Scenario>,
    slots: Vec<Mutex<FleetSlot>>,
    /// Total samples per lockstep advance, Σ dimension·block_len — computed
    /// once at open so it stays readable through `&self`.
    samples_per_advance: usize,
    master_seed: u64,
    /// Reusable work-stealing lanes of the pooled advance: re-dealt per
    /// advance (no allocation once warm), popped by executors with
    /// stealing for skew tolerance.
    stealing: StealQueues,
    /// Dynamically subscribed streams (see [`StreamFleet::subscribe`]):
    /// slot-mutexed so connection threads advance disjoint subscribers
    /// concurrently through a shared `&StreamFleet`.
    subscribers: Vec<Mutex<SubscriberSlot>>,
    /// Indices of `subscribers` slots freed by unsubscribe, reused before
    /// the vector grows again (bounds memory at the concurrency high-water
    /// mark instead of the total connection count).
    free_subscriber_slots: Vec<usize>,
    /// Number of currently live subscribers.
    active_subscribers: usize,
}

impl std::fmt::Debug for StreamFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamFleet")
            .field("streams", &self.scenarios.len())
            .field("master_seed", &self.master_seed)
            .field("subscribers", &self.active_subscribers)
            .finish_non_exhaustive()
    }
}

impl StreamFleet {
    /// Opens one real-time stream per registry name (duplicates allowed —
    /// they become independent streams of the same scenario). Stream `i`
    /// is seeded with [`stream_seed`]`(master_seed, i)`; decompositions are
    /// shared through the process-wide cache.
    ///
    /// # Errors
    /// [`ParallelError::Scenario`] when a name is unknown or a scenario
    /// fails to build.
    pub fn open(names: &[&str], master_seed: u64) -> Result<Self, ParallelError> {
        let scenarios = names
            .iter()
            .map(|name| lookup(name))
            .collect::<Result<Vec<_>, _>>()?;
        Self::open_scenarios(&scenarios, master_seed)
    }

    /// Opens one real-time stream per scenario reference (the registry-free
    /// variant of [`StreamFleet::open`], for callers that already resolved
    /// or filtered their scenarios).
    ///
    /// # Errors
    /// [`ParallelError::Scenario`] when a scenario fails to build.
    pub fn open_scenarios(
        scenarios: &[&'static Scenario],
        master_seed: u64,
    ) -> Result<Self, ParallelError> {
        let streams = scenarios
            .iter()
            .enumerate()
            .map(|(i, scenario)| Ok(scenario.build_realtime_cached(stream_seed(master_seed, i))?))
            .collect::<Result<Vec<_>, ParallelError>>()?;
        Ok(Self::from_parts(scenarios.to_vec(), streams, master_seed))
    }

    /// Assembles a fleet from **pre-built** real-time generators — the
    /// registry-free entry point for layers that derive their streams from
    /// something other than named scenarios (the `corrfade-network` crate
    /// opens one multi-envelope stream per correlated link group this way,
    /// each seeded by its own partition-invariant derivation).
    ///
    /// The caller owns the seeding policy entirely: unlike
    /// [`StreamFleet::open`], **no** [`stream_seed`] derivation is applied,
    /// and `master_seed` is recorded for observability only. Everything
    /// else — lockstep [`StreamFleet::advance`] on the pool, work-stealing
    /// lanes, per-stream pooled blocks, zero steady-state allocation,
    /// bit-identical results on any pool size — behaves exactly as for
    /// name-opened fleets. [`StreamFleet::scenario`] has no entries to
    /// return for such a fleet and panics for every index.
    #[must_use]
    pub fn open_streams(streams: Vec<RealtimeGenerator>, master_seed: u64) -> Self {
        Self::from_parts(Vec::new(), streams, master_seed)
    }

    fn from_parts(
        scenarios: Vec<&'static Scenario>,
        streams: Vec<RealtimeGenerator>,
        master_seed: u64,
    ) -> Self {
        let samples_per_advance = streams.iter().map(|s| s.dimension() * s.block_len()).sum();
        let slots = streams
            .into_iter()
            .map(|stream| {
                Mutex::new(FleetSlot {
                    stream,
                    block: SampleBlock::empty(),
                })
            })
            .collect();
        Self {
            scenarios,
            slots,
            samples_per_advance,
            master_seed,
            stealing: StealQueues::default(),
            subscribers: Vec::new(),
            free_subscriber_slots: Vec::new(),
            active_subscribers: 0,
        }
    }

    /// Number of streams in the fleet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when the fleet holds no streams.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The master seed the per-stream seeds derive from.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The scenario backing stream `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn scenario(&self, i: usize) -> &'static Scenario {
        self.scenarios[i]
    }

    /// Total samples (envelopes × block length, summed over all streams)
    /// produced by one advance — the throughput denominator of the
    /// `fleet_throughput` bench.
    #[must_use]
    pub fn samples_per_advance(&self) -> usize {
        self.samples_per_advance
    }

    /// Generates the next block for every stream concurrently on the
    /// global [`Runtime`] pool.
    ///
    /// Streams are dealt round-robin into per-executor work-stealing
    /// lanes ([`crate::stealing::StealQueues`]): executor `w` prefers
    /// streams `w, w + lanes, …` every advance (stable affinity for the
    /// per-stream locks and buffers it warmed last time), and executors
    /// whose lane drains early steal the stragglers' backlog — a skewed
    /// fleet (streams with very different `N` and `M`) keeps every core
    /// busy until the whole advance is done. The submitting thread itself
    /// is executor 0, so no core idles behind the barrier.
    ///
    /// # Errors
    /// [`ParallelError::JobPanicked`] when a stream's generation panicked
    /// on a pool executor (the pool itself survives).
    pub fn advance(&mut self) -> Result<(), ParallelError> {
        self.advance_on(Runtime::global())
    }

    /// [`StreamFleet::advance`] on an explicit pool. The pool size affects
    /// wall-clock only, never the produced blocks.
    ///
    /// # Errors
    /// See [`StreamFleet::advance`].
    pub fn advance_on(&mut self, runtime: &Runtime) -> Result<(), ParallelError> {
        let lanes = runtime.workers().min(self.slots.len()).max(1);
        self.stealing.reset(self.slots.len(), lanes);
        let slots = &self.slots;
        let stealing = &self.stealing;
        runtime.try_run(&|id, _scratch| {
            if id >= lanes {
                return;
            }
            stealing.for_each_claimed(id, |i| {
                let mut slot = slots[i].lock().unwrap();
                let FleetSlot { stream, block } = &mut *slot;
                stream
                    .next_block_into(block)
                    .expect("realtime generation is infallible after construction");
            });
        })
    }

    /// Generates the next block for every stream on the calling thread, in
    /// stream order — bit-identical to [`StreamFleet::advance`]; the
    /// single-threaded reference the equivalence tests and the
    /// `fleet_throughput` bench compare the pool against.
    ///
    /// # Errors
    /// See [`StreamFleet::advance`].
    pub fn advance_sequential(&mut self) -> Result<(), ParallelError> {
        for slot in &mut self.slots {
            let FleetSlot { stream, block } = slot.get_mut().unwrap();
            stream
                .next_block_into(block)
                .expect("realtime generation is infallible after construction");
        }
        Ok(())
    }

    /// The most recently generated block of stream `i` (empty before the
    /// first advance). Reading requires `&mut self` because the blocks sit
    /// behind the per-stream locks the pool writes through.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn block(&mut self, i: usize) -> &SampleBlock {
        &self.slots[i].get_mut().unwrap().block
    }

    /// Mutable access to the most recently generated block of stream `i` —
    /// needed by consumers of the **lazy envelope view**
    /// ([`SampleBlock::envelope_path`] caches `|z|` inside the block), e.g.
    /// per-link fading-metric extraction in the network layer. The next
    /// advance overwrites the complex data and invalidates that cache.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn block_mut(&mut self, i: usize) -> &mut SampleBlock {
        &mut self.slots[i].get_mut().unwrap().block
    }

    /// Attaches a *dynamic* stream to the fleet — the serving-side
    /// counterpart of the fixed streams passed to [`StreamFleet::open`].
    ///
    /// Unlike the fixed streams (whose seeds derive from the fleet master
    /// seed via [`stream_seed`]), a subscriber uses the **exact** `seed` it
    /// asked for: a network client that requests `(scenario, seed)` must
    /// receive blocks bit-identical to running
    /// [`Scenario::build_realtime`]`(seed)` standalone, so no derivation may
    /// sit in between. The generator is built through the process-wide
    /// decomposition cache ([`Scenario::build_realtime_cached`]) and owns a
    /// pooled [`SampleBlock`] — one block per subscriber for its whole
    /// lifetime, so per-connection steady state allocates nothing.
    ///
    /// Subscribers are **not** touched by the lockstep
    /// [`StreamFleet::advance`] family; each one advances independently (at
    /// its consumer's pace) via [`StreamFleet::advance_subscriber_with`],
    /// which takes `&self` so disjoint subscribers proceed concurrently.
    /// Unsubscribed slots are reused by later subscriptions.
    ///
    /// # Errors
    /// [`ParallelError::Scenario`] when the scenario fails to build.
    pub fn subscribe(
        &mut self,
        scenario: &'static Scenario,
        seed: u64,
    ) -> Result<StreamKey, ParallelError> {
        let stream = scenario.build_realtime_cached(seed)?;
        let live = Some(FleetSlot {
            stream,
            block: SampleBlock::empty(),
        });
        let key = if let Some(index) = self.free_subscriber_slots.pop() {
            let generation = match self.subscribers[index].get_mut() {
                Ok(slot) => slot.generation,
                Err(poisoned) => poisoned.into_inner().generation,
            } + 1;
            // Replacing the mutex wholesale also clears any poisoning left
            // by a previous owner's panic.
            self.subscribers[index] = Mutex::new(SubscriberSlot { generation, live });
            StreamKey { index, generation }
        } else {
            let index = self.subscribers.len();
            self.subscribers.push(Mutex::new(SubscriberSlot {
                generation: 1,
                live,
            }));
            StreamKey {
                index,
                generation: 1,
            }
        };
        self.active_subscribers += 1;
        Ok(key)
    }

    /// Detaches a subscribed stream, freeing its slot for reuse. Returns
    /// `false` when the key is stale (already unsubscribed, or superseded by
    /// a newer subscriber in the same slot) — idempotent by design, since
    /// connection teardown paths can race their own error handling.
    pub fn unsubscribe(&mut self, key: StreamKey) -> bool {
        let Some(slot) = self.subscribers.get_mut(key.index) else {
            return false;
        };
        let slot = match slot.get_mut() {
            Ok(slot) => slot,
            Err(poisoned) => poisoned.into_inner(),
        };
        if slot.generation != key.generation || slot.live.is_none() {
            return false;
        }
        slot.live = None;
        self.free_subscriber_slots.push(key.index);
        self.active_subscribers -= 1;
        true
    }

    /// Number of currently subscribed dynamic streams.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        self.active_subscribers
    }

    /// Fast-forwards subscriber `key` past `blocks` blocks without
    /// generating them — the serving layer's **resume** path. Only the RNG
    /// draws of the skipped blocks are replayed
    /// ([`RealtimeGenerator::skip_blocks`]); the IDFT/coloring kernels and
    /// all output writes are skipped, so catching a reconnected client up
    /// to its block cursor costs a fraction of regeneration. Afterwards
    /// [`StreamFleet::advance_subscriber_with`] produces the
    /// `blocks + 1`-th block of the uninterrupted stream, bit for bit.
    ///
    /// Takes `&self` like the advance path: the slot mutex serializes the
    /// skip against concurrent advances of the same subscriber.
    ///
    /// # Errors
    /// [`ParallelError::UnknownStream`] when the key is stale.
    pub fn skip_subscriber_blocks(&self, key: StreamKey, blocks: u64) -> Result<(), ParallelError> {
        let Some(slot) = self.subscribers.get(key.index) else {
            return Err(ParallelError::UnknownStream { index: key.index });
        };
        let mut slot = lock_subscriber(slot);
        if slot.generation != key.generation {
            return Err(ParallelError::UnknownStream { index: key.index });
        }
        let Some(FleetSlot { stream, .. }) = slot.live.as_mut() else {
            return Err(ParallelError::UnknownStream { index: key.index });
        };
        stream.skip_blocks(blocks);
        Ok(())
    }

    /// Generates subscriber `key`'s next block into its pooled block and
    /// hands the freshly written block to `f` (typically a wire encoder)
    /// while the slot lock is held — the zero-copy read path.
    ///
    /// Takes `&self`: every subscriber sits behind its own slot mutex, so
    /// any number of connection threads advance *different* subscribers
    /// concurrently (a serving front-end holds the fleet behind an
    /// `RwLock`, taking read guards here and write guards only for
    /// subscribe/unsubscribe). The produced blocks are bit-identical to a
    /// standalone [`Scenario::build_realtime`] stream with the same seed,
    /// whatever the interleaving.
    ///
    /// # Errors
    /// [`ParallelError::UnknownStream`] when the key is stale.
    pub fn advance_subscriber_with<R>(
        &self,
        key: StreamKey,
        f: impl FnOnce(&SampleBlock) -> R,
    ) -> Result<R, ParallelError> {
        let Some(slot) = self.subscribers.get(key.index) else {
            return Err(ParallelError::UnknownStream { index: key.index });
        };
        let mut slot = lock_subscriber(slot);
        if slot.generation != key.generation {
            return Err(ParallelError::UnknownStream { index: key.index });
        }
        let Some(FleetSlot { stream, block }) = slot.live.as_mut() else {
            return Err(ParallelError::UnknownStream { index: key.index });
        };
        stream
            .next_block_into(block)
            .expect("realtime generation is infallible after construction");
        Ok(f(block))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_resolves_names_and_reports_unknown_ones() {
        let fleet = StreamFleet::open(&["fig4a-spectral", "fig4b-spatial"], 1).unwrap();
        assert_eq!(fleet.len(), 2);
        assert!(!fleet.is_empty());
        assert_eq!(fleet.scenario(0).name, "fig4a-spectral");
        assert_eq!(fleet.master_seed(), 1);
        assert_eq!(fleet.samples_per_advance(), 2 * 3 * 4096);

        assert!(matches!(
            StreamFleet::open(&["no-such-scenario"], 1),
            Err(ParallelError::Scenario(_))
        ));
    }

    #[test]
    fn advance_fills_every_stream() {
        let mut fleet = StreamFleet::open(&["fig4a-spectral", "two-envelope-complex"], 3).unwrap();
        assert!(
            fleet.block(0).is_empty(),
            "no block before the first advance"
        );
        fleet.advance().unwrap();
        for i in 0..fleet.len() {
            let scenario = fleet.scenario(i);
            let (envelopes, samples) = (scenario.envelopes, scenario.doppler.idft_size);
            let block = fleet.block(i);
            assert_eq!(block.envelopes(), envelopes, "stream {i}");
            assert_eq!(block.samples(), samples, "stream {i}");
        }
    }

    #[test]
    fn empty_fleet_advances_trivially() {
        let mut fleet = StreamFleet::open(&[], 1).unwrap();
        assert!(fleet.is_empty());
        fleet.advance().unwrap();
        fleet.advance_sequential().unwrap();
    }

    #[test]
    fn subscribers_match_standalone_streams_and_slots_are_reused() {
        use corrfade::ChannelStream;

        let mut fleet = StreamFleet::open(&[], 0).unwrap();
        let scenario = lookup("two-envelope-complex").unwrap();
        let a = fleet.subscribe(scenario, 41).unwrap();
        let b = fleet.subscribe(scenario, 42).unwrap();
        assert_eq!(fleet.subscriber_count(), 2);

        // The subscriber uses the exact requested seed: bit-identical to a
        // standalone realtime stream, block after block.
        let mut reference = scenario.build_realtime(42).unwrap();
        let mut expected = SampleBlock::empty();
        for _ in 0..3 {
            reference.next_block_into(&mut expected).unwrap();
            let matches = fleet
                .advance_subscriber_with(b, |block| block == &expected)
                .unwrap();
            assert!(matches, "subscriber block diverged from standalone stream");
        }

        // Unsubscribe frees the slot; stale keys are typed errors and
        // re-unsubscribing is an idempotent no-op.
        assert!(fleet.unsubscribe(b));
        assert!(!fleet.unsubscribe(b));
        assert_eq!(fleet.subscriber_count(), 1);
        assert!(matches!(
            fleet.advance_subscriber_with(b, |_| ()),
            Err(ParallelError::UnknownStream { index: 1 })
        ));

        // The freed slot is reused with a bumped generation, so the old key
        // stays dead even though the indices collide.
        let c = fleet.subscribe(scenario, 43).unwrap();
        assert!(matches!(
            fleet.advance_subscriber_with(b, |_| ()),
            Err(ParallelError::UnknownStream { .. })
        ));
        fleet.advance_subscriber_with(c, |_| ()).unwrap();
        fleet.advance_subscriber_with(a, |_| ()).unwrap();
        assert_eq!(fleet.subscriber_count(), 2);
    }

    #[test]
    fn skipped_subscribers_resume_bit_identically() {
        use corrfade::ChannelStream;

        // The resume contract end to end through the fleet: skip k blocks,
        // then advance — the produced block is the standalone stream's
        // (k+1)-th block, bit for bit.
        let mut fleet = StreamFleet::open(&[], 0).unwrap();
        let scenario = lookup("two-envelope-complex").unwrap();
        let key = fleet.subscribe(scenario, 77).unwrap();
        fleet.skip_subscriber_blocks(key, 3).unwrap();

        let mut reference = scenario.build_realtime(77).unwrap();
        let mut expected = SampleBlock::empty();
        for _ in 0..4 {
            reference.next_block_into(&mut expected).unwrap();
        }
        let matches = fleet
            .advance_subscriber_with(key, |block| block == &expected)
            .unwrap();
        assert!(matches, "resumed subscriber diverged from block 4");

        // Stale keys are typed errors on the skip path too.
        fleet.unsubscribe(key);
        assert!(matches!(
            fleet.skip_subscriber_blocks(key, 1),
            Err(ParallelError::UnknownStream { .. })
        ));
    }

    #[test]
    fn subscribers_are_independent_of_lockstep_advances() {
        use corrfade::ChannelStream;

        // A lockstep advance of the fixed streams must not move subscriber
        // streams, and vice versa.
        let mut fleet = StreamFleet::open(&["fig4a-spectral"], 5).unwrap();
        let scenario = lookup("two-envelope-complex").unwrap();
        let key = fleet.subscribe(scenario, 9).unwrap();
        fleet.advance().unwrap();
        fleet.advance().unwrap();

        let mut reference = scenario.build_realtime(9).unwrap();
        let mut expected = SampleBlock::empty();
        reference.next_block_into(&mut expected).unwrap();
        let first_matches = fleet
            .advance_subscriber_with(key, |block| block == &expected)
            .unwrap();
        assert!(
            first_matches,
            "lockstep advances must not consume subscriber RNG state"
        );
    }

    #[test]
    fn open_streams_uses_the_callers_generators_verbatim() {
        use corrfade::ChannelStream;

        // A prebuilt fleet applies no seed derivation: stream i must equal
        // the standalone generator it was built from, bit for bit.
        let scenario = lookup("two-envelope-complex").unwrap();
        let streams = vec![
            scenario.build_realtime_cached(100).unwrap(),
            scenario.build_realtime_cached(200).unwrap(),
        ];
        let mut fleet = StreamFleet::open_streams(streams, 0);
        assert_eq!(fleet.len(), 2);
        assert_eq!(
            fleet.samples_per_advance(),
            2 * scenario.envelopes * scenario.doppler.idft_size
        );

        let mut reference = scenario.build_realtime(200).unwrap();
        let mut expected = SampleBlock::empty();
        for _ in 0..2 {
            fleet.advance().unwrap();
            reference.next_block_into(&mut expected).unwrap();
            assert_eq!(
                fleet.block(1),
                &expected,
                "exact caller seed, no derivation"
            );
        }
        // The mutable block accessor exposes the same data.
        assert_eq!(fleet.block_mut(1).envelopes(), scenario.envelopes);
    }

    #[test]
    fn duplicate_names_are_independent_streams() {
        let mut fleet = StreamFleet::open(&["fig4b-spatial", "fig4b-spatial"], 9).unwrap();
        fleet.advance().unwrap();
        let a = fleet.block(0).as_slice().to_vec();
        let b = fleet.block(1).as_slice().to_vec();
        assert_ne!(a, b, "same scenario, different per-stream seeds");
    }
}

//! Error type of the parallel Monte-Carlo engine.

use core::fmt;

use corrfade::CorrfadeError;
use corrfade_scenarios::ScenarioError;

/// Errors produced while configuring or running the parallel engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ParallelError {
    /// [`crate::ParallelConfig::chunk_size`] was zero — the work could never
    /// be partitioned. Reported as a typed error instead of the silent
    /// hang/panic a zero-sized chunking would otherwise cause.
    InvalidChunkSize,
    /// An error bubbled up from the core generator stack (covariance
    /// validation, Doppler filter design, …).
    Core(CorrfadeError),
    /// A [`crate::StreamFleet`] member failed to resolve or build from the
    /// scenario registry (unknown name, invalid resize, …).
    Scenario(ScenarioError),
    /// A [`crate::StreamFleet`] subscriber handle did not resolve to a live
    /// stream: the [`crate::StreamKey`] was already unsubscribed (or is a
    /// stale copy whose slot has since been reused by a newer subscriber).
    UnknownStream {
        /// Slot index the stale key pointed at.
        index: usize,
    },
    /// One or more worker executions of a submitted job panicked. The pool
    /// itself survives — subsequent submissions run normally — but the
    /// failed job's output must not be trusted. Reported as a typed error
    /// by [`crate::Runtime::try_run`] (and surfaced through fallible
    /// callers such as [`crate::StreamFleet::advance`]) instead of the
    /// poisoned-mutex cascade panics an unhandled worker panic used to
    /// cause.
    JobPanicked {
        /// Number of worker executions that panicked.
        panicked: usize,
    },
}

impl fmt::Display for ParallelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelError::InvalidChunkSize => {
                write!(f, "chunk_size must be positive (got 0)")
            }
            ParallelError::Core(e) => write!(f, "generator error: {e}"),
            ParallelError::Scenario(e) => write!(f, "fleet scenario error: {e}"),
            ParallelError::UnknownStream { index } => write!(
                f,
                "no live fleet subscriber behind this stream key (slot {index}): the stream \
                 was unsubscribed, or the key is a stale copy from a previous subscription"
            ),
            ParallelError::JobPanicked { panicked } => write!(
                f,
                "{panicked} pool worker(s) panicked while executing the job \
                 (see stderr for the worker panic message); the pool \
                 survives and later submissions run normally"
            ),
        }
    }
}

impl std::error::Error for ParallelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParallelError::Core(e) => Some(e),
            ParallelError::Scenario(e) => Some(e),
            ParallelError::InvalidChunkSize
            | ParallelError::UnknownStream { .. }
            | ParallelError::JobPanicked { .. } => None,
        }
    }
}

impl From<CorrfadeError> for ParallelError {
    fn from(e: CorrfadeError) -> Self {
        ParallelError::Core(e)
    }
}

impl From<ScenarioError> for ParallelError {
    fn from(e: ScenarioError) -> Self {
        ParallelError::Scenario(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = ParallelError::InvalidChunkSize;
        assert!(e.to_string().contains("chunk_size"));
        assert!(e.source().is_none());
        let e: ParallelError = CorrfadeError::EmptyCovariance.into();
        assert!(e.to_string().contains("generator error"));
        assert!(e.source().is_some());
        let e: ParallelError = ScenarioError::UnknownScenario {
            name: "nope".into(),
            suggestion: None,
        }
        .into();
        assert!(e.to_string().contains("fleet scenario error"));
        assert!(e.source().is_some());
        let e = ParallelError::UnknownStream { index: 3 };
        assert!(e.to_string().contains("slot 3"));
        assert!(e.source().is_none());
    }
}

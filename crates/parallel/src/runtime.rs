//! The persistent worker-pool runtime.
//!
//! Every engine entry point used to spawn (and join) a fresh
//! `std::thread::scope` pool per call. That is correct but pays thread
//! creation, stack setup and tear-down on every request — the dominant cost
//! on small workloads, and pure waste for a service that answers a stream of
//! them. [`Runtime`] replaces it with a pool created **once** and reused
//! across calls:
//!
//! * workers are long-lived OS threads parked on a condvar between jobs;
//!   dispatching a job is a mutex write + wake, not `N` thread spawns;
//! * each worker owns a pinned [`WorkerScratch`] (its pooled planar
//!   [`SampleBlock`]) that survives across jobs, so steady-state generation
//!   stays allocation-free end to end — the workspace's
//!   allocation-regression test measures this through the whole fleet path;
//! * each worker latches the [`corrfade_linalg::kernel`] backend once at
//!   spawn, so `CORRFADE_KERNEL` is honoured deterministically no matter
//!   which thread first touches a kernel;
//! * dropping the runtime shuts the pool down gracefully: workers observe
//!   the shutdown flag, exit their loop, and `Drop` joins every handle — no
//!   leaked threads (a lifecycle test pins this via the pool's own
//!   reference counts).
//!
//! Work distribution stays exactly as before: a job is one closure that
//! every worker runs, pulling chunk indices from a shared atomic counter
//! (work-stealing-style self-scheduling). Which worker executes which chunk
//! is irrelevant to the output because all randomness derives from
//! `(master seed, chunk index)` — the thread-count-invariance guarantee is
//! unchanged.
//!
//! [`Runtime::global()`] exposes one process-wide pool (sized from
//! `CORRFADE_POOL_THREADS`, default: all cores) so the existing free
//! functions keep their signatures and become thin wrappers over it.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use corrfade_linalg::SampleBlock;

/// Per-worker pinned state, created once per pool worker (or once per
/// spawned thread on the legacy per-call path) and handed to every job the
/// worker executes.
///
/// RNG state deliberately does **not** live here: generators derive their
/// streams from `(master seed, chunk index)` inside the job, which is what
/// makes results independent of worker identity and count.
#[derive(Debug, Default)]
pub struct WorkerScratch {
    /// Pooled planar block, reused across every chunk this worker
    /// processes — the buffer behind the zero-steady-state-allocation
    /// guarantee of the ensemble jobs.
    pub block: SampleBlock,
}

/// A lifetime-erased pointer to the job closure of the current epoch.
///
/// Stored in the pool state only while [`Runtime::run`] blocks; `run` does
/// not return before every worker has finished the epoch, so the pointee
/// outlives every dereference.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize, &mut WorkerScratch) + Sync));

// SAFETY: the pointer crosses threads, but it is only dereferenced between
// the epoch publication and the final `active == 0` handshake inside
// `Runtime::run`, during which the caller's closure is kept alive.
unsafe impl Send for Job {}

/// Mutex-guarded pool state. `epoch` identifies the current job; a worker
/// runs each epoch exactly once and sleeps until the next.
struct PoolState {
    epoch: u64,
    job: Option<Job>,
    /// Workers that have not yet finished the current epoch.
    active: usize,
    /// Workers whose job closure panicked in the current epoch.
    panicked: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new epoch (or shutdown).
    work: Condvar,
    /// The submitter waits here for `active` to reach zero.
    done: Condvar,
}

thread_local! {
    /// Pinned scratch of the single-worker inline fast path: a 1-worker
    /// pool executes jobs directly on the submitting thread (the condvar
    /// handshake would be pure overhead), and this per-thread scratch keeps
    /// that path allocation-free in steady state just like a real worker's.
    static INLINE_SCRATCH: RefCell<WorkerScratch> = RefCell::new(WorkerScratch::default());
}

/// A persistent pool of worker threads executing chunk-pulling jobs.
///
/// See the [module docs](self) for the design; see [`Runtime::global`] for
/// the process-wide instance behind the free-function API.
pub struct Runtime {
    shared: Arc<Shared>,
    workers: usize,
    /// Serializes concurrent [`Runtime::run`] callers: one job owns the
    /// pool at a time, later submitters queue on this lock.
    submit: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl Runtime {
    /// Spawns a pool of `threads` workers (`0` means "all available
    /// cores"). Workers latch the kernel backend immediately, then park
    /// until the first job. A single-worker pool spawns no threads —
    /// see [`Runtime::run`]'s inline fast path.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let workers = if threads > 0 {
            threads
        } else {
            available_cores()
        };
        // Latch the kernel backend on the constructing thread first so a
        // malformed CORRFADE_KERNEL value panics here, not inside a worker.
        let _ = corrfade_linalg::kernel::backend();
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                panicked: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        // A single-worker pool spawns no threads at all: `run` always takes
        // the inline fast path, so a worker would park forever unused.
        let handles = if workers == 1 {
            Vec::new()
        } else {
            (0..workers)
                .map(|id| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("corrfade-worker-{id}"))
                        .spawn(move || worker_loop(&shared, id))
                        .expect("spawning a pool worker thread failed")
                })
                .collect()
        };
        Self {
            shared,
            workers,
            submit: Mutex::new(()),
            handles,
        }
    }

    /// The process-wide pool used by the free-function engine API and the
    /// stream fleet. Created on first use — race-safe under concurrent
    /// first callers — with one worker per available core, overridable via
    /// the `CORRFADE_POOL_THREADS` environment variable (a positive worker
    /// count; `0`, unset or unparsable values mean "all cores").
    ///
    /// The global pool lives for the remainder of the process; its workers
    /// spend idle time parked on a condvar.
    pub fn global() -> &'static Runtime {
        static GLOBAL: OnceLock<Runtime> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = std::env::var("CORRFADE_POOL_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(0);
            Runtime::new(threads)
        })
    }

    /// Number of worker threads in the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes `job` on every worker of the pool and blocks until all of
    /// them have finished. `job` receives the worker index (`0..workers()`)
    /// and the worker's pinned scratch; jobs distribute actual work by
    /// pulling indices from their own shared atomic counter, so workers the
    /// job does not need simply return immediately.
    ///
    /// Concurrent callers are serialized (one job owns the pool at a
    /// time). Calling this from inside a pool worker of the *same* runtime
    /// would deadlock — jobs must not submit nested jobs to their own pool.
    ///
    /// With a warm scratch the dispatch itself performs **no heap
    /// allocation** (mutex + condvar handshake only). As a special case, a
    /// **single-worker pool executes the job inline** on the calling thread
    /// with a thread-local pinned scratch — same result, same
    /// allocation-free steady state, none of the handshake latency.
    ///
    /// # Panics
    /// Panics if any worker's job invocation panicked; the pool itself
    /// survives and subsequent jobs run normally.
    pub fn run(&self, job: &(dyn Fn(usize, &mut WorkerScratch) + Sync)) {
        let serial = self.submit.lock().unwrap();
        if self.workers == 1 {
            // Inline fast path: no parallelism to win, so skip the wake.
            // (A nested `run` on the same thread would panic on the borrow
            // rather than deadlock on the pool — nesting is forbidden
            // either way.)
            INLINE_SCRATCH.with(|scratch| job(0, &mut scratch.borrow_mut()));
            return;
        }
        // SAFETY: erases the closure's borrow lifetime for storage in the
        // shared state. The wait loop below does not return until every
        // worker finished the epoch and the pointer is cleared, so no
        // dereference outlives the borrow.
        let erased = Job(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize, &mut WorkerScratch) + Sync + '_),
                *const (dyn Fn(usize, &mut WorkerScratch) + Sync + 'static),
            >(job)
        });
        let panicked = {
            let mut state = self.shared.state.lock().unwrap();
            state.epoch = state.epoch.wrapping_add(1);
            state.job = Some(erased);
            state.active = self.workers;
            state.panicked = 0;
            self.shared.work.notify_all();
            while state.active > 0 {
                state = self.shared.done.wait(state).unwrap();
            }
            state.job = None;
            state.panicked
        };
        drop(serial);
        assert!(
            panicked == 0,
            "{panicked} pool worker(s) panicked while executing the job \
             (see stderr for the worker panic message)"
        );
    }
}

impl Drop for Runtime {
    /// Graceful shutdown: publish the shutdown flag, wake every parked
    /// worker and join all handles. A worker mid-job finishes its current
    /// epoch first, so in-flight work is never abandoned half-written.
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            // A worker that panicked outside a job (impossible today) must
            // not turn shutdown into a second panic.
            let _ = handle.join();
        }
    }
}

/// The shared self-scheduling loop of every pooled job: claims indices
/// from `next` until the counter passes `count`. Both the engine's
/// chunk-pull jobs and the fleet's stream-pull jobs distribute their work
/// through this one idiom.
pub(crate) fn for_each_claimed(next: &AtomicUsize, count: usize, mut work: impl FnMut(usize)) {
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= count {
            break;
        }
        work(i);
    }
}

/// Resolved "all cores" worker count.
fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn worker_loop(shared: &Shared, id: usize) {
    // Per-worker kernel-backend latch: deterministic backend selection no
    // matter which thread races the first kernel call.
    let _ = corrfade_linalg::kernel::backend();
    let mut scratch = WorkerScratch::default();
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    break state.job.expect("a job is published with every epoch");
                }
                state = shared.work.wait(state).unwrap();
            }
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // SAFETY: see `Job` — the submitter keeps the closure alive
            // until every worker has reported completion of this epoch.
            (unsafe { &*job.0 })(id, &mut scratch);
        }));
        let mut state = shared.state.lock().unwrap();
        if outcome.is_err() {
            state.panicked += 1;
        }
        state.active -= 1;
        if state.active == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_executes_on_every_worker_with_pinned_scratch() {
        let rt = Runtime::new(3);
        assert_eq!(rt.workers(), 3);
        let seen = Mutex::new(vec![0usize; 3]);
        rt.run(&|id, scratch| {
            scratch.block.resize(1, 8); // warm the pinned block
            seen.lock().unwrap()[id] += 1;
        });
        rt.run(&|id, scratch| {
            // The scratch survives across jobs: it is already sized.
            assert_eq!(scratch.block.samples(), 8);
            seen.lock().unwrap()[id] += 1;
        });
        assert_eq!(*seen.lock().unwrap(), vec![2, 2, 2]);
    }

    #[test]
    fn drop_joins_all_workers() {
        let rt = Runtime::new(4);
        let workers_alive = Arc::downgrade(&rt.shared);
        rt.run(&|_, _| {});
        drop(rt);
        // Every worker held an Arc<Shared>; after the drop-join no clone
        // survives, proving all worker threads actually exited.
        assert_eq!(
            workers_alive.strong_count(),
            0,
            "dropping the runtime must join (not leak) its worker threads"
        );
    }

    #[test]
    fn zero_threads_means_all_cores() {
        let rt = Runtime::new(0);
        assert!(rt.workers() >= 1);
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let rt = Runtime::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run(&|id, _| {
                if id == 0 {
                    panic!("injected job failure");
                }
            });
        }));
        assert!(result.is_err(), "the panic must propagate to the submitter");
        // The pool is still operational afterwards.
        let counter = AtomicUsize::new(0);
        rt.run(&|_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn concurrent_submitters_are_serialized_not_lost() {
        let rt = Arc::new(Runtime::new(2));
        let total = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rt = Arc::clone(&rt);
                let total = Arc::clone(&total);
                scope.spawn(move || {
                    for _ in 0..25 {
                        rt.run(&|_, _| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        // 4 submitters × 25 jobs × 2 workers.
        assert_eq!(total.load(Ordering::Relaxed), 200);
    }
}

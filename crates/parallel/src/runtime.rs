//! The persistent worker-pool runtime.
//!
//! Every engine entry point used to spawn (and join) a fresh
//! `std::thread::scope` pool per call. That is correct but pays thread
//! creation, stack setup and tear-down on every request — the dominant cost
//! on small workloads, and pure waste for a service that answers a stream of
//! them. [`Runtime`] replaces it with a pool created **once** and reused
//! across calls:
//!
//! * a pool of `workers` executors consists of `workers - 1` long-lived OS
//!   threads parked on a condvar **plus the submitting thread itself**:
//!   [`Runtime::run`] executes the job as executor 0 instead of blocking
//!   behind the pool. The caller-runs discipline means a pool sized larger
//!   than the machine degrades gracefully (the submitter simply does the
//!   work the unscheduled workers never claim — no oversubscription
//!   penalty), and on a multi-core machine no core idles while the
//!   submitter waits;
//! * each worker owns a pinned [`WorkerScratch`] (its pooled planar
//!   [`SampleBlock`]) that survives across jobs, so steady-state generation
//!   stays allocation-free end to end — the workspace's
//!   allocation-regression test measures this through the whole fleet path.
//!   The submitting thread's scratch is thread-local and equally pinned;
//! * each worker latches the [`corrfade_linalg::kernel`] backend once at
//!   spawn, so `CORRFADE_KERNEL` is honoured deterministically no matter
//!   which thread first touches a kernel;
//! * a panicking job is contained (`catch_unwind` around every execution)
//!   and reported as the typed [`ParallelError::JobPanicked`] by
//!   [`Runtime::try_run`]; no runtime mutex is ever held across job code,
//!   so a panic cannot poison the pool — subsequent submissions run
//!   normally instead of cascading `lock().unwrap()` panics;
//! * dropping the runtime shuts the pool down gracefully: workers observe
//!   the shutdown flag, exit their loop, and `Drop` joins every handle — no
//!   leaked threads (a lifecycle test pins this via the pool's own
//!   reference counts).
//!
//! Work distribution is unchanged in contract: a job is one closure that
//! every executor runs, pulling work items from a shared structure (an
//! atomic counter or the work-stealing deques in [`crate::stealing`]).
//! Which executor runs which item is irrelevant to the output because all
//! randomness derives from `(master seed, item index)` — the
//! thread-count-invariance guarantee is unchanged.
//!
//! [`Runtime::global()`] exposes one process-wide pool (sized from
//! `CORRFADE_POOL_THREADS`, default: all cores) so the existing free
//! functions keep their signatures and become thin wrappers over it.

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

use corrfade_linalg::SampleBlock;

use crate::error::ParallelError;

/// Per-worker pinned state, created once per pool worker (or once per
/// submitting/spawned thread) and handed to every job the worker executes.
///
/// RNG state deliberately does **not** live here: generators derive their
/// streams from `(master seed, chunk index)` inside the job, which is what
/// makes results independent of worker identity and count.
#[derive(Debug, Default)]
pub struct WorkerScratch {
    /// Pooled planar block, reused across every chunk this worker
    /// processes — the buffer behind the zero-steady-state-allocation
    /// guarantee of the ensemble jobs.
    pub block: SampleBlock,
}

/// A lifetime-erased pointer to the job closure of the current epoch.
///
/// Stored in the pool state only while [`Runtime::try_run`] blocks; it does
/// not return before every worker has finished the epoch, so the pointee
/// outlives every dereference.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize, &mut WorkerScratch) + Sync));

// SAFETY: the pointer crosses threads, but it is only dereferenced between
// the epoch publication and the final `active == 0` handshake inside
// `Runtime::try_run`, during which the caller's closure is kept alive.
unsafe impl Send for Job {}

/// Mutex-guarded pool state. `epoch` identifies the current job; a worker
/// runs each epoch exactly once and sleeps until the next.
struct PoolState {
    epoch: u64,
    job: Option<Job>,
    /// Executors (spawned workers + the submitter) that have not yet
    /// finished the current epoch.
    active: usize,
    /// Executors whose job closure panicked in the current epoch.
    panicked: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new epoch (or shutdown).
    work: Condvar,
    /// The submitter waits here for `active` to reach zero.
    done: Condvar,
}

/// Locks a runtime mutex, recovering the guard when a previous holder
/// panicked. No job code ever runs under these locks (jobs execute behind
/// `catch_unwind` with no guard held), so the guarded state is consistent
/// even after a panic elsewhere — recovering instead of unwrapping is what
/// keeps one panicking job from cascading into every later submission.
fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// Pinned scratch of the submitting thread: the submitter executes the
    /// job as executor 0 (and 1-worker pools run entirely inline), and this
    /// per-thread scratch keeps that path allocation-free in steady state
    /// just like a spawned worker's.
    static SUBMITTER_SCRATCH: RefCell<WorkerScratch> = RefCell::new(WorkerScratch::default());
}

/// A persistent pool of worker threads executing work-pulling jobs, with
/// the submitting thread participating as an executor.
///
/// See the [module docs](self) for the design; see [`Runtime::global`] for
/// the process-wide instance behind the free-function API.
pub struct Runtime {
    shared: Arc<Shared>,
    workers: usize,
    /// Serializes concurrent submitters: one job owns the pool at a time,
    /// later submitters queue on this lock.
    submit: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

/// Parses a `CORRFADE_POOL_THREADS` value (`None` = variable unset) into a
/// worker count. Accepted forms: unset or `0` (all available cores) and any
/// positive integer. Anything else — empty strings, negative numbers,
/// non-numeric text, fractions — is rejected with a diagnostic naming the
/// variable, the offending value and the accepted forms, so a typo can
/// never silently fall back to the default pool size.
///
/// # Errors
/// A human-readable diagnostic for any malformed value.
pub fn parse_pool_threads(value: Option<&str>) -> Result<usize, String> {
    let Some(raw) = value else {
        return Ok(0);
    };
    raw.trim().parse::<usize>().map_err(|parse_error| {
        format!(
            "CORRFADE_POOL_THREADS={raw:?} is not a valid worker count \
             ({parse_error}; expected a non-negative integer — 0 or unset \
             means \"all available cores\")"
        )
    })
}

impl Runtime {
    /// Creates a pool of `threads` executors (`0` means "all available
    /// cores"): `threads - 1` spawned workers plus the submitting thread,
    /// which executes every job as executor 0. Workers latch the kernel
    /// backend immediately, then park until the first job. A single-worker
    /// pool therefore spawns no threads at all — jobs run entirely inline
    /// on the caller.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let workers = if threads > 0 {
            threads
        } else {
            available_cores()
        };
        // Latch the kernel backend on the constructing thread first so a
        // malformed CORRFADE_KERNEL value panics here, not inside a worker.
        let _ = corrfade_linalg::kernel::backend();
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                panicked: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        // The submitter is executor 0; spawn the remaining ids 1..workers.
        let handles = (1..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("corrfade-worker-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("spawning a pool worker thread failed")
            })
            .collect();
        Self {
            shared,
            workers,
            submit: Mutex::new(()),
            handles,
        }
    }

    /// The process-wide pool used by the free-function engine API and the
    /// stream fleet. Created on first use — race-safe under concurrent
    /// first callers — with one executor per available core, overridable
    /// via the `CORRFADE_POOL_THREADS` environment variable (`0` or unset
    /// means "all cores"; see [`parse_pool_threads`]).
    ///
    /// The global pool lives for the remainder of the process; its workers
    /// spend idle time parked on a condvar.
    ///
    /// # Panics
    /// Panics if `CORRFADE_POOL_THREADS` is set to a malformed value — a
    /// misconfigured pool size must be fixed, not silently ignored.
    pub fn global() -> &'static Runtime {
        static GLOBAL: OnceLock<Runtime> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let value = std::env::var("CORRFADE_POOL_THREADS").ok();
            match parse_pool_threads(value.as_deref()) {
                Ok(threads) => Runtime::new(threads),
                Err(diagnostic) => panic!("{diagnostic}"),
            }
        })
    }

    /// Number of executors in the pool (spawned workers plus the
    /// submitting thread).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes `job` on every executor of the pool and blocks until all of
    /// them have finished. `job` receives the executor index
    /// (`0..workers()`, where 0 is the submitting thread itself) and the
    /// executor's pinned scratch; jobs distribute actual work by pulling
    /// items from their own shared structure, so executors the job does not
    /// need simply return immediately.
    ///
    /// Concurrent callers are serialized (one job owns the pool at a
    /// time). Calling this from inside a pool worker of the *same* runtime
    /// would deadlock — jobs must not submit nested jobs to their own pool.
    ///
    /// With a warm scratch the dispatch itself performs **no heap
    /// allocation** (mutex + condvar handshake only), and a single-worker
    /// pool skips the handshake entirely and runs the job inline.
    ///
    /// # Errors
    /// [`ParallelError::JobPanicked`] when any execution of `job` panicked.
    /// The pool survives: the panic is contained on the executor, no
    /// runtime lock is poisoned, and later submissions run normally.
    pub fn try_run(
        &self,
        job: &(dyn Fn(usize, &mut WorkerScratch) + Sync),
    ) -> Result<(), ParallelError> {
        let serial = lock_ignore_poison(&self.submit);
        let panicked = if self.workers == 1 {
            // Inline fast path: no parallelism to win, so skip the wake.
            // (A nested `run` on the same thread would panic on the borrow
            // rather than deadlock on the pool — nesting is forbidden
            // either way.)
            usize::from(run_as_submitter(job))
        } else {
            // SAFETY: erases the closure's borrow lifetime for storage in
            // the shared state. The wait loop below does not return until
            // every worker finished the epoch and the pointer is cleared,
            // so no dereference outlives the borrow.
            let erased = Job(unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize, &mut WorkerScratch) + Sync + '_),
                    *const (dyn Fn(usize, &mut WorkerScratch) + Sync + 'static),
                >(job)
            });
            {
                let mut state = lock_ignore_poison(&self.shared.state);
                state.epoch = state.epoch.wrapping_add(1);
                state.job = Some(erased);
                state.active = self.workers;
                state.panicked = 0;
                self.shared.work.notify_all();
            }
            // Caller-runs: the submitter is executor 0 and claims work
            // alongside the woken workers instead of blocking behind them.
            let submitter_panicked = run_as_submitter(job);
            let mut state = lock_ignore_poison(&self.shared.state);
            if submitter_panicked {
                state.panicked += 1;
            }
            state.active -= 1;
            while state.active > 0 {
                state = self
                    .shared
                    .done
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            state.job = None;
            state.panicked
        };
        drop(serial);
        if panicked > 0 {
            Err(ParallelError::JobPanicked { panicked })
        } else {
            Ok(())
        }
    }

    /// [`Runtime::try_run`], panicking on a worker-job panic — the
    /// infallible entry point for jobs that cannot fail.
    ///
    /// # Panics
    /// Panics if any execution of `job` panicked; the pool itself survives
    /// and subsequent jobs run normally.
    pub fn run(&self, job: &(dyn Fn(usize, &mut WorkerScratch) + Sync)) {
        if let Err(error) = self.try_run(job) {
            panic!("{error}");
        }
    }
}

/// Runs `job` as executor 0 on the submitting thread with its pinned
/// thread-local scratch, containing any panic. Returns whether it panicked.
fn run_as_submitter(job: &(dyn Fn(usize, &mut WorkerScratch) + Sync)) -> bool {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        SUBMITTER_SCRATCH.with(|scratch| job(0, &mut scratch.borrow_mut()));
    }))
    .is_err()
}

impl Drop for Runtime {
    /// Graceful shutdown: publish the shutdown flag, wake every parked
    /// worker and join all handles. A worker mid-job finishes its current
    /// epoch first, so in-flight work is never abandoned half-written.
    fn drop(&mut self) {
        {
            let mut state = lock_ignore_poison(&self.shared.state);
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            // A worker that panicked outside a job (impossible today) must
            // not turn shutdown into a second panic.
            let _ = handle.join();
        }
    }
}

/// Resolved "all cores" worker count.
fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn worker_loop(shared: &Shared, id: usize) {
    // Per-worker kernel-backend latch: deterministic backend selection no
    // matter which thread races the first kernel call.
    let _ = corrfade_linalg::kernel::backend();
    let mut scratch = WorkerScratch::default();
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = lock_ignore_poison(&shared.state);
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    break state.job.expect("a job is published with every epoch");
                }
                state = shared
                    .work
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // SAFETY: see `Job` — the submitter keeps the closure alive
            // until every worker has reported completion of this epoch.
            (unsafe { &*job.0 })(id, &mut scratch);
        }));
        let mut state = lock_ignore_poison(&shared.state);
        if outcome.is_err() {
            state.panicked += 1;
        }
        state.active -= 1;
        if state.active == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_executes_on_every_worker_with_pinned_scratch() {
        let rt = Runtime::new(3);
        assert_eq!(rt.workers(), 3);
        let seen = Mutex::new(vec![0usize; 3]);
        rt.run(&|id, scratch| {
            scratch.block.resize(1, 8); // warm the pinned block
            seen.lock().unwrap()[id] += 1;
        });
        rt.run(&|id, scratch| {
            // The scratch survives across jobs: it is already sized. This
            // holds for the spawned workers *and* for executor 0, whose
            // scratch is pinned to the submitting thread.
            assert_eq!(scratch.block.samples(), 8);
            seen.lock().unwrap()[id] += 1;
        });
        assert_eq!(*seen.lock().unwrap(), vec![2, 2, 2]);
    }

    #[test]
    fn submitter_is_executor_zero() {
        let rt = Runtime::new(4);
        let submitter = std::thread::current().id();
        let executed_on = Mutex::new(None);
        rt.run(&|id, _| {
            if id == 0 {
                *executed_on.lock().unwrap() = Some(std::thread::current().id());
            }
        });
        assert_eq!(
            executed_on.lock().unwrap().expect("executor 0 must run"),
            submitter,
            "executor 0 must be the submitting thread (caller-runs)"
        );
    }

    #[test]
    fn drop_joins_all_workers() {
        let rt = Runtime::new(4);
        let workers_alive = Arc::downgrade(&rt.shared);
        rt.run(&|_, _| {});
        drop(rt);
        // Every spawned worker held an Arc<Shared>; after the drop-join no
        // clone survives, proving all worker threads actually exited.
        assert_eq!(
            workers_alive.strong_count(),
            0,
            "dropping the runtime must join (not leak) its worker threads"
        );
    }

    #[test]
    fn zero_threads_means_all_cores() {
        let rt = Runtime::new(0);
        assert!(rt.workers() >= 1);
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let rt = Runtime::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run(&|id, _| {
                if id == 0 {
                    panic!("injected job failure");
                }
            });
        }));
        assert!(result.is_err(), "the panic must propagate to the submitter");
        // The pool is still operational afterwards.
        let counter = AtomicUsize::new(0);
        rt.run(&|_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn panicking_job_is_a_typed_error_not_a_cascade() {
        // Panics on the spawned worker, the submitting executor, and the
        // 1-worker inline path must all surface as JobPanicked — and the
        // very next submission must succeed (no poisoned-mutex cascade).
        for (pool, panicking_id) in [(2usize, 1usize), (2, 0), (1, 0)] {
            let rt = Runtime::new(pool);
            let result = rt.try_run(&|id, _| {
                if id == panicking_id {
                    panic!("injected failure on executor {id}");
                }
            });
            assert_eq!(
                result,
                Err(ParallelError::JobPanicked { panicked: 1 }),
                "pool {pool}, executor {panicking_id}"
            );
            let counter = AtomicUsize::new(0);
            rt.try_run(&|_, _| {
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .expect("the pool must stay serviceable after a panicked job");
            assert_eq!(counter.load(Ordering::Relaxed), pool);
        }
    }

    #[test]
    fn every_panicking_executor_is_counted() {
        let rt = Runtime::new(3);
        let result = rt.try_run(&|_, _| panic!("all executors fail"));
        assert_eq!(result, Err(ParallelError::JobPanicked { panicked: 3 }));
    }

    #[test]
    fn concurrent_submitters_are_serialized_not_lost() {
        let rt = Arc::new(Runtime::new(2));
        let total = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rt = Arc::clone(&rt);
                let total = Arc::clone(&total);
                scope.spawn(move || {
                    for _ in 0..25 {
                        rt.run(&|_, _| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        // 4 submitters × 25 jobs × 2 executors.
        assert_eq!(total.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn pool_threads_spec_parsing() {
        assert_eq!(parse_pool_threads(None), Ok(0));
        assert_eq!(parse_pool_threads(Some("0")), Ok(0));
        assert_eq!(parse_pool_threads(Some("8")), Ok(8));
        assert_eq!(parse_pool_threads(Some(" 4 ")), Ok(4), "whitespace trimmed");
        for bad in ["", " ", "-1", "two", "1.5", "8 workers", "0x4"] {
            let err = parse_pool_threads(Some(bad)).unwrap_err();
            assert!(
                err.contains("CORRFADE_POOL_THREADS") && err.contains("expected"),
                "diagnostic must name the variable and accepted forms: {err}"
            );
            assert!(
                err.contains(&format!("{bad:?}")),
                "diagnostic must quote the offending value: {err}"
            );
        }
    }
}

//! # corrfade-parallel
//!
//! Multi-threaded Monte-Carlo engine for the `corrfade` generators, built on
//! `std::thread::scope` worker pools:
//!
//! * [`engine::generate_snapshots`] — ordered, thread-count-invariant
//!   ensembles of independent snapshots,
//! * [`engine::monte_carlo_covariance`] — streaming estimation of
//!   `E[Z·Zᴴ]` without materializing the ensemble,
//! * [`engine::generate_realtime_paths`] — parallel generation of Doppler
//!   blocks (paper Sec. 5 mode), one block per RNG sub-stream.
//!
//! The expensive eigendecomposition is performed once on the calling thread;
//! workers only execute the `Z = L·W/σ_g` hot path, each streaming through
//! the `corrfade::ChannelStream` interface into one pooled planar
//! `corrfade::SampleBlock` — zero steady-state allocation per block. Chunk
//! seeds are derived from `(master seed, chunk index)` so results do not
//! depend on the number of worker threads — the statistical regression tests
//! in the workspace rely on that property.
//!
//! Configuration mistakes that could never run (a zero
//! [`ParallelConfig::chunk_size`]) are reported as the typed
//! [`ParallelError::InvalidChunkSize`] instead of hanging or panicking.

#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod partition;

pub use engine::{
    generate_realtime_paths, generate_snapshots, monte_carlo_covariance, ParallelConfig,
};
pub use error::ParallelError;
pub use partition::{chunk_seed, partition, Chunk};

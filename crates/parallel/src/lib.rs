//! # corrfade-parallel
//!
//! Multi-threaded Monte-Carlo engine and multi-stream batch runtime for the
//! `corrfade` generators, built on a persistent worker pool:
//!
//! * [`runtime::Runtime`] — a pool of long-lived workers created once and
//!   reused across calls (per-worker pinned [`corrfade::SampleBlock`]
//!   scratch, per-worker kernel-backend latch, graceful shutdown on drop).
//!   The **submitting thread participates as executor 0** — a pool of `W`
//!   executors spawns only `W − 1` threads and the caller never idles at
//!   the completion barrier; [`Runtime::global()`] is the process-wide
//!   instance behind the free functions,
//! * [`stealing::StealQueues`] — per-executor work-stealing lanes: items
//!   are dealt round-robin for deterministic affinity, executors pop their
//!   own lane front and steal stragglers' backs, so skewed workloads keep
//!   every core busy,
//! * [`engine::generate_snapshots`] — ordered, thread-count-invariant
//!   ensembles of independent snapshots,
//! * [`engine::monte_carlo_covariance`] — streaming estimation of
//!   `E[Z·Zᴴ]` without materializing the ensemble (bit-identical for any
//!   thread count thanks to per-chunk accumulator slots),
//! * [`engine::generate_realtime_paths`] — parallel generation of Doppler
//!   blocks (paper Sec. 5 mode), one block per RNG sub-stream,
//! * [`fleet::StreamFleet`] — the multi-stream batch engine: open many
//!   named scenarios from `corrfade-scenarios` at once and generate blocks
//!   for all of them concurrently on the pool, sharing the process-wide
//!   decomposition cache ([`corrfade::cached_eigen_coloring`]) and FFT plan
//!   cache so per-stream setup is paid once per covariance matrix.
//!
//! The expensive eigendecomposition is resolved once per covariance matrix
//! through the decomposition cache; workers only execute the `Z = L·W/σ_g`
//! hot path, each streaming through the `corrfade::ChannelStream` interface
//! into pinned planar `corrfade::SampleBlock`s — zero steady-state
//! allocation per block. Chunk seeds are derived from `(master seed, chunk
//! index)` and the chunk layout from `(total, chunk_size)` only, so results
//! do not depend on the number of worker threads — the statistical
//! regression tests in the workspace rely on that property. The
//! [`engine::spawn`] module keeps the historical spawn-per-call execution
//! (bit-identical results) for comparison benchmarks.
//!
//! Failures are typed, never cascading: a zero
//! [`ParallelConfig::chunk_size`] is [`ParallelError::InvalidChunkSize`],
//! and a job that panics on a pool executor surfaces as
//! [`ParallelError::JobPanicked`] from [`Runtime::try_run`] (and the fleet's
//! fallible advance) while the pool itself survives for subsequent submits —
//! no poisoned-mutex cascade. Malformed `CORRFADE_POOL_THREADS` values are
//! rejected with a clear diagnostic ([`runtime::parse_pool_threads`])
//! instead of being silently ignored.

#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod fleet;
pub mod partition;
pub mod runtime;
pub mod stealing;

pub use engine::{
    generate_realtime_paths, generate_realtime_paths_on, generate_snapshots, generate_snapshots_on,
    monte_carlo_covariance, monte_carlo_covariance_on, spawn, ParallelConfig,
};
pub use error::ParallelError;
pub use fleet::{stream_seed, StreamFleet, StreamKey};
pub use partition::{
    balanced_chunk_size, chunk_seed, partition, round_robin_lane, Chunk, MIN_CHUNK_SAMPLES,
    TARGET_CHUNKS,
};
pub use runtime::{parse_pool_threads, Runtime, WorkerScratch};
pub use stealing::StealQueues;

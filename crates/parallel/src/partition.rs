//! Deterministic chunk partitioning for parallel Monte-Carlo generation.
//!
//! Work is split into fixed-size chunks identified by their index. Each chunk
//! derives its RNG stream from `(master seed, chunk index)` only, so the
//! generated ensemble is **identical regardless of how many worker threads
//! execute it** — a property the statistical regression tests rely on.

/// Description of one chunk of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Index of the chunk (also the RNG sub-stream identifier).
    pub index: usize,
    /// Offset of the chunk's first sample in the overall ensemble.
    pub start: usize,
    /// Number of samples in this chunk.
    pub len: usize,
}

/// Splits `total` samples into chunks of at most `chunk_size` samples.
///
/// # Panics
/// Panics if `chunk_size` is zero.
pub fn partition(total: usize, chunk_size: usize) -> Vec<Chunk> {
    assert!(chunk_size > 0, "chunk_size must be positive");
    let mut chunks = Vec::with_capacity(total.div_ceil(chunk_size));
    let mut start = 0usize;
    let mut index = 0usize;
    while start < total {
        let len = chunk_size.min(total - start);
        chunks.push(Chunk { index, start, len });
        start += len;
        index += 1;
    }
    chunks
}

/// Number of chunks [`balanced_chunk_size`] aims for when the workload is
/// large enough: roughly 4 chunks per worker on a 16-core machine, which
/// keeps the self-scheduling pool load-balanced (a slow chunk is absorbed
/// by peers pulling the remaining ones) instead of the degenerate
/// one-chunk-per-thread split a large configured chunk size produces.
///
/// Deliberately a **constant**, not a function of the worker count or the
/// machine: the chunk layout determines which RNG stream generates which
/// sample, so deriving it from the thread count would silently break the
/// thread-count-invariance guarantee, and deriving it from
/// `available_parallelism` would make ensembles machine-dependent.
pub const TARGET_CHUNKS: usize = 64;

/// Minimum samples per chunk: below this the per-chunk setup (cloning the
/// coloring, seeding a generator) outweighs the generation work, so small
/// totals are not shredded into confetti just to reach [`TARGET_CHUNKS`].
pub const MIN_CHUNK_SAMPLES: usize = 64;

/// The load-balancing chunk-size heuristic: treats `max_chunk_size` (the
/// configured [`crate::ParallelConfig::chunk_size`]) as an upper bound and
/// subdivides large workloads into at least [`TARGET_CHUNKS`] chunks of at
/// least [`MIN_CHUNK_SAMPLES`] samples.
///
/// Deterministic in `(total, max_chunk_size)` only — never in the thread
/// count — so the `(seed, chunk index)` derivation keeps ensembles
/// identical for any number of workers.
///
/// # Panics
/// Panics if `max_chunk_size` is zero.
#[must_use]
pub fn balanced_chunk_size(total: usize, max_chunk_size: usize) -> usize {
    assert!(max_chunk_size > 0, "chunk_size must be positive");
    total
        .div_ceil(TARGET_CHUNKS)
        .max(MIN_CHUNK_SAMPLES)
        .min(max_chunk_size)
}

/// The work-stealing lane that item `index` is dealt into when `lanes`
/// lanes are in play: a plain round-robin `index % lanes`.
///
/// Part of the deterministic work-layout contract alongside
/// [`balanced_chunk_size`] and [`chunk_seed`]: executor `w` *prefers* items
/// `w, w + lanes, w + 2·lanes, …` every round (affinity for warm
/// per-stream state), machine- and scheduling-independent. Only wall-clock
/// placement depends on it — never the produced values, which derive from
/// `(master seed, index)` alone, so stealing an item to a different
/// executor cannot change what is generated.
///
/// # Panics
/// Panics if `lanes` is zero.
#[must_use]
pub fn round_robin_lane(index: usize, lanes: usize) -> usize {
    assert!(lanes > 0, "at least one lane is required");
    index % lanes
}

/// Derives a per-chunk RNG seed from the master seed and the chunk index
/// (SplitMix64 finalizer — well-distributed and cheap).
pub fn chunk_seed(master_seed: u64, chunk_index: usize) -> u64 {
    let mut z =
        master_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(chunk_index as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_everything_exactly_once() {
        for (total, chunk) in [(0usize, 8usize), (7, 8), (8, 8), (9, 8), (100, 7)] {
            let chunks = partition(total, chunk);
            let covered: usize = chunks.iter().map(|c| c.len).sum();
            assert_eq!(covered, total, "total {total}, chunk {chunk}");
            // Contiguous, ordered, correctly indexed.
            let mut expected_start = 0;
            for (i, c) in chunks.iter().enumerate() {
                assert_eq!(c.index, i);
                assert_eq!(c.start, expected_start);
                assert!(c.len <= chunk);
                expected_start += c.len;
            }
        }
    }

    #[test]
    fn empty_work_produces_no_chunks() {
        assert!(partition(0, 16).is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_rejected() {
        let _ = partition(10, 0);
    }

    #[test]
    fn balanced_chunk_size_targets_enough_chunks() {
        // Large workload, large configured chunk: subdivided to TARGET_CHUNKS.
        let size = balanced_chunk_size(100_000, 8192);
        assert_eq!(size, 100_000usize.div_ceil(TARGET_CHUNKS));
        assert_eq!(partition(100_000, size).len(), TARGET_CHUNKS);
        // Chunk sizes below the configured maximum are respected when the
        // total is small enough that TARGET_CHUNKS would shred it.
        assert_eq!(balanced_chunk_size(700, 512), MIN_CHUNK_SAMPLES);
        // A configured chunk smaller than the floor wins (upper bound).
        assert_eq!(balanced_chunk_size(700, 16), 16);
        // Workloads already yielding many chunks are untouched.
        assert_eq!(balanced_chunk_size(60_000, 512), 512);
        // Zero work still partitions to zero chunks.
        assert!(partition(0, balanced_chunk_size(0, 4096)).is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn balanced_chunk_size_rejects_zero_max() {
        let _ = balanced_chunk_size(10, 0);
    }

    #[test]
    fn round_robin_lane_covers_all_lanes_evenly() {
        let mut counts = [0usize; 3];
        for i in 0..12 {
            counts[round_robin_lane(i, 3)] += 1;
        }
        assert_eq!(counts, [4, 4, 4]);
        assert_eq!(round_robin_lane(5, 1), 0, "one lane takes everything");
    }

    #[test]
    fn chunk_seeds_are_deterministic_and_distinct() {
        let a = chunk_seed(42, 0);
        assert_eq!(a, chunk_seed(42, 0));
        let seeds: Vec<u64> = (0..100).map(|i| chunk_seed(42, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
        assert_ne!(chunk_seed(1, 0), chunk_seed(2, 0));
    }
}

//! Multi-threaded Monte-Carlo generation of correlated Rayleigh envelopes.
//!
//! The expensive part of validating (or using) the generator is drawing
//! millions of snapshots, not computing the coloring matrix — the
//! decomposition is done once per covariance matrix. The engine therefore:
//!
//! 1. computes the eigen-coloring once on the calling thread,
//! 2. splits the requested ensemble into fixed-size chunks
//!    ([`crate::partition()`]), each with its own deterministic RNG seed,
//! 3. lets a `std::thread::scope` worker pool pull chunks from a shared
//!    atomic counter, generate them independently, and either store the
//!    snapshots or fold them into per-thread covariance accumulators,
//! 4. merges the per-thread results.
//!
//! Because chunk seeds depend only on `(master seed, chunk index)`, the
//! produced ensemble is identical for any thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use corrfade::{CorrelatedRayleighGenerator, CorrfadeError, RealtimeConfig, RealtimeGenerator};
use corrfade_linalg::{CMatrix, Complex64};

use crate::partition::{chunk_seed, partition, Chunk};

/// Configuration of the parallel engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of worker threads (0 means "number of available cores").
    pub threads: usize,
    /// Number of snapshots generated per chunk (the unit of work stealing).
    pub chunk_size: usize,
    /// Master RNG seed.
    pub seed: u64,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            chunk_size: 4096,
            seed: 0,
        }
    }
}

impl ParallelConfig {
    /// Resolves the effective number of worker threads.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Generates `total` independent snapshots of the correlated complex
/// Gaussian vector in parallel. The result is ordered and identical for any
/// thread count.
///
/// # Errors
/// Propagates covariance-validation errors from the core crate.
pub fn generate_snapshots(
    covariance: &CMatrix,
    total: usize,
    config: &ParallelConfig,
) -> Result<Vec<Vec<Complex64>>, CorrfadeError> {
    let coloring = corrfade::eigen_coloring(covariance)?;
    let chunks = partition(total, config.chunk_size);
    let slots: Vec<Mutex<Vec<Vec<Complex64>>>> =
        chunks.iter().map(|_| Mutex::new(Vec::new())).collect();
    let next = AtomicUsize::new(0);
    let threads = config.effective_threads().min(chunks.len()).max(1);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= chunks.len() {
                    break;
                }
                let chunk = chunks[i];
                let snaps = generate_chunk(&coloring, covariance, chunk, config.seed);
                *slots[chunk.index].lock().unwrap() = snaps;
            });
        }
    });

    let mut out = Vec::with_capacity(total);
    for slot in slots {
        out.extend(slot.into_inner().unwrap());
    }
    Ok(out)
}

fn generate_chunk(
    coloring: &corrfade::Coloring,
    desired: &CMatrix,
    chunk: Chunk,
    master_seed: u64,
) -> Vec<Vec<Complex64>> {
    let mut gen = CorrelatedRayleighGenerator::from_coloring(
        coloring.clone(),
        desired.clone(),
        1.0,
        chunk_seed(master_seed, chunk.index),
    )
    .expect("coloring was already validated");
    gen.generate_snapshots(chunk.len)
}

/// Estimates the sample covariance `E[Z·Zᴴ]` over `total` snapshots without
/// materializing them: each worker folds its chunks into a local accumulator
/// and the accumulators are merged at the end.
///
/// # Errors
/// Propagates covariance-validation errors from the core crate.
pub fn monte_carlo_covariance(
    covariance: &CMatrix,
    total: usize,
    config: &ParallelConfig,
) -> Result<CMatrix, CorrfadeError> {
    assert!(
        total > 0,
        "monte_carlo_covariance: need at least one snapshot"
    );
    let coloring = corrfade::eigen_coloring(covariance)?;
    let n = coloring.dimension();
    let chunks = partition(total, config.chunk_size);
    let next = AtomicUsize::new(0);
    let threads = config.effective_threads().min(chunks.len()).max(1);
    let accumulator = Mutex::new(CMatrix::zeros(n, n));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = CMatrix::zeros(n, n);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= chunks.len() {
                        break;
                    }
                    let chunk = chunks[i];
                    let mut gen = CorrelatedRayleighGenerator::from_coloring(
                        coloring.clone(),
                        covariance.clone(),
                        1.0,
                        chunk_seed(config.seed, chunk.index),
                    )
                    .expect("coloring was already validated");
                    for _ in 0..chunk.len {
                        let z = gen.sample_gaussian();
                        for a in 0..n {
                            for b in 0..n {
                                local[(a, b)] += z[a] * z[b].conj();
                            }
                        }
                    }
                }
                let mut shared = accumulator.lock().unwrap();
                let merged = &*shared + &local;
                *shared = merged;
            });
        }
    });

    Ok(accumulator
        .into_inner()
        .unwrap()
        .scale_real(1.0 / total as f64))
}

/// Generates `blocks` real-time Doppler blocks in parallel (one block is one
/// full `M`-sample realization of all `N` envelopes) and concatenates them
/// per envelope. Block `i` always uses the RNG stream derived from
/// `(seed, i)`, so the result is thread-count invariant.
///
/// # Errors
/// Propagates configuration errors from the core crate.
pub fn generate_realtime_paths(
    base: &RealtimeConfig,
    blocks: usize,
    config: &ParallelConfig,
) -> Result<Vec<Vec<Complex64>>, CorrfadeError> {
    // Validate the configuration once up front so workers cannot fail.
    let probe = RealtimeGenerator::new(RealtimeConfig {
        covariance: base.covariance.clone(),
        ..*base
    })?;
    let n = probe.dimension();
    drop(probe);

    let slots: Vec<Mutex<Vec<Vec<Complex64>>>> =
        (0..blocks).map(|_| Mutex::new(Vec::new())).collect();
    let next = AtomicUsize::new(0);
    let threads = config.effective_threads().min(blocks.max(1));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= blocks {
                    break;
                }
                let cfg = RealtimeConfig {
                    covariance: base.covariance.clone(),
                    seed: chunk_seed(base.seed, i),
                    ..*base
                };
                let mut gen = RealtimeGenerator::new(cfg).expect("configuration validated above");
                let block = gen.generate_block();
                *slots[i].lock().unwrap() = block.gaussian_paths;
            });
        }
    });

    let mut paths: Vec<Vec<Complex64>> = vec![Vec::new(); n];
    for slot in slots {
        let block = slot.into_inner().unwrap();
        for (j, path) in block.into_iter().enumerate() {
            paths[j].extend(path);
        }
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_models::{paper_covariance_matrix_22, paper_covariance_matrix_23};
    use corrfade_stats::{relative_frobenius_error, sample_covariance};

    fn config(threads: usize, seed: u64) -> ParallelConfig {
        ParallelConfig {
            threads,
            chunk_size: 512,
            seed,
        }
    }

    #[test]
    fn effective_threads_resolution() {
        assert_eq!(config(3, 0).effective_threads(), 3);
        assert!(ParallelConfig::default().effective_threads() >= 1);
    }

    #[test]
    fn snapshot_count_and_shape() {
        let k = paper_covariance_matrix_22();
        let snaps = generate_snapshots(&k, 1000, &config(2, 1)).unwrap();
        assert_eq!(snaps.len(), 1000);
        assert!(snaps.iter().all(|s| s.len() == 3));
    }

    #[test]
    fn result_is_thread_count_invariant() {
        let k = paper_covariance_matrix_23();
        let a = generate_snapshots(&k, 2000, &config(1, 7)).unwrap();
        let b = generate_snapshots(&k, 2000, &config(4, 7)).unwrap();
        assert_eq!(a, b, "ensemble must not depend on the worker count");
        let c = generate_snapshots(&k, 2000, &config(4, 8)).unwrap();
        assert_ne!(a, c, "different seeds must give different ensembles");
    }

    #[test]
    fn parallel_covariance_matches_desired_covariance() {
        let k = paper_covariance_matrix_22();
        let khat = monte_carlo_covariance(&k, 60_000, &config(4, 3)).unwrap();
        let err = relative_frobenius_error(&khat, &k);
        assert!(err < 0.03, "relative covariance error {err}");
    }

    #[test]
    fn streaming_covariance_agrees_with_materialized_snapshots() {
        let k = paper_covariance_matrix_23();
        let cfg = config(3, 11);
        let snaps = generate_snapshots(&k, 8192, &cfg).unwrap();
        let k_mat = sample_covariance(&snaps);
        let k_stream = monte_carlo_covariance(&k, 8192, &cfg).unwrap();
        assert!(k_mat.approx_eq(&k_stream, 1e-10));
    }

    #[test]
    fn realtime_paths_shape_and_covariance() {
        let k = paper_covariance_matrix_22();
        let base = RealtimeConfig {
            covariance: k.clone(),
            idft_size: 512,
            normalized_doppler: 0.05,
            sigma_orig_sq: 0.5,
            seed: 5,
        };
        let paths = generate_realtime_paths(&base, 24, &config(4, 5)).unwrap();
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.len() == 24 * 512));
        let khat = corrfade_stats::sample_covariance_from_paths(&paths);
        let err = relative_frobenius_error(&khat, &k);
        assert!(err < 0.12, "relative covariance error {err}");
    }

    #[test]
    fn realtime_paths_are_thread_count_invariant() {
        let k = paper_covariance_matrix_23();
        let base = RealtimeConfig {
            covariance: k,
            idft_size: 256,
            normalized_doppler: 0.1,
            sigma_orig_sq: 0.5,
            seed: 9,
        };
        let a = generate_realtime_paths(&base, 6, &config(1, 0)).unwrap();
        let b = generate_realtime_paths(&base, 6, &config(3, 0)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_covariance_is_reported() {
        let bad = CMatrix::zeros(2, 3);
        assert!(generate_snapshots(&bad, 100, &config(2, 0)).is_err());
        assert!(monte_carlo_covariance(&bad, 100, &config(2, 0)).is_err());
    }

    #[test]
    fn zero_total_yields_empty_ensemble() {
        let k = paper_covariance_matrix_22();
        let snaps = generate_snapshots(&k, 0, &config(2, 0)).unwrap();
        assert!(snaps.is_empty());
    }
}

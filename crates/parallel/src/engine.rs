//! Multi-threaded Monte-Carlo generation of correlated Rayleigh envelopes.
//!
//! The expensive part of validating (or using) the generator is drawing
//! millions of snapshots, not computing the coloring matrix — the
//! decomposition is done once per covariance matrix (and shared process-wide
//! through [`corrfade::cached_eigen_coloring`]). The engine therefore:
//!
//! 1. resolves the eigen-coloring through the decomposition cache (a hit for
//!    every covariance matrix the process has seen before),
//! 2. splits the requested ensemble into chunks sized by the load-balancing
//!    heuristic ([`crate::balanced_chunk_size`]), each with its own
//!    deterministic RNG seed,
//! 3. deals the chunks into per-executor work-stealing lanes
//!    ([`StealQueues`]) on the persistent [`Runtime`] pool — the submitting
//!    thread participates as executor 0, each executor drains its own lane
//!    and steals stragglers' backlogs; every worker owns **one pinned planar
//!    [`SampleBlock`]** that the generators stream into through
//!    [`ChannelStream::next_block_into`] — no per-chunk buffer allocation —
//!    and either stores the snapshots or folds covariance accumulators
//!    straight from the planar data,
//! 4. merges the per-chunk results in chunk order.
//!
//! Because chunk seeds depend only on `(master seed, chunk index)` and the
//! chunk layout depends only on `(total, chunk_size)`, the produced ensemble
//! is identical for any thread count.
//!
//! The free functions run on [`Runtime::global()`]; the `*_on` variants take
//! an explicit pool. The [`spawn`] module keeps the historical
//! spawn-a-scope-per-call execution under the same signatures — it produces
//! bit-identical results and exists so the `parallel_throughput` bench (and
//! any caller that wants strict per-call thread isolation) can measure pool
//! reuse against per-call spawning.
//!
//! All per-sample work inside the workers (the coloring matvec, the
//! covariance fold, the Doppler IDFT) runs on the
//! [`corrfade_linalg::kernel`] dispatch layer; pool workers latch the
//! backend at spawn and the spawn path latches it on the calling thread
//! before any worker starts, so `CORRFADE_KERNEL` is honoured
//! deterministically across the pool.

use std::sync::Mutex;

use corrfade::{
    ChannelStream, Coloring, CorrelatedRayleighGenerator, RealtimeConfig, RealtimeGenerator,
    SampleBlock,
};
use corrfade_linalg::{CMatrix, Complex64};

use crate::error::ParallelError;
use crate::partition::{balanced_chunk_size, chunk_seed, partition, Chunk};
use crate::runtime::{Runtime, WorkerScratch};
use crate::stealing::StealQueues;

/// Configuration of the parallel engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Maximum number of workers participating in a call (0 means "number
    /// of available cores"). On the pooled path this caps how many pool
    /// workers pick up chunks; it never affects the produced values.
    pub threads: usize,
    /// Upper bound on the snapshots generated per chunk (the unit of work
    /// stealing). Large workloads are subdivided further for load balance —
    /// see [`ParallelConfig::effective_chunk_size`]. Must be positive; the
    /// engine entry points report [`ParallelError::InvalidChunkSize`]
    /// otherwise.
    pub chunk_size: usize,
    /// Master RNG seed.
    pub seed: u64,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            chunk_size: 4096,
            seed: 0,
        }
    }
}

impl ParallelConfig {
    /// Resolves the effective number of worker threads.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// The chunk size actually used to partition `total` samples:
    /// [`Self::chunk_size`] bounded by the load-balancing heuristic
    /// ([`balanced_chunk_size`]), which targets [`crate::TARGET_CHUNKS`]
    /// chunks so the pool self-schedules evenly instead of degenerating to
    /// one oversized chunk per thread.
    ///
    /// Depends only on `(total, chunk_size)` — never on the thread count —
    /// so the chunk layout (and with it every `(seed, i)`-derived RNG
    /// stream) is identical for any number of workers.
    ///
    /// # Panics
    /// Panics if [`Self::chunk_size`] is zero; use [`Self::validate`] first
    /// to get the typed error instead.
    #[must_use]
    pub fn effective_chunk_size(&self, total: usize) -> usize {
        balanced_chunk_size(total, self.chunk_size)
    }

    /// Checks the configuration for values that could never run, and
    /// latches the process-wide numeric-kernel backend so the worker pool
    /// never races the first `CORRFADE_KERNEL` lookup.
    ///
    /// # Errors
    /// [`ParallelError::InvalidChunkSize`] when `chunk_size` is zero.
    pub fn validate(&self) -> Result<(), ParallelError> {
        if self.chunk_size == 0 {
            return Err(ParallelError::InvalidChunkSize);
        }
        let _ = corrfade_linalg::kernel::backend();
        Ok(())
    }
}

/// How a call executes its workers: on a persistent pool or on freshly
/// spawned scoped threads (the historical behaviour, kept for comparison).
/// Both run the identical job closures, so the produced values cannot
/// differ.
enum Executor<'rt> {
    Pool(&'rt Runtime),
    Spawn,
}

impl Executor<'_> {
    /// Runs `job` with worker ids `0..participants` available; the job
    /// distributes its work via per-executor work-stealing lanes
    /// ([`StealQueues`]), ids beyond `participants` return immediately.
    fn run(&self, participants: usize, job: &(dyn Fn(usize, &mut WorkerScratch) + Sync)) {
        match self {
            Executor::Pool(runtime) => runtime.run(job),
            Executor::Spawn => std::thread::scope(|scope| {
                for id in 0..participants {
                    let mut scratch = WorkerScratch::default();
                    scope.spawn(move || job(id, &mut scratch));
                }
            }),
        }
    }
}

/// Generates `total` independent snapshots of the correlated complex
/// Gaussian vector on the global worker pool. The result is ordered and
/// identical for any thread count.
///
/// # Errors
/// [`ParallelError::InvalidChunkSize`] for a zero chunk size; covariance
/// validation errors from the core crate otherwise.
pub fn generate_snapshots(
    covariance: &CMatrix,
    total: usize,
    config: &ParallelConfig,
) -> Result<Vec<Vec<Complex64>>, ParallelError> {
    generate_snapshots_on(Runtime::global(), covariance, total, config)
}

/// [`generate_snapshots`] on an explicit [`Runtime`].
///
/// # Errors
/// See [`generate_snapshots`].
pub fn generate_snapshots_on(
    runtime: &Runtime,
    covariance: &CMatrix,
    total: usize,
    config: &ParallelConfig,
) -> Result<Vec<Vec<Complex64>>, ParallelError> {
    generate_snapshots_with(&Executor::Pool(runtime), covariance, total, config)
}

fn generate_snapshots_with(
    executor: &Executor<'_>,
    covariance: &CMatrix,
    total: usize,
    config: &ParallelConfig,
) -> Result<Vec<Vec<Complex64>>, ParallelError> {
    config.validate()?;
    let coloring = corrfade::cached_eigen_coloring(covariance)?;
    let chunks = partition(total, config.effective_chunk_size(total));
    let slots: Vec<Mutex<Vec<Vec<Complex64>>>> =
        chunks.iter().map(|_| Mutex::new(Vec::new())).collect();
    let participants = config.effective_threads().min(chunks.len()).max(1);
    let queues = StealQueues::new(chunks.len(), participants);

    executor.run(participants, &|id, scratch| {
        if id >= participants {
            return;
        }
        queues.for_each_claimed(id, |i| {
            let chunk = chunks[i];
            stream_chunk(
                &coloring,
                covariance,
                chunk,
                config.seed,
                &mut scratch.block,
            );
            *slots[chunk.index].lock().unwrap() = scratch.block.to_snapshots();
        });
    });

    let mut out = Vec::with_capacity(total);
    for slot in slots {
        out.extend(slot.into_inner().unwrap());
    }
    Ok(out)
}

/// Streams one chunk of snapshots into the worker's pooled block: sample `l`
/// of the block is snapshot `chunk.start + l` of the overall ensemble.
fn stream_chunk(
    coloring: &Coloring,
    desired: &CMatrix,
    chunk: Chunk,
    master_seed: u64,
    block: &mut SampleBlock,
) {
    let mut gen = CorrelatedRayleighGenerator::from_coloring(
        coloring.clone(),
        desired.clone(),
        1.0,
        chunk_seed(master_seed, chunk.index),
    )
    .expect("coloring was already validated")
    .with_stream_block_len(chunk.len);
    gen.next_block_into(block)
        .expect("streaming is infallible after construction");
}

/// Estimates the sample covariance `E[Z·Zᴴ]` over `total` snapshots without
/// materializing them, on the global worker pool: each worker streams its
/// chunks into its pinned planar block and folds `Σ Z·Zᴴ` straight from the
/// planar data into that chunk's accumulator slot; the slots are merged in
/// chunk order at the end, so the estimate is **bit-identical for any
/// thread count** (not merely statistically equivalent).
///
/// # Errors
/// [`ParallelError::InvalidChunkSize`] for a zero chunk size; covariance
/// validation errors from the core crate otherwise.
///
/// # Panics
/// Panics when `total` is zero (an estimate over nothing).
pub fn monte_carlo_covariance(
    covariance: &CMatrix,
    total: usize,
    config: &ParallelConfig,
) -> Result<CMatrix, ParallelError> {
    monte_carlo_covariance_on(Runtime::global(), covariance, total, config)
}

/// [`monte_carlo_covariance`] on an explicit [`Runtime`].
///
/// # Errors
/// See [`monte_carlo_covariance`].
///
/// # Panics
/// Panics when `total` is zero.
pub fn monte_carlo_covariance_on(
    runtime: &Runtime,
    covariance: &CMatrix,
    total: usize,
    config: &ParallelConfig,
) -> Result<CMatrix, ParallelError> {
    monte_carlo_covariance_with(&Executor::Pool(runtime), covariance, total, config)
}

fn monte_carlo_covariance_with(
    executor: &Executor<'_>,
    covariance: &CMatrix,
    total: usize,
    config: &ParallelConfig,
) -> Result<CMatrix, ParallelError> {
    assert!(
        total > 0,
        "monte_carlo_covariance: need at least one snapshot"
    );
    config.validate()?;
    let coloring = corrfade::cached_eigen_coloring(covariance)?;
    let n = coloring.dimension();
    let chunks = partition(total, config.effective_chunk_size(total));
    let participants = config.effective_threads().min(chunks.len()).max(1);
    let queues = StealQueues::new(chunks.len(), participants);
    // One accumulator per chunk, merged in chunk order below: the summation
    // order is fixed by the chunk layout, never by scheduling.
    let slots: Vec<Mutex<CMatrix>> = chunks
        .iter()
        .map(|_| Mutex::new(CMatrix::zeros(n, n)))
        .collect();

    executor.run(participants, &|id, scratch| {
        if id >= participants {
            return;
        }
        queues.for_each_claimed(id, |i| {
            let chunk = chunks[i];
            stream_chunk(
                &coloring,
                covariance,
                chunk,
                config.seed,
                &mut scratch.block,
            );
            scratch
                .block
                .accumulate_covariance(&mut slots[chunk.index].lock().unwrap());
        });
    });

    let mut sum = CMatrix::zeros(n, n);
    for slot in slots {
        let partial = slot.into_inner().unwrap();
        sum = &sum + &partial;
    }
    Ok(sum.scale_real(1.0 / total as f64))
}

/// Generates `blocks` real-time Doppler blocks on the global worker pool
/// (one block is one full `M`-sample realization of all `N` envelopes) and
/// concatenates them per envelope. Block `i` always uses the RNG stream
/// derived from `(seed, i)`, so the result is thread-count invariant.
///
/// The eigendecomposition is resolved through the process-wide
/// decomposition cache and the Doppler filter is designed once on the
/// calling thread; each worker streams into its own pinned [`SampleBlock`]
/// through cheaply [reseeded](RealtimeGenerator::reseeded) copies.
/// [`ParallelConfig::chunk_size`] is not consulted — the unit of work here
/// is one full Doppler block.
///
/// # Errors
/// Configuration errors from the core crate.
pub fn generate_realtime_paths(
    base: &RealtimeConfig,
    blocks: usize,
    config: &ParallelConfig,
) -> Result<Vec<Vec<Complex64>>, ParallelError> {
    generate_realtime_paths_on(Runtime::global(), base, blocks, config)
}

/// [`generate_realtime_paths`] on an explicit [`Runtime`].
///
/// # Errors
/// See [`generate_realtime_paths`].
pub fn generate_realtime_paths_on(
    runtime: &Runtime,
    base: &RealtimeConfig,
    blocks: usize,
    config: &ParallelConfig,
) -> Result<Vec<Vec<Complex64>>, ParallelError> {
    generate_realtime_paths_with(&Executor::Pool(runtime), base, blocks, config)
}

fn generate_realtime_paths_with(
    executor: &Executor<'_>,
    base: &RealtimeConfig,
    blocks: usize,
    config: &ParallelConfig,
) -> Result<Vec<Vec<Complex64>>, ParallelError> {
    // Validate the configuration (and pay for the filter design) once up
    // front so workers cannot fail; the decomposition comes from the
    // process-wide cache. Latch the kernel backend before any worker runs.
    let _ = corrfade_linalg::kernel::backend();
    let coloring = corrfade::cached_eigen_coloring(&base.covariance)?;
    let prototype = RealtimeGenerator::from_coloring(
        Coloring::clone(&coloring),
        RealtimeConfig {
            covariance: base.covariance.clone(),
            ..*base
        },
    )?;
    let n = prototype.dimension();

    let slots: Vec<Mutex<Vec<Vec<Complex64>>>> =
        (0..blocks).map(|_| Mutex::new(Vec::new())).collect();
    let participants = config.effective_threads().min(blocks.max(1));
    let queues = StealQueues::new(blocks, participants);

    executor.run(participants, &|id, scratch| {
        if id >= participants {
            return;
        }
        queues.for_each_claimed(id, |i| {
            let mut gen = prototype.reseeded(chunk_seed(base.seed, i));
            gen.next_block_into(&mut scratch.block)
                .expect("configuration validated above");
            *slots[i].lock().unwrap() = scratch.block.to_paths();
        });
    });

    let mut paths: Vec<Vec<Complex64>> = vec![Vec::new(); n];
    for slot in slots {
        let block = slot.into_inner().unwrap();
        for (j, path) in block.into_iter().enumerate() {
            paths[j].extend(path);
        }
    }
    Ok(paths)
}

/// The historical per-call execution mode: spawn a `std::thread::scope`
/// pool, run the identical chunk jobs, join, tear down.
///
/// Results are **bit-identical** to the pooled entry points — only the
/// execution strategy differs. This module exists for two callers: the
/// `parallel_throughput` bench, which measures how much the persistent pool
/// saves over per-call spawning, and code that wants strict thread
/// isolation per call (no long-lived pool threads).
pub mod spawn {
    use super::*;

    /// [`super::generate_snapshots`] on freshly spawned scoped threads.
    ///
    /// # Errors
    /// See [`super::generate_snapshots`].
    pub fn generate_snapshots(
        covariance: &CMatrix,
        total: usize,
        config: &ParallelConfig,
    ) -> Result<Vec<Vec<Complex64>>, ParallelError> {
        generate_snapshots_with(&Executor::Spawn, covariance, total, config)
    }

    /// [`super::monte_carlo_covariance`] on freshly spawned scoped threads.
    ///
    /// # Errors
    /// See [`super::monte_carlo_covariance`].
    ///
    /// # Panics
    /// Panics when `total` is zero.
    pub fn monte_carlo_covariance(
        covariance: &CMatrix,
        total: usize,
        config: &ParallelConfig,
    ) -> Result<CMatrix, ParallelError> {
        monte_carlo_covariance_with(&Executor::Spawn, covariance, total, config)
    }

    /// [`super::generate_realtime_paths`] on freshly spawned scoped
    /// threads.
    ///
    /// # Errors
    /// See [`super::generate_realtime_paths`].
    pub fn generate_realtime_paths(
        base: &RealtimeConfig,
        blocks: usize,
        config: &ParallelConfig,
    ) -> Result<Vec<Vec<Complex64>>, ParallelError> {
        generate_realtime_paths_with(&Executor::Spawn, base, blocks, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_linalg::Precision;
    use corrfade_models::{paper_covariance_matrix_22, paper_covariance_matrix_23};
    use corrfade_stats::{relative_frobenius_error, sample_covariance};

    fn config(threads: usize, seed: u64) -> ParallelConfig {
        ParallelConfig {
            threads,
            chunk_size: 512,
            seed,
        }
    }

    #[test]
    fn effective_threads_resolution() {
        assert_eq!(config(3, 0).effective_threads(), 3);
        assert!(ParallelConfig::default().effective_threads() >= 1);
    }

    #[test]
    fn effective_chunk_size_follows_the_balance_heuristic() {
        let cfg = ParallelConfig {
            chunk_size: 8192,
            ..ParallelConfig::default()
        };
        assert_eq!(
            cfg.effective_chunk_size(100_000),
            crate::partition::balanced_chunk_size(100_000, 8192)
        );
    }

    #[test]
    fn zero_chunk_size_is_a_typed_error() {
        let k = paper_covariance_matrix_22();
        let bad = ParallelConfig {
            chunk_size: 0,
            ..ParallelConfig::default()
        };
        assert_eq!(bad.validate(), Err(ParallelError::InvalidChunkSize));
        assert!(matches!(
            generate_snapshots(&k, 100, &bad),
            Err(ParallelError::InvalidChunkSize)
        ));
        assert!(matches!(
            monte_carlo_covariance(&k, 100, &bad),
            Err(ParallelError::InvalidChunkSize)
        ));
        // generate_realtime_paths partitions by block index, not chunk_size,
        // so it is unaffected by the zero chunk size.
        let base = RealtimeConfig {
            covariance: k,
            idft_size: 64,
            normalized_doppler: 0.1,
            sigma_orig_sq: 0.5,
            seed: 1,
            precision: Precision::F64,
        };
        assert!(generate_realtime_paths(&base, 1, &bad).is_ok());
    }

    #[test]
    fn snapshot_count_and_shape() {
        let k = paper_covariance_matrix_22();
        let snaps = generate_snapshots(&k, 1000, &config(2, 1)).unwrap();
        assert_eq!(snaps.len(), 1000);
        assert!(snaps.iter().all(|s| s.len() == 3));
    }

    #[test]
    fn result_is_thread_count_invariant() {
        let k = paper_covariance_matrix_23();
        let a = generate_snapshots(&k, 2000, &config(1, 7)).unwrap();
        let b = generate_snapshots(&k, 2000, &config(4, 7)).unwrap();
        assert_eq!(a, b, "ensemble must not depend on the worker count");
        let c = generate_snapshots(&k, 2000, &config(4, 8)).unwrap();
        assert_ne!(a, c, "different seeds must give different ensembles");
    }

    #[test]
    fn pooled_and_spawned_execution_agree_bit_for_bit() {
        let k = paper_covariance_matrix_23();
        let cfg = config(3, 21);
        assert_eq!(
            generate_snapshots(&k, 1500, &cfg).unwrap(),
            spawn::generate_snapshots(&k, 1500, &cfg).unwrap(),
        );
        let pooled = monte_carlo_covariance(&k, 1500, &cfg).unwrap();
        let spawned = spawn::monte_carlo_covariance(&k, 1500, &cfg).unwrap();
        assert_eq!(
            pooled.as_slice(),
            spawned.as_slice(),
            "per-chunk covariance slots must make the estimate bit-identical"
        );
        let base = RealtimeConfig {
            covariance: k,
            idft_size: 128,
            normalized_doppler: 0.05,
            sigma_orig_sq: 0.5,
            seed: 2,
            precision: Precision::F64,
        };
        assert_eq!(
            generate_realtime_paths(&base, 5, &cfg).unwrap(),
            spawn::generate_realtime_paths(&base, 5, &cfg).unwrap(),
        );
    }

    #[test]
    fn explicit_runtime_matches_the_global_pool() {
        let k = paper_covariance_matrix_22();
        let cfg = config(2, 5);
        let rt = Runtime::new(2);
        assert_eq!(
            generate_snapshots_on(&rt, &k, 900, &cfg).unwrap(),
            generate_snapshots(&k, 900, &cfg).unwrap(),
        );
    }

    #[test]
    fn covariance_estimate_is_bitwise_thread_count_invariant() {
        let k = paper_covariance_matrix_23();
        let a = monte_carlo_covariance(&k, 6000, &config(1, 3)).unwrap();
        let b = monte_carlo_covariance(&k, 6000, &config(4, 3)).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn snapshots_match_the_sequential_generator_bit_for_bit() {
        // Chunk 0 of the parallel ensemble must equal a sequential generator
        // seeded with the same chunk seed — pool scheduling must not change
        // the produced values.
        let k = paper_covariance_matrix_22();
        let cfg = config(2, 13);
        let total = 700;
        let chunk0 = cfg.effective_chunk_size(total);
        let snaps = generate_snapshots(&k, total, &cfg).unwrap();
        let mut gen =
            corrfade::CorrelatedRayleighGenerator::new(k, crate::partition::chunk_seed(13, 0))
                .unwrap();
        let sequential = gen.generate_snapshots(chunk0);
        assert_eq!(&snaps[..chunk0], &sequential[..]);
    }

    #[test]
    fn parallel_covariance_matches_desired_covariance() {
        let k = paper_covariance_matrix_22();
        let khat = monte_carlo_covariance(&k, 60_000, &config(4, 3)).unwrap();
        let err = relative_frobenius_error(&khat, &k);
        assert!(err < 0.03, "relative covariance error {err}");
    }

    #[test]
    fn streaming_covariance_agrees_with_materialized_snapshots() {
        let k = paper_covariance_matrix_23();
        let cfg = config(3, 11);
        let snaps = generate_snapshots(&k, 8192, &cfg).unwrap();
        let k_mat = sample_covariance(&snaps);
        let k_stream = monte_carlo_covariance(&k, 8192, &cfg).unwrap();
        assert!(k_mat.approx_eq(&k_stream, 1e-10));
    }

    #[test]
    fn realtime_paths_shape_and_covariance() {
        let k = paper_covariance_matrix_22();
        let base = RealtimeConfig {
            covariance: k.clone(),
            idft_size: 512,
            normalized_doppler: 0.05,
            sigma_orig_sq: 0.5,
            seed: 5,
            precision: Precision::F64,
        };
        let paths = generate_realtime_paths(&base, 24, &config(4, 5)).unwrap();
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.len() == 24 * 512));
        let khat = corrfade_stats::sample_covariance_from_paths(&paths);
        let err = relative_frobenius_error(&khat, &k);
        assert!(err < 0.12, "relative covariance error {err}");
    }

    #[test]
    fn realtime_paths_are_thread_count_invariant() {
        let k = paper_covariance_matrix_23();
        let base = RealtimeConfig {
            covariance: k,
            idft_size: 256,
            normalized_doppler: 0.1,
            sigma_orig_sq: 0.5,
            seed: 9,
            precision: Precision::F64,
        };
        let a = generate_realtime_paths(&base, 6, &config(1, 0)).unwrap();
        let b = generate_realtime_paths(&base, 6, &config(3, 0)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_covariance_is_reported() {
        let bad = CMatrix::zeros(2, 3);
        assert!(matches!(
            generate_snapshots(&bad, 100, &config(2, 0)),
            Err(ParallelError::Core(_))
        ));
        assert!(matches!(
            monte_carlo_covariance(&bad, 100, &config(2, 0)),
            Err(ParallelError::Core(_))
        ));
    }

    #[test]
    fn zero_total_yields_empty_ensemble() {
        let k = paper_covariance_matrix_22();
        let snaps = generate_snapshots(&k, 0, &config(2, 0)).unwrap();
        assert!(snaps.is_empty());
    }
}

//! Multi-threaded Monte-Carlo generation of correlated Rayleigh envelopes.
//!
//! The expensive part of validating (or using) the generator is drawing
//! millions of snapshots, not computing the coloring matrix — the
//! decomposition is done once per covariance matrix. The engine therefore:
//!
//! 1. computes the eigen-coloring once on the calling thread,
//! 2. splits the requested ensemble into fixed-size chunks
//!    ([`crate::partition()`]), each with its own deterministic RNG seed,
//! 3. lets a `std::thread::scope` worker pool pull chunks from a shared
//!    atomic counter; every worker owns **one pooled planar
//!    [`SampleBlock`]** that the generators stream into through
//!    [`ChannelStream::next_block_into`] — no per-chunk buffer allocation —
//!    and either stores the snapshots or folds covariance accumulators
//!    straight from the planar data,
//! 4. merges the per-thread results.
//!
//! Because chunk seeds depend only on `(master seed, chunk index)`, the
//! produced ensemble is identical for any thread count.
//!
//! All per-sample work inside the workers (the coloring matvec, the
//! covariance fold, the Doppler IDFT) runs on the
//! [`corrfade_linalg::kernel`] dispatch layer; the engine latches the
//! backend (and, on the vector backend, warms the CPU-feature detection)
//! once on the calling thread before any worker spawns, so
//! `CORRFADE_KERNEL` is honoured deterministically across the pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use corrfade::{
    ChannelStream, CorrelatedRayleighGenerator, RealtimeConfig, RealtimeGenerator, SampleBlock,
};
use corrfade_linalg::{CMatrix, Complex64};

use crate::error::ParallelError;
use crate::partition::{chunk_seed, partition, Chunk};

/// Configuration of the parallel engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of worker threads (0 means "number of available cores").
    pub threads: usize,
    /// Number of snapshots generated per chunk (the unit of work stealing).
    /// Must be positive; the engine entry points report
    /// [`ParallelError::InvalidChunkSize`] otherwise.
    pub chunk_size: usize,
    /// Master RNG seed.
    pub seed: u64,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            chunk_size: 4096,
            seed: 0,
        }
    }
}

impl ParallelConfig {
    /// Resolves the effective number of worker threads.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Checks the configuration for values that could never run, and
    /// latches the process-wide numeric-kernel backend so the worker pool
    /// never races the first `CORRFADE_KERNEL` lookup.
    ///
    /// # Errors
    /// [`ParallelError::InvalidChunkSize`] when `chunk_size` is zero.
    pub fn validate(&self) -> Result<(), ParallelError> {
        if self.chunk_size == 0 {
            return Err(ParallelError::InvalidChunkSize);
        }
        let _ = corrfade_linalg::kernel::backend();
        Ok(())
    }
}

/// Generates `total` independent snapshots of the correlated complex
/// Gaussian vector in parallel. The result is ordered and identical for any
/// thread count.
///
/// # Errors
/// [`ParallelError::InvalidChunkSize`] for a zero chunk size; covariance
/// validation errors from the core crate otherwise.
pub fn generate_snapshots(
    covariance: &CMatrix,
    total: usize,
    config: &ParallelConfig,
) -> Result<Vec<Vec<Complex64>>, ParallelError> {
    config.validate()?;
    let coloring = corrfade::eigen_coloring(covariance)?;
    let chunks = partition(total, config.chunk_size);
    let slots: Vec<Mutex<Vec<Vec<Complex64>>>> =
        chunks.iter().map(|_| Mutex::new(Vec::new())).collect();
    let next = AtomicUsize::new(0);
    let threads = config.effective_threads().min(chunks.len()).max(1);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // One planar block per worker, reused across every chunk the
                // worker pulls.
                let mut block = SampleBlock::empty();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= chunks.len() {
                        break;
                    }
                    let chunk = chunks[i];
                    stream_chunk(&coloring, covariance, chunk, config.seed, &mut block);
                    *slots[chunk.index].lock().unwrap() = block.to_snapshots();
                }
            });
        }
    });

    let mut out = Vec::with_capacity(total);
    for slot in slots {
        out.extend(slot.into_inner().unwrap());
    }
    Ok(out)
}

/// Streams one chunk of snapshots into the worker's pooled block: sample `l`
/// of the block is snapshot `chunk.start + l` of the overall ensemble.
fn stream_chunk(
    coloring: &corrfade::Coloring,
    desired: &CMatrix,
    chunk: Chunk,
    master_seed: u64,
    block: &mut SampleBlock,
) {
    let mut gen = CorrelatedRayleighGenerator::from_coloring(
        coloring.clone(),
        desired.clone(),
        1.0,
        chunk_seed(master_seed, chunk.index),
    )
    .expect("coloring was already validated")
    .with_stream_block_len(chunk.len);
    gen.next_block_into(block)
        .expect("streaming is infallible after construction");
}

/// Estimates the sample covariance `E[Z·Zᴴ]` over `total` snapshots without
/// materializing them: each worker streams its chunks into its pooled
/// planar block and folds `Σ Z·Zᴴ` straight from the planar data into a
/// thread-local accumulator; the accumulators are merged at the end.
///
/// # Errors
/// [`ParallelError::InvalidChunkSize`] for a zero chunk size; covariance
/// validation errors from the core crate otherwise.
pub fn monte_carlo_covariance(
    covariance: &CMatrix,
    total: usize,
    config: &ParallelConfig,
) -> Result<CMatrix, ParallelError> {
    assert!(
        total > 0,
        "monte_carlo_covariance: need at least one snapshot"
    );
    config.validate()?;
    let coloring = corrfade::eigen_coloring(covariance)?;
    let n = coloring.dimension();
    let chunks = partition(total, config.chunk_size);
    let next = AtomicUsize::new(0);
    let threads = config.effective_threads().min(chunks.len()).max(1);
    let accumulator = Mutex::new(CMatrix::zeros(n, n));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = CMatrix::zeros(n, n);
                let mut block = SampleBlock::empty();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= chunks.len() {
                        break;
                    }
                    let chunk = chunks[i];
                    stream_chunk(&coloring, covariance, chunk, config.seed, &mut block);
                    block.accumulate_covariance(&mut local);
                }
                let mut shared = accumulator.lock().unwrap();
                let merged = &*shared + &local;
                *shared = merged;
            });
        }
    });

    Ok(accumulator
        .into_inner()
        .unwrap()
        .scale_real(1.0 / total as f64))
}

/// Generates `blocks` real-time Doppler blocks in parallel (one block is one
/// full `M`-sample realization of all `N` envelopes) and concatenates them
/// per envelope. Block `i` always uses the RNG stream derived from
/// `(seed, i)`, so the result is thread-count invariant.
///
/// The eigendecomposition and Doppler filter are designed once on the
/// calling thread; each worker streams into its own pooled [`SampleBlock`]
/// through cheaply [reseeded](RealtimeGenerator::reseeded) copies.
/// [`ParallelConfig::chunk_size`] is not consulted — the unit of work here
/// is one full Doppler block.
///
/// # Errors
/// Configuration errors from the core crate.
pub fn generate_realtime_paths(
    base: &RealtimeConfig,
    blocks: usize,
    config: &ParallelConfig,
) -> Result<Vec<Vec<Complex64>>, ParallelError> {
    // Validate the configuration (and pay for the decomposition + filter
    // design) once up front so workers cannot fail; latch the kernel
    // backend before the pool spawns.
    let _ = corrfade_linalg::kernel::backend();
    let prototype = RealtimeGenerator::new(RealtimeConfig {
        covariance: base.covariance.clone(),
        ..*base
    })?;
    let n = prototype.dimension();

    let slots: Vec<Mutex<Vec<Vec<Complex64>>>> =
        (0..blocks).map(|_| Mutex::new(Vec::new())).collect();
    let next = AtomicUsize::new(0);
    let threads = config.effective_threads().min(blocks.max(1));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut block = SampleBlock::empty();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= blocks {
                        break;
                    }
                    let mut gen = prototype.reseeded(chunk_seed(base.seed, i));
                    gen.next_block_into(&mut block)
                        .expect("configuration validated above");
                    *slots[i].lock().unwrap() = block.to_paths();
                }
            });
        }
    });

    let mut paths: Vec<Vec<Complex64>> = vec![Vec::new(); n];
    for slot in slots {
        let block = slot.into_inner().unwrap();
        for (j, path) in block.into_iter().enumerate() {
            paths[j].extend(path);
        }
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_models::{paper_covariance_matrix_22, paper_covariance_matrix_23};
    use corrfade_stats::{relative_frobenius_error, sample_covariance};

    fn config(threads: usize, seed: u64) -> ParallelConfig {
        ParallelConfig {
            threads,
            chunk_size: 512,
            seed,
        }
    }

    #[test]
    fn effective_threads_resolution() {
        assert_eq!(config(3, 0).effective_threads(), 3);
        assert!(ParallelConfig::default().effective_threads() >= 1);
    }

    #[test]
    fn zero_chunk_size_is_a_typed_error() {
        let k = paper_covariance_matrix_22();
        let bad = ParallelConfig {
            chunk_size: 0,
            ..ParallelConfig::default()
        };
        assert_eq!(bad.validate(), Err(ParallelError::InvalidChunkSize));
        assert!(matches!(
            generate_snapshots(&k, 100, &bad),
            Err(ParallelError::InvalidChunkSize)
        ));
        assert!(matches!(
            monte_carlo_covariance(&k, 100, &bad),
            Err(ParallelError::InvalidChunkSize)
        ));
        // generate_realtime_paths partitions by block index, not chunk_size,
        // so it is unaffected by the zero chunk size.
        let base = RealtimeConfig {
            covariance: k,
            idft_size: 64,
            normalized_doppler: 0.1,
            sigma_orig_sq: 0.5,
            seed: 1,
        };
        assert!(generate_realtime_paths(&base, 1, &bad).is_ok());
    }

    #[test]
    fn snapshot_count_and_shape() {
        let k = paper_covariance_matrix_22();
        let snaps = generate_snapshots(&k, 1000, &config(2, 1)).unwrap();
        assert_eq!(snaps.len(), 1000);
        assert!(snaps.iter().all(|s| s.len() == 3));
    }

    #[test]
    fn result_is_thread_count_invariant() {
        let k = paper_covariance_matrix_23();
        let a = generate_snapshots(&k, 2000, &config(1, 7)).unwrap();
        let b = generate_snapshots(&k, 2000, &config(4, 7)).unwrap();
        assert_eq!(a, b, "ensemble must not depend on the worker count");
        let c = generate_snapshots(&k, 2000, &config(4, 8)).unwrap();
        assert_ne!(a, c, "different seeds must give different ensembles");
    }

    #[test]
    fn snapshots_match_the_sequential_generator_bit_for_bit() {
        // Chunk 0 of the parallel ensemble must equal a sequential generator
        // seeded with the same chunk seed — the streaming migration must not
        // change the produced values.
        let k = paper_covariance_matrix_22();
        let cfg = config(2, 13);
        let snaps = generate_snapshots(&k, 700, &cfg).unwrap();
        let mut gen =
            corrfade::CorrelatedRayleighGenerator::new(k, crate::partition::chunk_seed(13, 0))
                .unwrap();
        let sequential = gen.generate_snapshots(512);
        assert_eq!(&snaps[..512], &sequential[..]);
    }

    #[test]
    fn parallel_covariance_matches_desired_covariance() {
        let k = paper_covariance_matrix_22();
        let khat = monte_carlo_covariance(&k, 60_000, &config(4, 3)).unwrap();
        let err = relative_frobenius_error(&khat, &k);
        assert!(err < 0.03, "relative covariance error {err}");
    }

    #[test]
    fn streaming_covariance_agrees_with_materialized_snapshots() {
        let k = paper_covariance_matrix_23();
        let cfg = config(3, 11);
        let snaps = generate_snapshots(&k, 8192, &cfg).unwrap();
        let k_mat = sample_covariance(&snaps);
        let k_stream = monte_carlo_covariance(&k, 8192, &cfg).unwrap();
        assert!(k_mat.approx_eq(&k_stream, 1e-10));
    }

    #[test]
    fn realtime_paths_shape_and_covariance() {
        let k = paper_covariance_matrix_22();
        let base = RealtimeConfig {
            covariance: k.clone(),
            idft_size: 512,
            normalized_doppler: 0.05,
            sigma_orig_sq: 0.5,
            seed: 5,
        };
        let paths = generate_realtime_paths(&base, 24, &config(4, 5)).unwrap();
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.len() == 24 * 512));
        let khat = corrfade_stats::sample_covariance_from_paths(&paths);
        let err = relative_frobenius_error(&khat, &k);
        assert!(err < 0.12, "relative covariance error {err}");
    }

    #[test]
    fn realtime_paths_are_thread_count_invariant() {
        let k = paper_covariance_matrix_23();
        let base = RealtimeConfig {
            covariance: k,
            idft_size: 256,
            normalized_doppler: 0.1,
            sigma_orig_sq: 0.5,
            seed: 9,
        };
        let a = generate_realtime_paths(&base, 6, &config(1, 0)).unwrap();
        let b = generate_realtime_paths(&base, 6, &config(3, 0)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_covariance_is_reported() {
        let bad = CMatrix::zeros(2, 3);
        assert!(matches!(
            generate_snapshots(&bad, 100, &config(2, 0)),
            Err(ParallelError::Core(_))
        ));
        assert!(matches!(
            monte_carlo_covariance(&bad, 100, &config(2, 0)),
            Err(ParallelError::Core(_))
        ));
    }

    #[test]
    fn zero_total_yields_empty_ensemble() {
        let k = paper_covariance_matrix_22();
        let snaps = generate_snapshots(&k, 0, &config(2, 0)).unwrap();
        assert!(snaps.is_empty());
    }
}

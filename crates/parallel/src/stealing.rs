//! Work-stealing distribution of per-item jobs across pool executors.
//!
//! The first pooled engine distributed work through a single shared atomic
//! counter: correct and simple, but every claim of every executor hammered
//! one cache line, and an executor had no affinity — stream `i` of a fleet
//! landed on a different worker every advance, churning whatever state
//! (branch predictors, per-stream locks, the stream's own buffers) the
//! previous advance had warmed.
//!
//! [`StealQueues`] replaces the counter with the classic per-worker deque
//! scheme:
//!
//! * work item `i` is **dealt** round-robin into lane
//!   [`round_robin_lane`]`(i, lanes)` — a pure function of the item index
//!   and the lane count, so the *preferred* executor of an item is
//!   deterministic (affinity), while the output never depends on who
//!   actually runs it;
//! * each executor pops from the **front** of its own lane — uncontended in
//!   the common case — and only when its lane runs dry does it **steal
//!   from the back** of the other lanes, scanning them in a
//!   lane-relative order so thieves spread out instead of stampeding one
//!   victim;
//! * a skewed workload (fleet streams with very different `N` and `M`,
//!   chunks of different cost) therefore keeps every executor busy until
//!   the queues are globally empty: fast executors drain their own lane and
//!   then finish the stragglers' backlogs instead of idling at the epoch
//!   barrier.
//!
//! The deques are plain `Mutex<VecDeque<usize>>` lanes (std only — no
//! lock-free deque dependency); the mutexes are per-lane, held for a
//! single pop each, and the lanes are reusable in place:
//! [`StealQueues::reset`] refills warm capacity without allocating, which
//! keeps the fleet's steady-state advance allocation-free end to end.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::partition::round_robin_lane;

/// Per-executor work-stealing deques over item indices `0..items`. See the
/// [module docs](self).
#[derive(Debug, Default)]
pub struct StealQueues {
    lanes: Vec<Mutex<VecDeque<usize>>>,
    /// Lanes participating in the current round (`lanes` may retain more,
    /// warm, from earlier rounds with wider pools).
    active: usize,
}

impl StealQueues {
    /// Creates queues for `items` work indices dealt over `lanes` lanes
    /// (clamped to at least 1).
    #[must_use]
    pub fn new(items: usize, lanes: usize) -> Self {
        let mut queues = Self::default();
        queues.reset(items, lanes);
        queues
    }

    /// Re-deals indices `0..items` over `lanes` lanes (clamped to at least
    /// 1), reusing the existing deque storage: once every lane has grown to
    /// its steady-state capacity this performs **no heap allocation**.
    pub fn reset(&mut self, items: usize, lanes: usize) {
        let lanes = lanes.max(1);
        while self.lanes.len() < lanes {
            self.lanes.push(Mutex::new(VecDeque::new()));
        }
        self.active = lanes;
        for lane in &mut self.lanes {
            lane.get_mut().unwrap().clear();
        }
        for item in 0..items {
            self.lanes[round_robin_lane(item, lanes)]
                .get_mut()
                .unwrap()
                .push_back(item);
        }
    }

    /// Number of lanes participating in the current round.
    #[must_use]
    pub fn active_lanes(&self) -> usize {
        self.active
    }

    /// Claims the next work item for executor `lane`: the front of its own
    /// lane, or — once that is empty — an item stolen from the back of
    /// another lane. Returns `None` only when every lane is empty at the
    /// moment of the scan.
    ///
    /// Each item is claimed by exactly one caller; which caller claims it
    /// affects wall-clock only, never the produced values.
    pub fn pop(&self, lane: usize) -> Option<usize> {
        let active = self.active;
        let own = lane % active;
        if let Some(item) = lock_lane(&self.lanes[own]).pop_front() {
            return Some(item);
        }
        for offset in 1..active {
            let victim = (own + offset) % active;
            if let Some(item) = lock_lane(&self.lanes[victim]).pop_back() {
                return Some(item);
            }
        }
        None
    }

    /// Drains work for executor `lane`: runs `work` on every item claimed
    /// from its own lane or stolen from others, until all lanes are empty.
    pub fn for_each_claimed(&self, lane: usize, mut work: impl FnMut(usize)) {
        while let Some(item) = self.pop(lane) {
            work(item);
        }
    }
}

/// Locks one lane, recovering from poisoning: lane mutexes are only ever
/// held across a single `pop_front`/`pop_back`, so the deque is consistent
/// even if a claimant panicked elsewhere while holding it.
fn lock_lane(lane: &Mutex<VecDeque<usize>>) -> std::sync::MutexGuard<'_, VecDeque<usize>> {
    lane.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn deal_is_round_robin() {
        let queues = StealQueues::new(7, 3);
        assert_eq!(queues.active_lanes(), 3);
        // Lane 0 gets 0,3,6; lane 1 gets 1,4; lane 2 gets 2,5 — and each
        // executor pops its own lane front-first.
        assert_eq!(queues.pop(0), Some(0));
        assert_eq!(queues.pop(1), Some(1));
        assert_eq!(queues.pop(2), Some(2));
        assert_eq!(queues.pop(0), Some(3));
        assert_eq!(queues.pop(0), Some(6));
    }

    #[test]
    fn exhausted_lanes_steal_from_the_back() {
        let queues = StealQueues::new(4, 2);
        // Lane 1 holds [1, 3]; once lane 0 is drained it steals 3 (the
        // back of lane 1) rather than racing the owner for 1 (the front).
        assert_eq!(queues.pop(0), Some(0));
        assert_eq!(queues.pop(0), Some(2));
        assert_eq!(queues.pop(0), Some(3), "steal takes the victim's back");
        assert_eq!(queues.pop(1), Some(1));
        assert_eq!(queues.pop(0), None);
        assert_eq!(queues.pop(1), None);
    }

    #[test]
    fn every_item_is_claimed_exactly_once_under_contention() {
        const ITEMS: usize = 1000;
        const LANES: usize = 4;
        let queues = StealQueues::new(ITEMS, LANES);
        let claims: Vec<AtomicUsize> = (0..ITEMS).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|scope| {
            for lane in 0..LANES {
                let queues = &queues;
                let claims = &claims;
                scope.spawn(move || {
                    queues.for_each_claimed(lane, |item| {
                        claims[item].fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        for (item, count) in claims.iter().enumerate() {
            assert_eq!(count.load(Ordering::Relaxed), 1, "item {item}");
        }
    }

    #[test]
    fn reset_reuses_lanes_and_narrows_active_set() {
        let mut queues = StealQueues::new(8, 4);
        queues.for_each_claimed(0, |_| {});
        // Narrower re-deal: old lanes beyond the active set are ignored.
        queues.reset(5, 2);
        assert_eq!(queues.active_lanes(), 2);
        let mut seen = Vec::new();
        queues.for_each_claimed(7, |item| seen.push(item)); // lane id wraps
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_items_terminate_immediately() {
        let queues = StealQueues::new(0, 3);
        assert_eq!(queues.pop(0), None);
        let mut ran = false;
        queues.for_each_claimed(1, |_| ran = true);
        assert!(!ran);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = round_robin_lane(0, 0);
    }
}

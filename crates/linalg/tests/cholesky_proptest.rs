//! Property-based coverage of the Cholesky factorization:
//!
//! * round-trip `L·Lᴴ ≈ K` on random Hermitian positive-definite matrices
//!   of sizes 1..=8 (built as `G·Gᴴ + δ·I`, which is PD by construction),
//! * the factor is lower-triangular with positive real diagonal,
//! * non-PSD inputs (indefinite Hermitian matrices with a certified
//!   negative eigenvalue direction) are rejected with
//!   [`LinalgError::NotPositiveDefinite`].

use corrfade_linalg::{c64, cholesky, is_positive_definite, CMatrix, LinalgError};
use proptest::prelude::*;

/// Random Hermitian positive-definite matrix `G·Gᴴ + δ·I`.
fn hermitian_pd_matrix(max_n: usize) -> impl Strategy<Value = CMatrix> {
    (1..=max_n)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), n * n),
                0.01f64..1.0,
            )
        })
        .prop_map(|(n, entries, delta)| {
            let g = CMatrix::from_vec(
                n,
                n,
                entries.into_iter().map(|(re, im)| c64(re, im)).collect(),
            );
            let mut k = g.aat_adjoint();
            for i in 0..n {
                k[(i, i)] = k[(i, i)] + delta;
            }
            k
        })
}

/// Random Hermitian matrix that provably has a negative eigenvalue: start
/// from a PD matrix and subtract `(λmax-trace-bound + margin)·u·uᴴ` along a
/// unit direction — cheaper and more robust than rejection sampling.
fn hermitian_indefinite_matrix(max_n: usize) -> impl Strategy<Value = CMatrix> {
    hermitian_pd_matrix(max_n).prop_map(|k| {
        let n = k.rows();
        // trace(K) ≥ λmax for PD K, so shifting the first diagonal entry by
        // −(trace + 1) forces xᴴKx < 0 for x = e₀.
        let trace: f64 = (0..n).map(|i| k[(i, i)].re).sum();
        let mut bad = k;
        bad[(0, 0)] = bad[(0, 0)] - (trace + 1.0);
        bad
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `L·Lᴴ` reconstructs the input within a scale-relative tolerance.
    #[test]
    fn round_trip_on_psd_matrices(k in hermitian_pd_matrix(8)) {
        let l = cholesky(&k).expect("PD matrix must factor");
        let rec = l.aat_adjoint();
        let tol = 1e-11 * k.frobenius_norm().max(1.0);
        prop_assert!(
            rec.approx_eq(&k, tol),
            "‖L·Lᴴ − K‖∞ = {} for n = {}",
            rec.max_abs_diff(&k),
            k.rows()
        );
    }

    /// The factor is lower-triangular with strictly positive real diagonal.
    #[test]
    fn factor_is_lower_triangular(k in hermitian_pd_matrix(6)) {
        let l = cholesky(&k).unwrap();
        let n = l.rows();
        for i in 0..n {
            prop_assert!(l[(i, i)].re > 0.0, "diagonal pivot {i} not positive");
            prop_assert!(l[(i, i)].im.abs() < 1e-14, "diagonal pivot {i} not real");
            for j in (i + 1)..n {
                prop_assert!(l[(i, j)].abs() == 0.0, "upper triangle not zero at ({i},{j})");
            }
        }
    }

    /// Indefinite Hermitian matrices are rejected, never silently factored.
    #[test]
    fn non_psd_matrices_are_rejected(k in hermitian_indefinite_matrix(6)) {
        prop_assert!(!is_positive_definite(&k));
        match cholesky(&k) {
            Err(LinalgError::NotPositiveDefinite { .. }) => {}
            Err(other) => prop_assert!(false, "wrong error kind: {other:?}"),
            Ok(_) => prop_assert!(false, "indefinite matrix must not factor"),
        }
    }
}

/// A deterministic non-PSD rejection case on top of the random ones: the
/// classic indefinite matrix [[1, 2], [2, 1]] with eigenvalues {3, −1}.
#[test]
fn known_indefinite_matrix_is_rejected() {
    let k = CMatrix::from_rows(&[
        vec![c64(1.0, 0.0), c64(2.0, 0.0)],
        vec![c64(2.0, 0.0), c64(1.0, 0.0)],
    ]);
    assert!(!is_positive_definite(&k));
    assert!(matches!(
        cholesky(&k),
        Err(LinalgError::NotPositiveDefinite { pivot: 1, .. })
    ));
}

//! Concurrency stress tests for the sharded [`FactorCache`]: many threads
//! hammering duplicate keys must still compute every key **exactly once**,
//! and the hit/miss/eviction counters must stay consistent with the number
//! of stored entries.
//!
//! These tests exist because the cache's miss path runs the factorization
//! with *no lock held* (leader/waiter election through per-key in-flight
//! markers) — precisely the design that could double-compute or strand
//! waiters if the election were racy.

use std::convert::Infallible;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use corrfade_linalg::{c64, CMatrix, FactorCache, MatrixKey};

fn mat(seed: f64) -> CMatrix {
    CMatrix::from_fn(3, 3, |i, j| c64(seed + i as f64 * 0.25, j as f64 - seed))
}

#[test]
fn duplicate_keys_under_contention_compute_exactly_once() {
    const THREADS: usize = 8;
    const KEYS: usize = 4;
    const ROUNDS: usize = 25;

    static CACHE: FactorCache<f64> = FactorCache::new(64);
    let computed: Vec<AtomicUsize> = (0..KEYS).map(|_| AtomicUsize::new(0)).collect();
    let barrier = Barrier::new(THREADS);
    let lookups = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let computed = &computed;
            let barrier = &barrier;
            let lookups = &lookups;
            scope.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    // Every thread walks the keys in a different order so
                    // leaders and waiters mix across rounds.
                    for k in 0..KEYS {
                        let key = (t + round + k) % KEYS;
                        let value = CACHE
                            .get_or_try_insert_with(MatrixKey::of(&mat(key as f64)), || {
                                computed[key].fetch_add(1, Ordering::SeqCst);
                                // Widen the in-flight window: a racy
                                // election would double-compute here.
                                std::thread::sleep(Duration::from_millis(2));
                                Ok::<_, Infallible>(key as f64 + 0.5)
                            })
                            .unwrap();
                        assert_eq!(*value, key as f64 + 0.5, "wrong value for key {key}");
                        lookups.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    for (key, count) in computed.iter().enumerate() {
        assert_eq!(
            count.load(Ordering::SeqCst),
            1,
            "key {key} must be computed exactly once despite {THREADS} \
             threads racing it"
        );
    }

    // Counter consistency: every lookup is either a hit or a miss, misses
    // equal the distinct keys (nothing was evicted at this capacity), and
    // the stored entries match.
    let stats = CACHE.stats();
    let total = lookups.load(Ordering::Relaxed) as u64;
    assert_eq!(total, (THREADS * ROUNDS * KEYS) as u64);
    assert_eq!(stats.hits + stats.misses, total);
    assert_eq!(stats.misses, KEYS as u64);
    assert_eq!(stats.evictions, 0);
    assert_eq!(stats.entries, KEYS);
}

#[test]
fn contended_eviction_keeps_counters_consistent_with_entries() {
    // A cache far smaller than the working set, hammered from many
    // threads: the bound must hold and the counters must balance —
    // every computed value is either still stored or was evicted.
    const THREADS: usize = 6;
    const KEYS: usize = 24;
    static SMALL: FactorCache<usize> = FactorCache::new(8);

    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for round in 0..3 {
                    for k in 0..KEYS {
                        let key = (k + t + round) % KEYS;
                        let v = SMALL
                            .get_or_try_insert_with(MatrixKey::of(&mat(key as f64)), || {
                                Ok::<_, Infallible>(key)
                            })
                            .unwrap();
                        assert_eq!(*v, key);
                    }
                }
            });
        }
    });

    let stats = SMALL.stats();
    assert!(
        stats.entries <= 8,
        "capacity bound violated under contention: {stats:?}"
    );
    assert_eq!(
        stats.entries as u64 + stats.evictions,
        stats.misses,
        "every miss must be stored or evicted exactly once: {stats:?}"
    );
    assert!(stats.misses >= KEYS as u64, "each key missed at least once");
}

#[test]
fn waiters_recover_when_the_leader_fails() {
    // One thread's computation fails; concurrent waiters for the same key
    // must neither hang nor observe the failure — they retry and succeed.
    let cache: Arc<FactorCache<f64>> = Arc::new(FactorCache::new(8));
    let failures = Arc::new(AtomicUsize::new(0));
    let successes = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(4));

    std::thread::scope(|scope| {
        for t in 0..4usize {
            let cache = Arc::clone(&cache);
            let failures = Arc::clone(&failures);
            let successes = Arc::clone(&successes);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                let result = cache.get_or_try_insert_with(MatrixKey::of(&mat(7.0)), || {
                    std::thread::sleep(Duration::from_millis(1));
                    if t == 0 {
                        Err("leader failed")
                    } else {
                        Ok(7.5)
                    }
                });
                match result {
                    Ok(v) => {
                        assert_eq!(*v, 7.5);
                        successes.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(e) => {
                        assert_eq!(e, "leader failed");
                        failures.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
    });

    assert_eq!(
        failures.load(Ordering::SeqCst) + successes.load(Ordering::SeqCst),
        4,
        "no thread may hang on a failed leader"
    );
    // At most thread 0 saw the error; everyone else got the value.
    assert!(failures.load(Ordering::SeqCst) <= 1);
    assert!(successes.load(Ordering::SeqCst) >= 3);
}

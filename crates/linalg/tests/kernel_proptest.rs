//! Property-based scalar-vs-vector kernel equivalence.
//!
//! The vector backend is free to reorder summations and fuse
//! multiplications, but every kernel must stay within ≤ 1e-12 of the scalar
//! reference for unit-scale data — across random dimensions, explicitly
//! including lengths that are *not* multiples of the 4-lane width (tails)
//! and degenerate 1×1 shapes.

use corrfade_linalg::kernel::{
    accumulate_covariance_with, color_block_with, envelope_into_with, matvec_into_with,
};
use corrfade_linalg::{c64, Backend, Complex64};
use proptest::prelude::*;

/// Random complex vector with entries in the unit box.
fn cvec(len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), len)
        .prop_map(|v| v.into_iter().map(|(re, im)| c64(re, im)).collect())
}

/// Random `(n, m)` block shape: small envelope counts, sample counts that
/// straddle the lane width and the cache-tile boundary.
fn shape() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=9, 1usize..=600)
}

fn max_abs_diff(a: &[Complex64], b: &[Complex64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The coloring matvec agrees between backends on every shape,
    /// including row lengths that are not multiples of the lane width.
    #[test]
    fn matvec_scalar_vs_vector(
        dims in (1usize..=17, 1usize..=19),
        entries in cvec(17 * 19),
        xs in cvec(19),
    ) {
        let (rows, cols) = dims;
        let a = &entries[..rows * cols];
        let x = &xs[..cols];
        let mut ys = vec![Complex64::ZERO; rows];
        let mut yv = vec![Complex64::ZERO; rows];
        matvec_into_with(Backend::Scalar, rows, cols, a, x, &mut ys);
        matvec_into_with(Backend::Vector, rows, cols, a, x, &mut yv);
        let diff = max_abs_diff(&ys, &yv);
        prop_assert!(diff <= 1e-12, "rows={rows} cols={cols}: diff {diff}");
    }

    /// The blocked coloring kernel agrees with the historical per-instant
    /// scalar loop for every `(N, M)` shape and scale.
    #[test]
    fn color_block_scalar_vs_vector(
        dims in shape(),
        a in cvec(81),
        scale in 0.1f64..3.0,
    ) {
        let (n, m) = dims;
        let a = &a[..n * n];
        let raw: Vec<Complex64> = (0..n * m)
            .map(|i| c64((0.37 * i as f64).sin(), 0.5 * (0.71 * i as f64).cos()))
            .collect();
        let mut outs = vec![Complex64::ZERO; n * m];
        let mut outv = vec![Complex64::ZERO; n * m];
        let mut w = Vec::new();
        let mut planes = Vec::new();
        color_block_with(Backend::Scalar, n, m, a, scale, &raw, &mut outs, &mut w, &mut planes);
        color_block_with(Backend::Vector, n, m, a, scale, &raw, &mut outv, &mut w, &mut planes);
        let diff = max_abs_diff(&outs, &outv);
        prop_assert!(diff <= 1e-12, "n={n} m={m}: diff {diff}");
    }

    /// The covariance fold agrees between backends within an `M`-scaled
    /// tolerance and both preserve an arbitrary pre-seeded accumulator.
    #[test]
    fn accumulate_covariance_scalar_vs_vector(dims in shape(), bias in -1.0f64..1.0) {
        let (n, m) = dims;
        let data: Vec<Complex64> = (0..n * m)
            .map(|i| c64((0.13 * i as f64).cos(), (0.29 * i as f64).sin()))
            .collect();
        let seed = c64(bias, -bias);
        let mut accs = vec![seed; n * n];
        let mut accv = vec![seed; n * n];
        accumulate_covariance_with(Backend::Scalar, n, m, &data, &mut accs);
        accumulate_covariance_with(Backend::Vector, n, m, &data, &mut accv);
        let tol = 1e-12 * (m as f64).max(1.0);
        let diff = max_abs_diff(&accs, &accv);
        prop_assert!(diff <= tol, "n={n} m={m}: diff {diff} (tol {tol})");
    }

    /// The envelope pass agrees between `hypot` and `√(re²+im²)`.
    #[test]
    fn envelope_scalar_vs_vector(data in cvec(137)) {
        let mut es = vec![0.0; data.len()];
        let mut ev = vec![0.0; data.len()];
        envelope_into_with(Backend::Scalar, &data, &mut es);
        envelope_into_with(Backend::Vector, &data, &mut ev);
        for (i, (s, v)) in es.iter().zip(ev.iter()).enumerate() {
            prop_assert!((s - v).abs() <= 1e-12, "index {i}: {s} vs {v}");
        }
    }
}

//! Property-based scalar-vs-vector kernel equivalence.
//!
//! The vector backend is free to reorder summations and fuse
//! multiplications, but every kernel must stay within ≤ 1e-12 of the scalar
//! reference for unit-scale data — across random dimensions, explicitly
//! including lengths that are *not* multiples of the 4-lane width (tails)
//! and degenerate 1×1 shapes.
//!
//! The f32 fast tier carries two further contracts, pinned here across the
//! same random shapes (which are not multiples of the 8-lane f32 width
//! either): narrowed inputs through the f32 kernels stay within the
//! documented 1e-3 absolute bound of the f64 reference for unit-scale data,
//! and the fused coloring+IDFT kernel is **bit-identical** to the two-pass
//! `ifft` + `color_block` composition in f64 on both backends.

use corrfade_linalg::kernel::{
    accumulate_covariance_with, color_block_f32_with, color_block_with, envelope_into_f32_with,
    envelope_into_with, matvec_into_f32_with, matvec_into_with,
};
use corrfade_linalg::{c64, Backend, Complex32, Complex64};
use proptest::prelude::*;

/// Random complex vector with entries in the unit box.
fn cvec(len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), len)
        .prop_map(|v| v.into_iter().map(|(re, im)| c64(re, im)).collect())
}

fn narrow(v: &[Complex64]) -> Vec<Complex32> {
    v.iter().map(|&z| Complex32::narrow(z)).collect()
}

/// Random `(n, m)` block shape: small envelope counts, sample counts that
/// straddle the lane width and the cache-tile boundary.
fn shape() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=9, 1usize..=600)
}

fn max_abs_diff(a: &[Complex64], b: &[Complex64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The coloring matvec agrees between backends on every shape,
    /// including row lengths that are not multiples of the lane width.
    #[test]
    fn matvec_scalar_vs_vector(
        dims in (1usize..=17, 1usize..=19),
        entries in cvec(17 * 19),
        xs in cvec(19),
    ) {
        let (rows, cols) = dims;
        let a = &entries[..rows * cols];
        let x = &xs[..cols];
        let mut ys = vec![Complex64::ZERO; rows];
        let mut yv = vec![Complex64::ZERO; rows];
        matvec_into_with(Backend::Scalar, rows, cols, a, x, &mut ys);
        matvec_into_with(Backend::Vector, rows, cols, a, x, &mut yv);
        let diff = max_abs_diff(&ys, &yv);
        prop_assert!(diff <= 1e-12, "rows={rows} cols={cols}: diff {diff}");
    }

    /// The blocked coloring kernel agrees with the historical per-instant
    /// scalar loop for every `(N, M)` shape and scale.
    #[test]
    fn color_block_scalar_vs_vector(
        dims in shape(),
        a in cvec(81),
        scale in 0.1f64..3.0,
    ) {
        let (n, m) = dims;
        let a = &a[..n * n];
        let raw: Vec<Complex64> = (0..n * m)
            .map(|i| c64((0.37 * i as f64).sin(), 0.5 * (0.71 * i as f64).cos()))
            .collect();
        let mut outs = vec![Complex64::ZERO; n * m];
        let mut outv = vec![Complex64::ZERO; n * m];
        let mut w = Vec::new();
        let mut planes = Vec::new();
        color_block_with(Backend::Scalar, n, m, a, scale, &raw, &mut outs, &mut w, &mut planes);
        color_block_with(Backend::Vector, n, m, a, scale, &raw, &mut outv, &mut w, &mut planes);
        let diff = max_abs_diff(&outs, &outv);
        prop_assert!(diff <= 1e-12, "n={n} m={m}: diff {diff}");
    }

    /// The covariance fold agrees between backends within an `M`-scaled
    /// tolerance and both preserve an arbitrary pre-seeded accumulator.
    #[test]
    fn accumulate_covariance_scalar_vs_vector(dims in shape(), bias in -1.0f64..1.0) {
        let (n, m) = dims;
        let data: Vec<Complex64> = (0..n * m)
            .map(|i| c64((0.13 * i as f64).cos(), (0.29 * i as f64).sin()))
            .collect();
        let seed = c64(bias, -bias);
        let mut accs = vec![seed; n * n];
        let mut accv = vec![seed; n * n];
        accumulate_covariance_with(Backend::Scalar, n, m, &data, &mut accs);
        accumulate_covariance_with(Backend::Vector, n, m, &data, &mut accv);
        let tol = 1e-12 * (m as f64).max(1.0);
        let diff = max_abs_diff(&accs, &accv);
        prop_assert!(diff <= tol, "n={n} m={m}: diff {diff} (tol {tol})");
    }

    /// The envelope pass agrees between `hypot` and `√(re²+im²)`.
    #[test]
    fn envelope_scalar_vs_vector(data in cvec(137)) {
        let mut es = vec![0.0; data.len()];
        let mut ev = vec![0.0; data.len()];
        envelope_into_with(Backend::Scalar, &data, &mut es);
        envelope_into_with(Backend::Vector, &data, &mut ev);
        for (i, (s, v)) in es.iter().zip(ev.iter()).enumerate() {
            prop_assert!((s - v).abs() <= 1e-12, "index {i}: {s} vs {v}");
        }
    }

    /// The f32 matvec tracks the f64 reference within the documented
    /// fast-tier bound on both backends, across row lengths that are not
    /// multiples of either lane width.
    #[test]
    fn matvec_f32_tracks_f64_within_tier_bound(
        dims in (1usize..=17, 1usize..=19),
        entries in cvec(17 * 19),
        xs in cvec(19),
    ) {
        let (rows, cols) = dims;
        let a = &entries[..rows * cols];
        let x = &xs[..cols];
        let mut reference = vec![Complex64::ZERO; rows];
        matvec_into_with(Backend::Scalar, rows, cols, a, x, &mut reference);
        let (a32, x32) = (narrow(a), narrow(x));
        for b in [Backend::Scalar, Backend::Vector] {
            let mut y32 = vec![Complex32::ZERO; rows];
            matvec_into_f32_with(b, rows, cols, &a32, &x32, &mut y32);
            for (i, (r, h)) in reference.iter().zip(y32.iter()).enumerate() {
                let d = (*r - h.widen()).abs();
                prop_assert!(
                    d <= 1e-3,
                    "{b:?} rows={rows} cols={cols} index {i}: |Δ| = {d:e}"
                );
            }
        }
    }

    /// The f32 blocked coloring kernel tracks the f64 reference within the
    /// tier bound for every `(N, M)` shape and scale, on both backends.
    #[test]
    fn color_block_f32_tracks_f64_within_tier_bound(
        dims in shape(),
        a in cvec(81),
        scale in 0.1f64..3.0,
    ) {
        let (n, m) = dims;
        let a = &a[..n * n];
        let raw: Vec<Complex64> = (0..n * m)
            .map(|i| c64((0.37 * i as f64).sin(), 0.5 * (0.71 * i as f64).cos()))
            .collect();
        let mut reference = vec![Complex64::ZERO; n * m];
        let (mut w, mut planes) = (Vec::new(), Vec::new());
        color_block_with(
            Backend::Scalar, n, m, a, scale, &raw, &mut reference, &mut w, &mut planes,
        );
        let (a32, raw32) = (narrow(a), narrow(&raw));
        for b in [Backend::Scalar, Backend::Vector] {
            let mut out32 = vec![Complex32::ZERO; n * m];
            let (mut w32, mut planes32) = (Vec::new(), Vec::new());
            color_block_f32_with(
                b, n, m, &a32, scale as f32, &raw32, &mut out32, &mut w32, &mut planes32,
            );
            for (i, (r, h)) in reference.iter().zip(out32.iter()).enumerate() {
                let d = (*r - h.widen()).abs();
                prop_assert!(d <= 1e-3, "{b:?} n={n} m={m} index {i}: |Δ| = {d:e}");
            }
        }
    }

    /// The f32 envelope pass computes `|z|` in f64 and narrows, so both
    /// backends are bit-identical and within one f32 ULP-narrowing of the
    /// f64 envelope of the same narrowed samples.
    #[test]
    fn envelope_f32_is_the_narrowed_f64_envelope(data in cvec(137)) {
        let data32 = narrow(&data);
        let mut es = vec![0.0f32; data.len()];
        let mut ev = vec![0.0f32; data.len()];
        envelope_into_f32_with(Backend::Scalar, &data32, &mut es);
        envelope_into_f32_with(Backend::Vector, &data32, &mut ev);
        prop_assert_eq!(&es, &ev, "f32 envelope must be backend-invariant");
        for (i, (z, e)) in data32.iter().zip(es.iter()).enumerate() {
            prop_assert_eq!(
                *e,
                z.widen().abs() as f32,
                "index {} is not the narrowed f64 magnitude", i
            );
        }
    }
}

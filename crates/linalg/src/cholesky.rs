//! Cholesky factorization `A = L·Lᴴ` of Hermitian positive-definite matrices.
//!
//! The conventional correlated-Rayleigh generators reviewed in Sec. 1 of the
//! paper (refs \[3\]–\[6\]) all obtain their coloring matrix from a Cholesky
//! factorization, which is exactly why they require the covariance matrix to
//! be positive **definite** and why they trip over round-off for matrices
//! with eigenvalues at or near zero. We implement the factorization here so
//! the baseline methods can be reproduced faithfully and so the benchmark
//! suite can compare its failure behaviour against the eigendecomposition
//! coloring used by the proposed algorithm.

use crate::complex::Complex64;
use crate::error::LinalgError;
use crate::matrix::{CMatrix, RMatrix};

/// Computes the lower-triangular Cholesky factor `L` with `L·Lᴴ = A` of a
/// Hermitian positive-definite matrix.
///
/// `pivot_tol` guards the diagonal pivots: a pivot smaller than
/// `pivot_tol · max_diag` is treated as a failure. Pass `0.0` to accept any
/// strictly positive pivot (MATLAB-`chol`-like behaviour).
///
/// # Errors
/// * [`LinalgError::NotSquare`] for non-square input.
/// * [`LinalgError::NotHermitian`] if the matrix is visibly non-Hermitian.
/// * [`LinalgError::NotPositiveDefinite`] when a pivot is non-positive (the
///   matrix is indefinite, semi-definite, or round-off pushed a tiny
///   eigenvalue below zero).
pub fn cholesky_with_tol(a: &CMatrix, pivot_tol: f64) -> Result<CMatrix, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let scale = a.max_abs().max(1.0);
    let herm_dev = a.max_abs_diff(&a.adjoint());
    if herm_dev > 1e-9 * scale {
        return Err(LinalgError::NotHermitian {
            deviation: herm_dev,
        });
    }

    let max_diag = (0..n).map(|i| a[(i, i)].re).fold(0.0f64, f64::max).max(1.0);
    let threshold = pivot_tol * max_diag;

    let mut l = CMatrix::zeros(n, n);
    for j in 0..n {
        // Diagonal entry.
        let mut sum = a[(j, j)].re;
        for k in 0..j {
            sum -= l[(j, k)].norm_sqr();
        }
        if sum <= threshold || sum.is_nan() {
            return Err(LinalgError::NotPositiveDefinite {
                pivot: j,
                value: sum,
            });
        }
        let ljj = sum.sqrt();
        l[(j, j)] = Complex64::from_real(ljj);

        // Column below the diagonal.
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)].conj();
            }
            l[(i, j)] = s.unscale(ljj);
        }
    }
    Ok(l)
}

/// Cholesky factorization with a zero pivot tolerance (any strictly positive
/// pivot is accepted). See [`cholesky_with_tol`].
pub fn cholesky(a: &CMatrix) -> Result<CMatrix, LinalgError> {
    cholesky_with_tol(a, 0.0)
}

/// Cholesky factorization `A = L·Lᵀ` of a real symmetric positive-definite
/// matrix. Used by the Salz–Winters-style baselines that color `2N` real
/// Gaussian variables.
///
/// # Errors
/// Same failure modes as [`cholesky_with_tol`].
pub fn cholesky_real(a: &RMatrix) -> Result<RMatrix, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let scale = a
        .as_slice()
        .iter()
        .fold(0.0f64, |acc, &x| acc.max(x.abs()))
        .max(1.0);
    let sym_dev = a.max_abs_diff(&a.transpose());
    if sym_dev > 1e-9 * scale {
        return Err(LinalgError::NotHermitian { deviation: sym_dev });
    }

    let mut l = RMatrix::zeros(n, n);
    for j in 0..n {
        let mut sum = a[(j, j)];
        for k in 0..j {
            sum -= l[(j, k)] * l[(j, k)];
        }
        if sum <= 0.0 || sum.is_nan() {
            return Err(LinalgError::NotPositiveDefinite {
                pivot: j,
                value: sum,
            });
        }
        let ljj = sum.sqrt();
        l[(j, j)] = ljj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / ljj;
        }
    }
    Ok(l)
}

/// `true` when a Hermitian matrix is positive definite, decided by attempting
/// a Cholesky factorization (the cheapest reliable test).
pub fn is_positive_definite(a: &CMatrix) -> bool {
    cholesky(a).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn paper_matrix_22() -> CMatrix {
        CMatrix::from_rows(&[
            vec![c64(1.0, 0.0), c64(0.3782, 0.4753), c64(0.0878, 0.2207)],
            vec![c64(0.3782, -0.4753), c64(1.0, 0.0), c64(0.3063, 0.3849)],
            vec![c64(0.0878, -0.2207), c64(0.3063, -0.3849), c64(1.0, 0.0)],
        ])
    }

    fn paper_matrix_23() -> CMatrix {
        CMatrix::from_real_slice(
            3,
            3,
            &[
                1.0, 0.8123, 0.3730, 0.8123, 1.0, 0.8123, 0.3730, 0.8123, 1.0,
            ],
        )
    }

    #[test]
    fn identity_factors_to_identity() {
        let l = cholesky(&CMatrix::identity(4)).unwrap();
        assert!(l.approx_eq(&CMatrix::identity(4), 1e-14));
    }

    #[test]
    fn factor_reconstructs_paper_matrices() {
        for a in [paper_matrix_22(), paper_matrix_23()] {
            let l = cholesky(&a).unwrap();
            assert!(l.aat_adjoint().approx_eq(&a, 1e-12), "LL^H must equal A");
            // Lower triangular with positive real diagonal.
            for i in 0..3 {
                assert!(l[(i, i)].re > 0.0);
                assert!(l[(i, i)].im.abs() < 1e-15);
                for j in (i + 1)..3 {
                    assert_eq!(l[(i, j)], Complex64::ZERO);
                }
            }
        }
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = CMatrix::from_real_slice(2, 2, &[1.0, 2.0, 2.0, 1.0]);
        match cholesky(&a) {
            Err(LinalgError::NotPositiveDefinite { pivot, value }) => {
                assert_eq!(pivot, 1);
                assert!(value <= 0.0);
            }
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
        assert!(!is_positive_definite(&a));
    }

    #[test]
    fn semidefinite_matrix_rejected() {
        // Rank-1 matrix: second pivot is exactly zero.
        let a = CMatrix::from_real_slice(2, 2, &[1.0, 1.0, 1.0, 1.0]);
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn pivot_tolerance_rejects_near_singular() {
        // Positive definite but with a tiny second eigenvalue.
        let eps = 1e-13;
        let a = CMatrix::from_real_slice(2, 2, &[1.0, 1.0 - eps, 1.0 - eps, 1.0]);
        assert!(cholesky(&a).is_ok());
        assert!(matches!(
            cholesky_with_tol(&a, 1e-10),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn non_square_and_non_hermitian_rejected() {
        assert!(matches!(
            cholesky(&CMatrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        let a = CMatrix::from_rows(&[
            vec![c64(1.0, 0.0), c64(1.0, 0.0)],
            vec![c64(0.0, 0.0), c64(1.0, 0.0)],
        ]);
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotHermitian { .. })
        ));
    }

    #[test]
    fn real_cholesky_matches_complex_on_real_input() {
        let vals = [4.0, 1.2, 0.5, 1.2, 3.0, 0.7, 0.5, 0.7, 2.0];
        let r = RMatrix::from_vec(3, 3, vals.to_vec());
        let c = CMatrix::from_real_slice(3, 3, &vals);
        let lr = cholesky_real(&r).unwrap();
        let lc = cholesky(&c).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((lr[(i, j)] - lc[(i, j)].re).abs() < 1e-12);
                assert!(lc[(i, j)].im.abs() < 1e-12);
            }
        }
        // L L^T = A
        let llt = lr.matmul(&lr.transpose());
        assert!(llt.approx_eq(&r, 1e-12));
    }

    #[test]
    fn real_cholesky_rejects_indefinite() {
        let a = RMatrix::from_vec(2, 2, vec![1.0, 3.0, 3.0, 1.0]);
        assert!(matches!(
            cholesky_real(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        let b = RMatrix::from_vec(2, 2, vec![1.0, 0.5, 0.4, 1.0]);
        assert!(matches!(
            cholesky_real(&b),
            Err(LinalgError::NotHermitian { .. })
        ));
        assert!(matches!(
            cholesky_real(&RMatrix::zeros(1, 2)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn complex_covariance_with_strong_imaginary_part() {
        // Hermitian PD matrix whose off-diagonal covariances are essentially
        // imaginary — the case ref. [5] cannot represent (it forces real
        // covariances).
        let a = CMatrix::from_rows(&[
            vec![c64(1.0, 0.0), c64(0.05, 0.7)],
            vec![c64(0.05, -0.7), c64(1.0, 0.0)],
        ]);
        let l = cholesky(&a).unwrap();
        assert!(l.aat_adjoint().approx_eq(&a, 1e-12));
    }
}

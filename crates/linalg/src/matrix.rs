//! Dense, row-major complex matrices.
//!
//! [`CMatrix`] is deliberately small and self-contained: the covariance
//! matrices handled by the fading generator are `N × N` with `N` rarely
//! larger than a few dozen (number of sub-carriers or antennas), so a simple
//! `Vec<Complex64>`-backed dense type with straightforward `O(N³)` kernels is
//! both adequate and easy to audit. The hot path of the generator (the
//! per-sample coloring `Z = L·W/σ_g`) only uses [`CMatrix::matvec`], which is
//! cache-friendly on the row-major layout.

use core::fmt;
use core::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::complex::{c64, Complex64};
use crate::vector;

/// A dense, row-major matrix of [`Complex64`] entries.
#[derive(Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Creates a matrix from a closure evaluated at every `(row, col)` pair.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "CMatrix::from_vec: expected {} elements, got {}",
            rows * cols,
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested row slices.
    ///
    /// # Panics
    /// Panics if rows are ragged or empty.
    pub fn from_rows(rows: &[Vec<Complex64>]) -> Self {
        assert!(!rows.is_empty(), "CMatrix::from_rows: no rows");
        let cols = rows[0].len();
        assert!(cols > 0, "CMatrix::from_rows: empty rows");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "CMatrix::from_rows: row {i} has ragged length"
            );
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from a row-major slice of real numbers (imaginary
    /// parts are zero).
    pub fn from_real_slice(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "CMatrix::from_real_slice: expected {} elements, got {}",
            rows * cols,
            data.len()
        );
        Self {
            rows,
            cols,
            data: data.iter().map(|&x| Complex64::from_real(x)).collect(),
        }
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[Complex64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a square diagonal matrix from real diagonal entries.
    pub fn from_real_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = Complex64::from_real(d);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` for square matrices.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable access to the row-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable access to the row-major backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Bounds-checked element access returning `None` when out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Option<Complex64> {
        if i < self.rows && j < self.cols {
            Some(self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Sets element `(i, j)`.
    ///
    /// # Panics
    /// Panics when the indices are out of range.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: Complex64) {
        self[(i, j)] = value;
    }

    /// A copy of row `i`.
    pub fn row(&self, i: usize) -> Vec<Complex64> {
        assert!(
            i < self.rows,
            "row index {i} out of range (rows = {})",
            self.rows
        );
        self.data[i * self.cols..(i + 1) * self.cols].to_vec()
    }

    /// A borrowed view of row `i`.
    pub fn row_slice(&self, i: usize) -> &[Complex64] {
        assert!(
            i < self.rows,
            "row index {i} out of range (rows = {})",
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<Complex64> {
        assert!(
            j < self.cols,
            "col index {j} out of range (cols = {})",
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The main diagonal.
    pub fn diag(&self) -> Vec<Complex64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Conjugate (Hermitian) transpose `Aᴴ`.
    pub fn adjoint(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Element-wise conjugate.
    pub fn conj(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Matrix of the real parts.
    pub fn real(&self) -> RMatrix {
        RMatrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)].re)
    }

    /// Matrix of the imaginary parts.
    pub fn imag(&self) -> RMatrix {
        RMatrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)].im)
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, alpha: Complex64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * alpha).collect(),
        }
    }

    /// Scales every entry by a real factor.
    pub fn scale_real(&self, alpha: f64) -> Self {
        self.scale(Complex64::from_real(alpha))
    }

    /// Matrix–vector product `A·x`. Allocating wrapper over
    /// [`CMatrix::matvec_into`] — both go through the same
    /// [`crate::kernel`] backend, so the two entry points stay bit-identical
    /// to each other on every backend.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[Complex64]) -> Vec<Complex64> {
        let mut y = vec![Complex64::ZERO; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix–vector product `A·x` written into a caller-owned buffer — the
    /// allocation-free primitive behind the streaming `Z = L·W/σ_g` hot
    /// path. Dispatches through [`crate::kernel`]: the scalar backend is
    /// the historical per-row [`vector::dot`] fold (bit-exact), the vector
    /// backend a multi-lane reduction within ≤ 1e-12 of it.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn matvec_into(&self, x: &[Complex64], y: &mut [Complex64]) {
        assert_eq!(
            x.len(),
            self.cols,
            "matvec_into: vector length {} does not match cols {}",
            x.len(),
            self.cols
        );
        assert_eq!(
            y.len(),
            self.rows,
            "matvec_into: output length {} does not match rows {}",
            y.len(),
            self.rows
        );
        crate::kernel::matvec_into(self.rows, self.cols, &self.data, x, y);
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions do not match ({}×{} · {}×{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Self::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop walking contiguous memory of
        // both `other` and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == Complex64::ZERO {
                    continue;
                }
                let other_row = other.row_slice(k);
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(other_row.iter()) {
                    *o = aik.mul_add(b, *o);
                }
            }
        }
        out
    }

    /// `A·Aᴴ` — the Gram matrix of the rows. This is exactly what the
    /// coloring-matrix verification `L·Lᴴ = K` needs.
    pub fn aat_adjoint(&self) -> Self {
        self.matmul(&self.adjoint())
    }

    /// Frobenius norm `‖A‖_F = √(Σ |aᵢⱼ|²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Maximum modulus over all entries.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Maximum entry-wise modulus of `self − other`.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        vector::max_abs_diff(&self.data, &other.data)
    }

    /// Frobenius norm of `self − other`, the matrix-approximation metric the
    /// paper uses ("from Frobenius point of view").
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn frobenius_distance(&self, other: &Self) -> f64 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "frobenius_distance: shape mismatch"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex64 {
        assert!(self.is_square(), "trace: matrix must be square");
        self.diag().iter().sum()
    }

    /// `true` when `‖A − Aᴴ‖_max ≤ tol`, i.e. the matrix is Hermitian up to
    /// the given tolerance.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            if self[(i, i)].im.abs() > tol {
                return false;
            }
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)].conj()).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Symmetrizes in place: `A ← (A + Aᴴ)/2`. Useful for cleaning up
    /// round-off before a decomposition.
    pub fn hermitianize(&mut self) {
        assert!(self.is_square(), "hermitianize: matrix must be square");
        for i in 0..self.rows {
            let d = self[(i, i)];
            self[(i, i)] = Complex64::from_real(d.re);
            for j in (i + 1)..self.cols {
                let avg = (self[(i, j)] + self[(j, i)].conj()).scale(0.5);
                self[(i, j)] = avg;
                self[(j, i)] = avg.conj();
            }
        }
    }

    /// Entry-wise approximate equality with an absolute tolerance.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }

    /// Builds the `2N × 2N` real-symmetric embedding
    /// `[[Re(A), −Im(A)], [Im(A), Re(A)]]` of an `N × N` Hermitian matrix.
    ///
    /// This is the representation used by Salz & Winters (paper ref. \[1\]) to
    /// color `2N` real Gaussian variables, and it is also a convenient path
    /// to the eigendecomposition: the embedding is symmetric iff `A` is
    /// Hermitian.
    pub fn real_embedding(&self) -> RMatrix {
        assert!(self.is_square(), "real_embedding: matrix must be square");
        let n = self.rows;
        RMatrix::from_fn(2 * n, 2 * n, |i, j| {
            let (bi, ii) = (i / n, i % n);
            let (bj, jj) = (j / n, j % n);
            let z = self[(ii, jj)];
            match (bi, bj) {
                (0, 0) | (1, 1) => z.re,
                (0, 1) => -z.im,
                (1, 0) => z.im,
                _ => unreachable!(),
            }
        })
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of range for {}×{} matrix",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of range for {}×{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&CMatrix> for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix add: shape mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&CMatrix> for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub: shape mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl Mul<&CMatrix> for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        self.matmul(rhs)
    }
}

impl Neg for &CMatrix {
    type Output = CMatrix;
    fn neg(self) -> CMatrix {
        self.scale(c64(-1.0, 0.0))
    }
}

impl fmt::Debug for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}×{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prec = f.precision().unwrap_or(4);
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>12}", format!("{:.*}", prec, self[(i, j)]))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A dense, row-major matrix of `f64` entries.
///
/// Used for the real-symmetric embeddings of Hermitian covariance matrices
/// (Salz–Winters baseline) and as the return type of [`CMatrix::real`] /
/// [`CMatrix::imag`].
#[derive(Clone, PartialEq)]
pub struct RMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl RMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a closure evaluated at every `(row, col)` pair.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "RMatrix::from_vec: expected {} elements, got {}",
            rows * cols,
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` for square matrices.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable access to the row-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// A borrowed view of row `i`.
    pub fn row_slice(&self, i: usize) -> &[f64] {
        assert!(
            i < self.rows,
            "row index {i} out of range (rows = {})",
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The main diagonal.
    pub fn diag(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.cols,
            "matvec: vector length {} does not match cols {}",
            x.len(),
            self.cols
        );
        (0..self.rows)
            .map(|i| vector::rdot(self.row_slice(i), x))
            .collect()
    }

    /// Matrix–vector product `A·x` written into a caller-owned buffer (the
    /// allocation-free variant of [`RMatrix::matvec`]).
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(
            x.len(),
            self.cols,
            "matvec_into: vector length {} does not match cols {}",
            x.len(),
            self.cols
        );
        assert_eq!(
            y.len(),
            self.rows,
            "matvec_into: output length {} does not match rows {}",
            y.len(),
            self.rows
        );
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = vector::rdot(self.row_slice(i), x);
        }
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions do not match ({}×{} · {}×{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let other_row = other.row_slice(k);
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(other_row.iter()) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// Scales every entry.
    pub fn scale(&self, alpha: f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * alpha).collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum entry-wise absolute difference.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// `true` when the matrix is symmetric up to `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Lifts to a complex matrix with zero imaginary parts.
    pub fn complexify(&self) -> CMatrix {
        CMatrix::from_fn(self.rows, self.cols, |i, j| {
            Complex64::from_real(self[(i, j)])
        })
    }

    /// Entry-wise approximate equality with an absolute tolerance.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }
}

impl Index<(usize, usize)> for RMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of range for {}×{} matrix",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for RMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of range for {}×{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for RMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RMatrix {}×{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row_slice(i))?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for RMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prec = f.precision().unwrap_or(4);
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>10.*}", prec, self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CMatrix {
        CMatrix::from_rows(&[
            vec![c64(1.0, 0.0), c64(0.5, 0.25)],
            vec![c64(0.5, -0.25), c64(2.0, 0.0)],
        ])
    }

    #[test]
    fn constructors() {
        let z = CMatrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == Complex64::ZERO));

        let id = CMatrix::identity(3);
        assert_eq!(id[(0, 0)], Complex64::ONE);
        assert_eq!(id[(0, 1)], Complex64::ZERO);

        let f = CMatrix::from_fn(2, 2, |i, j| c64(i as f64, j as f64));
        assert_eq!(f[(1, 0)], c64(1.0, 0.0));
        assert_eq!(f[(0, 1)], c64(0.0, 1.0));

        let d = CMatrix::from_diag(&[c64(1.0, 0.0), c64(2.0, 0.0)]);
        assert_eq!(d[(1, 1)], c64(2.0, 0.0));
        assert_eq!(d[(0, 1)], Complex64::ZERO);

        let rd = CMatrix::from_real_diag(&[3.0, 4.0]);
        assert_eq!(rd[(0, 0)], c64(3.0, 0.0));

        let rs = CMatrix::from_real_slice(1, 2, &[1.0, 2.0]);
        assert_eq!(rs[(0, 1)], c64(2.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "expected 4 elements")]
    fn from_vec_checks_length() {
        let _ = CMatrix::from_vec(2, 2, vec![Complex64::ZERO; 3]);
    }

    #[test]
    fn rows_cols_diag() {
        let m = sample();
        assert_eq!(m.row(0), vec![c64(1.0, 0.0), c64(0.5, 0.25)]);
        assert_eq!(m.col(1), vec![c64(0.5, 0.25), c64(2.0, 0.0)]);
        assert_eq!(m.diag(), vec![c64(1.0, 0.0), c64(2.0, 0.0)]);
        assert_eq!(m.trace(), c64(3.0, 0.0));
    }

    #[test]
    fn transpose_and_adjoint() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t[(0, 1)], m[(1, 0)]);
        let h = m.adjoint();
        assert_eq!(h[(0, 1)], m[(1, 0)].conj());
        assert_eq!(m.conj()[(0, 1)], m[(0, 1)].conj());
    }

    #[test]
    fn arithmetic() {
        let m = sample();
        let s = &m + &m;
        assert_eq!(s[(0, 0)], c64(2.0, 0.0));
        let d = &s - &m;
        assert!(d.approx_eq(&m, 1e-15));
        let n = -&m;
        assert_eq!(n[(0, 0)], c64(-1.0, 0.0));
        let sc = m.scale_real(2.0);
        assert_eq!(sc[(1, 1)], c64(4.0, 0.0));
    }

    #[test]
    fn matmul_identity_and_associativity() {
        let m = sample();
        let id = CMatrix::identity(2);
        assert!(m.matmul(&id).approx_eq(&m, 1e-15));
        assert!(id.matmul(&m).approx_eq(&m, 1e-15));

        let a = CMatrix::from_fn(2, 3, |i, j| c64((i + j) as f64, (i as f64) - (j as f64)));
        let b = CMatrix::from_fn(3, 2, |i, j| c64(1.0 / (1.0 + i as f64 + j as f64), 0.5));
        let c = CMatrix::from_fn(2, 2, |i, j| c64(j as f64, i as f64));
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert!(left.approx_eq(&right, 1e-12));
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = sample();
        let x = vec![c64(1.0, -1.0), c64(0.5, 2.0)];
        let y = m.matvec(&x);
        let xm = CMatrix::from_vec(2, 1, x.clone());
        let ym = m.matmul(&xm);
        assert!(y[0].approx_eq(ym[(0, 0)], 1e-12));
        assert!(y[1].approx_eq(ym[(1, 0)], 1e-12));
    }

    #[test]
    fn hermitian_checks() {
        let m = sample();
        assert!(m.is_hermitian(1e-12));
        let mut non_h = m.clone();
        non_h[(0, 1)] = c64(0.5, 0.5);
        assert!(!non_h.is_hermitian(1e-12));
        non_h.hermitianize();
        assert!(non_h.is_hermitian(1e-15));
    }

    #[test]
    fn norms_and_distances() {
        let m = CMatrix::from_rows(&[vec![c64(3.0, 0.0), c64(0.0, 4.0)]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!((m.max_abs() - 4.0).abs() < 1e-12);
        let z = CMatrix::zeros(1, 2);
        assert!((m.frobenius_distance(&z) - 5.0).abs() < 1e-12);
        assert!((m.max_abs_diff(&z) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn aat_adjoint_is_hermitian_psd_diagonal() {
        let m = sample();
        let g = m.aat_adjoint();
        assert!(g.is_hermitian(1e-12));
        for i in 0..2 {
            assert!(g[(i, i)].re >= 0.0);
        }
    }

    #[test]
    fn real_embedding_structure() {
        let m = sample();
        let e = m.real_embedding();
        assert_eq!(e.shape(), (4, 4));
        assert!(e.is_symmetric(1e-12));
        assert_eq!(e[(0, 1)], m[(0, 1)].re);
        assert_eq!(e[(0, 3)], -m[(0, 1)].im);
        assert_eq!(e[(2, 1)], m[(0, 1)].im);
        assert_eq!(e[(2, 3)], m[(0, 1)].re);
    }

    #[test]
    fn real_matrix_basics() {
        let a = RMatrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        assert_eq!(a.diag(), vec![0.0, 3.0]);
        assert_eq!(a.transpose()[(0, 1)], a[(1, 0)]);
        let id = RMatrix::identity(2);
        assert!(a.matmul(&id).approx_eq(&a, 1e-15));
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![1.0, 5.0]);
        assert!((a.frobenius_norm() - (14.0f64).sqrt()).abs() < 1e-12);
        assert!(!a.is_symmetric(1e-12));
        let c = a.complexify();
        assert_eq!(c[(1, 0)], c64(2.0, 0.0));
        assert!((a.scale(2.0))[(1, 1)] - 6.0 < 1e-15);
        assert_eq!(RMatrix::from_vec(1, 2, vec![1.0, 2.0])[(0, 1)], 2.0);
    }

    #[test]
    fn display_does_not_panic() {
        let m = sample();
        let s = format!("{m}");
        assert!(s.contains('i'));
        let r = m.real();
        let _ = format!("{r}");
        let _ = format!("{m:?}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let m = sample();
        let _ = m[(5, 0)];
    }
}

//! Half-width planar sample buffers for the f32 fast tier.
//!
//! [`SampleBlock32`] mirrors [`SampleBlock`]'s planar envelope-major layout
//! and capacity-reusing [`SampleBlock32::resize`] contract, but stores the
//! `N × M` complex Gaussian samples as [`Complex32`] — half the memory
//! traffic of the reference block, which is exactly where the f32 tier's
//! speedup comes from. It deliberately has no wire encoding: the serving
//! protocol is f64-only in v1 (`corrfade-serve` rejects f32 stream requests
//! with a typed error frame), so a fast-tier block crosses the process
//! boundary only after [`SampleBlock32::widen_into`].
//!
//! [`SampleBlock`]: crate::block::SampleBlock

use crate::block::SampleBlock;
use crate::complex32::Complex32;

/// A planar `N × M` block of `f32` complex fading samples with a lazily
/// computed `f32` envelope view — the fast-tier sibling of
/// [`SampleBlock`].
#[derive(Debug, Clone, Default)]
pub struct SampleBlock32 {
    envelopes: usize,
    samples: usize,
    data: Vec<Complex32>,
    /// Cached `|z|` values in the same planar layout; only meaningful while
    /// `env_valid` holds.
    env: Vec<f32>,
    env_valid: bool,
}

impl SampleBlock32 {
    /// Creates a zero-filled block of `envelopes × samples` complex samples.
    #[must_use]
    pub fn new(envelopes: usize, samples: usize) -> Self {
        Self {
            envelopes,
            samples,
            data: vec![Complex32::ZERO; envelopes * samples],
            env: Vec::new(),
            env_valid: false,
        }
    }

    /// Creates an empty `0 × 0` block for pooling.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of envelope processes `N`.
    #[must_use]
    pub fn envelopes(&self) -> usize {
        self.envelopes
    }

    /// Number of time samples `M` per envelope.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// `true` when the block holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Total number of complex samples, `N·M`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Resizes to `envelopes × samples`, reusing the existing allocation
    /// whenever the new size fits the current capacity. Contents are
    /// unspecified after a shape change; the envelope cache is invalidated.
    pub fn resize(&mut self, envelopes: usize, samples: usize) {
        if self.envelopes == envelopes && self.samples == samples {
            return;
        }
        self.data.resize(envelopes * samples, Complex32::ZERO);
        self.envelopes = envelopes;
        self.samples = samples;
        self.env_valid = false;
    }

    /// The contiguous time series of envelope `j`.
    ///
    /// # Panics
    /// Panics if `j >= self.envelopes()`.
    #[must_use]
    pub fn path(&self, j: usize) -> &[Complex32] {
        assert!(
            j < self.envelopes,
            "path: envelope index {j} out of range (N = {})",
            self.envelopes
        );
        &self.data[j * self.samples..(j + 1) * self.samples]
    }

    /// The whole planar buffer (envelope-major): sample `l` of envelope `j`
    /// is at index `j·samples + l`.
    #[must_use]
    pub fn as_slice(&self) -> &[Complex32] {
        &self.data
    }

    /// Mutable access to the whole planar buffer. Invalidates the envelope
    /// cache.
    pub fn as_mut_slice(&mut self) -> &mut [Complex32] {
        self.env_valid = false;
        &mut self.data
    }

    /// The Rayleigh envelope `|z|` series of envelope `j` in `f32`,
    /// computing the cached view (through the dispatched f32 envelope
    /// kernel) on first use after a mutation.
    #[must_use]
    pub fn envelope_path(&mut self, j: usize) -> &[f32] {
        assert!(
            j < self.envelopes,
            "envelope_path: envelope index {j} out of range (N = {})",
            self.envelopes
        );
        self.ensure_envelopes();
        &self.env[j * self.samples..(j + 1) * self.samples]
    }

    /// The whole planar `f32` envelope view, computing it on first use after
    /// a mutation.
    #[must_use]
    pub fn envelope_slice(&mut self) -> &[f32] {
        self.ensure_envelopes();
        &self.env
    }

    fn ensure_envelopes(&mut self) {
        if self.env_valid {
            return;
        }
        self.env.resize(self.data.len(), 0.0);
        crate::kernel::envelope_into_f32(&self.data, &mut self.env);
        self.env_valid = true;
    }

    /// Widens every sample into `out` (exact `f32 → f64` conversion),
    /// resizing `out` to the same shape. Zero heap allocation once `out`'s
    /// capacity fits — this is how a fast-tier generator fills a caller's
    /// pooled f64 [`SampleBlock`].
    pub fn widen_into(&self, out: &mut SampleBlock) {
        out.resize(self.envelopes, self.samples);
        for (dst, src) in out.as_mut_slice().iter_mut().zip(&self.data) {
            *dst = src.widen();
        }
    }

    /// Fills this block by narrowing every sample of `src`
    /// (round-to-nearest), resizing to `src`'s shape. Capacity-reusing.
    pub fn narrow_from(&mut self, src: &SampleBlock) {
        self.resize(src.envelopes(), src.samples());
        self.env_valid = false;
        for (dst, s) in self.data.iter_mut().zip(src.as_slice()) {
            *dst = Complex32::narrow(*s);
        }
    }
}

impl PartialEq for SampleBlock32 {
    /// Equality compares shape and complex contents; the lazily cached
    /// envelope view is ignored.
    fn eq(&self, other: &Self) -> bool {
        self.envelopes == other.envelopes
            && self.samples == other.samples
            && self.data == other.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::complex32::c32;

    fn filled(n: usize, m: usize) -> SampleBlock32 {
        let mut b = SampleBlock32::new(n, m);
        for j in 0..n {
            for l in 0..m {
                b.as_mut_slice()[j * m + l] = c32(j as f32 + 1.0, l as f32);
            }
        }
        b
    }

    #[test]
    fn shape_and_layout() {
        let b = filled(3, 5);
        assert_eq!(b.envelopes(), 3);
        assert_eq!(b.samples(), 5);
        assert_eq!(b.len(), 15);
        assert_eq!(b.path(2)[4], c32(3.0, 4.0));
        assert_eq!(b.as_slice()[2 * 5 + 4], c32(3.0, 4.0));
        assert!(SampleBlock32::empty().is_empty());
    }

    #[test]
    fn resize_reuses_capacity() {
        let mut b = SampleBlock32::new(4, 100);
        let ptr = b.data.as_ptr();
        b.resize(2, 50);
        b.resize(4, 100);
        assert_eq!(b.data.as_ptr(), ptr);
        b.resize(4, 100);
        assert_eq!(b.len(), 400);
    }

    #[test]
    fn envelope_view_is_lazy_and_invalidated_by_mutation() {
        let mut b = filled(2, 3);
        let e = b.envelope_path(1).to_vec();
        for (l, &v) in e.iter().enumerate() {
            let expected = c32(2.0, l as f32).abs();
            assert!((v - expected).abs() < 1e-6);
        }
        b.as_mut_slice()[3] = c32(30.0, 40.0);
        assert_eq!(b.envelope_path(1)[0], 50.0);
        assert_eq!(b.envelope_slice()[3], 50.0);
    }

    #[test]
    fn widen_narrow_round_trip_is_exact() {
        let src = filled(2, 4);
        let mut wide = SampleBlock::empty();
        src.widen_into(&mut wide);
        assert_eq!(wide.envelopes(), 2);
        assert_eq!(wide.samples(), 4);
        assert_eq!(wide.path(1)[2], c64(2.0, 2.0));
        let mut back = SampleBlock32::empty();
        back.narrow_from(&wide);
        assert_eq!(back, src);
    }

    #[test]
    fn narrow_from_rounds_to_nearest() {
        let mut wide = SampleBlock::new(1, 1);
        wide.as_mut_slice()[0] = c64(1.0 + 1e-12, -0.25);
        let mut b = SampleBlock32::empty();
        b.narrow_from(&wide);
        assert_eq!(b.as_slice()[0], c32(1.0, -0.25));
    }

    #[test]
    fn equality_ignores_the_envelope_cache() {
        let mut a = filled(2, 3);
        let b = filled(2, 3);
        let _ = a.envelope_path(0);
        assert_eq!(a, b);
        let mut c = filled(2, 3);
        c.as_mut_slice()[0] = c32(9.0, 9.0);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn path_bounds_checked() {
        let b = filled(2, 3);
        let _ = b.path(2);
    }
}

//! Double-precision complex arithmetic.
//!
//! The whole workspace operates on zero-mean complex Gaussian random
//! variables, complex covariance matrices and complex spectra, so a small,
//! fully-featured complex type is the foundation of everything else.
//!
//! [`Complex64`] is a plain `#[repr(C)]` pair of `f64`s with value semantics.
//! It implements the usual field operations, the elementary transcendental
//! functions needed by the fading models (`exp`, `sqrt`, `powf`, …) and a few
//! numerically-careful helpers (`abs` via `hypot`, `fdiv` via Smith's
//! algorithm) so that the eigendecomposition and the IDFT remain stable for
//! the badly-scaled covariance matrices exercised in the tests.

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Convenience constructor: `c64(re, im)`.
#[inline]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = c64(0.0, 1.0);

    /// Creates a new complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline]
    pub const fn from_imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// Creates a complex number from polar coordinates `r · e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `e^{iθ}` — a unit-modulus phasor. Used heavily by the IDFT twiddle
    /// factors.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate `re − i·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Modulus `|z|`, computed with `hypot` to avoid overflow/underflow.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|² = z · z̄`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in `(−π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Polar decomposition `(r, θ)` such that `z = r·e^{iθ}`.
    #[inline]
    pub fn to_polar(self) -> (f64, f64) {
        (self.abs(), self.arg())
    }

    /// Multiplicative inverse `1/z` using Smith's algorithm for robustness.
    #[inline]
    pub fn inv(self) -> Self {
        Complex64::ONE.fdiv(self)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Divides by a real factor.
    #[inline]
    pub fn unscale(self, k: f64) -> Self {
        Self {
            re: self.re / k,
            im: self.im / k,
        }
    }

    /// Robust complex division (Smith's algorithm). The operator `/` uses
    /// this internally; it avoids overflow when the denominator components
    /// differ greatly in magnitude.
    #[inline]
    pub fn fdiv(self, rhs: Self) -> Self {
        if rhs.re.abs() >= rhs.im.abs() {
            if rhs.re == 0.0 && rhs.im == 0.0 {
                return Self {
                    re: self.re / 0.0,
                    im: self.im / 0.0,
                };
            }
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Self {
                re: (self.re + self.im * r) / d,
                im: (self.im - self.re * r) / d,
            }
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Self {
                re: (self.re * r + self.im) / d,
                im: (self.im * r - self.re) / d,
            }
        }
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal natural logarithm.
    #[inline]
    pub fn ln(self) -> Self {
        let (r, theta) = self.to_polar();
        Self {
            re: r.ln(),
            im: theta,
        }
    }

    /// Principal square root.
    ///
    /// Uses the numerically-stable half-angle formulation rather than
    /// `from_polar(sqrt(r), θ/2)` so that purely-real non-negative inputs map
    /// exactly to real outputs (important when taking `√λ̂` of clipped
    /// eigenvalues in the coloring step).
    #[inline]
    pub fn sqrt(self) -> Self {
        if self.im == 0.0 {
            if self.re >= 0.0 {
                return Self {
                    re: self.re.sqrt(),
                    im: 0.0,
                };
            }
            return Self {
                re: 0.0,
                im: (-self.re).sqrt().copysign(1.0),
            };
        }
        let r = self.abs();
        let re = ((r + self.re) * 0.5).sqrt();
        let im = ((r - self.re) * 0.5).sqrt() * self.im.signum();
        Self { re, im }
    }

    /// Raises to a real power via the exponential form.
    #[inline]
    pub fn powf(self, exp: f64) -> Self {
        if self == Self::ZERO {
            return if exp == 0.0 { Self::ONE } else { Self::ZERO };
        }
        let (r, theta) = self.to_polar();
        Self::from_polar(r.powf(exp), theta * exp)
    }

    /// Raises to a non-negative integer power by binary exponentiation.
    #[inline]
    pub fn powi(self, mut exp: u32) -> Self {
        let mut base = self;
        let mut acc = Self::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base *= base;
            exp >>= 1;
        }
        acc
    }

    /// `true` when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality with an absolute tolerance on each component.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Fused multiply-add: `self * b + c`, using `f64::mul_add` on each of
    /// the four partial products for a slightly tighter error bound in the
    /// matrix kernels.
    #[inline]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        Self {
            re: self.re.mul_add(b.re, (-self.im).mul_add(b.im, c.re)),
            im: self.re.mul_add(b.im, self.im.mul_add(b.re, c.im)),
        }
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 || self.im.is_nan() {
            if let Some(prec) = f.precision() {
                write!(f, "{:.*}+{:.*}i", prec, self.re, prec, self.im)
            } else {
                write!(f, "{}+{}i", self.re, self.im)
            }
        } else if let Some(prec) = f.precision() {
            write!(f, "{:.*}-{:.*}i", prec, self.re, prec, -self.im)
        } else {
            write!(f, "{}-{}i", self.re, -self.im)
        }
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl From<(f64, f64)> for Complex64 {
    #[inline]
    fn from((re, im): (f64, f64)) -> Self {
        Self { re, im }
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self.fdiv(rhs)
    }
}

impl Add<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: f64) -> Self {
        Self {
            re: self.re + rhs,
            im: self.im,
        }
    }
}

impl Sub<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: f64) -> Self {
        Self {
            re: self.re - rhs,
            im: self.im,
        }
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        self.unscale(rhs)
    }
}

impl Add<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        rhs + self
    }
}

impl Sub<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        c64(self - rhs.re, -rhs.im)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs * self
    }
}

impl Div<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        Complex64::from_real(self) / rhs
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl DivAssign<f64> for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = self.unscale(rhs);
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + *b)
    }
}

impl Product for Complex64 {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |a, b| a * b)
    }
}

#[cfg(feature = "serde")]
mod serde_impl {
    use super::Complex64;
    use serde::de::{Deserialize, Deserializer};
    use serde::ser::{Serialize, SerializeTuple, Serializer};

    impl Serialize for Complex64 {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut t = serializer.serialize_tuple(2)?;
            t.serialize_element(&self.re)?;
            t.serialize_element(&self.im)?;
            t.end()
        }
    }

    impl<'de> Deserialize<'de> for Complex64 {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            let (re, im) = <(f64, f64)>::deserialize(deserializer)?;
            Ok(Complex64 { re, im })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex64::ZERO, c64(0.0, 0.0));
        assert_eq!(Complex64::ONE, c64(1.0, 0.0));
        assert_eq!(Complex64::I, c64(0.0, 1.0));
        assert_eq!(Complex64::from_real(2.5), c64(2.5, 0.0));
        assert_eq!(Complex64::from_imag(-1.5), c64(0.0, -1.5));
        assert_eq!(Complex64::from((1.0, 2.0)), c64(1.0, 2.0));
        assert_eq!(Complex64::from(3.0), c64(3.0, 0.0));
    }

    #[test]
    fn field_operations() {
        let a = c64(1.0, 2.0);
        let b = c64(-3.0, 0.5);
        assert_eq!(a + b, c64(-2.0, 2.5));
        assert_eq!(a - b, c64(4.0, 1.5));
        assert_eq!(a * b, c64(1.0 * -3.0 - 2.0 * 0.5, 1.0 * 0.5 + 2.0 * -3.0));
        let q = a / b;
        assert!((q * b).approx_eq(a, TOL));
        assert_eq!(-a, c64(-1.0, -2.0));
    }

    #[test]
    fn mixed_real_operations() {
        let a = c64(1.0, 2.0);
        assert_eq!(a + 1.0, c64(2.0, 2.0));
        assert_eq!(a - 1.0, c64(0.0, 2.0));
        assert_eq!(a * 2.0, c64(2.0, 4.0));
        assert_eq!(a / 2.0, c64(0.5, 1.0));
        assert_eq!(2.0 * a, c64(2.0, 4.0));
        assert_eq!(1.0 + a, c64(2.0, 2.0));
        assert_eq!(1.0 - a, c64(0.0, -2.0));
        assert!((6.0 / c64(0.0, 2.0)).approx_eq(c64(0.0, -3.0), TOL));
    }

    #[test]
    fn assigning_operators() {
        let mut z = c64(1.0, 1.0);
        z += c64(1.0, 0.0);
        z -= c64(0.0, 1.0);
        z *= c64(0.0, 1.0);
        z /= c64(0.0, 1.0);
        z *= 2.0;
        z /= 4.0;
        assert!(z.approx_eq(c64(1.0, 0.0), TOL));
    }

    #[test]
    fn conjugate_modulus_argument() {
        let z = c64(3.0, -4.0);
        assert_eq!(z.conj(), c64(3.0, 4.0));
        assert!((z.abs() - 5.0).abs() < TOL);
        assert!((z.norm_sqr() - 25.0).abs() < TOL);
        assert!((c64(0.0, 1.0).arg() - std::f64::consts::FRAC_PI_2).abs() < TOL);
        let (r, t) = z.to_polar();
        assert!(Complex64::from_polar(r, t).approx_eq(z, 1e-10));
    }

    #[test]
    fn abs_does_not_overflow() {
        let z = c64(1e200, 1e200);
        assert!(z.abs().is_finite());
    }

    #[test]
    fn division_is_robust_for_extreme_scales() {
        let a = c64(1e-300, 1e-300);
        let b = c64(1e-300, 0.0);
        let q = a.fdiv(b);
        assert!(q.approx_eq(c64(1.0, 1.0), 1e-9));
    }

    #[test]
    fn inverse_round_trips() {
        let z = c64(0.3, -7.0);
        assert!((z * z.inv()).approx_eq(Complex64::ONE, TOL));
    }

    #[test]
    fn exp_ln_round_trip() {
        let z = c64(0.25, -1.3);
        assert!(z.exp().ln().approx_eq(z, 1e-12));
        assert!(Complex64::ZERO.exp().approx_eq(Complex64::ONE, TOL));
        // Euler's identity.
        assert!(Complex64::I
            .scale(std::f64::consts::PI)
            .exp()
            .approx_eq(c64(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn cis_matches_from_polar() {
        for k in 0..16 {
            let theta = k as f64 * 0.41;
            assert!(Complex64::cis(theta).approx_eq(Complex64::from_polar(1.0, theta), TOL));
        }
    }

    #[test]
    fn sqrt_of_nonnegative_real_is_exactly_real() {
        let z = c64(4.0, 0.0).sqrt();
        assert_eq!(z, c64(2.0, 0.0));
        let w = c64(-9.0, 0.0).sqrt();
        assert!(w.approx_eq(c64(0.0, 3.0), TOL));
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[
            c64(1.0, 2.0),
            c64(-3.0, 4.0),
            c64(0.5, -0.25),
            c64(-1.0, -1.0),
        ] {
            let s = z.sqrt();
            assert!((s * s).approx_eq(z, 1e-12), "sqrt({z}) = {s}");
            assert!(
                s.re >= 0.0,
                "principal branch must have non-negative real part"
            );
        }
    }

    #[test]
    fn integer_powers() {
        let z = c64(1.0, 1.0);
        assert!(z.powi(0).approx_eq(Complex64::ONE, TOL));
        assert!(z.powi(2).approx_eq(c64(0.0, 2.0), TOL));
        assert!(z.powi(8).approx_eq(c64(16.0, 0.0), 1e-12));
    }

    #[test]
    fn real_powers() {
        let z = c64(0.0, 4.0);
        assert!(z.powf(0.5).approx_eq(z.sqrt(), 1e-12));
        assert!(Complex64::ZERO.powf(0.0).approx_eq(Complex64::ONE, TOL));
        assert!(Complex64::ZERO.powf(3.0).approx_eq(Complex64::ZERO, TOL));
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = c64(1.5, -0.5);
        let b = c64(-2.0, 0.25);
        let c = c64(0.75, 3.0);
        assert!(a.mul_add(b, c).approx_eq(a * b + c, 1e-12));
    }

    #[test]
    fn sums_and_products() {
        let xs = [c64(1.0, 0.0), c64(0.0, 1.0), c64(2.0, -1.0)];
        let s: Complex64 = xs.iter().sum();
        assert_eq!(s, c64(3.0, 0.0));
        let p: Complex64 = xs.iter().copied().product();
        assert!(p.approx_eq(c64(1.0, 2.0), TOL));
    }

    #[test]
    fn display_formatting() {
        assert_eq!(format!("{}", c64(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{}", c64(1.0, -2.0)), "1-2i");
        assert_eq!(format!("{:.2}", c64(1.0, -2.0)), "1.00-2.00i");
    }

    #[test]
    fn nan_and_finite_predicates() {
        assert!(c64(f64::NAN, 0.0).is_nan());
        assert!(!c64(1.0, 2.0).is_nan());
        assert!(c64(1.0, 2.0).is_finite());
        assert!(!c64(f64::INFINITY, 0.0).is_finite());
    }
}

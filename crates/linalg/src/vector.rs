//! Free functions on complex and real vectors (slices).
//!
//! The generators in `corrfade` shuttle sample vectors around as plain
//! `Vec<Complex64>` / `&[Complex64]`; these helpers provide the inner
//! products, norms and element-wise kernels used by the matrix routines and
//! by the statistics crate without forcing a dedicated vector type on the
//! public API.

use crate::complex::Complex64;
use crate::complex32::Complex32;

/// Unconjugated dot product `Σ aᵢ·bᵢ`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    a.iter()
        .zip(b.iter())
        .fold(Complex64::ZERO, |acc, (&x, &y)| x.mul_add(y, acc))
}

/// Unconjugated `f32` dot product `Σ aᵢ·bᵢ` — the fast-tier sibling of
/// [`dot`], with the same `mul_add` fold shape in single precision.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot32(a: &[Complex32], b: &[Complex32]) -> Complex32 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot32: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    a.iter()
        .zip(b.iter())
        .fold(Complex32::ZERO, |acc, (&x, &y)| x.mul_add(y, acc))
}

/// Hermitian inner product `Σ conj(aᵢ)·bᵢ` (conjugate-linear in the first
/// argument, matching the convention `⟨a, b⟩ = aᴴ b`).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn hdot(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    assert_eq!(
        a.len(),
        b.len(),
        "hdot: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    a.iter()
        .zip(b.iter())
        .fold(Complex64::ZERO, |acc, (&x, &y)| x.conj().mul_add(y, acc))
}

/// Euclidean (ℓ²) norm `‖a‖₂ = √(Σ |aᵢ|²)`.
pub fn norm2(a: &[Complex64]) -> f64 {
    a.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

/// Squared Euclidean norm `Σ |aᵢ|²`.
pub fn norm2_sqr(a: &[Complex64]) -> f64 {
    a.iter().map(|z| z.norm_sqr()).sum::<f64>()
}

/// Maximum modulus `max |aᵢ|` (0 for an empty slice).
pub fn norm_inf(a: &[Complex64]) -> f64 {
    a.iter().map(|z| z.abs()).fold(0.0, f64::max)
}

/// `y ← α·x + y` (complex AXPY).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(alpha: Complex64, x: &[Complex64], y: &mut [Complex64]) {
    assert_eq!(
        x.len(),
        y.len(),
        "axpy: length mismatch {} vs {}",
        x.len(),
        y.len()
    );
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi = alpha.mul_add(xi, *yi);
    }
}

/// Scales a vector in place: `x ← α·x`.
pub fn scale_in_place(alpha: Complex64, x: &mut [Complex64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Returns a new vector `α·x`.
pub fn scaled(alpha: Complex64, x: &[Complex64]) -> Vec<Complex64> {
    x.iter().map(|&xi| xi * alpha).collect()
}

/// Element-wise sum `a + b`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn add(a: &[Complex64], b: &[Complex64]) -> Vec<Complex64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x + y).collect()
}

/// Element-wise difference `a − b`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn sub(a: &[Complex64], b: &[Complex64]) -> Vec<Complex64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x - y).collect()
}

/// Element-wise (Hadamard) product `a ⊙ b`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn hadamard(a: &[Complex64], b: &[Complex64]) -> Vec<Complex64> {
    assert_eq!(a.len(), b.len(), "hadamard: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).collect()
}

/// Moduli of every element — the Rayleigh envelope of a complex Gaussian
/// sample vector.
pub fn envelope(a: &[Complex64]) -> Vec<f64> {
    a.iter().map(|z| z.abs()).collect()
}

/// Conjugates every element.
pub fn conj(a: &[Complex64]) -> Vec<Complex64> {
    a.iter().map(|z| z.conj()).collect()
}

/// Lifts a real vector into a complex one with zero imaginary parts.
pub fn complexify(a: &[f64]) -> Vec<Complex64> {
    a.iter().map(|&x| Complex64::from_real(x)).collect()
}

/// Real parts of every element.
pub fn real_parts(a: &[Complex64]) -> Vec<f64> {
    a.iter().map(|z| z.re).collect()
}

/// Imaginary parts of every element.
pub fn imag_parts(a: &[Complex64]) -> Vec<f64> {
    a.iter().map(|z| z.im).collect()
}

/// Real dot product `Σ aᵢ·bᵢ`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn rdot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rdot: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Real Euclidean norm.
pub fn rnorm2(a: &[f64]) -> f64 {
    a.iter().map(|&x| x * x).sum::<f64>().sqrt()
}

/// Maximum absolute deviation between two complex vectors.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn dot_and_hdot() {
        let a = vec![c64(1.0, 1.0), c64(2.0, 0.0)];
        let b = vec![c64(0.0, 1.0), c64(1.0, -1.0)];
        // dot = (1+i)(i) + 2(1-i) = (i - 1) + (2 - 2i) = 1 - i
        assert!(dot(&a, &b).approx_eq(c64(1.0, -1.0), 1e-12));
        // hdot = (1-i)(i) + 2(1-i) = (i + 1) + (2 - 2i) = 3 - i
        assert!(hdot(&a, &b).approx_eq(c64(3.0, -1.0), 1e-12));
    }

    #[test]
    fn hdot_with_self_is_norm_squared() {
        let a = vec![c64(1.0, 2.0), c64(-3.0, 0.5)];
        let h = hdot(&a, &a);
        assert!((h.re - norm2_sqr(&a)).abs() < 1e-12);
        assert!(h.im.abs() < 1e-12);
    }

    #[test]
    fn norms() {
        let a = vec![c64(3.0, 0.0), c64(0.0, 4.0)];
        assert!((norm2(&a) - 5.0).abs() < 1e-12);
        assert!((norm2_sqr(&a) - 25.0).abs() < 1e-12);
        assert!((norm_inf(&a) - 4.0).abs() < 1e-12);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_and_scale() {
        let x = vec![c64(1.0, 0.0), c64(0.0, 1.0)];
        let mut y = vec![c64(1.0, 1.0), c64(1.0, 1.0)];
        axpy(c64(2.0, 0.0), &x, &mut y);
        assert!(y[0].approx_eq(c64(3.0, 1.0), 1e-12));
        assert!(y[1].approx_eq(c64(1.0, 3.0), 1e-12));

        let mut z = x.clone();
        scale_in_place(c64(0.0, 1.0), &mut z);
        assert!(z[0].approx_eq(c64(0.0, 1.0), 1e-12));
        assert!(z[1].approx_eq(c64(-1.0, 0.0), 1e-12));
        assert_eq!(scaled(c64(2.0, 0.0), &x)[0], c64(2.0, 0.0));
    }

    #[test]
    fn elementwise_ops() {
        let a = vec![c64(1.0, 0.0), c64(2.0, 2.0)];
        let b = vec![c64(0.5, 0.5), c64(1.0, -1.0)];
        assert_eq!(add(&a, &b)[0], c64(1.5, 0.5));
        assert_eq!(sub(&a, &b)[1], c64(1.0, 3.0));
        assert!(hadamard(&a, &b)[1].approx_eq(c64(4.0, 0.0), 1e-12));
    }

    #[test]
    fn envelope_and_parts() {
        let a = vec![c64(3.0, 4.0), c64(0.0, -2.0)];
        assert_eq!(envelope(&a), vec![5.0, 2.0]);
        assert_eq!(real_parts(&a), vec![3.0, 0.0]);
        assert_eq!(imag_parts(&a), vec![4.0, -2.0]);
        assert_eq!(conj(&a)[0], c64(3.0, -4.0));
        assert_eq!(complexify(&[1.0, 2.0])[1], c64(2.0, 0.0));
    }

    #[test]
    fn real_helpers() {
        assert!((rdot(&[1.0, 2.0], &[3.0, 4.0]) - 11.0).abs() < 1e-12);
        assert!((rnorm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = vec![c64(1.0, 0.0), c64(0.0, 1.0)];
        let b = vec![c64(1.0, 0.0), c64(0.0, 3.0)];
        assert!((max_abs_diff(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = dot(&[c64(1.0, 0.0)], &[]);
    }
}

//! Eigendecomposition of Hermitian (complex) and symmetric (real) matrices
//! by the cyclic Jacobi method.
//!
//! The paper's coloring step (Sec. 4.3) requires the eigendecomposition
//! `K = V·G·Vᴴ` of the desired covariance matrix `K`. Covariance matrices are
//! Hermitian by construction, so the unconditionally-convergent Jacobi
//! iteration is a natural fit: it is simple, backward-stable and — unlike
//! Cholesky — does not care whether the matrix is positive (semi-)definite.
//! For the matrix sizes that appear in fading simulation (a handful to a few
//! dozen sub-carriers or antennas) its `O(N³)` per-sweep cost is irrelevant.
//!
//! Complex Hermitian matrices are diagonalized directly with complex Jacobi
//! rotations (a phase factor absorbs the argument of the pivot entry, then a
//! real Givens rotation annihilates it); real symmetric matrices use the
//! classic real rotation. Eigenvalues are returned in **descending** order
//! together with the matching orthonormal eigenvectors.

use crate::complex::{c64, Complex64};
use crate::error::LinalgError;
use crate::matrix::{CMatrix, RMatrix};

/// Default tolerance used to accept a matrix as Hermitian/symmetric before
/// decomposing it. The covariance builders in `corrfade-models` produce
/// matrices that are Hermitian to machine precision; anything larger than
/// this usually indicates a bug in the caller.
pub const DEFAULT_HERMITIAN_TOL: f64 = 1e-9;

/// Maximum number of Jacobi sweeps before reporting a convergence failure.
/// Jacobi converges quadratically once the off-diagonal mass is small; 64
/// sweeps is far beyond what any `N ≤ 1024` Hermitian matrix needs.
pub const MAX_SWEEPS: usize = 64;

/// Eigendecomposition `A = V · diag(λ) · Vᴴ` of a Hermitian matrix.
#[derive(Debug, Clone)]
pub struct HermitianEigen {
    /// Eigenvalues, sorted in descending order. They are real because the
    /// input is Hermitian.
    pub eigenvalues: Vec<f64>,
    /// Unitary matrix whose `j`-th column is the eigenvector for
    /// `eigenvalues[j]`.
    pub eigenvectors: CMatrix,
}

impl HermitianEigen {
    /// Reconstructs `V · diag(λ̃) · Vᴴ` with the supplied eigenvalues — the
    /// building block of both the PSD-forcing step and the coloring matrix.
    pub fn reconstruct_with(&self, eigenvalues: &[f64]) -> CMatrix {
        assert_eq!(
            eigenvalues.len(),
            self.eigenvalues.len(),
            "reconstruct_with: eigenvalue count mismatch"
        );
        let v = &self.eigenvectors;
        let lambda = CMatrix::from_real_diag(eigenvalues);
        v.matmul(&lambda).matmul(&v.adjoint())
    }

    /// Reconstructs the original matrix `V · diag(λ) · Vᴴ`.
    pub fn reconstruct(&self) -> CMatrix {
        self.reconstruct_with(&self.eigenvalues)
    }

    /// `true` when every eigenvalue is ≥ `−tol`, i.e. the matrix is positive
    /// semi-definite up to the tolerance.
    pub fn is_positive_semidefinite(&self, tol: f64) -> bool {
        self.eigenvalues.iter().all(|&l| l >= -tol)
    }

    /// `true` when every eigenvalue is > `tol`.
    pub fn is_positive_definite(&self, tol: f64) -> bool {
        self.eigenvalues.iter().all(|&l| l > tol)
    }
}

/// Eigendecomposition `A = V · diag(λ) · Vᵀ` of a real symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, sorted in descending order.
    pub eigenvalues: Vec<f64>,
    /// Orthogonal matrix whose `j`-th column is the eigenvector for
    /// `eigenvalues[j]`.
    pub eigenvectors: RMatrix,
}

impl SymmetricEigen {
    /// Reconstructs `V · diag(λ̃) · Vᵀ` with the supplied eigenvalues.
    pub fn reconstruct_with(&self, eigenvalues: &[f64]) -> RMatrix {
        assert_eq!(
            eigenvalues.len(),
            self.eigenvalues.len(),
            "reconstruct_with: eigenvalue count mismatch"
        );
        let v = &self.eigenvectors;
        let n = eigenvalues.len();
        let mut vl = RMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                vl[(i, j)] = v[(i, j)] * eigenvalues[j];
            }
        }
        vl.matmul(&v.transpose())
    }

    /// Reconstructs the original matrix.
    pub fn reconstruct(&self) -> RMatrix {
        self.reconstruct_with(&self.eigenvalues)
    }

    /// `true` when every eigenvalue is ≥ `−tol`.
    pub fn is_positive_semidefinite(&self, tol: f64) -> bool {
        self.eigenvalues.iter().all(|&l| l >= -tol)
    }
}

/// Sum of squared moduli of the strictly-off-diagonal entries — the quantity
/// driven to zero by the Jacobi sweeps.
fn off_diagonal_norm_sqr(a: &CMatrix) -> f64 {
    let n = a.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += a[(i, j)].norm_sqr();
            }
        }
    }
    s
}

fn off_diagonal_norm_sqr_real(a: &RMatrix) -> f64 {
    let n = a.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += a[(i, j)] * a[(i, j)];
            }
        }
    }
    s
}

/// Computes the eigendecomposition of a Hermitian matrix using cyclic
/// complex Jacobi rotations.
///
/// # Errors
/// * [`LinalgError::NotSquare`] if the matrix is not square.
/// * [`LinalgError::NotHermitian`] if `‖A − Aᴴ‖_max` exceeds
///   [`DEFAULT_HERMITIAN_TOL`] (scaled by the matrix magnitude).
/// * [`LinalgError::ConvergenceFailure`] if the off-diagonal mass does not
///   reach machine precision within [`MAX_SWEEPS`] sweeps (not observed in
///   practice for Hermitian inputs).
pub fn hermitian_eigen(a: &CMatrix) -> Result<HermitianEigen, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let scale = a.max_abs().max(1.0);
    let herm_dev = a.max_abs_diff(&a.adjoint());
    if herm_dev > DEFAULT_HERMITIAN_TOL * scale {
        return Err(LinalgError::NotHermitian {
            deviation: herm_dev,
        });
    }

    if n == 0 {
        return Ok(HermitianEigen {
            eigenvalues: Vec::new(),
            eigenvectors: CMatrix::zeros(0, 0),
        });
    }

    // Work on an exactly-Hermitian copy so that round-off in the caller's
    // matrix cannot leak into the iteration.
    let mut m = a.clone();
    m.hermitianize();
    let mut v = CMatrix::identity(n);

    let frob = m.frobenius_norm().max(f64::MIN_POSITIVE);
    let target = (f64::EPSILON * frob).powi(2);

    let mut sweeps = 0;
    while off_diagonal_norm_sqr(&m) > target && sweeps < MAX_SWEEPS {
        sweeps += 1;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                let abs_apq = apq.abs();
                if abs_apq <= f64::EPSILON * frob {
                    continue;
                }
                // Phase factor e^{iφ} of the pivot entry; dividing column q by
                // it turns the 2×2 pivot block into a real symmetric one.
                let phase = apq.unscale(abs_apq);
                let phase_conj = phase.conj();

                let app = m[(p, p)].re;
                let aqq = m[(q, q)].re;
                let tau = (aqq - app) / (2.0 * abs_apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Update rows/columns p and q for every other index r.
                for r in 0..n {
                    if r == p || r == q {
                        continue;
                    }
                    let arp = m[(r, p)];
                    let arq = m[(r, q)];
                    let new_rp = arp.scale(c) - (arq * phase_conj).scale(s);
                    let new_rq = arp.scale(s) + (arq * phase_conj).scale(c);
                    m[(r, p)] = new_rp;
                    m[(p, r)] = new_rp.conj();
                    m[(r, q)] = new_rq;
                    m[(q, r)] = new_rq.conj();
                }

                // Diagonal block.
                m[(p, p)] = c64(app - t * abs_apq, 0.0);
                m[(q, q)] = c64(aqq + t * abs_apq, 0.0);
                m[(p, q)] = Complex64::ZERO;
                m[(q, p)] = Complex64::ZERO;

                // Accumulate the rotation into the eigenvector matrix:
                // V ← V · U with U = P·J as documented above.
                for r in 0..n {
                    let vrp = v[(r, p)];
                    let vrq = v[(r, q)];
                    v[(r, p)] = vrp.scale(c) - (vrq * phase_conj).scale(s);
                    v[(r, q)] = vrp.scale(s) + (vrq * phase_conj).scale(c);
                }
            }
        }
    }

    let residual = off_diagonal_norm_sqr(&m).sqrt();
    if residual * residual > target * 4.0 && residual > 1e-10 * frob {
        return Err(LinalgError::ConvergenceFailure {
            iterations: sweeps,
            residual,
        });
    }

    let mut order: Vec<usize> = (0..n).collect();
    let raw: Vec<f64> = (0..n).map(|i| m[(i, i)].re).collect();
    order.sort_by(|&i, &j| {
        raw[j]
            .partial_cmp(&raw[i])
            .unwrap_or(core::cmp::Ordering::Equal)
    });

    let eigenvalues: Vec<f64> = order.iter().map(|&i| raw[i]).collect();
    let eigenvectors = CMatrix::from_fn(n, n, |i, j| v[(i, order[j])]);

    Ok(HermitianEigen {
        eigenvalues,
        eigenvectors,
    })
}

/// Computes the eigendecomposition of a real symmetric matrix using cyclic
/// Jacobi rotations.
///
/// # Errors
/// Same failure modes as [`hermitian_eigen`], with
/// [`LinalgError::NotHermitian`] reported when the matrix is not symmetric.
pub fn symmetric_eigen(a: &RMatrix) -> Result<SymmetricEigen, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let scale = a
        .as_slice()
        .iter()
        .fold(0.0f64, |acc, &x| acc.max(x.abs()))
        .max(1.0);
    let sym_dev = a.max_abs_diff(&a.transpose());
    if sym_dev > DEFAULT_HERMITIAN_TOL * scale {
        return Err(LinalgError::NotHermitian { deviation: sym_dev });
    }

    if n == 0 {
        return Ok(SymmetricEigen {
            eigenvalues: Vec::new(),
            eigenvectors: RMatrix::zeros(0, 0),
        });
    }

    let mut m = a.clone();
    // Exact symmetrization.
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = 0.5 * (m[(i, j)] + m[(j, i)]);
            m[(i, j)] = avg;
            m[(j, i)] = avg;
        }
    }
    let mut v = RMatrix::identity(n);

    let frob = m.frobenius_norm().max(f64::MIN_POSITIVE);
    let target = (f64::EPSILON * frob).powi(2);

    let mut sweeps = 0;
    while off_diagonal_norm_sqr_real(&m) > target && sweeps < MAX_SWEEPS {
        sweeps += 1;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= f64::EPSILON * frob {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                for r in 0..n {
                    if r == p || r == q {
                        continue;
                    }
                    let arp = m[(r, p)];
                    let arq = m[(r, q)];
                    let new_rp = c * arp - s * arq;
                    let new_rq = s * arp + c * arq;
                    m[(r, p)] = new_rp;
                    m[(p, r)] = new_rp;
                    m[(r, q)] = new_rq;
                    m[(q, r)] = new_rq;
                }

                m[(p, p)] = app - t * apq;
                m[(q, q)] = aqq + t * apq;
                m[(p, q)] = 0.0;
                m[(q, p)] = 0.0;

                for r in 0..n {
                    let vrp = v[(r, p)];
                    let vrq = v[(r, q)];
                    v[(r, p)] = c * vrp - s * vrq;
                    v[(r, q)] = s * vrp + c * vrq;
                }
            }
        }
    }

    let residual = off_diagonal_norm_sqr_real(&m).sqrt();
    if residual * residual > target * 4.0 && residual > 1e-10 * frob {
        return Err(LinalgError::ConvergenceFailure {
            iterations: sweeps,
            residual,
        });
    }

    let mut order: Vec<usize> = (0..n).collect();
    let raw: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| {
        raw[j]
            .partial_cmp(&raw[i])
            .unwrap_or(core::cmp::Ordering::Equal)
    });

    let eigenvalues: Vec<f64> = order.iter().map(|&i| raw[i]).collect();
    let eigenvectors = RMatrix::from_fn(n, n, |i, j| v[(i, order[j])]);

    Ok(SymmetricEigen {
        eigenvalues,
        eigenvectors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hermitian_3x3() -> CMatrix {
        CMatrix::from_rows(&[
            vec![c64(2.0, 0.0), c64(0.5, 0.5), c64(0.0, -0.25)],
            vec![c64(0.5, -0.5), c64(1.5, 0.0), c64(0.3, 0.1)],
            vec![c64(0.0, 0.25), c64(0.3, -0.1), c64(1.0, 0.0)],
        ])
    }

    // The paper's spectral covariance matrix, Eq. (22).
    fn paper_matrix_22() -> CMatrix {
        CMatrix::from_rows(&[
            vec![c64(1.0, 0.0), c64(0.3782, 0.4753), c64(0.0878, 0.2207)],
            vec![c64(0.3782, -0.4753), c64(1.0, 0.0), c64(0.3063, 0.3849)],
            vec![c64(0.0878, -0.2207), c64(0.3063, -0.3849), c64(1.0, 0.0)],
        ])
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let d = CMatrix::from_real_diag(&[3.0, 1.0, 2.0]);
        let e = hermitian_eigen(&d).unwrap();
        assert_eq!(e.eigenvalues.len(), 3);
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 2.0).abs() < 1e-12);
        assert!((e.eigenvalues[2] - 1.0).abs() < 1e-12);
        assert!(e.reconstruct().approx_eq(&d, 1e-12));
    }

    #[test]
    fn reconstruction_matches_input() {
        let a = hermitian_3x3();
        let e = hermitian_eigen(&a).unwrap();
        assert!(e.reconstruct().approx_eq(&a, 1e-10), "VΛV^H must equal A");
    }

    #[test]
    fn eigenvectors_are_unitary() {
        let a = hermitian_3x3();
        let e = hermitian_eigen(&a).unwrap();
        let vhv = e.eigenvectors.adjoint().matmul(&e.eigenvectors);
        assert!(vhv.approx_eq(&CMatrix::identity(3), 1e-10));
        let vvh = e.eigenvectors.matmul(&e.eigenvectors.adjoint());
        assert!(vvh.approx_eq(&CMatrix::identity(3), 1e-10));
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = hermitian_3x3();
        let e = hermitian_eigen(&a).unwrap();
        for w in e.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-14);
        }
    }

    #[test]
    fn eigenvalue_equation_holds() {
        let a = paper_matrix_22();
        let e = hermitian_eigen(&a).unwrap();
        for j in 0..3 {
            let vj = e.eigenvectors.col(j);
            let av = a.matvec(&vj);
            for i in 0..3 {
                let expected = vj[i].scale(e.eigenvalues[j]);
                assert!(
                    av[i].approx_eq(expected, 1e-9),
                    "A v_{j} != lambda_{j} v_{j} at row {i}: {} vs {}",
                    av[i],
                    expected
                );
            }
        }
    }

    #[test]
    fn paper_matrix_22_is_positive_definite() {
        // The paper states Eq. (22) is positive definite; our decomposition
        // must agree.
        let e = hermitian_eigen(&paper_matrix_22()).unwrap();
        assert!(
            e.is_positive_definite(0.0),
            "eigenvalues: {:?}",
            e.eigenvalues
        );
        // Trace is preserved: sum of eigenvalues = 3.
        let sum: f64 = e.eigenvalues.iter().sum();
        assert!((sum - 3.0).abs() < 1e-9);
    }

    #[test]
    fn indefinite_matrix_detected() {
        // A correlation-like matrix that is NOT positive semi-definite:
        // pairwise correlations of 1, 1 and -1 are mutually inconsistent.
        let a = CMatrix::from_real_slice(3, 3, &[1.0, 0.9, -0.9, 0.9, 1.0, 0.9, -0.9, 0.9, 1.0]);
        let e = hermitian_eigen(&a).unwrap();
        assert!(!e.is_positive_semidefinite(1e-12));
        assert!(e.eigenvalues[2] < 0.0);
    }

    #[test]
    fn non_square_rejected() {
        let a = CMatrix::zeros(2, 3);
        assert!(matches!(
            hermitian_eigen(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn non_hermitian_rejected() {
        let a = CMatrix::from_rows(&[
            vec![c64(1.0, 0.0), c64(5.0, 0.0)],
            vec![c64(0.0, 0.0), c64(1.0, 0.0)],
        ]);
        assert!(matches!(
            hermitian_eigen(&a),
            Err(LinalgError::NotHermitian { .. })
        ));
    }

    #[test]
    fn empty_matrix_is_ok() {
        let e = hermitian_eigen(&CMatrix::zeros(0, 0)).unwrap();
        assert!(e.eigenvalues.is_empty());
    }

    #[test]
    fn one_by_one_matrix() {
        let a = CMatrix::from_real_slice(1, 1, &[4.2]);
        let e = hermitian_eigen(&a).unwrap();
        assert!((e.eigenvalues[0] - 4.2).abs() < 1e-14);
        assert!((e.eigenvectors[(0, 0)].abs() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn rank_deficient_matrix_has_zero_eigenvalues() {
        // Outer product v v^H has rank 1.
        let v = [c64(1.0, 1.0), c64(2.0, -1.0), c64(0.5, 0.0)];
        let a = CMatrix::from_fn(3, 3, |i, j| v[i] * v[j].conj());
        let e = hermitian_eigen(&a).unwrap();
        assert!(e.eigenvalues[0] > 1.0);
        assert!(e.eigenvalues[1].abs() < 1e-10);
        assert!(e.eigenvalues[2].abs() < 1e-10);
        assert!(e.reconstruct().approx_eq(&a, 1e-10));
    }

    #[test]
    fn reconstruct_with_clipped_eigenvalues_is_psd() {
        let a = CMatrix::from_real_slice(3, 3, &[1.0, 0.9, -0.9, 0.9, 1.0, 0.9, -0.9, 0.9, 1.0]);
        let e = hermitian_eigen(&a).unwrap();
        let clipped: Vec<f64> = e.eigenvalues.iter().map(|&l| l.max(0.0)).collect();
        let forced = e.reconstruct_with(&clipped);
        let e2 = hermitian_eigen(&forced).unwrap();
        assert!(e2.is_positive_semidefinite(1e-10));
    }

    #[test]
    fn symmetric_eigen_reconstruction() {
        let a = RMatrix::from_vec(3, 3, vec![4.0, 1.0, 0.5, 1.0, 3.0, -0.25, 0.5, -0.25, 2.0]);
        let e = symmetric_eigen(&a).unwrap();
        assert!(e.reconstruct().approx_eq(&a, 1e-10));
        let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors);
        assert!(vtv.approx_eq(&RMatrix::identity(3), 1e-10));
        for w in e.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-14);
        }
    }

    #[test]
    fn symmetric_eigen_rejects_asymmetric() {
        let a = RMatrix::from_vec(2, 2, vec![1.0, 2.0, 0.0, 1.0]);
        assert!(matches!(
            symmetric_eigen(&a),
            Err(LinalgError::NotHermitian { .. })
        ));
    }

    #[test]
    fn symmetric_matches_hermitian_on_real_input() {
        let vals = [2.0, 0.8, 0.3, 0.8, 1.5, 0.1, 0.3, 0.1, 1.0];
        let r = RMatrix::from_vec(3, 3, vals.to_vec());
        let c = CMatrix::from_real_slice(3, 3, &vals);
        let er = symmetric_eigen(&r).unwrap();
        let ec = hermitian_eigen(&c).unwrap();
        for (a, b) in er.eigenvalues.iter().zip(ec.eigenvalues.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn real_embedding_eigenvalues_are_doubled_hermitian_eigenvalues() {
        // Each eigenvalue of the N×N Hermitian matrix appears twice in the
        // spectrum of its 2N×2N real-symmetric embedding.
        let a = paper_matrix_22();
        let eh = hermitian_eigen(&a).unwrap();
        let es = symmetric_eigen(&a.real_embedding()).unwrap();
        for (k, &l) in eh.eigenvalues.iter().enumerate() {
            assert!((es.eigenvalues[2 * k] - l).abs() < 1e-9);
            assert!((es.eigenvalues[2 * k + 1] - l).abs() < 1e-9);
        }
    }

    #[test]
    fn large_random_like_matrix_converges() {
        // Deterministic pseudo-random Hermitian matrix, N = 24.
        let n = 24;
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = CMatrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                if i == j {
                    a[(i, i)] = c64(1.0 + next().abs() * 4.0, 0.0);
                } else {
                    let z = c64(next(), next());
                    a[(i, j)] = z;
                    a[(j, i)] = z.conj();
                }
            }
        }
        let e = hermitian_eigen(&a).unwrap();
        assert!(e.reconstruct().approx_eq(&a, 1e-8));
    }
}

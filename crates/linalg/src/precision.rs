//! Sample-precision selection for the generation pipeline.
//!
//! Every analysis stage in the workspace — covariance builds, eigen and
//! Cholesky decompositions, `FactorCache` keys — always runs in `f64`.
//! [`Precision`] selects only the *sample generation* tier: the Gaussian
//! spectrum fill, the IDFT, the coloring matvec and the envelope pass.
//! [`Precision::F64`] is the default, bit-exact reference path pinned by the
//! golden tests; [`Precision::F32`] is the opt-in fast tier that narrows at
//! the spectrum fill and stays half-width through the hot loops.
//!
//! The f32 tier's error contract versus the f64 reference is documented in
//! `ARCHITECTURE.md` ("Precision tiers") and asserted by the
//! `kernel_proptest` and `precision_tier` suites.

/// Which floating-point width the sample-generation hot path runs at.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Full double precision — the bit-exact reference tier (default).
    #[default]
    F64,
    /// Half-width fast tier: samples are generated, colored and enveloped in
    /// `f32`, then widened on export. Opt-in; bounded error vs [`Self::F64`].
    F32,
}

impl Precision {
    /// Reads the test-matrix override from `CORRFADE_TEST_PRECISION`.
    ///
    /// Returns [`Precision::F64`] when the variable is unset or empty;
    /// accepts `f64` / `f32` (case-insensitive) and panics on anything else
    /// so a typo in a CI matrix cannot silently run the wrong tier. This is
    /// read by the equivalence *test suites*, never by library code.
    pub fn from_test_env() -> Self {
        match std::env::var("CORRFADE_TEST_PRECISION") {
            Err(_) => Self::F64,
            Ok(v) if v.is_empty() => Self::F64,
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "f64" => Self::F64,
                "f32" => Self::F32,
                other => panic!("CORRFADE_TEST_PRECISION must be `f64` or `f32`, got `{other}`"),
            },
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::F64 => f.write_str("f64"),
            Self::F32 => f.write_str("f32"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_f64() {
        assert_eq!(Precision::default(), Precision::F64);
    }

    #[test]
    fn display_round_trips_the_env_spelling() {
        assert_eq!(Precision::F64.to_string(), "f64");
        assert_eq!(Precision::F32.to_string(), "f32");
    }

    #[test]
    fn usable_in_const_context() {
        const P: Precision = Precision::F32;
        assert_eq!(P, Precision::F32);
    }
}

//! Single-precision complex arithmetic for the f32 fast tier.
//!
//! [`Complex32`] is the half-width sibling of [`Complex64`]: a plain
//! `#[repr(C)]` pair of `f32`s with value semantics. It deliberately carries
//! only the operations the sample-generation hot path needs — construction,
//! the ring operations, conjugation, modulus, real scaling and widen/narrow
//! conversions — because every decomposition, covariance build and wire
//! encode in the workspace stays in `f64`. Narrowing happens exactly once
//! per value, at the edge of the fast tier.
//!
//! [`Complex64`]: crate::complex::Complex64

use core::fmt;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::complex::Complex64;

/// A complex number with `f32` real and imaginary parts.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

/// Convenience constructor: `c32(re, im)`.
#[inline]
pub const fn c32(re: f32, im: f32) -> Complex32 {
    Complex32 { re, im }
}

impl Complex32 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex32 = c32(0.0, 0.0);
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex32 = c32(1.0, 0.0);

    /// Creates a new complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Self { re, im }
    }

    /// Complex conjugate `re − i·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Modulus `|z|`, computed in `f64` and rounded once, so the fast-tier
    /// envelope matches `widen().abs() as f32` bit for bit.
    #[inline]
    pub fn abs(self) -> f32 {
        (f64::from(self.re) * f64::from(self.re) + f64::from(self.im) * f64::from(self.im)).sqrt()
            as f32
    }

    /// Squared modulus `|z|² = z · z̄`.
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f32) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Fused multiply-add `self * b + c` using `f32::mul_add` per partial
    /// product, mirroring [`Complex64::mul_add`] so the scalar f32 kernels
    /// have the same operation shape as their f64 references.
    #[inline]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        Self {
            re: self.re.mul_add(b.re, (-self.im).mul_add(b.im, c.re)),
            im: self.re.mul_add(b.im, self.im.mul_add(b.re, c.im)),
        }
    }

    /// Widens to double precision (exact).
    #[inline]
    pub fn widen(self) -> Complex64 {
        Complex64 {
            re: f64::from(self.re),
            im: f64::from(self.im),
        }
    }

    /// Narrows a double-precision value (round-to-nearest per component).
    #[inline]
    pub fn narrow(z: Complex64) -> Self {
        Self {
            re: z.re as f32,
            im: z.im as f32,
        }
    }

    /// `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Complex32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 || self.im.is_nan() {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}-{}i", self.re, -self.im)
        }
    }
}

impl Neg for Complex32 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Add for Complex32 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex32 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex32 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Mul<f32> for Complex32 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f32) -> Self {
        self.scale(rhs)
    }
}

impl AddAssign for Complex32 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex32 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex32 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn ring_operations() {
        let a = c32(1.0, 2.0);
        let b = c32(-3.0, 0.5);
        assert_eq!(a + b, c32(-2.0, 2.5));
        assert_eq!(a - b, c32(4.0, 1.5));
        assert_eq!(a * b, c32(-4.0, -5.5));
        assert_eq!(-a, c32(-1.0, -2.0));
        assert_eq!(a.scale(2.0), c32(2.0, 4.0));
        assert_eq!(a * 2.0, c32(2.0, 4.0));
    }

    #[test]
    fn conj_abs_norm() {
        let z = c32(3.0, -4.0);
        assert_eq!(z.conj(), c32(3.0, 4.0));
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn widen_narrow_round_trip_is_exact() {
        let z = c32(0.1, -2.5);
        assert_eq!(Complex32::narrow(z.widen()), z);
    }

    #[test]
    fn narrow_rounds_to_nearest() {
        let z = Complex32::narrow(c64(1.0 + 1e-12, -1.0));
        assert_eq!(z, c32(1.0, -1.0));
    }

    #[test]
    fn abs_matches_widened_reference() {
        for &(re, im) in &[(0.3f32, -0.7f32), (1e-20, 1e-20), (1234.5, -0.001)] {
            let z = c32(re, im);
            assert_eq!(z.abs(), z.widen().abs() as f32);
        }
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = c32(1.5, -0.5);
        let b = c32(-2.0, 0.25);
        let c = c32(0.75, 3.0);
        let got = a.mul_add(b, c);
        let want = a * b + c;
        assert!((got.re - want.re).abs() < 1e-5 && (got.im - want.im).abs() < 1e-5);
    }

    #[test]
    fn assigning_operators() {
        let mut z = c32(1.0, 1.0);
        z += c32(1.0, 0.0);
        z -= c32(0.0, 1.0);
        z *= c32(0.0, 1.0);
        assert_eq!(z, c32(0.0, 2.0));
    }

    #[test]
    fn finite_predicate() {
        assert!(c32(1.0, 2.0).is_finite());
        assert!(!c32(f32::INFINITY, 0.0).is_finite());
        assert!(!c32(0.0, f32::NAN).is_finite());
    }
}

//! Planar, caller-owned sample buffers for streaming generation.
//!
//! Every generator in the workspace produces blocks of `N` correlated
//! envelope processes observed over `M` time samples. Materializing each
//! block as a fresh `Vec<Vec<Complex64>>` (one heap allocation per envelope
//! per block, plus a redundant envelope copy) caps throughput and makes
//! serving many concurrent channel simulations impossible. [`SampleBlock`]
//! fixes the data layout instead:
//!
//! * one contiguous `Vec<Complex64>` holding the `N × M` complex Gaussian
//!   samples **planar** (envelope-major): sample `l` of envelope `j` lives at
//!   index `j·M + l`, so each envelope path is a contiguous slice,
//! * a **lazy** envelope (modulus) view computed on demand and cached until
//!   the complex data is mutably borrowed again,
//! * capacity-reusing [`SampleBlock::resize`] so a block pooled by a caller
//!   (or a worker thread) performs **zero heap allocation** in steady state.
//!
//! The streaming trait that fills these buffers (`ChannelStream`) lives in
//! the `corrfade` core crate; this module only owns the data layout.

use crate::complex::Complex64;
use crate::matrix::CMatrix;

/// A planar `N × M` block of complex Gaussian fading samples with a lazily
/// computed envelope view.
///
/// The complex data is envelope-major: [`SampleBlock::path`]`(j)` is the
/// contiguous time series of envelope `j`. See the [module
/// docs](self) for the layout rationale.
#[derive(Debug, Clone, Default)]
pub struct SampleBlock {
    envelopes: usize,
    samples: usize,
    data: Vec<Complex64>,
    /// Cached `|z|` values in the same planar layout; only meaningful while
    /// `env_valid` holds.
    env: Vec<f64>,
    env_valid: bool,
}

impl SampleBlock {
    /// Creates a zero-filled block of `envelopes × samples` complex samples.
    #[must_use]
    pub fn new(envelopes: usize, samples: usize) -> Self {
        Self {
            envelopes,
            samples,
            data: vec![Complex64::ZERO; envelopes * samples],
            env: Vec::new(),
            env_valid: false,
        }
    }

    /// Creates an empty `0 × 0` block — the natural starting state for a
    /// pooled buffer that a `ChannelStream` will size on first use.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of envelope processes `N`.
    #[must_use]
    pub fn envelopes(&self) -> usize {
        self.envelopes
    }

    /// Number of time samples `M` per envelope.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// `true` when the block holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Total number of complex samples, `N·M`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Resizes the block to `envelopes × samples`, **reusing the existing
    /// allocation** whenever the new size fits the current capacity. The
    /// sample contents are unspecified after a shape change; the envelope
    /// cache is invalidated.
    pub fn resize(&mut self, envelopes: usize, samples: usize) {
        let new_len = envelopes * samples;
        if self.envelopes == envelopes && self.samples == samples {
            return;
        }
        self.data.resize(new_len, Complex64::ZERO);
        self.envelopes = envelopes;
        self.samples = samples;
        self.env_valid = false;
    }

    /// The contiguous time series of envelope `j`.
    ///
    /// # Panics
    /// Panics if `j >= self.envelopes()`.
    #[must_use]
    pub fn path(&self, j: usize) -> &[Complex64] {
        assert!(
            j < self.envelopes,
            "path: envelope index {j} out of range (N = {})",
            self.envelopes
        );
        &self.data[j * self.samples..(j + 1) * self.samples]
    }

    /// Mutable access to the time series of envelope `j`. Invalidates the
    /// envelope cache.
    ///
    /// # Panics
    /// Panics if `j >= self.envelopes()`.
    pub fn path_mut(&mut self, j: usize) -> &mut [Complex64] {
        assert!(
            j < self.envelopes,
            "path_mut: envelope index {j} out of range (N = {})",
            self.envelopes
        );
        self.env_valid = false;
        &mut self.data[j * self.samples..(j + 1) * self.samples]
    }

    /// The whole planar buffer (envelope-major): sample `l` of envelope `j`
    /// is at index `j·samples + l`.
    #[must_use]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable access to the whole planar buffer. Invalidates the envelope
    /// cache.
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        self.env_valid = false;
        &mut self.data
    }

    /// The Rayleigh envelope `|z|` series of envelope `j`, computing the
    /// cached envelope view on first use after a mutation.
    #[must_use]
    pub fn envelope_path(&mut self, j: usize) -> &[f64] {
        assert!(
            j < self.envelopes,
            "envelope_path: envelope index {j} out of range (N = {})",
            self.envelopes
        );
        self.ensure_envelopes();
        &self.env[j * self.samples..(j + 1) * self.samples]
    }

    /// The whole planar envelope view (`|z|` in the layout of
    /// [`SampleBlock::as_slice`]), computing it on first use after a
    /// mutation.
    #[must_use]
    pub fn envelope_slice(&mut self) -> &[f64] {
        self.ensure_envelopes();
        &self.env
    }

    fn ensure_envelopes(&mut self) {
        if self.env_valid {
            return;
        }
        self.env.resize(self.data.len(), 0.0);
        crate::kernel::envelope_into(&self.data, &mut self.env);
        self.env_valid = true;
    }

    /// Splits the block at time sample `mid` into two read-only views: the
    /// first covering samples `0..mid`, the second `mid..M` — both still
    /// planar across all `N` envelopes.
    ///
    /// # Panics
    /// Panics if `mid > self.samples()`.
    #[must_use]
    pub fn split_at_sample(&self, mid: usize) -> (BlockView<'_>, BlockView<'_>) {
        assert!(
            mid <= self.samples,
            "split_at_sample: split point {mid} exceeds block length {}",
            self.samples
        );
        (
            BlockView {
                data: &self.data,
                envelopes: self.envelopes,
                stride: self.samples,
                offset: 0,
                samples: mid,
            },
            BlockView {
                data: &self.data,
                envelopes: self.envelopes,
                stride: self.samples,
                offset: mid,
                samples: self.samples - mid,
            },
        )
    }

    /// A view over the whole block (stride-aware, like the halves of
    /// [`SampleBlock::split_at_sample`]).
    #[must_use]
    pub fn view(&self) -> BlockView<'_> {
        self.split_at_sample(self.samples).0
    }

    /// Folds the outer products `Σ_l Z[l]·Z[l]ᴴ` of this block into `acc`
    /// (an `N × N` accumulator) without materializing any snapshot vector.
    /// Divide by the accumulated sample count to obtain the sample
    /// covariance.
    ///
    /// Dispatches through [`crate::kernel`]. On the scalar backend the
    /// summation runs sample-major (`l` outermost), matching the order of
    /// `sample_covariance` over materialized snapshots bit for bit; the
    /// vector backend reduces envelope pairs with multi-lane accumulators
    /// (within ≤ 1e-12 of scalar for unit-scale data) and mirrors the
    /// Hermitian image exactly.
    ///
    /// # Panics
    /// Panics if `acc` is not `N × N`.
    pub fn accumulate_covariance(&self, acc: &mut CMatrix) {
        let n = self.envelopes;
        let m = self.samples;
        assert_eq!(
            acc.shape(),
            (n, n),
            "accumulate_covariance: accumulator shape {:?} does not match N = {n}",
            acc.shape()
        );
        crate::kernel::accumulate_covariance(n, m, &self.data, acc.as_mut_slice());
    }

    /// Number of bytes the block occupies in the wire encoding of
    /// [`SampleBlock::encode_le_into`] (`N·M` complex samples × 16 bytes).
    #[must_use]
    pub fn wire_len(&self) -> usize {
        self.data.len() * WIRE_BYTES_PER_SAMPLE
    }

    /// Appends the planar complex data to `out` in the wire encoding: the
    /// envelope-major sample order of [`SampleBlock::as_slice`], each sample
    /// as two little-endian IEEE-754 `f64` words (`re` then `im`), routed
    /// through [`f64::to_bits`] so the round trip with
    /// [`SampleBlock::decode_le_from`] is **bit-exact** — the foundation of
    /// the serving layer's wire-equivalence guarantee.
    ///
    /// Appends exactly [`SampleBlock::wire_len`] bytes; once `out` has the
    /// capacity (steady state of a pooled buffer), no heap allocation is
    /// performed. The lazy envelope view is derived data and never
    /// serialized.
    pub fn encode_le_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.wire_len());
        for z in &self.data {
            out.extend_from_slice(&z.re.to_bits().to_le_bytes());
            out.extend_from_slice(&z.im.to_bits().to_le_bytes());
        }
    }

    /// Rebuilds the block from the wire encoding of
    /// [`SampleBlock::encode_le_into`]: resizes to `envelopes × samples`
    /// (capacity-reusing) and fills the planar data from `bytes`,
    /// bit-exactly via [`f64::from_bits`]. Zero heap allocation once the
    /// block's capacity fits the shape.
    ///
    /// # Errors
    /// [`BlockWireError`] when `bytes` is not exactly
    /// `envelopes · samples · 16` bytes long — a typed error (never a
    /// panic), so adversarial frame payloads are rejected gracefully.
    pub fn decode_le_from(
        &mut self,
        envelopes: usize,
        samples: usize,
        bytes: &[u8],
    ) -> Result<(), BlockWireError> {
        let expected = envelopes
            .checked_mul(samples)
            .and_then(|n| n.checked_mul(WIRE_BYTES_PER_SAMPLE))
            .ok_or(BlockWireError {
                expected: usize::MAX,
                got: bytes.len(),
            })?;
        if bytes.len() != expected {
            return Err(BlockWireError {
                expected,
                got: bytes.len(),
            });
        }
        self.resize(envelopes, samples);
        self.env_valid = false;
        for (z, chunk) in self
            .data
            .iter_mut()
            .zip(bytes.chunks_exact(WIRE_BYTES_PER_SAMPLE))
        {
            let re = u64::from_le_bytes(chunk[..8].try_into().expect("chunk is 16 bytes"));
            let im = u64::from_le_bytes(chunk[8..].try_into().expect("chunk is 16 bytes"));
            z.re = f64::from_bits(re);
            z.im = f64::from_bits(im);
        }
        Ok(())
    }

    /// Copies the block out into the legacy `Vec<Vec<Complex64>>` per-path
    /// representation (one allocation per envelope — compatibility only; hot
    /// paths should stay planar).
    #[must_use]
    pub fn to_paths(&self) -> Vec<Vec<Complex64>> {
        (0..self.envelopes).map(|j| self.path(j).to_vec()).collect()
    }

    /// Copies the block out as `M` snapshot vectors of length `N` —
    /// sample-major, the transpose of the planar layout (compatibility with
    /// snapshot-ensemble consumers; hot paths should stay planar).
    #[must_use]
    pub fn to_snapshots(&self) -> Vec<Vec<Complex64>> {
        (0..self.samples)
            .map(|l| {
                (0..self.envelopes)
                    .map(|j| self.data[j * self.samples + l])
                    .collect()
            })
            .collect()
    }

    /// Copies the lazy envelope view out into the legacy `Vec<Vec<f64>>`
    /// representation (compatibility only).
    #[must_use]
    pub fn to_envelope_paths(&mut self) -> Vec<Vec<f64>> {
        self.ensure_envelopes();
        (0..self.envelopes)
            .map(|j| self.env[j * self.samples..(j + 1) * self.samples].to_vec())
            .collect()
    }
}

/// Bytes one complex sample occupies in the [`SampleBlock::encode_le_into`]
/// wire encoding: two little-endian IEEE-754 `f64` words.
pub const WIRE_BYTES_PER_SAMPLE: usize = 16;

/// Typed rejection of a wire payload whose length does not match the block
/// shape it claims — returned by [`SampleBlock::decode_le_from`] so
/// truncated or padded network frames surface as errors, never panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockWireError {
    /// Byte length the declared `envelopes × samples` shape requires
    /// (`usize::MAX` when the shape itself overflows).
    pub expected: usize,
    /// Byte length actually supplied.
    pub got: usize,
}

impl core::fmt::Display for BlockWireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "sample-block wire payload is {} byte(s) but the declared shape requires {}",
            self.got, self.expected
        )
    }
}

impl std::error::Error for BlockWireError {}

impl PartialEq for SampleBlock {
    /// Equality compares shape and complex contents; the lazily cached
    /// envelope view is ignored.
    fn eq(&self, other: &Self) -> bool {
        self.envelopes == other.envelopes
            && self.samples == other.samples
            && self.data == other.data
    }
}

/// A read-only, stride-aware view of a (part of a) [`SampleBlock`], produced
/// by [`SampleBlock::split_at_sample`].
#[derive(Debug, Clone, Copy)]
pub struct BlockView<'a> {
    data: &'a [Complex64],
    envelopes: usize,
    /// Distance between consecutive envelope rows in `data` (the `M` of the
    /// underlying block, not of this view).
    stride: usize,
    /// First sample of the view within each row.
    offset: usize,
    /// Number of samples per envelope in this view.
    samples: usize,
}

impl BlockView<'_> {
    /// Number of envelope processes `N`.
    #[must_use]
    pub fn envelopes(&self) -> usize {
        self.envelopes
    }

    /// Number of time samples per envelope in this view.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// `true` when the view covers no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.envelopes == 0 || self.samples == 0
    }

    /// The (contiguous) time series of envelope `j` within this view.
    ///
    /// # Panics
    /// Panics if `j >= self.envelopes()`.
    #[must_use]
    pub fn path(&self, j: usize) -> &[Complex64] {
        assert!(
            j < self.envelopes,
            "path: envelope index {j} out of range (N = {})",
            self.envelopes
        );
        let start = j * self.stride + self.offset;
        &self.data[start..start + self.samples]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn filled(n: usize, m: usize) -> SampleBlock {
        let mut b = SampleBlock::new(n, m);
        for j in 0..n {
            for (l, z) in b.path_mut(j).iter_mut().enumerate() {
                *z = c64(j as f64 + 1.0, l as f64);
            }
        }
        b
    }

    #[test]
    fn shape_and_layout() {
        let b = filled(3, 5);
        assert_eq!(b.envelopes(), 3);
        assert_eq!(b.samples(), 5);
        assert_eq!(b.len(), 15);
        assert!(!b.is_empty());
        assert_eq!(b.path(2)[4], c64(3.0, 4.0));
        // Planar: path j is data[j*m .. (j+1)*m].
        assert_eq!(b.as_slice()[2 * 5 + 4], c64(3.0, 4.0));
    }

    #[test]
    fn empty_block_is_empty() {
        let b = SampleBlock::empty();
        assert!(b.is_empty());
        assert_eq!(b.envelopes(), 0);
        assert_eq!(b.samples(), 0);
    }

    #[test]
    fn resize_reuses_capacity_and_is_idempotent() {
        let mut b = SampleBlock::new(4, 100);
        let cap = b.data.capacity();
        let ptr = b.data.as_ptr();
        b.resize(2, 50);
        b.resize(4, 100);
        assert_eq!(b.data.capacity(), cap);
        assert_eq!(b.data.as_ptr(), ptr);
        // Same-shape resize is a no-op.
        b.resize(4, 100);
        assert_eq!(b.len(), 400);
    }

    #[test]
    fn envelope_view_is_lazy_and_invalidated_by_mutation() {
        let mut b = filled(2, 3);
        let e = b.envelope_path(1).to_vec();
        for (l, &v) in e.iter().enumerate() {
            let expected = c64(2.0, l as f64).abs();
            assert!((v - expected).abs() < 1e-15);
        }
        // Mutate, then the view must be recomputed.
        b.path_mut(1)[0] = c64(30.0, 40.0);
        assert!((b.envelope_path(1)[0] - 50.0).abs() < 1e-12);
        // Full planar envelope view agrees with the per-path view.
        let full = b.envelope_slice().to_vec();
        assert!((full[3] - 50.0).abs() < 1e-12);
    }

    #[test]
    fn split_at_sample_partitions_each_path() {
        let b = filled(3, 7);
        let (head, tail) = b.split_at_sample(3);
        assert_eq!(head.envelopes(), 3);
        assert_eq!(head.samples(), 3);
        assert_eq!(tail.samples(), 4);
        for j in 0..3 {
            assert_eq!(head.path(j), &b.path(j)[..3]);
            assert_eq!(tail.path(j), &b.path(j)[3..]);
        }
        let (all, none) = b.split_at_sample(7);
        assert_eq!(all.samples(), 7);
        assert!(none.is_empty());
        assert_eq!(b.view().path(1), b.path(1));
    }

    #[test]
    fn accumulate_covariance_matches_manual_outer_products() {
        let b = filled(2, 4);
        let mut acc = CMatrix::zeros(2, 2);
        b.accumulate_covariance(&mut acc);
        let mut expected = CMatrix::zeros(2, 2);
        for l in 0..4 {
            for a in 0..2 {
                for c in 0..2 {
                    expected[(a, c)] += b.path(a)[l] * b.path(c)[l].conj();
                }
            }
        }
        // The vector kernel backend may sum in a different order than the
        // manual sample-major fold, so compare with a tight tolerance
        // instead of bit equality (the scalar backend is bit-exact).
        assert!(acc.approx_eq(&expected, 1e-12));
        assert!(acc.is_hermitian(1e-12));
    }

    #[test]
    fn legacy_conversions_round_trip() {
        let mut b = filled(2, 3);
        let paths = b.to_paths();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[1], b.path(1).to_vec());
        let envs = b.to_envelope_paths();
        assert_eq!(envs[0].len(), 3);
        assert!((envs[1][0] - b.path(1)[0].abs()).abs() < 1e-15);
        let snaps = b.to_snapshots();
        assert_eq!(snaps.len(), 3);
        assert_eq!(snaps[2], vec![b.path(0)[2], b.path(1)[2]]);
    }

    #[test]
    fn wire_round_trip_is_bit_exact_and_rejects_bad_lengths() {
        let mut src = filled(3, 5);
        // Include awkward bit patterns: negative zero, subnormal, NaN with
        // payload, infinity — the round trip must preserve the exact bits.
        src.path_mut(0)[0] = c64(-0.0, f64::MIN_POSITIVE / 4.0);
        src.path_mut(1)[2] = c64(f64::from_bits(0x7ff8_0000_dead_beef), f64::INFINITY);

        let mut wire = Vec::new();
        src.encode_le_into(&mut wire);
        assert_eq!(wire.len(), src.wire_len());
        assert_eq!(src.wire_len(), 3 * 5 * WIRE_BYTES_PER_SAMPLE);

        let mut dst = SampleBlock::empty();
        dst.decode_le_from(3, 5, &wire).unwrap();
        for (a, b) in src.as_slice().iter().zip(dst.as_slice()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }

        // Decoding into a warm same-shape block refreshes the stale
        // envelope cache.
        let mut warm = filled(3, 5);
        let _ = warm.envelope_path(0);
        warm.decode_le_from(3, 5, &wire).unwrap();
        assert!((warm.envelope_path(0)[0] - 0.0).abs() < f64::MIN_POSITIVE);

        // Truncated and padded payloads are typed errors, not panics.
        let err = dst
            .decode_le_from(3, 5, &wire[..wire.len() - 1])
            .unwrap_err();
        assert_eq!(err.expected, 240);
        assert_eq!(err.got, 239);
        assert!(err.to_string().contains("239"));
        assert!(dst.decode_le_from(3, 6, &wire).is_err());
        // Shape overflow is caught instead of wrapping.
        assert!(dst.decode_le_from(usize::MAX, usize::MAX, &wire).is_err());
    }

    #[test]
    fn equality_ignores_the_envelope_cache() {
        let mut a = filled(2, 3);
        let b = filled(2, 3);
        let _ = a.envelope_path(0);
        assert_eq!(a, b);
        let mut c = filled(2, 3);
        c.path_mut(0)[0] = c64(9.0, 9.0);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn path_bounds_checked() {
        let b = filled(2, 3);
        let _ = b.path(2);
    }

    #[test]
    #[should_panic(expected = "split point")]
    fn split_bounds_checked() {
        let b = filled(2, 3);
        let _ = b.split_at_sample(4);
    }
}

//! Generic process-wide caching of derived matrix factorizations.
//!
//! The covariance matrices driving correlated-Rayleigh generation are small
//! but expensive to decompose relative to the per-block work, and realistic
//! deployments open *many* generators over a handful of distinct matrices —
//! one per named scenario. [`FactorCache`] is the shared storage behind
//! those "pay for the decomposition once per process" paths: a bounded,
//! sharded map from the **exact bit pattern** of a matrix ([`MatrixKey`]) to
//! an `Arc` of whatever was derived from it (an eigen-coloring, a Cholesky
//! factor, …).
//!
//! # Concurrency design
//!
//! The original cache held one global `Mutex` across the whole lookup —
//! including the factorization itself — so concurrent opens serialized on a
//! single lock even when every lookup was a hit. The current design removes
//! both bottlenecks:
//!
//! * **Striped shards.** Keys are hashed onto up to [`MAX_SHARDS`]
//!   independent shards; lookups for different matrices proceed on
//!   different locks entirely.
//! * **Lock-free-read hot path.** Each shard's map sits behind an
//!   `RwLock`; a hit takes only the *shared* read guard, so any number of
//!   threads resolve hits concurrently — even for the same key.
//! * **Compute outside the lock, exactly once.** A miss computes the
//!   factorization with **no lock held**. Concurrent first requests for the
//!   same key are coordinated through a per-key in-flight marker: one
//!   thread (the leader) computes, the rest wait on a condvar and then read
//!   the published value — the expensive factorization runs exactly once
//!   per key, and a slow factorization of one matrix never blocks lookups
//!   of another.
//! * **LRU eviction.** Entries carry a recency tick (bumped on every hit
//!   under the shared read guard via an atomic, so hits never take a write
//!   lock); when a shard is full the least-recently-used entry of that
//!   shard is evicted.
//!
//! Keying on `f64::to_bits` of every entry makes cache hits *trivially*
//! bit-identical to the uncached path: a hit returns the very value a fresh
//! computation of the same input would have produced (the factorizations in
//! this workspace are deterministic functions of their input), so the
//! golden/determinism guarantees of the scalar kernel backend carry over
//! unchanged.
//!
//! Hit/miss/eviction counters are exposed through [`FactorCache::stats`] so
//! integration tests can observe sharing (e.g. two scenarios with the same
//! covariance spec must produce exactly one decomposition).

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

use crate::matrix::CMatrix;

/// The exact bit pattern of a complex matrix: shape plus `f64::to_bits` of
/// every entry's real and imaginary part, in row-major order.
///
/// Two matrices map to the same key **iff** they are bitwise identical
/// (`0.0` and `-0.0` differ, as do distinct NaN payloads — both are the
/// conservative choice for a cache that promises bit-identical results).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MatrixKey {
    rows: usize,
    cols: usize,
    bits: Vec<u64>,
}

impl MatrixKey {
    /// Captures the key of a matrix.
    #[must_use]
    pub fn of(matrix: &CMatrix) -> Self {
        let mut bits = Vec::with_capacity(2 * matrix.as_slice().len());
        for z in matrix.as_slice() {
            bits.push(z.re.to_bits());
            bits.push(z.im.to_bits());
        }
        Self {
            rows: matrix.rows(),
            cols: matrix.cols(),
            bits,
        }
    }

    /// Stable shard-selection hash (`DefaultHasher` with its fixed default
    /// keys — deterministic within and across processes).
    fn stripe(&self) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut hasher);
        hasher.finish()
    }
}

/// Counters of one [`FactorCache`], read with [`FactorCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and store) a fresh value.
    pub misses: u64,
    /// Entries dropped because the cache was at capacity.
    pub evictions: u64,
    /// Entries currently stored.
    pub entries: usize,
}

/// Maximum number of independent shards a [`FactorCache`] stripes its keys
/// over. Small caches use fewer shards (never more than `capacity`) so the
/// configured bound stays exact: every shard holds at most
/// `capacity / shards` entries.
pub const MAX_SHARDS: usize = 16;

/// One stored value plus its recency stamp. The stamp is atomic so the hit
/// path can refresh it under the *shared* read guard.
#[derive(Debug)]
struct CacheEntry<T> {
    value: Arc<T>,
    last_used: AtomicU64,
}

/// Per-key marker of a computation in flight: the leader computes with no
/// lock held, waiters sleep here until the leader publishes (or fails).
#[derive(Debug)]
struct InFlight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl InFlight {
    fn new() -> Self {
        Self {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut done = lock_ignore_poison(&self.done);
        while !*done {
            done = self
                .cv
                .wait(done)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn complete(&self) {
        *lock_ignore_poison(&self.done) = true;
        self.cv.notify_all();
    }
}

/// One cache stripe: its own map (shared-read hot path) and its own
/// in-flight registry (tiny critical sections, never held across compute).
#[derive(Debug)]
struct Shard<T> {
    map: RwLock<BTreeMap<MatrixKey, CacheEntry<T>>>,
    in_flight: Mutex<BTreeMap<MatrixKey, Arc<InFlight>>>,
}

impl<T> Shard<T> {
    const fn new() -> Self {
        Self {
            map: RwLock::new(BTreeMap::new()),
            in_flight: Mutex::new(BTreeMap::new()),
        }
    }

    /// The shared-read hot path: a hit clones the `Arc` and refreshes the
    /// recency stamp without ever taking a write lock.
    fn lookup(&self, key: &MatrixKey, tick: &AtomicU64) -> Option<Arc<T>> {
        let map = self
            .map
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        map.get(key).map(|entry| {
            entry
                .last_used
                .store(tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
            Arc::clone(&entry.value)
        })
    }
}

/// Locks a mutex, recovering the guard if a previous holder panicked (all
/// critical sections in this module uphold their invariants even when
/// unwound through, so a poisoned guard is still consistent).
fn lock_ignore_poison<U>(mutex: &Mutex<U>) -> MutexGuard<'_, U> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Removes the in-flight marker of `key` and releases its waiters — also on
/// unwind, so a panicking `compute` closure cannot strand waiters forever.
struct LeaderGuard<'a, T> {
    shard: &'a Shard<T>,
    key: &'a MatrixKey,
    marker: Arc<InFlight>,
}

impl<T> Drop for LeaderGuard<'_, T> {
    fn drop(&mut self) {
        lock_ignore_poison(&self.shard.in_flight).remove(self.key);
        self.marker.complete();
    }
}

/// A bounded, process-wide, sharded map from [`MatrixKey`] to a shared
/// derived value.
///
/// Designed to live in a `static`: construction is `const`, and all state
/// is behind per-shard locks + atomics. See the [module docs](self) for the
/// concurrency design — shared-read hits, compute outside every lock,
/// exactly-once computation per key, striped LRU eviction.
#[derive(Debug)]
pub struct FactorCache<T> {
    shards: [Shard<T>; MAX_SHARDS],
    /// Shards actually in use (`min(MAX_SHARDS, capacity)`, at least 1).
    shard_count: usize,
    /// Entry bound per shard; the total bound is `shard_count` times this.
    shard_capacity: usize,
    /// Monotone recency clock stamped into entries on hit/insert.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<T> FactorCache<T> {
    /// Creates an empty cache holding at most `capacity` entries
    /// (`capacity == 0` disables storage: every lookup recomputes), striped
    /// over up to [`MAX_SHARDS`] shards.
    #[must_use]
    pub const fn new(capacity: usize) -> Self {
        let shards = if capacity < MAX_SHARDS {
            capacity
        } else {
            MAX_SHARDS
        };
        Self::with_shards(capacity, shards)
    }

    /// [`FactorCache::new`] with an explicit shard count (clamped to
    /// `1..=min(MAX_SHARDS, max(capacity, 1))`). Each shard holds at most
    /// `capacity / shards` entries, so the total never exceeds `capacity`.
    ///
    /// A single-shard cache behaves as one global LRU — useful for tests
    /// that pin the eviction order exactly.
    #[must_use]
    pub const fn with_shards(capacity: usize, shards: usize) -> Self {
        let mut count = shards;
        if count > MAX_SHARDS {
            count = MAX_SHARDS;
        }
        if count > capacity {
            count = capacity;
        }
        if count == 0 {
            count = 1;
        }
        Self {
            shards: [const { Shard::new() }; MAX_SHARDS],
            shard_count: count,
            shard_capacity: capacity / count,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The shard responsible for `key`.
    fn shard_of(&self, key: &MatrixKey) -> &Shard<T> {
        &self.shards[(key.stripe() % self.shard_count as u64) as usize]
    }

    /// Returns the cached value for `key`, computing and storing it with
    /// `compute` on a miss.
    ///
    /// The hot path (a hit) takes only a shared read guard on the key's
    /// shard. On a miss `compute` runs with **no lock held**; concurrent
    /// first requests for the same key block until the one elected leader
    /// has published its result, so the computation happens exactly once
    /// per key (unless it fails — failures are not cached, and a waiting
    /// thread retries the computation itself).
    ///
    /// # Errors
    /// Propagates `compute`'s error; nothing is stored or counted as a miss
    /// when the computation fails.
    pub fn get_or_try_insert_with<E>(
        &self,
        key: MatrixKey,
        compute: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E> {
        if self.shard_capacity == 0 {
            // Storage disabled: every lookup recomputes (documented
            // `capacity == 0` semantics), so no coordination is needed.
            let value = Arc::new(compute()?);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok(value);
        }
        let shard = self.shard_of(&key);
        if let Some(hit) = shard.lookup(&key, &self.tick) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        loop {
            // Decide leader vs. waiter under the in-flight lock, re-checking
            // the map inside it: a leader removes its marker only *after*
            // publishing to the map, so this order can neither miss a
            // completed value nor elect a second leader for a pending one.
            let pending = {
                let mut in_flight = lock_ignore_poison(&shard.in_flight);
                if let Some(hit) = shard.lookup(&key, &self.tick) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(hit);
                }
                match in_flight.get(&key) {
                    Some(pending) => Arc::clone(pending),
                    None => {
                        let marker = Arc::new(InFlight::new());
                        in_flight.insert(key.clone(), Arc::clone(&marker));
                        drop(in_flight);
                        return self.compute_as_leader(shard, &key, marker, compute);
                    }
                }
            };
            pending.wait();
            if let Some(hit) = shard.lookup(&key, &self.tick) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(hit);
            }
            // The leader failed (error or panic) without publishing; loop
            // around and try to take the lead ourselves.
        }
    }

    /// The leader path of a miss: run `compute` with no lock held, publish
    /// the value, then release the waiters (the guard also releases them if
    /// `compute` panics or fails, so nobody is stranded).
    fn compute_as_leader<E>(
        &self,
        shard: &Shard<T>,
        key: &MatrixKey,
        marker: Arc<InFlight>,
        compute: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E> {
        let _guard = LeaderGuard { shard, key, marker };
        let value = Arc::new(compute()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        {
            let mut map = shard
                .map
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if map.len() >= self.shard_capacity && !map.contains_key(key) {
                // Evict this shard's least-recently-used entry.
                let lru = map
                    .iter()
                    .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
                    .map(|(k, _)| k.clone());
                if let Some(lru) = lru {
                    map.remove(&lru);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            map.insert(
                key.clone(),
                CacheEntry {
                    value: Arc::clone(&value),
                    last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed)),
                },
            );
        }
        // `_guard` drops here: marker removed, waiters woken — strictly
        // after the map insert above, preserving the leader-election
        // invariant.
        Ok(value)
    }

    /// Current counters. `hits`/`misses`/`evictions` are monotone over the
    /// process lifetime (they survive [`FactorCache::clear`]).
    pub fn stats(&self) -> CacheStats {
        let entries = self.shards[..self.shard_count]
            .iter()
            .map(|shard| {
                shard
                    .map
                    .read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Drops every stored entry (outstanding `Arc`s stay alive). Counters
    /// are not reset.
    pub fn clear(&self) {
        for shard in &self.shards[..self.shard_count] {
            shard
                .map
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use std::convert::Infallible;

    fn mat(seed: f64) -> CMatrix {
        CMatrix::from_fn(2, 2, |i, j| c64(seed + i as f64, j as f64 - seed))
    }

    #[test]
    fn keys_are_bitwise_exact() {
        assert_eq!(MatrixKey::of(&mat(1.0)), MatrixKey::of(&mat(1.0)));
        assert_ne!(MatrixKey::of(&mat(1.0)), MatrixKey::of(&mat(2.0)));
        // Same values, different shape.
        let row = CMatrix::from_real_slice(1, 4, &[1.0, 0.0, 0.0, 1.0]);
        let sq = CMatrix::from_real_slice(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_ne!(MatrixKey::of(&row), MatrixKey::of(&sq));
        // -0.0 is a different bit pattern than 0.0 — conservative miss.
        let neg = CMatrix::from_real_slice(2, 2, &[1.0, -0.0, 0.0, 1.0]);
        assert_ne!(MatrixKey::of(&neg), MatrixKey::of(&sq));
    }

    #[test]
    fn hits_share_one_computation() {
        let cache: FactorCache<f64> = FactorCache::new(8);
        let mut computed = 0usize;
        for _ in 0..3 {
            let v = cache
                .get_or_try_insert_with(MatrixKey::of(&mat(1.0)), || {
                    computed += 1;
                    Ok::<_, Infallible>(42.0)
                })
                .unwrap();
            assert_eq!(*v, 42.0);
        }
        assert_eq!(computed, 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 1, 1));
    }

    #[test]
    fn errors_are_propagated_and_not_stored() {
        let cache: FactorCache<f64> = FactorCache::new(8);
        let err = cache.get_or_try_insert_with(MatrixKey::of(&mat(1.0)), || Err::<f64, _>("nope"));
        assert_eq!(err.unwrap_err(), "nope");
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 0);
        // A later successful computation for the same key is stored.
        let v = cache
            .get_or_try_insert_with(MatrixKey::of(&mat(1.0)), || Ok::<_, &str>(3.5))
            .unwrap();
        assert_eq!(*v, 3.5);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn capacity_bounds_the_store() {
        // Single shard: exact global LRU semantics.
        let cache: FactorCache<usize> = FactorCache::with_shards(2, 1);
        for i in 0..5usize {
            cache
                .get_or_try_insert_with(MatrixKey::of(&mat(i as f64)), || Ok::<_, Infallible>(i))
                .unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 3);

        // Striped: the total bound still holds, every computed value is
        // either stored or was evicted.
        let striped: FactorCache<usize> = FactorCache::new(2);
        for i in 0..5usize {
            striped
                .get_or_try_insert_with(MatrixKey::of(&mat(i as f64)), || Ok::<_, Infallible>(i))
                .unwrap();
        }
        let s = striped.stats();
        assert!(s.entries <= 2, "striped capacity bound violated: {s:?}");
        assert_eq!(s.entries as u64 + s.evictions, s.misses);

        let disabled: FactorCache<usize> = FactorCache::new(0);
        for _ in 0..2 {
            disabled
                .get_or_try_insert_with(MatrixKey::of(&mat(0.0)), || Ok::<_, Infallible>(1))
                .unwrap();
        }
        assert_eq!(disabled.stats().entries, 0);
        assert_eq!(disabled.stats().misses, 2, "capacity 0 always recomputes");
    }

    #[test]
    fn eviction_is_least_recently_used_not_smallest_key() {
        // Regression: the original cache evicted `keys().next()` — the
        // smallest bit pattern — which threw out the hottest entry whenever
        // it happened to sort first. A single-shard cache makes the LRU
        // order exactly observable.
        let cache: FactorCache<u32> = FactorCache::with_shards(2, 1);
        let (a, b, c) = (mat(1.0), mat(2.0), mat(3.0));
        assert!(
            MatrixKey::of(&a) < MatrixKey::of(&b),
            "test precondition: `a` sorts first"
        );
        cache
            .get_or_try_insert_with(MatrixKey::of(&a), || Ok::<_, Infallible>(1))
            .unwrap();
        cache
            .get_or_try_insert_with(MatrixKey::of(&b), || Ok::<_, Infallible>(2))
            .unwrap();
        // Touch `a`: it is now the most recently used despite sorting first.
        cache
            .get_or_try_insert_with(MatrixKey::of(&a), || -> Result<u32, Infallible> {
                panic!("`a` must be a hit");
            })
            .unwrap();
        // Inserting `c` must evict `b` (the LRU entry), not `a`.
        cache
            .get_or_try_insert_with(MatrixKey::of(&c), || Ok::<_, Infallible>(3))
            .unwrap();
        let mut a_recomputed = false;
        cache
            .get_or_try_insert_with(MatrixKey::of(&a), || {
                a_recomputed = true;
                Ok::<_, Infallible>(1)
            })
            .unwrap();
        assert!(!a_recomputed, "the recently-used entry was evicted");
        let mut b_recomputed = false;
        cache
            .get_or_try_insert_with(MatrixKey::of(&b), || {
                b_recomputed = true;
                Ok::<_, Infallible>(2)
            })
            .unwrap();
        assert!(b_recomputed, "the least-recently-used entry must have gone");
    }

    #[test]
    fn clear_keeps_counters_and_outstanding_arcs() {
        let cache: FactorCache<f64> = FactorCache::new(4);
        let v = cache
            .get_or_try_insert_with(MatrixKey::of(&mat(1.0)), || Ok::<_, Infallible>(7.0))
            .unwrap();
        cache.clear();
        assert_eq!(*v, 7.0);
        let s = cache.stats();
        assert_eq!((s.misses, s.entries), (1, 0));
    }

    #[test]
    fn panicking_compute_does_not_strand_waiters() {
        let cache: FactorCache<f64> = FactorCache::new(4);
        let key = MatrixKey::of(&mat(9.0));
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = cache.get_or_try_insert_with(key.clone(), || -> Result<f64, Infallible> {
                panic!("injected compute failure");
            });
        }));
        assert!(panicked.is_err());
        // The in-flight marker was cleaned up: the same key can be computed
        // again without hanging.
        let v = cache
            .get_or_try_insert_with(key, || Ok::<_, Infallible>(1.5))
            .unwrap();
        assert_eq!(*v, 1.5);
    }
}

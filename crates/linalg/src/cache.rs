//! Generic process-wide caching of derived matrix factorizations.
//!
//! The covariance matrices driving correlated-Rayleigh generation are small
//! but expensive to decompose relative to the per-block work, and realistic
//! deployments open *many* generators over a handful of distinct matrices —
//! one per named scenario. [`FactorCache`] is the shared storage behind
//! those "pay for the decomposition once per process" paths: a bounded,
//! mutex-guarded map from the **exact bit pattern** of a matrix
//! ([`MatrixKey`]) to an `Arc` of whatever was derived from it (an
//! eigen-coloring, a Cholesky factor, …).
//!
//! Keying on `f64::to_bits` of every entry makes cache hits *trivially*
//! bit-identical to the uncached path: a hit returns the very value a fresh
//! computation of the same input would have produced (the factorizations in
//! this workspace are deterministic functions of their input), so the
//! golden/determinism guarantees of the scalar kernel backend carry over
//! unchanged.
//!
//! Hit/miss/eviction counters are exposed through [`FactorCache::stats`] so
//! integration tests can observe sharing (e.g. two scenarios with the same
//! covariance spec must produce exactly one decomposition).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::matrix::CMatrix;

/// The exact bit pattern of a complex matrix: shape plus `f64::to_bits` of
/// every entry's real and imaginary part, in row-major order.
///
/// Two matrices map to the same key **iff** they are bitwise identical
/// (`0.0` and `-0.0` differ, as do distinct NaN payloads — both are the
/// conservative choice for a cache that promises bit-identical results).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MatrixKey {
    rows: usize,
    cols: usize,
    bits: Vec<u64>,
}

impl MatrixKey {
    /// Captures the key of a matrix.
    #[must_use]
    pub fn of(matrix: &CMatrix) -> Self {
        let mut bits = Vec::with_capacity(2 * matrix.as_slice().len());
        for z in matrix.as_slice() {
            bits.push(z.re.to_bits());
            bits.push(z.im.to_bits());
        }
        Self {
            rows: matrix.rows(),
            cols: matrix.cols(),
            bits,
        }
    }
}

/// Counters of one [`FactorCache`], read with [`FactorCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and store) a fresh value.
    pub misses: u64,
    /// Entries dropped because the cache was at capacity.
    pub evictions: u64,
    /// Entries currently stored.
    pub entries: usize,
}

/// A bounded, process-wide map from [`MatrixKey`] to a shared derived value.
///
/// Designed to live in a `static`: construction is `const`, and all state is
/// behind a `Mutex` + atomics. The value is computed **while holding the
/// lock**, so concurrent first requests for the same key serialize and the
/// expensive factorization is never performed twice; every later request is
/// a cheap clone of the stored `Arc`.
///
/// When full, the entry with the smallest key is evicted — deterministic and
/// cheap; with capacities far above the number of distinct matrices a
/// workload touches (the scenario registry holds a few dozen), eviction is a
/// safety valve against unbounded growth (e.g. property tests feeding random
/// matrices), not a tuned replacement policy.
#[derive(Debug)]
pub struct FactorCache<T> {
    entries: Mutex<BTreeMap<MatrixKey, Arc<T>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<T> FactorCache<T> {
    /// Creates an empty cache holding at most `capacity` entries
    /// (`capacity == 0` disables storage: every lookup recomputes).
    #[must_use]
    pub const fn new(capacity: usize) -> Self {
        Self {
            entries: Mutex::new(BTreeMap::new()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the cached value for `key`, computing and storing it with
    /// `compute` on a miss.
    ///
    /// # Errors
    /// Propagates `compute`'s error; nothing is stored or counted as a miss
    /// when the computation fails.
    pub fn get_or_try_insert_with<E>(
        &self,
        key: MatrixKey,
        compute: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E> {
        let mut map = self.entries.lock().unwrap();
        if let Some(hit) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        let value = Arc::new(compute()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        if self.capacity > 0 {
            if map.len() >= self.capacity {
                let evict = map.keys().next().cloned();
                if let Some(evict) = evict {
                    map.remove(&evict);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            map.insert(key, Arc::clone(&value));
        }
        Ok(value)
    }

    /// Current counters. `hits`/`misses`/`evictions` are monotone over the
    /// process lifetime (they survive [`FactorCache::clear`]).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.entries.lock().unwrap().len(),
        }
    }

    /// Drops every stored entry (outstanding `Arc`s stay alive). Counters
    /// are not reset.
    pub fn clear(&self) {
        self.entries.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use std::convert::Infallible;

    fn mat(seed: f64) -> CMatrix {
        CMatrix::from_fn(2, 2, |i, j| c64(seed + i as f64, j as f64 - seed))
    }

    #[test]
    fn keys_are_bitwise_exact() {
        assert_eq!(MatrixKey::of(&mat(1.0)), MatrixKey::of(&mat(1.0)));
        assert_ne!(MatrixKey::of(&mat(1.0)), MatrixKey::of(&mat(2.0)));
        // Same values, different shape.
        let row = CMatrix::from_real_slice(1, 4, &[1.0, 0.0, 0.0, 1.0]);
        let sq = CMatrix::from_real_slice(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_ne!(MatrixKey::of(&row), MatrixKey::of(&sq));
        // -0.0 is a different bit pattern than 0.0 — conservative miss.
        let neg = CMatrix::from_real_slice(2, 2, &[1.0, -0.0, 0.0, 1.0]);
        assert_ne!(MatrixKey::of(&neg), MatrixKey::of(&sq));
    }

    #[test]
    fn hits_share_one_computation() {
        let cache: FactorCache<f64> = FactorCache::new(8);
        let mut computed = 0usize;
        for _ in 0..3 {
            let v = cache
                .get_or_try_insert_with(MatrixKey::of(&mat(1.0)), || {
                    computed += 1;
                    Ok::<_, Infallible>(42.0)
                })
                .unwrap();
            assert_eq!(*v, 42.0);
        }
        assert_eq!(computed, 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 1, 1));
    }

    #[test]
    fn errors_are_propagated_and_not_stored() {
        let cache: FactorCache<f64> = FactorCache::new(8);
        let err = cache.get_or_try_insert_with(MatrixKey::of(&mat(1.0)), || Err::<f64, _>("nope"));
        assert_eq!(err.unwrap_err(), "nope");
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn capacity_bounds_the_store() {
        let cache: FactorCache<usize> = FactorCache::new(2);
        for i in 0..5usize {
            cache
                .get_or_try_insert_with(MatrixKey::of(&mat(i as f64)), || Ok::<_, Infallible>(i))
                .unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 3);

        let disabled: FactorCache<usize> = FactorCache::new(0);
        for _ in 0..2 {
            disabled
                .get_or_try_insert_with(MatrixKey::of(&mat(0.0)), || Ok::<_, Infallible>(1))
                .unwrap();
        }
        assert_eq!(disabled.stats().entries, 0);
        assert_eq!(disabled.stats().misses, 2, "capacity 0 always recomputes");
    }

    #[test]
    fn clear_keeps_counters_and_outstanding_arcs() {
        let cache: FactorCache<f64> = FactorCache::new(4);
        let v = cache
            .get_or_try_insert_with(MatrixKey::of(&mat(1.0)), || Ok::<_, Infallible>(7.0))
            .unwrap();
        cache.clear();
        assert_eq!(*v, 7.0);
        let s = cache.stats();
        assert_eq!((s.misses, s.entries), (1, 0));
    }
}

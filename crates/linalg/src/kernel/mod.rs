//! Runtime-dispatched numeric kernels for the generation hot paths.
//!
//! Every hot loop of the workspace — the coloring matvec `Z = L·W/σ_g`, the
//! planar covariance fold, the envelope (modulus) pass and the IDFT
//! butterflies over in `corrfade-dsp` — funnels through this module, which
//! selects one of two backends **once per process**:
//!
//! * [`Backend::Scalar`] — the original, easily-audited element-at-a-time
//!   loops. This backend is the **bit-exact reference**: every *generation
//!   output* (RNG draws, coloring, IDFT generation, envelopes, covariance
//!   folds) is identical, bit for bit, to every release before the kernel
//!   layer existed, and the determinism/golden tests pin it via
//!   `CORRFADE_KERNEL=scalar`. (Analysis helpers that gained the real-FFT
//!   specialization — e.g. the Doppler filter's autocorrelation kernel —
//!   use it on every backend and agree with their pre-kernel values to
//!   ≤ 1e-12 rather than bitwise.)
//! * [`Backend::Vector`] — cache-blocked, split-complex (planar re/im)
//!   kernels written as fixed-width lane loops that LLVM autovectorizes; on
//!   `x86_64` the inner loops are additionally compiled as AVX2+FMA
//!   multiversions and selected by runtime CPU-feature detection. Results
//!   agree with the scalar backend to ≤ 1e-12 (absolute, for unit-scale
//!   data) but are *not* bit-identical — summation orders differ.
//!
//! # Selection
//!
//! The backend is latched on first use from the `CORRFADE_KERNEL`
//! environment variable:
//!
//! | value                | effect                                         |
//! |----------------------|------------------------------------------------|
//! | `scalar`             | force the bit-exact reference backend          |
//! | `vector` / `simd`    | force the vectorized backend                   |
//! | `auto` / unset       | vectorized backend (its generic lane loops are |
//! |                      | a win on every supported ISA); AVX2+FMA inner  |
//! |                      | kernels only where the CPU reports support     |
//!
//! Any other value panics — a typo silently falling back would make
//! determinism hunts miserable.
//!
//! Every kernel also has a `*_with(backend, …)` variant taking the backend
//! explicitly; the dispatched wrappers simply pass [`backend()`]. The
//! `_with` variants are what the scalar-vs-vector equivalence proptests and
//! the `kernel_dispatch` benchmark drive.

use std::sync::OnceLock;

use crate::complex::Complex64;
use crate::complex32::Complex32;

mod scalar;
mod vector;

/// The two kernel implementations. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Element-at-a-time reference loops — bit-exact with the pre-kernel
    /// releases.
    Scalar,
    /// Cache-blocked planar lane loops (AVX2+FMA multiversioned on
    /// `x86_64`), ≤ 1e-12 from scalar.
    Vector,
}

impl Backend {
    /// Human-readable name, including the instruction set the vector
    /// backend resolved to on this machine.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Vector => {
                if vector::has_fma_isa() {
                    "vector (x86_64 avx2+fma)"
                } else {
                    "vector (generic lanes)"
                }
            }
        }
    }
}

/// `true` when the vector backend's AVX2+FMA inner-loop multiversions are
/// active on this CPU (always `false` off `x86_64`). Exposed so other
/// crates' kernels (e.g. the FFT butterflies in `corrfade-dsp`) can reuse
/// the same latched detection.
#[must_use]
pub fn vector_uses_fma() -> bool {
    vector::has_fma_isa()
}

/// Parses a `CORRFADE_KERNEL` value (`None` = variable unset) into a
/// backend. Values are trimmed and matched case-insensitively; anything
/// else — including an empty or whitespace-only string — is rejected with
/// a diagnostic naming the variable, the offending value and the accepted
/// forms, so a typo can never silently fall back to the default backend.
///
/// # Errors
/// A human-readable diagnostic for any unrecognized value.
pub fn parse_backend(value: Option<&str>) -> Result<Backend, String> {
    let Some(raw) = value else {
        return Ok(Backend::Vector);
    };
    match raw.trim().to_ascii_lowercase().as_str() {
        "scalar" => Ok(Backend::Scalar),
        "vector" | "simd" => Ok(Backend::Vector),
        "auto" => Ok(Backend::Vector),
        _ => Err(format!(
            "CORRFADE_KERNEL={raw:?} is not recognized \
             (expected \"scalar\", \"vector\"/\"simd\" or \"auto\"; \
             unset the variable for the default)"
        )),
    }
}

/// The process-wide backend, latched from `CORRFADE_KERNEL` on first call.
///
/// # Panics
/// Panics if `CORRFADE_KERNEL` is set to an unrecognized value (see
/// [`parse_backend`]) — a typo silently falling back would make
/// determinism hunts miserable.
pub fn backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        let value = std::env::var("CORRFADE_KERNEL").ok();
        match parse_backend(value.as_deref()) {
            Ok(backend) => backend,
            Err(diagnostic) => panic!("{diagnostic}"),
        }
    })
}

// ---------------------------------------------------------------------------
// Split-complex (planar) views
// ---------------------------------------------------------------------------

/// Splits an AoS complex slice into planar re/im lanes:
/// `re[i] = src[i].re`, `im[i] = src[i].im`.
///
/// This is the layout conversion behind the vector backend's split-complex
/// kernels: planar `f64` lanes keep every FMA operand contiguous, where the
/// interleaved `Complex64` layout forces shuffles.
///
/// # Panics
/// Panics if the three slices have different lengths.
pub fn deinterleave_into(src: &[Complex64], re: &mut [f64], im: &mut [f64]) {
    assert!(
        src.len() == re.len() && src.len() == im.len(),
        "deinterleave_into: length mismatch ({} vs {}/{})",
        src.len(),
        re.len(),
        im.len()
    );
    for ((z, r), i) in src.iter().zip(re.iter_mut()).zip(im.iter_mut()) {
        *r = z.re;
        *i = z.im;
    }
}

/// Recombines planar re/im lanes into an AoS complex slice, scaling by a
/// real factor on the way: `dst[i] = scale · (re[i] + i·im[i])`.
///
/// # Panics
/// Panics if the three slices have different lengths.
pub fn interleave_scaled_into(re: &[f64], im: &[f64], scale: f64, dst: &mut [Complex64]) {
    assert!(
        dst.len() == re.len() && dst.len() == im.len(),
        "interleave_scaled_into: length mismatch ({} vs {}/{})",
        dst.len(),
        re.len(),
        im.len()
    );
    for ((z, &r), &i) in dst.iter_mut().zip(re.iter()).zip(im.iter()) {
        z.re = scale * r;
        z.im = scale * i;
    }
}

/// [`deinterleave_into`] for `f32` planes — the fast-tier layout conversion.
///
/// # Panics
/// Panics if the three slices have different lengths.
pub fn deinterleave_into_f32(src: &[Complex32], re: &mut [f32], im: &mut [f32]) {
    assert!(
        src.len() == re.len() && src.len() == im.len(),
        "deinterleave_into_f32: length mismatch ({} vs {}/{})",
        src.len(),
        re.len(),
        im.len()
    );
    for ((z, r), i) in src.iter().zip(re.iter_mut()).zip(im.iter_mut()) {
        *r = z.re;
        *i = z.im;
    }
}

/// [`interleave_scaled_into`] for `f32` planes.
///
/// # Panics
/// Panics if the three slices have different lengths.
pub fn interleave_scaled_into_f32(re: &[f32], im: &[f32], scale: f32, dst: &mut [Complex32]) {
    assert!(
        dst.len() == re.len() && dst.len() == im.len(),
        "interleave_scaled_into_f32: length mismatch ({} vs {}/{})",
        dst.len(),
        re.len(),
        im.len()
    );
    for ((z, &r), &i) in dst.iter_mut().zip(re.iter()).zip(im.iter()) {
        z.re = scale * r;
        z.im = scale * i;
    }
}

/// The vector backend's planar complex AXPY `y ← y + (ar + i·ai)·x`,
/// FMA-multiversioned by the same latched CPU detection as every other
/// vector kernel. Exposed so the fused coloring+IDFT kernel in
/// `corrfade-dsp` accumulates with **exactly** the same inner loop (and
/// therefore the same per-element operation sequence) as
/// [`color_block_with`] on [`Backend::Vector`].
///
/// # Panics
/// Panics if the four plane slices have different lengths.
pub fn axpy_planar(ar: f64, ai: f64, xre: &[f64], xim: &[f64], yre: &mut [f64], yim: &mut [f64]) {
    assert!(
        xre.len() == xim.len() && xre.len() == yre.len() && xre.len() == yim.len(),
        "axpy_planar: plane length mismatch"
    );
    vector::axpy_planar(ar, ai, xre, xim, yre, yim);
}

/// [`axpy_planar`] for `f32` planes.
///
/// # Panics
/// Panics if the four plane slices have different lengths.
pub fn axpy_planar_f32(
    ar: f32,
    ai: f32,
    xre: &[f32],
    xim: &[f32],
    yre: &mut [f32],
    yim: &mut [f32],
) {
    assert!(
        xre.len() == xim.len() && xre.len() == yre.len() && xre.len() == yim.len(),
        "axpy_planar_f32: plane length mismatch"
    );
    vector::axpy_planar32(ar, ai, xre, xim, yre, yim);
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

/// Complex matrix–vector product `y = A·x` for a row-major `rows × cols`
/// matrix (the per-snapshot coloring step), on the process-wide backend.
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn matvec_into(
    rows: usize,
    cols: usize,
    a: &[Complex64],
    x: &[Complex64],
    y: &mut [Complex64],
) {
    matvec_into_with(backend(), rows, cols, a, x, y);
}

/// [`matvec_into`] on an explicit backend.
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn matvec_into_with(
    b: Backend,
    rows: usize,
    cols: usize,
    a: &[Complex64],
    x: &[Complex64],
    y: &mut [Complex64],
) {
    assert_eq!(a.len(), rows * cols, "matvec: matrix storage length");
    assert_eq!(x.len(), cols, "matvec: input length");
    assert_eq!(y.len(), rows, "matvec: output length");
    match b {
        Backend::Scalar => scalar::matvec_into(cols, a, x, y),
        Backend::Vector => vector::matvec_into(cols, a, x, y),
    }
}

/// Number of time samples per cache tile of [`color_block_with`]. One tile's
/// working set is `(2·N + 2)·TILE` doubles — 16 KiB for the paper's `N = 3`,
/// comfortably inside L1 together with the coloring matrix.
pub const COLOR_TILE: usize = 256;

/// The real-time coloring hot loop: for every time sample `l` of a planar
/// `N × M` block, `out[i·m + l] = scale · Σ_j a[i·n + j] · raw[j·m + l]`
/// (i.e. `Z[l] = scale · L·W[l]` with `W[l]` gathered across the planar
/// rows), on the process-wide backend.
///
/// The scalar backend reproduces the historical per-instant
/// gather → dot → scatter loop bit for bit. The vector backend deinterleaves
/// one [`COLOR_TILE`]-sample tile of all `N` rows into split-complex planes
/// (`scratch`, grown on first use and reused), accumulates the `N²`
/// planar AXPYs with FMA lane loops, and interleaves the scaled result back —
/// cache-blocked so every tile stays in L1.
///
/// `w_scratch` and `scratch` are caller-pooled buffers (resized on first
/// use); with warm buffers the call performs no heap allocation.
///
/// # Panics
/// Panics on any dimension mismatch.
#[allow(clippy::too_many_arguments)]
pub fn color_block(
    n: usize,
    m: usize,
    a: &[Complex64],
    scale: f64,
    raw: &[Complex64],
    out: &mut [Complex64],
    w_scratch: &mut Vec<Complex64>,
    scratch: &mut Vec<f64>,
) {
    color_block_with(backend(), n, m, a, scale, raw, out, w_scratch, scratch);
}

/// [`color_block`] on an explicit backend.
///
/// # Panics
/// Panics on any dimension mismatch.
#[allow(clippy::too_many_arguments)]
pub fn color_block_with(
    b: Backend,
    n: usize,
    m: usize,
    a: &[Complex64],
    scale: f64,
    raw: &[Complex64],
    out: &mut [Complex64],
    w_scratch: &mut Vec<Complex64>,
    scratch: &mut Vec<f64>,
) {
    assert_eq!(a.len(), n * n, "color_block: coloring matrix storage");
    assert_eq!(raw.len(), n * m, "color_block: raw block length");
    assert_eq!(out.len(), n * m, "color_block: output block length");
    match b {
        Backend::Scalar => scalar::color_block(n, m, a, scale, raw, out, w_scratch),
        Backend::Vector => vector::color_block(n, m, a, scale, raw, out, scratch),
    }
}

/// Folds the outer products `acc[a·n + b] += Σ_l z_a[l]·conj(z_b[l])` of a
/// planar `N × M` block into an `N × N` accumulator, on the process-wide
/// backend.
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn accumulate_covariance(n: usize, m: usize, data: &[Complex64], acc: &mut [Complex64]) {
    accumulate_covariance_with(backend(), n, m, data, acc);
}

/// [`accumulate_covariance`] on an explicit backend.
///
/// The scalar backend sums sample-major (`l` outermost), matching a fold
/// over materialized snapshot vectors bit for bit. The vector backend
/// processes envelope pairs `(a, b)`, `a ≤ b`, with multi-lane reductions
/// over the two contiguous rows and mirrors the Hermitian image — the
/// mirrored term `z_b·conj(z_a) = conj(z_a·conj(z_b))` is exact in floating
/// point, so only the summation *order* differs from scalar.
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn accumulate_covariance_with(
    b: Backend,
    n: usize,
    m: usize,
    data: &[Complex64],
    acc: &mut [Complex64],
) {
    assert_eq!(data.len(), n * m, "accumulate_covariance: block length");
    assert_eq!(
        acc.len(),
        n * n,
        "accumulate_covariance: accumulator length"
    );
    match b {
        Backend::Scalar => scalar::accumulate_covariance(n, m, data, acc),
        Backend::Vector => vector::accumulate_covariance(n, m, data, acc),
    }
}

/// Writes the moduli `env[i] = |data[i]|` (the Rayleigh envelope pass), on
/// the process-wide backend.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn envelope_into(data: &[Complex64], env: &mut [f64]) {
    envelope_into_with(backend(), data, env);
}

/// [`envelope_into`] on an explicit backend. Scalar uses `hypot` (never
/// spuriously over/underflows); vector uses `√(re² + im²)` lane loops, which
/// agree to ≤ 1e-12 for all non-extreme magnitudes the generators produce.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn envelope_into_with(b: Backend, data: &[Complex64], env: &mut [f64]) {
    assert_eq!(data.len(), env.len(), "envelope_into: length mismatch");
    match b {
        Backend::Scalar => scalar::envelope_into(data, env),
        Backend::Vector => vector::envelope_into(data, env),
    }
}

// ---------------------------------------------------------------------------
// f32 fast-tier kernels
// ---------------------------------------------------------------------------
//
// Same dispatch story at half width. Unlike the f64 pair, *neither* f32
// backend carries a historical bit-exactness obligation — the tier is new —
// so the scalar f32 kernels are simply the reference shapes transliterated
// and the two backends cross-check each other in the proptest suite. The
// documented contract is agreement with the f64 reference to the f32 tier's
// error bound (see `ARCHITECTURE.md`, "Precision tiers").

/// [`matvec_into`] in `f32`, on the process-wide backend.
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn matvec_into_f32(
    rows: usize,
    cols: usize,
    a: &[Complex32],
    x: &[Complex32],
    y: &mut [Complex32],
) {
    matvec_into_f32_with(backend(), rows, cols, a, x, y);
}

/// [`matvec_into_f32`] on an explicit backend.
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn matvec_into_f32_with(
    b: Backend,
    rows: usize,
    cols: usize,
    a: &[Complex32],
    x: &[Complex32],
    y: &mut [Complex32],
) {
    assert_eq!(a.len(), rows * cols, "matvec_f32: matrix storage length");
    assert_eq!(x.len(), cols, "matvec_f32: input length");
    assert_eq!(y.len(), rows, "matvec_f32: output length");
    match b {
        Backend::Scalar => scalar::matvec_into32(cols, a, x, y),
        Backend::Vector => vector::matvec_into32(cols, a, x, y),
    }
}

/// [`color_block`] in `f32`, on the process-wide backend. Same tiling, same
/// caller-pooled scratch contract, half the memory traffic.
///
/// # Panics
/// Panics on any dimension mismatch.
#[allow(clippy::too_many_arguments)]
pub fn color_block_f32(
    n: usize,
    m: usize,
    a: &[Complex32],
    scale: f32,
    raw: &[Complex32],
    out: &mut [Complex32],
    w_scratch: &mut Vec<Complex32>,
    scratch: &mut Vec<f32>,
) {
    color_block_f32_with(backend(), n, m, a, scale, raw, out, w_scratch, scratch);
}

/// [`color_block_f32`] on an explicit backend.
///
/// # Panics
/// Panics on any dimension mismatch.
#[allow(clippy::too_many_arguments)]
pub fn color_block_f32_with(
    b: Backend,
    n: usize,
    m: usize,
    a: &[Complex32],
    scale: f32,
    raw: &[Complex32],
    out: &mut [Complex32],
    w_scratch: &mut Vec<Complex32>,
    scratch: &mut Vec<f32>,
) {
    assert_eq!(a.len(), n * n, "color_block_f32: coloring matrix storage");
    assert_eq!(raw.len(), n * m, "color_block_f32: raw block length");
    assert_eq!(out.len(), n * m, "color_block_f32: output block length");
    match b {
        Backend::Scalar => scalar::color_block32(n, m, a, scale, raw, out, w_scratch),
        Backend::Vector => vector::color_block32(n, m, a, scale, raw, out, scratch),
    }
}

/// [`accumulate_covariance`] over `f32` samples, folding into an **`f64`**
/// accumulator (covariance analysis never narrows), on the process-wide
/// backend.
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn accumulate_covariance_f32(n: usize, m: usize, data: &[Complex32], acc: &mut [Complex64]) {
    accumulate_covariance_f32_with(backend(), n, m, data, acc);
}

/// [`accumulate_covariance_f32`] on an explicit backend.
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn accumulate_covariance_f32_with(
    b: Backend,
    n: usize,
    m: usize,
    data: &[Complex32],
    acc: &mut [Complex64],
) {
    assert_eq!(data.len(), n * m, "accumulate_covariance_f32: block length");
    assert_eq!(
        acc.len(),
        n * n,
        "accumulate_covariance_f32: accumulator length"
    );
    match b {
        Backend::Scalar => scalar::accumulate_covariance32(n, m, data, acc),
        Backend::Vector => vector::accumulate_covariance32(n, m, data, acc),
    }
}

/// [`envelope_into`] in `f32`, on the process-wide backend. Both backends
/// compute the widened `√(re² + im²)` of [`Complex32::abs`], so the f32
/// envelope is backend-independent bit for bit.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn envelope_into_f32(data: &[Complex32], env: &mut [f32]) {
    envelope_into_f32_with(backend(), data, env);
}

/// [`envelope_into_f32`] on an explicit backend.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn envelope_into_f32_with(b: Backend, data: &[Complex32], env: &mut [f32]) {
    assert_eq!(data.len(), env.len(), "envelope_into_f32: length mismatch");
    match b {
        Backend::Scalar => scalar::envelope_into32(data, env),
        Backend::Vector => vector::envelope_into32(data, env),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn block(n: usize, m: usize) -> Vec<Complex64> {
        (0..n * m)
            .map(|i| {
                let t = i as f64;
                c64((0.37 * t).sin(), (0.71 * t).cos() * 0.5)
            })
            .collect()
    }

    #[test]
    fn backend_latch_is_stable_and_describable() {
        let b = backend();
        assert_eq!(b, backend());
        assert!(!b.describe().is_empty());
        assert_eq!(Backend::Scalar.describe(), "scalar");
    }

    #[test]
    fn interleave_round_trip() {
        let src = block(1, 9);
        let mut re = vec![0.0; 9];
        let mut im = vec![0.0; 9];
        deinterleave_into(&src, &mut re, &mut im);
        let mut dst = vec![Complex64::ZERO; 9];
        interleave_scaled_into(&re, &im, 1.0, &mut dst);
        assert_eq!(src, dst);
        interleave_scaled_into(&re, &im, 2.0, &mut dst);
        assert_eq!(dst[3], src[3].scale(2.0));
    }

    #[test]
    fn matvec_backends_agree() {
        for n in [1usize, 2, 3, 5, 8, 13] {
            let a = block(n, n);
            let x = block(1, n);
            let mut ys = vec![Complex64::ZERO; n];
            let mut yv = vec![Complex64::ZERO; n];
            matvec_into_with(Backend::Scalar, n, n, &a, &x, &mut ys);
            matvec_into_with(Backend::Vector, n, n, &a, &x, &mut yv);
            for (s, v) in ys.iter().zip(yv.iter()) {
                assert!(s.approx_eq(*v, 1e-12), "n={n}: {s} vs {v}");
            }
        }
    }

    #[test]
    fn color_block_backends_agree() {
        for (n, m) in [(1usize, 7usize), (3, 515), (4, 256), (6, 33)] {
            let a = block(n, n);
            let raw = block(n, m);
            let mut outs = vec![Complex64::ZERO; n * m];
            let mut outv = vec![Complex64::ZERO; n * m];
            let mut w = Vec::new();
            let mut planes = Vec::new();
            color_block_with(
                Backend::Scalar,
                n,
                m,
                &a,
                0.7,
                &raw,
                &mut outs,
                &mut w,
                &mut planes,
            );
            color_block_with(
                Backend::Vector,
                n,
                m,
                &a,
                0.7,
                &raw,
                &mut outv,
                &mut w,
                &mut planes,
            );
            for (s, v) in outs.iter().zip(outv.iter()) {
                assert!(s.approx_eq(*v, 1e-12), "n={n} m={m}: {s} vs {v}");
            }
        }
    }

    #[test]
    fn accumulate_covariance_backends_agree() {
        for (n, m) in [(1usize, 5usize), (2, 130), (3, 257), (5, 64)] {
            let data = block(n, m);
            let mut accs = vec![Complex64::ZERO; n * n];
            let mut accv = vec![Complex64::ZERO; n * n];
            accumulate_covariance_with(Backend::Scalar, n, m, &data, &mut accs);
            accumulate_covariance_with(Backend::Vector, n, m, &data, &mut accv);
            for (s, v) in accs.iter().zip(accv.iter()) {
                assert!(s.approx_eq(*v, 1e-10 * m as f64), "n={n} m={m}: {s} vs {v}");
            }
        }
    }

    #[test]
    fn envelope_backends_agree() {
        let data = block(1, 77);
        let mut es = vec![0.0; 77];
        let mut ev = vec![0.0; 77];
        envelope_into_with(Backend::Scalar, &data, &mut es);
        envelope_into_with(Backend::Vector, &data, &mut ev);
        for (s, v) in es.iter().zip(ev.iter()) {
            assert!((s - v).abs() <= 1e-12, "{s} vs {v}");
        }
    }

    #[test]
    #[should_panic(expected = "matvec: input length")]
    fn matvec_checks_dimensions() {
        let mut y = [Complex64::ZERO; 2];
        matvec_into_with(Backend::Scalar, 2, 2, &[Complex64::ZERO; 4], &[], &mut y);
    }

    #[test]
    fn backend_spec_parsing_accepts_documented_forms() {
        assert_eq!(parse_backend(None), Ok(Backend::Vector));
        assert_eq!(parse_backend(Some("scalar")), Ok(Backend::Scalar));
        assert_eq!(parse_backend(Some("vector")), Ok(Backend::Vector));
        assert_eq!(parse_backend(Some("simd")), Ok(Backend::Vector));
        assert_eq!(parse_backend(Some("auto")), Ok(Backend::Vector));
        // Trimmed and case-insensitive — shell quoting mishaps are not
        // configuration errors.
        assert_eq!(parse_backend(Some(" Scalar ")), Ok(Backend::Scalar));
        assert_eq!(parse_backend(Some("VECTOR")), Ok(Backend::Vector));
    }

    #[test]
    fn backend_spec_parsing_rejects_garbage_with_a_diagnostic() {
        for bad in ["", "  ", "scaler", "sse", "1", "scalar,vector"] {
            let err = parse_backend(Some(bad)).unwrap_err();
            assert!(
                err.contains("CORRFADE_KERNEL") && err.contains("expected"),
                "diagnostic must name the variable and the accepted forms: {err}"
            );
            assert!(
                err.contains(&format!("{bad:?}")),
                "diagnostic must quote the offending value: {err}"
            );
        }
    }

    fn block32(n: usize, m: usize) -> Vec<Complex32> {
        block(n, m).into_iter().map(Complex32::narrow).collect()
    }

    #[test]
    fn interleave_f32_round_trip() {
        let src = block32(1, 9);
        let mut re = vec![0.0f32; 9];
        let mut im = vec![0.0f32; 9];
        deinterleave_into_f32(&src, &mut re, &mut im);
        let mut dst = vec![Complex32::ZERO; 9];
        interleave_scaled_into_f32(&re, &im, 1.0, &mut dst);
        assert_eq!(src, dst);
        interleave_scaled_into_f32(&re, &im, 2.0, &mut dst);
        assert_eq!(dst[3], src[3].scale(2.0));
    }

    #[test]
    fn matvec_f32_backends_agree() {
        for n in [1usize, 2, 3, 5, 8, 13, 17] {
            let a = block32(n, n);
            let x = block32(1, n);
            let mut ys = vec![Complex32::ZERO; n];
            let mut yv = vec![Complex32::ZERO; n];
            matvec_into_f32_with(Backend::Scalar, n, n, &a, &x, &mut ys);
            matvec_into_f32_with(Backend::Vector, n, n, &a, &x, &mut yv);
            for (s, v) in ys.iter().zip(yv.iter()) {
                assert!(
                    (s.re - v.re).abs() <= 1e-5 && (s.im - v.im).abs() <= 1e-5,
                    "n={n}: {s} vs {v}"
                );
            }
        }
    }

    #[test]
    fn color_block_f32_backends_agree() {
        for (n, m) in [(1usize, 7usize), (3, 515), (4, 256), (6, 33)] {
            let a = block32(n, n);
            let raw = block32(n, m);
            let mut outs = vec![Complex32::ZERO; n * m];
            let mut outv = vec![Complex32::ZERO; n * m];
            let mut w = Vec::new();
            let mut planes = Vec::new();
            color_block_f32_with(
                Backend::Scalar,
                n,
                m,
                &a,
                0.7,
                &raw,
                &mut outs,
                &mut w,
                &mut planes,
            );
            color_block_f32_with(
                Backend::Vector,
                n,
                m,
                &a,
                0.7,
                &raw,
                &mut outv,
                &mut w,
                &mut planes,
            );
            for (s, v) in outs.iter().zip(outv.iter()) {
                assert!(
                    (s.re - v.re).abs() <= 1e-4 && (s.im - v.im).abs() <= 1e-4,
                    "n={n} m={m}: {s} vs {v}"
                );
            }
        }
    }

    #[test]
    fn accumulate_covariance_f32_backends_agree_and_accumulate_in_f64() {
        for (n, m) in [(1usize, 5usize), (2, 130), (3, 257), (5, 64)] {
            let data = block32(n, m);
            let mut accs = vec![Complex64::ZERO; n * n];
            let mut accv = vec![Complex64::ZERO; n * n];
            accumulate_covariance_f32_with(Backend::Scalar, n, m, &data, &mut accs);
            accumulate_covariance_f32_with(Backend::Vector, n, m, &data, &mut accv);
            for (s, v) in accs.iter().zip(accv.iter()) {
                assert!(s.approx_eq(*v, 1e-10 * m as f64), "n={n} m={m}: {s} vs {v}");
            }
        }
    }

    #[test]
    fn envelope_f32_backends_are_bit_identical() {
        let data = block32(1, 77);
        let mut es = vec![0.0f32; 77];
        let mut ev = vec![0.0f32; 77];
        envelope_into_f32_with(Backend::Scalar, &data, &mut es);
        envelope_into_f32_with(Backend::Vector, &data, &mut ev);
        for (s, v) in es.iter().zip(ev.iter()) {
            assert_eq!(s.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn axpy_planar_matches_color_block_inner_loop() {
        // One AXPY accumulated by hand must equal a 1×m color_block with a
        // single coefficient and unit scale, on the vector backend.
        let m = 37;
        let raw = block(1, m);
        let c = c64(0.8, -0.3);
        let mut xre = vec![0.0; m];
        let mut xim = vec![0.0; m];
        deinterleave_into(&raw, &mut xre, &mut xim);
        let mut yre = vec![0.0; m];
        let mut yim = vec![0.0; m];
        axpy_planar(c.re, c.im, &xre, &xim, &mut yre, &mut yim);
        let mut expected = vec![Complex64::ZERO; m];
        let mut w = Vec::new();
        let mut planes = Vec::new();
        color_block_with(
            Backend::Vector,
            1,
            m,
            &[c],
            1.0,
            &raw,
            &mut expected,
            &mut w,
            &mut planes,
        );
        let mut got = vec![Complex64::ZERO; m];
        interleave_scaled_into(&yre, &yim, 1.0, &mut got);
        assert_eq!(got, expected);

        // Same story at half width.
        let raw32 = block32(1, m);
        let c32v = Complex32::narrow(c);
        let mut xre = vec![0.0f32; m];
        let mut xim = vec![0.0f32; m];
        deinterleave_into_f32(&raw32, &mut xre, &mut xim);
        let mut yre = vec![0.0f32; m];
        let mut yim = vec![0.0f32; m];
        axpy_planar_f32(c32v.re, c32v.im, &xre, &xim, &mut yre, &mut yim);
        let mut expected32 = vec![Complex32::ZERO; m];
        let mut w32 = Vec::new();
        let mut planes32 = Vec::new();
        color_block_f32_with(
            Backend::Vector,
            1,
            m,
            &[c32v],
            1.0,
            &raw32,
            &mut expected32,
            &mut w32,
            &mut planes32,
        );
        let mut got32 = vec![Complex32::ZERO; m];
        interleave_scaled_into_f32(&yre, &yim, 1.0, &mut got32);
        assert_eq!(got32, expected32);
    }

    #[test]
    fn f32_kernels_track_their_f64_references() {
        // The tier's error contract: f32 vs f64 within ~1e-4 absolute for
        // unit-scale data (documented bound 1e-3 with margin).
        let (n, m) = (3usize, 300usize);
        let a64 = block(n, n);
        let raw64 = block(n, m);
        let a32 = block32(n, n);
        let raw32 = block32(n, m);
        let mut out64 = vec![Complex64::ZERO; n * m];
        let mut out32 = vec![Complex32::ZERO; n * m];
        let (mut w, mut p) = (Vec::new(), Vec::new());
        let (mut w32, mut p32) = (Vec::new(), Vec::new());
        color_block(n, m, &a64, 0.9, &raw64, &mut out64, &mut w, &mut p);
        color_block_f32(n, m, &a32, 0.9, &raw32, &mut out32, &mut w32, &mut p32);
        for (s, v) in out64.iter().zip(out32.iter()) {
            let d = (*s - v.widen()).abs();
            assert!(d <= 1e-4, "{s} vs {v} (|Δ| = {d:e})");
        }
    }
}

//! The vectorized kernel backend.
//!
//! All routines are written as fixed-width lane loops over contiguous `f64`
//! data (split-complex planes, or interleaved pairs with per-lane
//! accumulators) that LLVM autovectorizes on every supported ISA. On
//! `x86_64` the inner loops are compiled a second time as AVX2+FMA
//! multiversions (`#[target_feature]` over a shared `#[inline(always)]`
//! body) and selected once per process by runtime CPU-feature detection —
//! the `f64::mul_add` calls in the FMA bodies become single `vfmadd`
//! instructions there, while the generic bodies stick to mul+add so they
//! never fall back to a libm `fma` call on hardware without the
//! instruction.
//!
//! Nothing here is bit-compatible with the scalar backend (summation orders
//! differ); the contract is agreement to ≤ 1e-12 for unit-scale data,
//! enforced by the `kernel_proptest` suite.

use std::sync::OnceLock;

use crate::complex::{c64, Complex64};
use crate::complex32::{c32, Complex32};

/// Lane width of the reduction kernels: wide enough to fill one AVX2
/// register per accumulator array and to give NEON a 2×-unrolled pair.
const LANES: usize = 4;

/// Lane width of the `f32` fast-tier kernels — half-width elements double
/// the lane count, so one AVX2 register still holds exactly one accumulator
/// array.
const LANES32: usize = 8;

/// `true` when the AVX2+FMA multiversions are usable on this CPU.
pub(super) fn has_fma_isa() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static CAPS: OnceLock<bool> = OnceLock::new();
        *CAPS.get_or_init(|| {
            std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        static CAPS: OnceLock<bool> = OnceLock::new();
        *CAPS.get_or_init(|| false)
    }
}

// ---------------------------------------------------------------------------
// Planar complex AXPY — the inner loop of the coloring kernel
// ---------------------------------------------------------------------------

/// `y ← y + (ar + i·ai)·x` over split-complex planes.
#[inline(always)]
fn axpy_planar_body<const FMA: bool>(
    ar: f64,
    ai: f64,
    xre: &[f64],
    xim: &[f64],
    yre: &mut [f64],
    yim: &mut [f64],
) {
    for ((yr, yi), (xr, xi)) in yre
        .iter_mut()
        .zip(yim.iter_mut())
        .zip(xre.iter().zip(xim.iter()))
    {
        if FMA {
            *yr = ar.mul_add(*xr, (-ai).mul_add(*xi, *yr));
            *yi = ar.mul_add(*xi, ai.mul_add(*xr, *yi));
        } else {
            *yr += ar * *xr - ai * *xi;
            *yi += ar * *xi + ai * *xr;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_planar_avx2(
    ar: f64,
    ai: f64,
    xre: &[f64],
    xim: &[f64],
    yre: &mut [f64],
    yim: &mut [f64],
) {
    axpy_planar_body::<true>(ar, ai, xre, xim, yre, yim);
}

#[inline]
pub(super) fn axpy_planar(
    ar: f64,
    ai: f64,
    xre: &[f64],
    xim: &[f64],
    yre: &mut [f64],
    yim: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    if has_fma_isa() {
        // SAFETY: guarded by the runtime AVX2+FMA detection above.
        unsafe { axpy_planar_avx2(ar, ai, xre, xim, yre, yim) };
        return;
    }
    axpy_planar_body::<false>(ar, ai, xre, xim, yre, yim);
}

/// Cache-blocked split-complex coloring: see `kernel::color_block_with`.
pub(super) fn color_block(
    n: usize,
    m: usize,
    a: &[Complex64],
    scale: f64,
    raw: &[Complex64],
    out: &mut [Complex64],
    scratch: &mut Vec<f64>,
) {
    if n == 0 || m == 0 {
        return;
    }
    let tile = super::COLOR_TILE.min(m);
    // Layout: N re-planes, N im-planes, one y re-plane, one y im-plane.
    scratch.resize((2 * n + 2) * tile, 0.0);
    let (x_planes, y_planes) = scratch.split_at_mut(2 * n * tile);
    let (xre_all, xim_all) = x_planes.split_at_mut(n * tile);
    let (yre, yim) = y_planes.split_at_mut(tile);

    let mut l0 = 0;
    while l0 < m {
        let t = tile.min(m - l0);
        for j in 0..n {
            let row = &raw[j * m + l0..j * m + l0 + t];
            super::deinterleave_into(
                row,
                &mut xre_all[j * tile..j * tile + t],
                &mut xim_all[j * tile..j * tile + t],
            );
        }
        for i in 0..n {
            yre[..t].fill(0.0);
            yim[..t].fill(0.0);
            for j in 0..n {
                let c = a[i * n + j];
                axpy_planar(
                    c.re,
                    c.im,
                    &xre_all[j * tile..j * tile + t],
                    &xim_all[j * tile..j * tile + t],
                    &mut yre[..t],
                    &mut yim[..t],
                );
            }
            super::interleave_scaled_into(
                &yre[..t],
                &yim[..t],
                scale,
                &mut out[i * m + l0..i * m + l0 + t],
            );
        }
        l0 += t;
    }
}

// ---------------------------------------------------------------------------
// Multi-lane complex reductions — matvec rows and covariance pairs
// ---------------------------------------------------------------------------

/// Reduces lane accumulators in a fixed, lane-order-independent-of-`m`
/// sequence.
#[inline(always)]
fn reduce_lanes(acc: &[f64; LANES]) -> f64 {
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Unconjugated dot `Σ aᵢ·bᵢ` with per-lane accumulators.
#[inline(always)]
fn dot_lanes_body<const FMA: bool>(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    let mut acc_re = [0.0f64; LANES];
    let mut acc_im = [0.0f64; LANES];
    let mut chunks_a = a.chunks_exact(LANES);
    let mut chunks_b = b.chunks_exact(LANES);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for ((p, q), (ar, ai)) in ca
            .iter()
            .zip(cb.iter())
            .zip(acc_re.iter_mut().zip(acc_im.iter_mut()))
        {
            if FMA {
                *ar = p.re.mul_add(q.re, (-p.im).mul_add(q.im, *ar));
                *ai = p.re.mul_add(q.im, p.im.mul_add(q.re, *ai));
            } else {
                *ar += p.re * q.re - p.im * q.im;
                *ai += p.re * q.im + p.im * q.re;
            }
        }
    }
    let mut re = reduce_lanes(&acc_re);
    let mut im = reduce_lanes(&acc_im);
    for (p, q) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        re += p.re * q.re - p.im * q.im;
        im += p.re * q.im + p.im * q.re;
    }
    c64(re, im)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_lanes_avx2(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    dot_lanes_body::<true>(a, b)
}

#[inline]
fn dot_lanes(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    #[cfg(target_arch = "x86_64")]
    if has_fma_isa() {
        // SAFETY: guarded by the runtime AVX2+FMA detection above.
        return unsafe { dot_lanes_avx2(a, b) };
    }
    dot_lanes_body::<false>(a, b)
}

/// `y = A·x` with the multi-lane dot kernel per row.
pub(super) fn matvec_into(cols: usize, a: &[Complex64], x: &[Complex64], y: &mut [Complex64]) {
    for (i, yi) in y.iter_mut().enumerate() {
        *yi = dot_lanes(&a[i * cols..(i + 1) * cols], x);
    }
}

/// `Σ_l z_a[l]·conj(z_b[l])` over two contiguous rows.
#[inline(always)]
fn pair_fold_body<const FMA: bool>(za: &[Complex64], zb: &[Complex64]) -> Complex64 {
    let mut acc_re = [0.0f64; LANES];
    let mut acc_im = [0.0f64; LANES];
    let mut chunks_a = za.chunks_exact(LANES);
    let mut chunks_b = zb.chunks_exact(LANES);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for ((p, q), (ar, ai)) in ca
            .iter()
            .zip(cb.iter())
            .zip(acc_re.iter_mut().zip(acc_im.iter_mut()))
        {
            if FMA {
                *ar = p.re.mul_add(q.re, p.im.mul_add(q.im, *ar));
                *ai = p.im.mul_add(q.re, (-p.re).mul_add(q.im, *ai));
            } else {
                *ar += p.re * q.re + p.im * q.im;
                *ai += p.im * q.re - p.re * q.im;
            }
        }
    }
    let mut re = reduce_lanes(&acc_re);
    let mut im = reduce_lanes(&acc_im);
    for (p, q) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        re += p.re * q.re + p.im * q.im;
        im += p.im * q.re - p.re * q.im;
    }
    c64(re, im)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn pair_fold_avx2(za: &[Complex64], zb: &[Complex64]) -> Complex64 {
    pair_fold_body::<true>(za, zb)
}

#[inline]
fn pair_fold(za: &[Complex64], zb: &[Complex64]) -> Complex64 {
    #[cfg(target_arch = "x86_64")]
    if has_fma_isa() {
        // SAFETY: guarded by the runtime AVX2+FMA detection above.
        return unsafe { pair_fold_avx2(za, zb) };
    }
    pair_fold_body::<false>(za, zb)
}

/// Pair-wise covariance fold exploiting Hermitian symmetry: the mirrored
/// entry `Σ z_b·conj(z_a)` is the exact floating-point conjugate of
/// `Σ z_a·conj(z_b)` (products commute, negation is exact), so each
/// unordered pair is reduced once.
pub(super) fn accumulate_covariance(n: usize, m: usize, data: &[Complex64], acc: &mut [Complex64]) {
    for a in 0..n {
        let za = &data[a * m..(a + 1) * m];
        for b in a..n {
            let s = pair_fold(za, &data[b * m..(b + 1) * m]);
            acc[a * n + b] += s;
            if b != a {
                acc[b * n + a] += s.conj();
            }
        }
    }
}

/// `env[i] = √(re² + im²)` — a plain lane loop; hardware `sqrt` vectorizes
/// on every supported ISA, and the generators never produce magnitudes
/// anywhere near the over/underflow thresholds `hypot` guards against.
pub(super) fn envelope_into(data: &[Complex64], env: &mut [f64]) {
    for (e, z) in env.iter_mut().zip(data.iter()) {
        *e = (z.re * z.re + z.im * z.im).sqrt();
    }
}

// ---------------------------------------------------------------------------
// f32 fast-tier variants — the same split-complex/lane shapes at half width
// ---------------------------------------------------------------------------

/// `y ← y + (ar + i·ai)·x` over split-complex `f32` planes.
#[inline(always)]
fn axpy_planar32_body<const FMA: bool>(
    ar: f32,
    ai: f32,
    xre: &[f32],
    xim: &[f32],
    yre: &mut [f32],
    yim: &mut [f32],
) {
    for ((yr, yi), (xr, xi)) in yre
        .iter_mut()
        .zip(yim.iter_mut())
        .zip(xre.iter().zip(xim.iter()))
    {
        if FMA {
            *yr = ar.mul_add(*xr, (-ai).mul_add(*xi, *yr));
            *yi = ar.mul_add(*xi, ai.mul_add(*xr, *yi));
        } else {
            *yr += ar * *xr - ai * *xi;
            *yi += ar * *xi + ai * *xr;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_planar32_avx2(
    ar: f32,
    ai: f32,
    xre: &[f32],
    xim: &[f32],
    yre: &mut [f32],
    yim: &mut [f32],
) {
    axpy_planar32_body::<true>(ar, ai, xre, xim, yre, yim);
}

#[inline]
pub(super) fn axpy_planar32(
    ar: f32,
    ai: f32,
    xre: &[f32],
    xim: &[f32],
    yre: &mut [f32],
    yim: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if has_fma_isa() {
        // SAFETY: guarded by the runtime AVX2+FMA detection above.
        unsafe { axpy_planar32_avx2(ar, ai, xre, xim, yre, yim) };
        return;
    }
    axpy_planar32_body::<false>(ar, ai, xre, xim, yre, yim);
}

/// Cache-blocked split-complex `f32` coloring — the half-width sibling of
/// [`color_block`], with twice the samples per tile at the same byte
/// footprint.
pub(super) fn color_block32(
    n: usize,
    m: usize,
    a: &[Complex32],
    scale: f32,
    raw: &[Complex32],
    out: &mut [Complex32],
    scratch: &mut Vec<f32>,
) {
    if n == 0 || m == 0 {
        return;
    }
    let tile = super::COLOR_TILE.min(m);
    // Layout: N re-planes, N im-planes, one y re-plane, one y im-plane.
    scratch.resize((2 * n + 2) * tile, 0.0);
    let (x_planes, y_planes) = scratch.split_at_mut(2 * n * tile);
    let (xre_all, xim_all) = x_planes.split_at_mut(n * tile);
    let (yre, yim) = y_planes.split_at_mut(tile);

    let mut l0 = 0;
    while l0 < m {
        let t = tile.min(m - l0);
        for j in 0..n {
            let row = &raw[j * m + l0..j * m + l0 + t];
            super::deinterleave_into_f32(
                row,
                &mut xre_all[j * tile..j * tile + t],
                &mut xim_all[j * tile..j * tile + t],
            );
        }
        for i in 0..n {
            yre[..t].fill(0.0);
            yim[..t].fill(0.0);
            for j in 0..n {
                let c = a[i * n + j];
                axpy_planar32(
                    c.re,
                    c.im,
                    &xre_all[j * tile..j * tile + t],
                    &xim_all[j * tile..j * tile + t],
                    &mut yre[..t],
                    &mut yim[..t],
                );
            }
            super::interleave_scaled_into_f32(
                &yre[..t],
                &yim[..t],
                scale,
                &mut out[i * m + l0..i * m + l0 + t],
            );
        }
        l0 += t;
    }
}

/// Reduces `f32` lane accumulators in a fixed sequence independent of `m`.
#[inline(always)]
fn reduce_lanes32(acc: &[f32; LANES32]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Unconjugated `f32` dot `Σ aᵢ·bᵢ` with per-lane accumulators.
#[inline(always)]
fn dot_lanes32_body<const FMA: bool>(a: &[Complex32], b: &[Complex32]) -> Complex32 {
    let mut acc_re = [0.0f32; LANES32];
    let mut acc_im = [0.0f32; LANES32];
    let mut chunks_a = a.chunks_exact(LANES32);
    let mut chunks_b = b.chunks_exact(LANES32);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for ((p, q), (ar, ai)) in ca
            .iter()
            .zip(cb.iter())
            .zip(acc_re.iter_mut().zip(acc_im.iter_mut()))
        {
            if FMA {
                *ar = p.re.mul_add(q.re, (-p.im).mul_add(q.im, *ar));
                *ai = p.re.mul_add(q.im, p.im.mul_add(q.re, *ai));
            } else {
                *ar += p.re * q.re - p.im * q.im;
                *ai += p.re * q.im + p.im * q.re;
            }
        }
    }
    let mut re = reduce_lanes32(&acc_re);
    let mut im = reduce_lanes32(&acc_im);
    for (p, q) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        re += p.re * q.re - p.im * q.im;
        im += p.re * q.im + p.im * q.re;
    }
    c32(re, im)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_lanes32_avx2(a: &[Complex32], b: &[Complex32]) -> Complex32 {
    dot_lanes32_body::<true>(a, b)
}

#[inline]
fn dot_lanes32(a: &[Complex32], b: &[Complex32]) -> Complex32 {
    #[cfg(target_arch = "x86_64")]
    if has_fma_isa() {
        // SAFETY: guarded by the runtime AVX2+FMA detection above.
        return unsafe { dot_lanes32_avx2(a, b) };
    }
    dot_lanes32_body::<false>(a, b)
}

/// `y = A·x` in `f32` with the multi-lane dot kernel per row.
pub(super) fn matvec_into32(cols: usize, a: &[Complex32], x: &[Complex32], y: &mut [Complex32]) {
    for (i, yi) in y.iter_mut().enumerate() {
        *yi = dot_lanes32(&a[i * cols..(i + 1) * cols], x);
    }
}

/// `Σ_l z_a[l]·conj(z_b[l])` over two contiguous `f32` rows, widening each
/// product and accumulating in `f64` — covariance analysis never narrows.
#[inline(always)]
fn pair_fold32_body<const FMA: bool>(za: &[Complex32], zb: &[Complex32]) -> Complex64 {
    let mut acc_re = [0.0f64; LANES];
    let mut acc_im = [0.0f64; LANES];
    let mut chunks_a = za.chunks_exact(LANES);
    let mut chunks_b = zb.chunks_exact(LANES);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for ((p, q), (ar, ai)) in ca
            .iter()
            .zip(cb.iter())
            .zip(acc_re.iter_mut().zip(acc_im.iter_mut()))
        {
            let (pre, pim) = (f64::from(p.re), f64::from(p.im));
            let (qre, qim) = (f64::from(q.re), f64::from(q.im));
            if FMA {
                *ar = pre.mul_add(qre, pim.mul_add(qim, *ar));
                *ai = pim.mul_add(qre, (-pre).mul_add(qim, *ai));
            } else {
                *ar += pre * qre + pim * qim;
                *ai += pim * qre - pre * qim;
            }
        }
    }
    let mut re = reduce_lanes(&acc_re);
    let mut im = reduce_lanes(&acc_im);
    for (p, q) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        let (pre, pim) = (f64::from(p.re), f64::from(p.im));
        let (qre, qim) = (f64::from(q.re), f64::from(q.im));
        re += pre * qre + pim * qim;
        im += pim * qre - pre * qim;
    }
    c64(re, im)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn pair_fold32_avx2(za: &[Complex32], zb: &[Complex32]) -> Complex64 {
    pair_fold32_body::<true>(za, zb)
}

#[inline]
fn pair_fold32(za: &[Complex32], zb: &[Complex32]) -> Complex64 {
    #[cfg(target_arch = "x86_64")]
    if has_fma_isa() {
        // SAFETY: guarded by the runtime AVX2+FMA detection above.
        return unsafe { pair_fold32_avx2(za, zb) };
    }
    pair_fold32_body::<false>(za, zb)
}

/// Pair-wise `f32` covariance fold into an `f64` accumulator, exploiting
/// the same exact Hermitian mirror as [`accumulate_covariance`].
pub(super) fn accumulate_covariance32(
    n: usize,
    m: usize,
    data: &[Complex32],
    acc: &mut [Complex64],
) {
    for a in 0..n {
        let za = &data[a * m..(a + 1) * m];
        for b in a..n {
            let s = pair_fold32(za, &data[b * m..(b + 1) * m]);
            acc[a * n + b] += s;
            if b != a {
                acc[b * n + a] += s.conj();
            }
        }
    }
}

/// `env[i] = |data[i]|` in `f32` — the widened `√(re² + im²)` of
/// [`Complex32::abs`] as a lane loop, so both backends produce identical
/// `f32` envelopes.
pub(super) fn envelope_into32(data: &[Complex32], env: &mut [f32]) {
    for (e, z) in env.iter_mut().zip(data.iter()) {
        let (re, im) = (f64::from(z.re), f64::from(z.im));
        *e = (re * re + im * im).sqrt() as f32;
    }
}

//! The scalar (reference) kernel backend.
//!
//! Every routine here reproduces, operation for operation, the loops the
//! workspace ran before the kernel layer existed — same gather order, same
//! `Complex64::mul_add` folds, same summation direction — so
//! `CORRFADE_KERNEL=scalar` is **bit-identical** to the historical
//! generation output and stays the reference the golden/determinism tests
//! pin (see the scope note in the [module docs](super)).

use crate::complex::Complex64;
use crate::complex32::Complex32;
use crate::vector::{dot, dot32};

/// `y = A·x`, one [`dot`] fold per row — exactly the historical
/// `CMatrix::matvec_into`.
pub(super) fn matvec_into(cols: usize, a: &[Complex64], x: &[Complex64], y: &mut [Complex64]) {
    for (i, yi) in y.iter_mut().enumerate() {
        *yi = dot(&a[i * cols..(i + 1) * cols], x);
    }
}

/// The historical real-time coloring loop: per time instant, gather `W[l]`
/// across the planar rows, one dot product per output envelope, scale,
/// scatter.
pub(super) fn color_block(
    n: usize,
    m: usize,
    a: &[Complex64],
    scale: f64,
    raw: &[Complex64],
    out: &mut [Complex64],
    w_scratch: &mut Vec<Complex64>,
) {
    w_scratch.resize(n, Complex64::ZERO);
    for l in 0..m {
        for (j, w) in w_scratch.iter_mut().enumerate() {
            *w = raw[j * m + l];
        }
        for i in 0..n {
            out[i * m + l] = dot(&a[i * n..(i + 1) * n], w_scratch).scale(scale);
        }
    }
}

/// Sample-major covariance fold — the historical
/// `SampleBlock::accumulate_covariance`, bit-identical to folding
/// materialized snapshot vectors in time order.
pub(super) fn accumulate_covariance(n: usize, m: usize, data: &[Complex64], acc: &mut [Complex64]) {
    for l in 0..m {
        for a in 0..n {
            let za = data[a * m + l];
            for b in 0..n {
                acc[a * n + b] += za * data[b * m + l].conj();
            }
        }
    }
}

/// `env[i] = |data[i]|` via `hypot`, as the envelope view always computed it.
pub(super) fn envelope_into(data: &[Complex64], env: &mut [f64]) {
    for (e, z) in env.iter_mut().zip(data.iter()) {
        *e = z.abs();
    }
}

// ---------------------------------------------------------------------------
// f32 fast-tier variants
// ---------------------------------------------------------------------------
//
// The f32 tier has no historical output to reproduce, so these loops are
// simply the f64 reference shapes transliterated to single precision. The
// scalar/vector f32 pair still serves as each other's cross-check in the
// proptest suite.

/// `y = A·x` in `f32`, one [`dot32`] fold per row.
pub(super) fn matvec_into32(cols: usize, a: &[Complex32], x: &[Complex32], y: &mut [Complex32]) {
    for (i, yi) in y.iter_mut().enumerate() {
        *yi = dot32(&a[i * cols..(i + 1) * cols], x);
    }
}

/// The coloring loop in `f32`: gather `W[l]`, one dot per envelope, scale,
/// scatter — the same shape as the f64 reference [`color_block`].
pub(super) fn color_block32(
    n: usize,
    m: usize,
    a: &[Complex32],
    scale: f32,
    raw: &[Complex32],
    out: &mut [Complex32],
    w_scratch: &mut Vec<Complex32>,
) {
    w_scratch.resize(n, Complex32::ZERO);
    for l in 0..m {
        for (j, w) in w_scratch.iter_mut().enumerate() {
            *w = raw[j * m + l];
        }
        for i in 0..n {
            out[i * m + l] = dot32(&a[i * n..(i + 1) * n], w_scratch).scale(scale);
        }
    }
}

/// Sample-major covariance fold of `f32` samples into an `f64` accumulator:
/// covariance *analysis* always stays double precision (only sample
/// generation narrows), so each product is widened before folding.
pub(super) fn accumulate_covariance32(
    n: usize,
    m: usize,
    data: &[Complex32],
    acc: &mut [Complex64],
) {
    for l in 0..m {
        for a in 0..n {
            let za = data[a * m + l].widen();
            for b in 0..n {
                acc[a * n + b] += za * data[b * m + l].widen().conj();
            }
        }
    }
}

/// `env[i] = |data[i]|` in `f32` via the widened-`sqrt` modulus of
/// [`Complex32::abs`].
pub(super) fn envelope_into32(data: &[Complex32], env: &mut [f32]) {
    for (e, z) in env.iter_mut().zip(data.iter()) {
        *e = z.abs();
    }
}

//! # corrfade-linalg
//!
//! Self-contained complex linear algebra for the `corrfade` workspace: the
//! [`Complex64`] scalar type, dense complex ([`CMatrix`]) and real
//! ([`RMatrix`]) matrices, Hermitian/symmetric eigendecomposition by the
//! cyclic Jacobi method, and Cholesky factorization.
//!
//! The covariance matrices manipulated by correlated-Rayleigh generation are
//! small (N = number of sub-carriers or antennas, typically ≤ 64), Hermitian
//! and frequently indefinite or rank-deficient. The crate therefore favours
//! unconditionally-convergent, easily-audited algorithms over asymptotically
//! faster ones, and exposes exactly the operations the paper's algorithm
//! needs:
//!
//! * `K = V·G·Vᴴ` — [`eigen::hermitian_eigen`] (step 4 of the algorithm),
//! * `L = V·√Λ` — assembled from the decomposition by the core crate,
//! * `K = L·Lᴴ` — [`cholesky::cholesky`] for the conventional baselines,
//! * Frobenius-distance and PSD checks used throughout the test and
//!   benchmark suites.
//!
//! The per-sample hot loops (coloring matvec, covariance fold, envelope
//! pass) dispatch through the [`kernel`] module, which selects a scalar
//! (bit-exact reference) or vectorized backend once per process — see the
//! [`kernel`] docs and the `CORRFADE_KERNEL` override.

#![warn(missing_docs)]

pub mod block;
pub mod block32;
pub mod cache;
pub mod cholesky;
pub mod complex;
pub mod complex32;
pub mod eigen;
pub mod error;
pub mod kernel;
pub mod matrix;
pub mod precision;
pub mod vector;

pub use block::{BlockView, BlockWireError, SampleBlock, WIRE_BYTES_PER_SAMPLE};
pub use block32::SampleBlock32;
pub use cache::{CacheStats, FactorCache, MatrixKey};
pub use cholesky::{cholesky, cholesky_real, cholesky_with_tol, is_positive_definite};
pub use complex::{c64, Complex64};
pub use complex32::{c32, Complex32};
pub use eigen::{hermitian_eigen, symmetric_eigen, HermitianEigen, SymmetricEigen};
pub use error::LinalgError;
pub use kernel::Backend;
pub use matrix::{CMatrix, RMatrix};
pub use precision::Precision;

#[cfg(test)]
mod integration_tests {
    //! Cross-module sanity checks combining the eigendecomposition, Cholesky
    //! and the matrix utilities the way the core crate does.
    use super::*;

    #[test]
    fn eigen_coloring_reproduces_covariance_like_cholesky() {
        // For a positive-definite K, both coloring constructions must satisfy
        // L·Lᴴ = K even though the factors themselves differ.
        let k = CMatrix::from_rows(&[
            vec![c64(1.0, 0.0), c64(0.3782, 0.4753), c64(0.0878, 0.2207)],
            vec![c64(0.3782, -0.4753), c64(1.0, 0.0), c64(0.3063, 0.3849)],
            vec![c64(0.0878, -0.2207), c64(0.3063, -0.3849), c64(1.0, 0.0)],
        ]);

        let chol = cholesky(&k).unwrap();
        assert!(chol.aat_adjoint().approx_eq(&k, 1e-12));

        let e = hermitian_eigen(&k).unwrap();
        let sqrt_lambda: Vec<f64> = e.eigenvalues.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let l = e
            .eigenvectors
            .matmul(&CMatrix::from_real_diag(&sqrt_lambda));
        assert!(l.aat_adjoint().approx_eq(&k, 1e-10));

        // The two factors are different matrices (Cholesky is triangular,
        // the eigen factor is not), yet both are valid coloring matrices.
        assert!(l.max_abs_diff(&chol) > 1e-3);
    }

    #[test]
    fn eigen_coloring_survives_indefinite_covariance() {
        // Cholesky must fail, eigen-based coloring (after clipping) must not.
        let k =
            CMatrix::from_real_slice(3, 3, &[1.0, 0.95, -0.95, 0.95, 1.0, 0.95, -0.95, 0.95, 1.0]);
        assert!(cholesky(&k).is_err());
        let e = hermitian_eigen(&k).unwrap();
        let clipped: Vec<f64> = e.eigenvalues.iter().map(|&l| l.max(0.0)).collect();
        let sqrt_lambda: Vec<f64> = clipped.iter().map(|&l| l.sqrt()).collect();
        let l = e
            .eigenvectors
            .matmul(&CMatrix::from_real_diag(&sqrt_lambda));
        let achieved = l.aat_adjoint();
        // The achieved covariance equals the PSD-forced approximation, not K
        // itself, but it must be Hermitian and PSD.
        assert!(achieved.is_hermitian(1e-10));
        let e2 = hermitian_eigen(&achieved).unwrap();
        assert!(e2.is_positive_semidefinite(1e-10));
        // And it equals V·Λ̂·Vᴴ.
        assert!(achieved.approx_eq(&e.reconstruct_with(&clipped), 1e-10));
    }
}

//! Error types shared by the matrix factorizations.

use core::fmt;

/// Errors produced by the factorizations in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The operation requires a square matrix.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// The operation requires a Hermitian (or real-symmetric) matrix.
    NotHermitian {
        /// Largest deviation `max |a_ij − conj(a_ji)|` found.
        deviation: f64,
    },
    /// Cholesky factorization hit a non-positive pivot — the matrix is not
    /// positive definite. This is exactly the failure mode the paper's
    /// eigendecomposition-based coloring avoids.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
        /// Value of the failing pivot (≤ 0 or NaN).
        value: f64,
    },
    /// An iterative factorization did not converge.
    ConvergenceFailure {
        /// Number of sweeps/iterations performed before giving up.
        iterations: usize,
        /// Residual off-diagonal norm at the point of failure.
        residual: f64,
    },
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        context: &'static str,
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}×{cols}")
            }
            LinalgError::NotHermitian { deviation } => {
                write!(f, "matrix is not Hermitian (max |a_ij - conj(a_ji)| = {deviation:.3e})")
            }
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} has value {value:.3e}"
            ),
            LinalgError::ConvergenceFailure { iterations, residual } => write!(
                f,
                "factorization failed to converge after {iterations} iterations (residual {residual:.3e})"
            ),
            LinalgError::DimensionMismatch {
                context,
                expected,
                actual,
            } => write!(f, "{context}: expected dimension {expected}, got {actual}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::NotSquare { rows: 2, cols: 3 };
        assert!(e.to_string().contains("2×3"));
        let e = LinalgError::NotHermitian { deviation: 0.5 };
        assert!(e.to_string().contains("Hermitian"));
        let e = LinalgError::NotPositiveDefinite {
            pivot: 1,
            value: -0.25,
        };
        assert!(e.to_string().contains("positive definite"));
        let e = LinalgError::ConvergenceFailure {
            iterations: 30,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("30"));
        let e = LinalgError::DimensionMismatch {
            context: "matvec",
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("matvec"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&LinalgError::NotSquare { rows: 1, cols: 2 });
    }
}

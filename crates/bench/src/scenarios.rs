//! Compatibility re-export of the covariance-family generators.
//!
//! The parametric families that used to live here moved to
//! [`corrfade_scenarios::families`] as part of the declarative scenario
//! registry; the experiment binaries and benches now resolve complete,
//! named scenarios with [`corrfade_scenarios::lookup`] and only reach for
//! these raw generators when a parameter sweep needs matrices outside the
//! registered operating points. This module stays as a thin alias so older
//! downstream imports of `corrfade_bench::scenarios::*` keep compiling.

pub use corrfade_scenarios::families::*;

//! Plain-text reporting helpers shared by the experiment binaries.
//!
//! The binaries print paper-reported values next to measured values in a
//! fixed-width layout so EXPERIMENTS.md can quote their output directly.

use corrfade_linalg::CMatrix;

/// Prints a section header.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints a labelled complex matrix with 4 decimal places (the precision the
/// paper uses for Eq. 22/23).
pub fn print_matrix(label: &str, m: &CMatrix) {
    println!("{label}:");
    print!("{m:.4}");
}

/// Prints a paper-vs-measured scalar comparison line.
pub fn compare_scalar(name: &str, paper: f64, measured: f64) {
    let rel = if paper.abs() > 1e-300 {
        (measured - paper).abs() / paper.abs()
    } else {
        (measured - paper).abs()
    };
    println!("{name:<44} paper: {paper:>12.6}   measured: {measured:>12.6}   rel.err: {rel:.3e}");
}

/// Prints a single measured scalar (no paper reference available).
pub fn measured_scalar(name: &str, measured: f64) {
    println!("{name:<44} measured: {measured:>12.6}");
}

/// Prints a comparison between two matrices: max entry-wise deviation and
/// relative Frobenius error.
pub fn compare_matrices(name: &str, reference: &CMatrix, measured: &CMatrix) {
    let max_dev = measured.max_abs_diff(reference);
    let rel = corrfade_stats::relative_frobenius_error(measured, reference);
    println!("{name:<44} max |Δ|: {max_dev:.4e}   rel. Frobenius error: {rel:.4e}");
}

/// Formats a row of an ASCII table.
pub fn table_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths.iter())
        .map(|(c, w)| format!("{c:<w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Writes a CSV file with a header row and one row per record. Errors are
/// reported to stderr but do not abort the experiment (the console output is
/// the primary artifact).
pub fn write_csv(path: &str, header: &[&str], rows: &[Vec<f64>]) {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("(wrote {path})");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_row_pads_cells() {
        let row = table_row(&["a".into(), "bb".into()], &[4, 4]);
        assert_eq!(row, "a     bb  ");
    }

    #[test]
    fn printing_does_not_panic() {
        section("test");
        let m = CMatrix::identity(2);
        print_matrix("identity", &m);
        compare_scalar("x", 1.0, 1.01);
        compare_scalar("zero reference", 0.0, 0.0);
        measured_scalar("y", 2.0);
        compare_matrices("m", &m, &m);
    }

    #[test]
    fn csv_writer_creates_a_file() {
        let path = std::env::temp_dir().join("corrfade_report_test.csv");
        let path_str = path.to_str().unwrap();
        write_csv(path_str, &["a", "b"], &[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,b\n1,2\n3,4\n"));
        let _ = std::fs::remove_file(&path);
    }
}

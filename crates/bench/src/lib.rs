//! # corrfade-bench
//!
//! Reporting helpers and paper reference data for the experiment binaries
//! (`src/bin/exp_e*.rs`) and the Criterion benchmarks (`benches/`). Channel
//! configurations are resolved by name from the declarative registry in
//! [`corrfade_scenarios`]; this crate only adds the paper-reported reference
//! matrices and the measurement plumbing around them.
//!
//! Every experiment of DESIGN.md §4 has a binary that prints the
//! paper-reported values next to the values measured from this
//! implementation; EXPERIMENTS.md records the comparison. The Criterion
//! benches measure the computational cost of the same code paths.

#![warn(missing_docs)]

use corrfade::{ChannelStream, RealtimeConfig, RealtimeGenerator, SampleBlock};
use corrfade_linalg::{CMatrix, Complex64};
use corrfade_models::{paper_covariance_matrix_22, paper_covariance_matrix_23};

pub mod report;
pub mod scenarios;

/// The paper's real-time generation settings (Sec. 6): `M = 4096`,
/// `f_m = 0.05`, `σ²_orig = 1/2`.
pub fn paper_realtime_config(covariance: CMatrix, seed: u64) -> RealtimeConfig {
    RealtimeConfig::paper_defaults(covariance, seed)
}

/// Builds the paper's spectral-scenario covariance matrix (should equal
/// Eq. 22) by resolving the registered `fig4a-spectral` scenario.
pub fn computed_spectral_covariance() -> CMatrix {
    corrfade_scenarios::lookup("fig4a-spectral")
        .expect("paper scenario is registered")
        .covariance_matrix()
        .expect("paper scenario is well-formed")
}

/// Builds the paper's spatial-scenario covariance matrix (should equal
/// Eq. 23) by resolving the registered `fig4b-spatial` scenario.
pub fn computed_spatial_covariance() -> CMatrix {
    corrfade_scenarios::lookup("fig4b-spatial")
        .expect("paper scenario is registered")
        .covariance_matrix()
        .expect("paper scenario is well-formed")
}

/// The covariance matrix printed in the paper as Eq. (22).
pub fn reported_spectral_covariance() -> CMatrix {
    paper_covariance_matrix_22()
}

/// The covariance matrix printed in the paper as Eq. (23).
pub fn reported_spatial_covariance() -> CMatrix {
    paper_covariance_matrix_23()
}

/// Generates the first `samples` time samples of the paper's Fig.-4-style
/// experiment for the given covariance matrix (real-time mode, paper
/// parameters) and returns the envelope paths in dB around RMS — exactly the
/// quantity plotted in Fig. 4. Streams one planar block and reads the lazy
/// envelope view.
pub fn fig4_envelope_traces(covariance: CMatrix, samples: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut gen = RealtimeGenerator::new(paper_realtime_config(covariance, seed))
        .expect("paper configuration is valid");
    let mut block = SampleBlock::empty();
    gen.next_block_into(&mut block)
        .expect("streaming is infallible after construction");
    (0..block.envelopes())
        .map(|j| {
            let path = block.envelope_path(j);
            corrfade_stats::envelope_db_around_rms(&path[..samples.min(path.len())])
        })
        .collect()
}

/// Concatenates several real-time blocks into per-envelope complex paths —
/// the raw material for the covariance / autocorrelation measurements of
/// experiments E3, E4 and E6. One planar block is streamed into repeatedly;
/// only the concatenated output paths are materialized.
pub fn realtime_paths(covariance: CMatrix, blocks: usize, seed: u64) -> Vec<Vec<Complex64>> {
    let mut gen = RealtimeGenerator::new(paper_realtime_config(covariance, seed))
        .expect("paper configuration is valid");
    collect_stream_paths(&mut gen, blocks)
}

/// Drives any [`ChannelStream`] for `blocks` blocks through one pooled
/// planar buffer and concatenates the per-envelope complex paths.
pub fn collect_stream_paths<S: ChannelStream + ?Sized>(
    stream: &mut S,
    blocks: usize,
) -> Vec<Vec<Complex64>> {
    let n = stream.dimension();
    let mut paths: Vec<Vec<Complex64>> = vec![Vec::new(); n];
    let mut block = SampleBlock::empty();
    for _ in 0..blocks {
        stream
            .next_block_into(&mut block)
            .expect("in-tree streams are infallible after construction");
        for (j, path) in paths.iter_mut().enumerate() {
            path.extend_from_slice(block.path(j));
        }
    }
    paths
}

/// Estimates the sample covariance of any [`ChannelStream`] over `blocks`
/// blocks, folding the accumulator straight from the pooled planar buffer —
/// nothing but the `N × N` accumulator is materialized.
pub fn stream_covariance<S: ChannelStream + ?Sized>(stream: &mut S, blocks: usize) -> CMatrix {
    let n = stream.dimension();
    let mut acc = CMatrix::zeros(n, n);
    let mut block = SampleBlock::empty();
    let mut total = 0usize;
    for _ in 0..blocks {
        stream
            .next_block_into(&mut block)
            .expect("in-tree streams are infallible after construction");
        block.accumulate_covariance(&mut acc);
        total += block.samples();
    }
    assert!(total > 0, "stream_covariance: zero samples streamed");
    acc.scale_real(1.0 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_stats::relative_frobenius_error;

    #[test]
    fn computed_matrices_match_reported_matrices() {
        assert!(
            computed_spectral_covariance().max_abs_diff(&reported_spectral_covariance()) < 5e-4
        );
        assert!(computed_spatial_covariance().max_abs_diff(&reported_spatial_covariance()) < 5e-4);
    }

    #[test]
    fn fig4_traces_have_the_requested_shape() {
        let traces = fig4_envelope_traces(reported_spatial_covariance(), 200, 1);
        assert_eq!(traces.len(), 3);
        assert!(traces.iter().all(|t| t.len() == 200));
        // dB around RMS: values are centred around 0 dB and deep fades are
        // strongly negative.
        for t in &traces {
            let max = t.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert!(max < 15.0 && max > 0.0);
        }
    }

    #[test]
    fn realtime_paths_realize_the_covariance() {
        let k = reported_spectral_covariance();
        let paths = realtime_paths(k.clone(), 6, 3);
        let khat = corrfade_stats::sample_covariance_from_paths(&paths);
        assert!(relative_frobenius_error(&khat, &k) < 0.15);
    }

    #[test]
    fn stream_covariance_matches_materialized_paths() {
        let k = reported_spatial_covariance();
        let cfg = paper_realtime_config(k.clone(), 9);
        let mut a = RealtimeGenerator::new(cfg.clone()).unwrap();
        let mut b = RealtimeGenerator::new(cfg).unwrap();
        let paths = collect_stream_paths(&mut a, 4);
        let from_paths = corrfade_stats::sample_covariance_from_paths(&paths);
        let streamed = stream_covariance(&mut b, 4);
        assert!(streamed.approx_eq(&from_paths, 1e-10));
    }
}

//! Experiment E8 — the variance-changing effect of Doppler filters
//! (paper Sec. 1 and Sec. 5):
//!
//! Ref. \[6\] combines its generator with the Young–Beaulieu Doppler model
//! assuming the filtered sequences still have unit variance; in reality their
//! variance is `σ_g² = 2·σ²_orig/M²·ΣF[k]²` (Eq. 19). The proposed algorithm
//! feeds the true `σ_g²` into the coloring step. This experiment measures the
//! covariance error of both combinations as a function of the normalized
//! Doppler frequency, on the registered `fig4a-spectral` scenario with a
//! shorter `M = 2048` block.

use corrfade::RealtimeGenerator;
use corrfade_baselines::SorooshyariDautRealtimeGenerator;
use corrfade_bench::{report, stream_covariance};
use corrfade_stats::relative_frobenius_error;

const IDFT_SIZE: usize = 2048;
const BLOCKS: usize = 20;
const SIGMA_ORIG_SQ: f64 = 0.5;

fn main() {
    report::section("E8: Doppler variance-effect ablation (proposed vs Sorooshyari-Daut [6])");
    let scenario = corrfade_scenarios::lookup("fig4a-spectral").expect("registered scenario");
    println!("scenario: {} — {}", scenario.name, scenario.title);
    let k = scenario.covariance_matrix().expect("valid scenario");

    println!(
        "{}",
        corrfade_bench::report::table_row(
            &[
                "fm".into(),
                "sigma_g^2 (Eq.19)".into(),
                "rel. error, proposed".into(),
                "rel. error, ref. [6]".into(),
            ],
            &[8, 20, 22, 22]
        )
    );

    let mut rows = Vec::new();
    for &fm in &[0.01f64, 0.02, 0.05, 0.1, 0.2] {
        // Both combinations are driven through the identical ChannelStream
        // interface: blocks stream into a pooled planar buffer and the
        // covariance is folded straight from the planar data.

        // Proposed algorithm (variance-aware).
        let mut cfg = scenario.realtime_config(0xE8).expect("valid scenario");
        cfg.idft_size = IDFT_SIZE;
        cfg.normalized_doppler = fm;
        cfg.sigma_orig_sq = SIGMA_ORIG_SQ;
        let mut proposed = RealtimeGenerator::new(cfg).unwrap();
        let k_proposed = stream_covariance(&mut proposed, BLOCKS);
        let err_proposed = relative_frobenius_error(&k_proposed, &k);

        // Ref. [6] combination (assumes unit variance).
        let mut flawed =
            SorooshyariDautRealtimeGenerator::new(&k, IDFT_SIZE, fm, SIGMA_ORIG_SQ, 0xE8).unwrap();
        let k_flawed = stream_covariance(&mut flawed, BLOCKS);
        let err_flawed = relative_frobenius_error(&k_flawed, &k);

        let sigma_g_sq = proposed.doppler_output_variance();
        println!(
            "{}",
            corrfade_bench::report::table_row(
                &[
                    format!("{fm}"),
                    format!("{sigma_g_sq:.4}"),
                    format!("{err_proposed:.4}"),
                    format!("{err_flawed:.4}"),
                ],
                &[8, 20, 22, 22]
            )
        );
        rows.push(vec![fm, sigma_g_sq, err_proposed, err_flawed]);
    }

    report::write_csv(
        "e8_variance_effect.csv",
        &["fm", "sigma_g_sq", "rel_err_proposed", "rel_err_ref6"],
        &rows,
    );

    println!();
    println!(
        "Expected shape (paper Sec. 1/5): the proposed combination keeps the relative error at \
         the Monte-Carlo noise floor for every fm, while ref. [6]'s error tracks \
         |sigma_g^2 - 1| because the realized covariance is scaled by the ignored variance."
    );
}

//! Experiment E9 (extension) — computational scaling of the proposed
//! algorithm:
//!
//! * decomposition cost: eigen coloring vs Cholesky coloring as N grows,
//! * generation throughput (snapshots/s) of the single-instant mode vs N,
//! * parallel speedup of the Monte-Carlo engine vs worker count.
//!
//! The covariance family is the registered `scaling-exp-rho07` scenario,
//! resized over `N` with [`corrfade_scenarios::Scenario::with_envelopes`].
//! Criterion benches (`decomposition.rs`, `parallel_throughput.rs`) measure
//! the same paths with proper statistics; this binary prints a quick
//! wall-clock summary table for EXPERIMENTS.md.

use std::time::Instant;

use corrfade::{cholesky_coloring, eigen_coloring};
use corrfade_bench::report;
use corrfade_parallel::{monte_carlo_covariance, ParallelConfig};

fn main() {
    report::section("E9: scaling of decomposition, generation and parallel Monte-Carlo");
    let family = corrfade_scenarios::lookup("scaling-exp-rho07").expect("registered scenario");
    println!("scenario family: {} — {}", family.name, family.title);

    println!(
        "{}",
        report::table_row(
            &[
                "N".into(),
                "eigen coloring [us]".into(),
                "Cholesky coloring [us]".into(),
                "snapshots/s (1 thread)".into(),
            ],
            &[6, 22, 24, 24]
        )
    );
    let mut rows = Vec::new();
    for &n in &[2usize, 4, 8, 16, 32, 64] {
        let scenario = family.with_envelopes(n);
        let k = scenario.covariance_matrix().expect("valid scenario");

        let reps = 20;
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = eigen_coloring(&k).unwrap();
        }
        let eigen_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;

        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = cholesky_coloring(&k).unwrap();
        }
        let chol_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;

        let mut gen = scenario.build(0xE9).unwrap();
        let samples = 200_000usize;
        let t0 = Instant::now();
        let mut sink = 0.0f64;
        for _ in 0..samples {
            sink += gen.sample_gaussian()[0].re;
        }
        let throughput = samples as f64 / t0.elapsed().as_secs_f64();
        std::hint::black_box(sink);

        println!(
            "{}",
            report::table_row(
                &[
                    format!("{n}"),
                    format!("{eigen_us:.1}"),
                    format!("{chol_us:.1}"),
                    format!("{throughput:.0}"),
                ],
                &[6, 22, 24, 24]
            )
        );
        rows.push(vec![n as f64, eigen_us, chol_us, throughput]);
    }
    report::write_csv(
        "e9_scaling.csv",
        &["n", "eigen_us", "cholesky_us", "snapshots_per_s"],
        &rows,
    );

    // Parallel speedup of the streaming covariance estimator.
    println!();
    println!(
        "{}",
        report::table_row(
            &["threads".into(), "wall time [ms]".into(), "speedup".into()],
            &[8, 16, 10]
        )
    );
    let k = family
        .with_envelopes(16)
        .covariance_matrix()
        .expect("valid scenario");
    let total = 400_000;
    let mut baseline_ms = 0.0;
    let mut rows = Vec::new();
    for &threads in &[1usize, 2, 4, 8] {
        let cfg = ParallelConfig {
            threads,
            chunk_size: 8192,
            seed: 0xE9,
        };
        let t0 = Instant::now();
        let _ = monte_carlo_covariance(&k, total, &cfg).unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if threads == 1 {
            baseline_ms = ms;
        }
        let speedup = baseline_ms / ms;
        println!(
            "{}",
            report::table_row(
                &[
                    format!("{threads}"),
                    format!("{ms:.1}"),
                    format!("{speedup:.2}x")
                ],
                &[8, 16, 10]
            )
        );
        rows.push(vec![threads as f64, ms, speedup]);
    }
    report::write_csv(
        "e9_parallel_speedup.csv",
        &["threads", "ms", "speedup"],
        &rows,
    );

    println!();
    println!(
        "Expected shape: decomposition cost grows ~N^3 but stays in the microsecond range for \
         practical N; generation throughput falls ~1/N^2 (the matvec); parallel speedup is \
         near-linear until the memory bandwidth of the matvec saturates."
    );
}

//! Experiment E6 — verify the real-time-mode claim of paper Sec. 5: each
//! generated fading process has the normalized autocorrelation
//! `J₀(2π·f_m·d)` (Eq. 16–21), while the cross-covariances still match the
//! desired matrix.
//!
//! The base configuration is the registered `fig4a-spectral` scenario; the
//! sweep overrides its normalized Doppler frequency with
//! `f_m ∈ {0.01, 0.05, 0.1}` at the paper's `M = 4096`.

use corrfade::{ChannelStream, RealtimeGenerator, SampleBlock};
use corrfade_bench::report;
use corrfade_specfun::bessel_j0;
use corrfade_stats::{max_autocorrelation_deviation, normalized_autocorrelation};

fn main() {
    report::section("E6: Doppler autocorrelation of the real-time mode vs J0(2*pi*fm*d)");
    let scenario = corrfade_scenarios::lookup("fig4a-spectral").expect("registered scenario");
    println!("scenario: {} — {}", scenario.name, scenario.title);
    let max_lag = 60usize;

    for &fm in &[0.01f64, 0.05, 0.1] {
        let mut cfg = scenario.realtime_config(0xE6).expect("valid scenario");
        cfg.normalized_doppler = fm;
        let mut gen = RealtimeGenerator::new(cfg).unwrap();

        // Average the per-envelope autocorrelation over several blocks,
        // streamed into one reused planar block.
        let blocks = 8;
        let mut acc = vec![0.0f64; max_lag + 1];
        let mut block = SampleBlock::empty();
        for _ in 0..blocks {
            gen.next_block_into(&mut block)
                .expect("valid configuration");
            for j in 0..block.envelopes() {
                let rho = normalized_autocorrelation(block.path(j), max_lag);
                for (a, r) in acc.iter_mut().zip(rho.iter()) {
                    *a += r;
                }
            }
        }
        let n_series = (blocks * gen.dimension()) as f64;
        for a in acc.iter_mut() {
            *a /= n_series;
        }

        let target: Vec<f64> = (0..=max_lag)
            .map(|d| bessel_j0(2.0 * std::f64::consts::PI * fm * d as f64))
            .collect();
        let filter_target = gen.filter().normalized_autocorrelation(max_lag);

        println!();
        println!("fm = {fm}:");
        report::measured_scalar(
            "  max |rho_measured - J0| over lags 0..60",
            max_autocorrelation_deviation(&acc, &target),
        );
        report::measured_scalar(
            "  max |rho_measured - filter design| over lags 0..60",
            max_autocorrelation_deviation(&acc, &filter_target),
        );
        // Print a few representative lags (paper readers can eyeball the J0
        // zero crossing).
        for &d in &[0usize, 5, 10, 20, 40, 60] {
            report::compare_scalar(
                &format!("  rho[{d}] vs J0(2*pi*{fm}*{d})"),
                target[d],
                acc[d],
            );
        }
        report::compare_scalar(
            "  Doppler output variance sigma_g^2 (Eq. 19) vs 2*sigma_orig^2*sum(F^2)/M^2",
            gen.filter().output_variance(0.5),
            gen.doppler_output_variance(),
        );
    }
}

//! Experiment E10 (extension) — the "shortcoming matrix" the paper's Sec. 1
//! argues in prose: which conventional method can handle which scenario, and
//! with what accuracy, compared with the proposed algorithm.
//!
//! Scenarios:
//! * S1 — paper Eq. (23): real, PD, equal powers, N = 3 (spatial / MIMO),
//! * S2 — paper Eq. (22): complex, PD, equal powers, N = 3 (spectral / OFDM),
//! * S3 — N = 2, equal powers, complex correlation,
//! * S4 — unequal powers, real correlation, N = 3,
//! * S5 — indefinite (non-PSD) target, N = 3,
//! * S6 — near-singular PD target, N = 4.

use corrfade::CorrelatedRayleighGenerator;
use corrfade_baselines::{two_envelope_covariance, BaselineMethod};
use corrfade_bench::report;
use corrfade_bench::scenarios::{
    indefinite_correlation, near_singular_correlation, unequal_power_exponential,
};
use corrfade_linalg::{c64, CMatrix};
use corrfade_models::{paper_covariance_matrix_22, paper_covariance_matrix_23};

fn scenarios() -> Vec<(&'static str, CMatrix)> {
    vec![
        ("S1 spatial Eq.(23)", paper_covariance_matrix_23()),
        ("S2 spectral Eq.(22)", paper_covariance_matrix_22()),
        (
            "S3 N=2 complex corr",
            two_envelope_covariance(1.0, c64(0.5, 0.4)),
        ),
        ("S4 unequal powers", unequal_power_exponential(3, 0.6, 0.5)),
        ("S5 non-PSD target", indefinite_correlation(3, 0.9)),
        ("S6 near-singular", near_singular_correlation(4, 1e-9)),
    ]
}

fn main() {
    report::section("E10: which method handles which scenario (paper Sec. 1, tabulated)");

    let mut header = vec!["scenario".to_string(), "proposed".to_string()];
    header.extend(BaselineMethod::ALL.iter().map(|m| m.name().to_string()));
    let widths: Vec<usize> = header.iter().map(|h| h.len().max(10) + 2).collect();
    println!("{}", report::table_row(&header, &widths));

    for (name, k) in scenarios() {
        let mut cells = vec![name.to_string()];
        // The proposed algorithm: always constructible; report whether the
        // target had to be PSD-forced.
        match CorrelatedRayleighGenerator::new(k.clone(), 0xE10) {
            Ok(g) => {
                if g.coloring().psd.clipped_count > 0 {
                    cells.push("ok (PSD-forced)".into());
                } else {
                    cells.push("ok".into());
                }
            }
            Err(e) => cells.push(format!("FAIL: {e}")),
        }
        for method in BaselineMethod::ALL {
            match method.try_generate(&k, 0xE10) {
                Ok(_) => cells.push("ok".into()),
                Err(e) => cells.push(short_reason(&e)),
            }
        }
        println!("{}", report::table_row(&cells, &widths));
    }

    println!();
    println!("legend: 'unequal' = equal-power restriction, 'N=2' = two-envelope restriction,");
    println!("        'complex' = real-covariance restriction, 'chol' = Cholesky/PSD failure.");
    println!();
    println!(
        "Expected shape (paper Sec. 1): only the proposed algorithm handles every scenario; each \
         conventional method fails on at least one."
    );
}

fn short_reason(e: &corrfade_baselines::BaselineError) -> String {
    use corrfade_baselines::BaselineError as E;
    match e {
        E::UnequalPowersUnsupported { .. } => "fail: unequal".into(),
        E::UnsupportedDimension { .. } => "fail: N=2 only".into(),
        E::CholeskyFailed { .. } => "fail: chol".into(),
        E::NotPositiveSemidefinite { .. } => "fail: not PSD".into(),
        E::ComplexCovarianceUnsupported { .. } => "fail: complex".into(),
        E::Invalid { .. } => "fail: invalid".into(),
    }
}

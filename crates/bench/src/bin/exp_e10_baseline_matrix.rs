//! Experiment E10 (extension) — the "shortcoming matrix" the paper's Sec. 1
//! argues in prose: which conventional method can handle which scenario, and
//! with what accuracy, compared with the proposed algorithm.
//!
//! Every scenario is resolved from the registry by name:
//! * S1 — `fig4b-spatial`: real, PD, equal powers, N = 3 (paper Eq. 23),
//! * S2 — `fig4a-spectral`: complex, PD, equal powers, N = 3 (paper Eq. 22),
//! * S3 — `two-envelope-complex`: N = 2, equal powers, complex correlation,
//! * S4 — `unequal-power-geometric`: unequal powers, real correlation,
//! * S5 — `indefinite-rho09`: indefinite (non-PSD) target,
//! * S6 — `near-singular-eps1e9`: near-singular PD target, N = 4.

use corrfade::{ChannelStream, CorrelatedRayleighGenerator, SampleBlock};
use corrfade_baselines::BaselineMethod;
use corrfade_bench::report;
use corrfade_linalg::CMatrix;
use corrfade_scenarios::lookup;

fn scenarios() -> Vec<(String, CMatrix)> {
    [
        ("S1", "fig4b-spatial"),
        ("S2", "fig4a-spectral"),
        ("S3", "two-envelope-complex"),
        ("S4", "unequal-power-geometric"),
        ("S5", "indefinite-rho09"),
        ("S6", "near-singular-eps1e9"),
    ]
    .into_iter()
    .map(|(tag, name)| {
        let k = lookup(name)
            .expect("registered scenario")
            .covariance_matrix()
            .expect("valid scenario");
        (format!("{tag} {name}"), k)
    })
    .collect()
}

fn main() {
    report::section("E10: which method handles which scenario (paper Sec. 1, tabulated)");

    let mut header = vec!["scenario".to_string(), "proposed".to_string()];
    header.extend(BaselineMethod::ALL.iter().map(|m| m.name().to_string()));
    let mut widths: Vec<usize> = header.iter().map(|h| h.len().max(10) + 2).collect();
    widths[0] = 28;
    println!("{}", report::table_row(&header, &widths));

    // Every constructible method is additionally driven through the shared
    // ChannelStream interface into this pooled planar block, so the matrix
    // certifies like-for-like streaming as well as constructibility.
    let mut block = SampleBlock::empty();
    for (name, k) in scenarios() {
        let mut cells = vec![name];
        // The proposed algorithm: always constructible; report whether the
        // target had to be PSD-forced.
        match CorrelatedRayleighGenerator::new(k.clone(), 0xE10) {
            Ok(mut g) => {
                g.next_block_into(&mut block)
                    .expect("streaming never fails");
                if g.coloring().psd.clipped_count > 0 {
                    cells.push("ok (PSD-forced)".into());
                } else {
                    cells.push("ok".into());
                }
            }
            Err(e) => cells.push(format!("FAIL: {e}")),
        }
        for method in BaselineMethod::ALL {
            match method.try_generate(&k, 0xE10) {
                Ok(_) => match method.try_stream(&k, 0xE10) {
                    Ok(mut stream) => {
                        stream
                            .next_block_into(&mut block)
                            .expect("streaming never fails after construction");
                        cells.push("ok (stream)".into());
                    }
                    Err(_) => cells.push("ok (sample)".into()),
                },
                Err(e) => cells.push(short_reason(&e)),
            }
        }
        println!("{}", report::table_row(&cells, &widths));
    }

    println!();
    println!("legend: 'unequal' = equal-power restriction, 'N=2' = two-envelope restriction,");
    println!("        'complex' = real-covariance restriction, 'chol' = Cholesky/PSD failure,");
    println!("        '(stream)' = drives the shared ChannelStream block interface,");
    println!("        '(sample)' = constructible but reproduced sample-by-sample only.");
    println!();
    println!(
        "Expected shape (paper Sec. 1): only the proposed algorithm handles every scenario; each \
         conventional method fails on at least one."
    );
}

fn short_reason(e: &corrfade_baselines::BaselineError) -> String {
    use corrfade_baselines::BaselineError as E;
    match e {
        E::UnequalPowersUnsupported { .. } => "fail: unequal".into(),
        E::UnsupportedDimension { .. } => "fail: N=2 only".into(),
        E::CholeskyFailed { .. } => "fail: chol".into(),
        E::NotPositiveSemidefinite { .. } => "fail: not PSD".into(),
        E::ComplexCovarianceUnsupported { .. } => "fail: complex".into(),
        E::StreamingUnsupported { .. } => "fail: no stream".into(),
        E::Invalid { .. } => "fail: invalid".into(),
    }
}

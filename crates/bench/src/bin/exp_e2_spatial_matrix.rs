//! Experiment E2 — reproduce the paper's Eq. (23): the desired covariance
//! matrix of three spatially-correlated (MIMO antenna array) Rayleigh
//! envelopes.
//!
//! Parameters (paper Sec. 6): three antennas, D/λ = 1, Δ = π/18 (10°),
//! Φ = 0, σ_g² = 1.

use corrfade_bench::{computed_spatial_covariance, report, reported_spatial_covariance};

fn main() {
    report::section("E2: spatial (MIMO) covariance matrix — paper Eq. (23)");

    let scenario = corrfade_scenarios::lookup("fig4b-spatial").expect("registered scenario");
    println!("scenario: {} — {}", scenario.name, scenario.title);
    let computed = computed_spatial_covariance();
    let reported = reported_spatial_covariance();

    report::print_matrix("paper Eq. (23)", &reported);
    report::print_matrix("computed from Eq. (5)-(7), (12)-(13)", &computed);
    report::compare_matrices("Eq. (23) vs computed", &reported, &computed);

    report::compare_scalar("K[1,2] (adjacent antennas)", 0.8123, computed[(0, 1)].re);
    report::compare_scalar("K[1,3] (outer antennas)", 0.3730, computed[(0, 2)].re);
    report::compare_scalar(
        "Im K[1,2] (must vanish at Phi = 0)",
        0.0,
        computed[(0, 1)].im,
    );

    let pd = corrfade_linalg::is_positive_definite(&computed);
    println!(
        "positive definite (paper: yes)                 measured: {}",
        if pd { "yes" } else { "no" }
    );
}

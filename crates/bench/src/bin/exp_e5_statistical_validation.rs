//! Experiment E5 — verify the analytical claims of paper Sec. 4.5:
//!
//! * `E[Z·Zᴴ] = K̄` (the realized covariance equals the desired/forced one),
//! * envelope mean `0.8862·σ_g` (Eq. 14) and variance `0.2146·σ_g²` (Eq. 15),
//! * unequal-power support: starting from desired envelope powers `σ_r²`
//!   through Eq. (11) the realized envelope variances equal `σ_r²`,
//! * non-PSD targets are replaced by their closest PSD approximation.
//!
//! All three configurations are resolved from the scenario registry:
//! `fig4a-spectral`, `unequal-power-spatial` and `indefinite-rho09`.

use corrfade_bench::{report, stream_covariance};
use corrfade_scenarios::{lookup, PowerProfile};
use corrfade_stats::relative_frobenius_error;

const SNAPSHOTS: usize = 200_000;
/// Snapshots per streamed block (the single-instant generators batch
/// independent snapshots through `ChannelStream`).
const STREAM_BATCH: usize = 1000;

fn main() {
    report::section("E5: statistical validation of Sec. 4.5 (single-instant mode)");

    // 1. Equal-power complex covariance (Eq. 22 target). The covariance is
    //    folded straight from the pooled planar block — no snapshot ensemble
    //    is materialized.
    let spectral = lookup("fig4a-spectral").expect("registered scenario");
    let k = spectral.covariance_matrix().expect("valid scenario");
    let mut gen = spectral
        .build(0xE5)
        .unwrap()
        .with_stream_block_len(STREAM_BATCH);
    let khat = stream_covariance(&mut gen, SNAPSHOTS / STREAM_BATCH);
    report::compare_matrices("E[Z Z^H] vs Eq. (22) target", &k, &khat);
    report::measured_scalar(
        "relative Frobenius error",
        relative_frobenius_error(&khat, &k),
    );

    // Envelope moments, per envelope (sigma_g^2 = 1).
    let mut gen = spectral.build(0xE51).unwrap();
    let paths = gen.generate_envelope_paths(SNAPSHOTS);
    for (j, path) in paths.iter().enumerate() {
        let check = corrfade_stats::check_envelope_moments(path, 1.0);
        report::compare_scalar(
            &format!("envelope {} mean (Eq. 14)", j + 1),
            check.theoretical_mean,
            check.sample_mean,
        );
        report::compare_scalar(
            &format!("envelope {} variance (Eq. 15)", j + 1),
            check.theoretical_variance,
            check.sample_variance,
        );
        let sigma = corrfade_stats::rayleigh_scale(1.0);
        let ks = corrfade_stats::ks_test(path, |r| corrfade_specfun::rayleigh_cdf(r, sigma));
        println!(
            "envelope {} Rayleigh KS test: statistic {:.4}, p-value {:.3} ({})",
            j + 1,
            ks.statistic,
            ks.p_value,
            if ks.passes(0.01) {
                "accepted"
            } else {
                "REJECTED"
            }
        );
    }

    // 2. Unequal envelope powers specified through Eq. (11).
    report::section("E5b: unequal envelope powers (Eq. 11 path)");
    let unequal = lookup("unequal-power-spatial").expect("registered scenario");
    let PowerProfile::Envelope(envelope_powers) = unequal.powers else {
        unreachable!("unequal-power-spatial declares envelope powers");
    };
    let mut gen = unequal.build(0xE52).unwrap();
    let paths = gen.generate_envelope_paths(SNAPSHOTS);
    for (j, path) in paths.iter().enumerate() {
        report::compare_scalar(
            &format!("envelope {} variance vs requested sigma_r^2", j + 1),
            envelope_powers[j],
            corrfade_stats::variance(path),
        );
    }

    // 3. Non-PSD target: realized covariance equals the forced PSD matrix.
    report::section("E5c: non-PSD target is replaced by its closest PSD approximation");
    let stress = lookup("indefinite-rho09")
        .expect("registered scenario")
        .with_envelopes(4);
    let bad = stress.covariance_matrix().expect("valid scenario");
    let mut gen = stress
        .build(0xE53)
        .unwrap()
        .with_stream_block_len(STREAM_BATCH);
    let forced = gen.realized_covariance();
    let khat = stream_covariance(&mut gen, SNAPSHOTS / STREAM_BATCH);
    println!(
        "clipped eigenvalues: {} of {}",
        gen.coloring().psd.clipped_count,
        stress.envelopes
    );
    report::measured_scalar(
        "rel. error of E[Z Z^H] vs forced PSD matrix",
        relative_frobenius_error(&khat, &forced),
    );
    report::measured_scalar(
        "rel. distance between forced matrix and the (infeasible) target",
        relative_frobenius_error(&forced, &bad),
    );
}

//! Experiment E7 — ablation of the PSD-forcing strategy (paper Sec. 4.2–4.3):
//!
//! * the paper's zero-clipping (`λ̂ = max(λ, 0)`) + eigen coloring,
//! * Sorooshyari–Daut's ε-replacement (`λ̂ = ε` for `λ ≤ 0`) + Cholesky
//!   coloring (baseline \[6\]),
//! * raw Cholesky with no forcing (baselines \[4\]/\[5\]).
//!
//! The stress matrices come from the registered `indefinite-rho09` and
//! `near-singular-eps1e{6,9,13}` scenarios (the indefinite family is swept
//! over `N` with [`corrfade_scenarios::Scenario::with_envelopes`]). For each
//! case we report (a) whether each method can produce a coloring at all, and
//! (b) the Frobenius distance between the covariance it realizes and the
//! desired matrix.

use corrfade::{eigen_coloring, force_positive_semidefinite};
use corrfade_baselines::epsilon_psd_forcing;
use corrfade_bench::report;
use corrfade_linalg::{cholesky, CMatrix};
use corrfade_scenarios::lookup;

fn frobenius_realized_error(realized: &CMatrix, desired: &CMatrix) -> f64 {
    realized.frobenius_distance(desired) / desired.frobenius_norm()
}

fn run_case(label: &str, k: &CMatrix) {
    println!();
    println!("--- {label} (N = {}) ---", k.rows());

    // Proposed: zero clipping + eigen coloring.
    let forcing = force_positive_semidefinite(k).unwrap();
    let coloring = eigen_coloring(k).unwrap();
    let realized = coloring.realized_covariance();
    println!(
        "proposed (zero-clip + eigen coloring):      clipped {} eigenvalue(s), realized-vs-desired rel. Frobenius error {:.4e}",
        forcing.clipped_count,
        frobenius_realized_error(&realized, k)
    );

    // Baseline [6]: epsilon replacement + Cholesky, for two epsilons.
    for &eps in &[1e-2f64, 1e-4] {
        let (forced, replaced) = epsilon_psd_forcing(k, eps).unwrap();
        match cholesky(&forced) {
            Ok(l) => {
                let realized = l.aat_adjoint();
                println!(
                    "Sorooshyari-Daut [6] (eps = {eps:>6.0e}):          replaced {replaced} eigenvalue(s), realized-vs-desired rel. Frobenius error {:.4e}",
                    frobenius_realized_error(&realized, k)
                );
            }
            Err(e) => println!(
                "Sorooshyari-Daut [6] (eps = {eps:>6.0e}):          Cholesky FAILED after forcing ({e})"
            ),
        }
    }

    // Raw Cholesky (the refs [4]/[5] path).
    match cholesky(k) {
        Ok(l) => {
            let realized = l.aat_adjoint();
            println!(
                "raw Cholesky (refs [4]/[5]):                 realized-vs-desired rel. Frobenius error {:.4e}",
                frobenius_realized_error(&realized, k)
            );
        }
        Err(e) => println!("raw Cholesky (refs [4]/[5]):                 FAILED ({e})"),
    }
}

fn main() {
    report::section(
        "E7: PSD-forcing ablation (zero-clipping vs epsilon-replacement vs raw Cholesky)",
    );

    let indefinite = lookup("indefinite-rho09").expect("registered scenario");
    for n in [3usize, 4, 8, 16, 32] {
        run_case(
            "indefinite correlation matrix, rho = 0.9 (scenario indefinite-rho09)",
            &indefinite
                .with_envelopes(n)
                .covariance_matrix()
                .expect("valid scenario"),
        );
    }
    for name in [
        "near-singular-eps1e6",
        "near-singular-eps1e9",
        "near-singular-eps1e13",
    ] {
        let scenario = lookup(name).expect("registered scenario").with_envelopes(6);
        run_case(
            &format!("near-singular PD matrix (scenario {name})"),
            &scenario.covariance_matrix().expect("valid scenario"),
        );
    }

    println!();
    println!(
        "Expected shape (paper Sec. 4.2): the zero-clipping error is never larger than the \
         epsilon-replacement error, and the eigen coloring never fails, while raw Cholesky \
         fails on every indefinite matrix."
    );
}

//! Compares freshly measured bench medians (`BENCH_<name>.json`, written by
//! the vendored criterion shim when `CORRFADE_BENCH_JSON_DIR` is set)
//! against a committed baseline directory and **fails on regressions** —
//! the CI gate behind the "criterion baselines in CI" ROADMAP item.
//!
//! ```text
//! bench_regression_check --baseline crates/bench/baselines --current bench-json \
//!                        [--threshold 1.25]
//! ```
//!
//! Medians are wall-clock, and CI runners are not the machine the
//! baselines were recorded on, so raw ratios are **hardware-normalized**
//! before gating: each benchmark's `current/baseline` ratio is divided by
//! a machine-speed factor — the median ratio of the scalar-backend kernel
//! benchmarks (ids ending in `/scalar`, whose code paths are frozen by
//! the bit-exactness contract) when at least three are present, the
//! global median otherwise. A uniformly slower (or faster) machine shifts
//! every ratio equally and normalizes away, while a slowdown confined to
//! the default vector backend cannot move the scalar anchor and still
//! trips the gate. A benchmark fails when its normalized ratio exceeds
//! `threshold`
//! (default 1.25, i.e. >25 % regression vs. the committed baseline after
//! machine-speed normalization; `--threshold`/`BENCH_REGRESSION_THRESHOLD`
//! override). Only ids present in both directories are compared, so adding
//! or retiring benchmarks never breaks the gate.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

/// One `{"id": …, "median_ns": …}` line of the shim's JSON report. The
/// format is flat by construction (see `vendor/criterion`), so a scanning
/// parser is sufficient and keeps the workspace free of a JSON dependency.
fn parse_results(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(id_start) = line.find("\"id\": \"") else {
            continue;
        };
        let rest = &line[id_start + 7..];
        let Some(id_end) = rest.find('"') else {
            continue;
        };
        let id = rest[..id_end].to_string();
        let Some(med_start) = line.find("\"median_ns\": ") else {
            continue;
        };
        let med_rest = &line[med_start + 13..];
        let med_text: String = med_rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(median) = med_text.parse::<f64>() {
            out.insert(id, median);
        }
    }
    out
}

/// Loads and merges every `BENCH_*.json` in a directory.
fn load_dir(dir: &Path) -> Result<BTreeMap<String, f64>, String> {
    let mut all = BTreeMap::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
        let is_bench_json = name
            .as_deref()
            .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"));
        if !is_bench_json {
            continue;
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        all.extend(parse_results(&text));
    }
    Ok(all)
}

fn format_ms(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{:.2} ms", ns / 1e6)
    }
}

fn usage() -> String {
    "usage: bench_regression_check --baseline <dir> --current <dir> [--threshold <ratio>]"
        .to_string()
}

fn run() -> Result<bool, String> {
    let mut baseline_dir = None;
    let mut current_dir = None;
    let mut threshold = std::env::var("BENCH_REGRESSION_THRESHOLD")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.25);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_dir = Some(args.next().ok_or_else(usage)?),
            "--current" => current_dir = Some(args.next().ok_or_else(usage)?),
            "--threshold" => {
                threshold = args
                    .next()
                    .ok_or_else(usage)?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --threshold: {e}"))?;
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    let baseline = load_dir(Path::new(&baseline_dir.ok_or_else(usage)?))?;
    let current = load_dir(Path::new(&current_dir.ok_or_else(usage)?))?;
    if baseline.is_empty() {
        return Err("baseline directory contains no BENCH_*.json results".into());
    }

    let compared: Vec<(&String, f64, f64, f64)> = baseline
        .iter()
        .filter_map(|(id, &base_ns)| {
            current
                .get(id)
                .map(|&cur_ns| (id, base_ns, cur_ns, cur_ns / base_ns))
        })
        .collect();
    if compared.is_empty() {
        return Err("no benchmark ids overlap between baseline and current".into());
    }

    // Hardware normalization: a machine-speed factor captures how much
    // faster or slower this runner is overall; genuine regressions are
    // outliers relative to it. The factor is anchored on the
    // scalar-backend kernel benchmarks (ids ending in "/scalar") whenever
    // at least three are present: those code paths are frozen by the
    // bit-exactness contract, so a change that uniformly slows the
    // default (vector) backend cannot drag the anchor along with it and
    // slip through. Without enough anchors the global median is used.
    let mut ratios: Vec<f64> = compared
        .iter()
        .filter(|(id, _, _, _)| id.ends_with("/scalar"))
        .map(|&(_, _, _, r)| r)
        .collect();
    let anchored = ratios.len() >= 3;
    if !anchored {
        ratios = compared.iter().map(|&(_, _, _, r)| r).collect();
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let median_ratio = ratios[ratios.len() / 2];

    let mut regressions = Vec::new();
    println!(
        "{:<56} {:>12} {:>12} {:>8} {:>8}",
        "benchmark", "baseline", "current", "ratio", "norm"
    );
    for &(id, base_ns, cur_ns, ratio) in &compared {
        let normalized = ratio / median_ratio;
        let marker = if normalized > threshold {
            "  << REGRESSION"
        } else {
            ""
        };
        println!(
            "{id:<56} {:>12} {:>12} {ratio:>7.2}x {normalized:>7.2}x{marker}",
            format_ms(base_ns),
            format_ms(cur_ns)
        );
        if normalized > threshold {
            regressions.push((id.clone(), normalized));
        }
    }
    println!(
        "\ncompared {} benchmark(s) against {} baseline entr(ies); \
         machine-speed factor {median_ratio:.2}x ({}), threshold {threshold:.2}x (normalized)",
        compared.len(),
        baseline.len(),
        if anchored {
            "median of scalar-backend anchors"
        } else {
            "global median"
        }
    );
    if regressions.is_empty() {
        println!("no regressions");
        Ok(true)
    } else {
        println!("{} regression(s):", regressions.len());
        for (id, normalized) in &regressions {
            println!("  {id}: {normalized:.2}x over baseline (machine-normalized)");
        }
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_regression_check: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shim_format() {
        let text = r#"{
  "bench": "doppler_idft",
  "results": [
    {"id": "doppler/ifft/4096", "median_ns": 103050.0, "throughput": {"elements": 4096}},
    {"id": "doppler/filter_design/1024", "median_ns": 1640.5}
  ]
}
"#;
        let parsed = parse_results(text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed["doppler/ifft/4096"], 103050.0);
        assert_eq!(parsed["doppler/filter_design/1024"], 1640.5);
    }

    #[test]
    fn ignores_unrelated_lines() {
        assert!(parse_results("{\n  \"bench\": \"x\",\n  \"results\": [\n  ]\n}\n").is_empty());
    }
}

//! Experiment E3 — reproduce the paper's Fig. 4(a): three equal-power
//! spectrally-correlated Rayleigh fading envelopes generated in the
//! real-time (Doppler) mode, plotted as dB around the RMS value over the
//! first 200 samples.
//!
//! The figure itself is qualitative; the quantitative claims behind it —
//! that the realized covariance equals Eq. (22) and the marginals are
//! Rayleigh — are measured here and the 200-sample traces are dumped to CSV
//! for plotting.

use corrfade_bench::{collect_stream_paths, fig4_envelope_traces, report};
use corrfade_stats::{relative_frobenius_error, sample_covariance_from_paths};

/// Number of streamed blocks for the quantitative validation. Overridable
/// through `CORRFADE_E3_BLOCKS` so the CI smoke step can run a reduced
/// version of the full experiment.
fn block_count() -> usize {
    std::env::var("CORRFADE_E3_BLOCKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&b| b > 0)
        .unwrap_or(20)
}

fn main() {
    report::section("E3: Fig. 4(a) — three spectrally-correlated envelopes (real-time mode)");
    let scenario = corrfade_scenarios::lookup("fig4a-spectral").expect("registered scenario");
    println!("scenario: {} — {}", scenario.name, scenario.title);
    let k = scenario.covariance_matrix().expect("valid scenario");

    // The 200-sample traces of Fig. 4(a) (dB around RMS), dumped for plotting.
    let traces = fig4_envelope_traces(k.clone(), 200, 0x4a);
    let rows: Vec<Vec<f64>> = (0..200)
        .map(|i| vec![i as f64, traces[0][i], traces[1][i], traces[2][i]])
        .collect();
    report::write_csv(
        "fig4a_spectral_envelopes.csv",
        &["sample", "envelope1_db", "envelope2_db", "envelope3_db"],
        &rows,
    );
    for (j, t) in traces.iter().enumerate() {
        let min = t.iter().copied().fold(f64::INFINITY, f64::min);
        let max = t.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "envelope {} (dB around rms): min {:>7.2} dB, max {:>6.2} dB over 200 samples \
             (paper's Fig. 4a axis spans -30..+10 dB)",
            j + 1,
            min,
            max
        );
    }

    // Quantitative validation over a long run (default 20 blocks × 4096
    // samples), streamed through the scenario's boxed ChannelStream into one
    // pooled planar block.
    let blocks = block_count();
    println!(
        "streaming {blocks} blocks of {} samples",
        scenario.doppler.idft_size
    );
    let mut stream = scenario.stream(0x4a51).expect("valid scenario");
    let paths = collect_stream_paths(&mut stream, blocks);
    let khat = sample_covariance_from_paths(&paths);
    report::print_matrix("desired covariance (Eq. 22)", &k);
    report::print_matrix("sample covariance of the generated processes", &khat);
    report::compare_matrices("achieved vs desired covariance", &k, &khat);
    report::measured_scalar(
        "relative Frobenius error",
        relative_frobenius_error(&khat, &k),
    );

    // Rayleigh marginals and the Eq. (14)/(15) moments for each envelope.
    for (j, path) in paths.iter().enumerate() {
        let env: Vec<f64> = path.iter().map(|z| z.abs()).collect();
        let check = corrfade_stats::check_envelope_moments(&env, 1.0);
        report::compare_scalar(
            &format!("envelope {} mean (Eq. 14: 0.8862 sigma_g)", j + 1),
            check.theoretical_mean,
            check.sample_mean,
        );
        report::compare_scalar(
            &format!("envelope {} variance (Eq. 15: 0.2146 sigma_g^2)", j + 1),
            check.theoretical_variance,
            check.sample_variance,
        );
    }
}

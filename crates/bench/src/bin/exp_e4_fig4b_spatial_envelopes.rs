//! Experiment E4 — reproduce the paper's Fig. 4(b): three equal-power
//! spatially-correlated Rayleigh fading envelopes (MIMO antenna array
//! scenario) generated in the real-time (Doppler) mode.
//!
//! As for E3, the 200-sample dB traces are dumped to CSV and the
//! quantitative claims behind the figure (covariance = Eq. 23, Rayleigh
//! marginals, strong visual correlation between adjacent antennas) are
//! measured.

use corrfade_bench::{collect_stream_paths, fig4_envelope_traces, report};
use corrfade_stats::{pearson_correlation, relative_frobenius_error, sample_covariance_from_paths};

fn main() {
    report::section("E4: Fig. 4(b) — three spatially-correlated envelopes (real-time mode)");
    let scenario = corrfade_scenarios::lookup("fig4b-spatial").expect("registered scenario");
    println!("scenario: {} — {}", scenario.name, scenario.title);
    let k = scenario.covariance_matrix().expect("valid scenario");

    let traces = fig4_envelope_traces(k.clone(), 200, 0x4b);
    let rows: Vec<Vec<f64>> = (0..200)
        .map(|i| vec![i as f64, traces[0][i], traces[1][i], traces[2][i]])
        .collect();
    report::write_csv(
        "fig4b_spatial_envelopes.csv",
        &["sample", "envelope1_db", "envelope2_db", "envelope3_db"],
        &rows,
    );

    // In Fig. 4(b) adjacent envelopes visibly track each other (correlation
    // 0.8123) while the outer pair is less correlated (0.3730). Measure the
    // dB-trace correlations as a proxy for that visual statement.
    println!(
        "dB-trace correlation envelopes 1-2 (strongly correlated pair): {:.3}",
        pearson_correlation(&traces[0], &traces[1])
    );
    println!(
        "dB-trace correlation envelopes 1-3 (weakly correlated pair):   {:.3}",
        pearson_correlation(&traces[0], &traces[2])
    );

    // Stream the validation run through the scenario's boxed ChannelStream
    // (one pooled planar block, zero steady-state allocation).
    let mut stream = scenario.stream(0x4b51).expect("valid scenario");
    let paths = collect_stream_paths(&mut stream, 20);
    let khat = sample_covariance_from_paths(&paths);
    report::print_matrix("desired covariance (Eq. 23)", &k);
    report::print_matrix("sample covariance of the generated processes", &khat);
    report::compare_matrices("achieved vs desired covariance", &k, &khat);
    report::measured_scalar(
        "relative Frobenius error",
        relative_frobenius_error(&khat, &k),
    );

    for (j, path) in paths.iter().enumerate() {
        let env: Vec<f64> = path.iter().map(|z| z.abs()).collect();
        let check = corrfade_stats::check_envelope_moments(&env, 1.0);
        report::compare_scalar(
            &format!("envelope {} power (= sigma_g^2 = 1)", j + 1),
            check.theoretical_power,
            check.sample_power,
        );
    }
}

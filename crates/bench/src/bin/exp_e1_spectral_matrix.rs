//! Experiment E1 — reproduce the paper's Eq. (22): the desired covariance
//! matrix of three frequency-correlated (OFDM-style) Rayleigh envelopes.
//!
//! Parameters (paper Sec. 6): σ_g² = 1, F_s = 1 kHz, F_m = 50 Hz,
//! adjacent-carrier spacing 200 kHz, σ_τ = 1 µs, τ₁,₂ = 1 ms, τ₂,₃ = 3 ms,
//! τ₁,₃ = 4 ms.

use corrfade_bench::{computed_spectral_covariance, report, reported_spectral_covariance};

fn main() {
    report::section("E1: spectral (OFDM) covariance matrix — paper Eq. (22)");

    let scenario = corrfade_scenarios::lookup("fig4a-spectral").expect("registered scenario");
    let params = scenario.channel;
    report::compare_scalar(
        "maximum Doppler frequency Fm [Hz]",
        50.0,
        params.max_doppler_hz(),
    );
    report::compare_scalar("normalized Doppler fm", 0.05, params.normalized_doppler());

    let computed = computed_spectral_covariance();
    let reported = reported_spectral_covariance();

    report::print_matrix("paper Eq. (22)", &reported);
    report::print_matrix("computed from Eq. (3)-(4), (12)-(13)", &computed);
    report::compare_matrices("Eq. (22) vs computed", &reported, &computed);

    // Entry-by-entry comparison of the values the paper prints.
    report::compare_scalar("Re K[1,2]", 0.3782, computed[(0, 1)].re);
    report::compare_scalar("Im K[1,2]", 0.4753, computed[(0, 1)].im);
    report::compare_scalar("Re K[1,3]", 0.0878, computed[(0, 2)].re);
    report::compare_scalar("Im K[1,3]", 0.2207, computed[(0, 2)].im);
    report::compare_scalar("Re K[2,3]", 0.3063, computed[(1, 2)].re);
    report::compare_scalar("Im K[2,3]", 0.3849, computed[(1, 2)].im);

    // The paper asserts Eq. (22) is positive definite.
    let pd = corrfade_linalg::is_positive_definite(&computed);
    println!(
        "positive definite (paper: yes)                 measured: {}",
        if pd { "yes" } else { "no" }
    );
}

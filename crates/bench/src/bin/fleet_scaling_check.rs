//! CI smoke gate for fleet scaling: advances the full 16-scenario fleet
//! sequentially and on the pooled runtime, and **fails when the pool does
//! not beat the sequential advance** by the required margin — the guard
//! against the parallel path silently degenerating into a serialized one
//! again (a global cache mutex held across decompositions, a submitter
//! idling at the pool barrier, …).
//!
//! ```text
//! fleet_scaling_check [--margin 2.0] [--reps 30] [--min-cores 4]
//! ```
//!
//! Wall-clock speedup needs wall-clock parallelism: on fewer than
//! `--min-cores` hardware threads (default 4) the gate prints the measured
//! ratio for the record and **skips** — a 1- or 2-core runner physically
//! cannot show a 2× fleet speedup, and failing there would only teach
//! people to ignore the job. On a qualifying runner the pooled advance of
//! 16 independent streams must be at least `--margin`× faster (default
//! 2.0) than the sequential reference, comparing medians over `--reps`
//! advances after warm-up. `FLEET_SCALING_MARGIN`, `FLEET_SCALING_REPS`
//! and `FLEET_SCALING_MIN_CORES` override the defaults the same way.
//!
//! The produced samples are bit-identical between both modes by
//! construction (the workspace's fleet-equivalence tests pin that); this
//! gate only judges throughput.

use std::process::ExitCode;
use std::time::Instant;

use corrfade_parallel::{Runtime, StreamFleet};

/// Median wall-clock of `reps` runs of `advance` (nanoseconds).
fn median_ns(reps: usize, mut advance: impl FnMut()) -> f64 {
    let mut times: Vec<u128> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            advance();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] as f64
}

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> Result<T, String> {
    match std::env::var(name) {
        Ok(value) => value
            .trim()
            .parse()
            .map_err(|_| format!("invalid {name}={value:?}")),
        Err(_) => Ok(default),
    }
}

fn run() -> Result<bool, String> {
    let mut margin: f64 = env_or("FLEET_SCALING_MARGIN", 2.0)?;
    let mut reps: usize = env_or("FLEET_SCALING_REPS", 30)?;
    let mut min_cores: usize = env_or("FLEET_SCALING_MIN_CORES", 4)?;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--margin" => {
                margin = value("--margin")?
                    .parse()
                    .map_err(|e| format!("bad --margin: {e}"))?;
            }
            "--reps" => {
                reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("bad --reps: {e}"))?;
            }
            "--min-cores" => {
                min_cores = value("--min-cores")?
                    .parse()
                    .map_err(|e| format!("bad --min-cores: {e}"))?;
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?}\n\
                     usage: fleet_scaling_check [--margin <x>] [--reps <n>] [--min-cores <n>]"
                ));
            }
        }
    }
    if reps == 0 {
        return Err("--reps must be positive".into());
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let names = corrfade_scenarios::names();
    let mut fleet = StreamFleet::open(&names, 7).map_err(|e| e.to_string())?;
    let runtime = Runtime::global();
    println!(
        "fleet_scaling_check: {} streams, {} samples/advance, {} hardware threads, \
         pool of {} executor(s)",
        fleet.len(),
        fleet.samples_per_advance(),
        cores,
        runtime.workers()
    );

    // Warm up both paths: decomposition/FFT caches, per-stream blocks, the
    // pool's stealing lanes — the steady state the gate is about.
    for _ in 0..3 {
        fleet.advance_sequential().map_err(|e| e.to_string())?;
        fleet.advance().map_err(|e| e.to_string())?;
    }

    let sequential = median_ns(reps, || fleet.advance_sequential().unwrap());
    let pooled = median_ns(reps, || fleet.advance().unwrap());
    let speedup = sequential / pooled;
    println!(
        "sequential {:.3} ms, pooled {:.3} ms -> speedup {speedup:.2}x \
         (required {margin:.2}x on >= {min_cores} cores, medians over {reps} advances)",
        sequential / 1e6,
        pooled / 1e6,
    );

    if cores < min_cores {
        println!(
            "SKIP: only {cores} hardware thread(s) — a {margin:.2}x wall-clock speedup \
             is unmeasurable below {min_cores} cores; ratio recorded above"
        );
        return Ok(true);
    }
    if speedup >= margin {
        println!("PASS: pooled advance beats sequential by the required margin");
        Ok(true)
    } else {
        println!(
            "FAIL: pooled advance is only {speedup:.2}x faster than sequential \
             (required {margin:.2}x) — the parallel path is not scaling"
        );
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("fleet_scaling_check: {e}");
            ExitCode::FAILURE
        }
    }
}

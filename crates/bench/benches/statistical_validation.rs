//! Bench: the statistical-validation pipeline of experiment E5 — sample
//! covariance estimation and goodness-of-fit testing over ensembles
//! generated from the registered `fig4a-spectral` scenario. These dominate
//! the wall-clock of the Monte-Carlo experiments, so their cost matters as
//! much as the generator's.

use corrfade_scenarios::lookup;
use corrfade_stats::{ks_test, sample_covariance};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_sample_covariance(c: &mut Criterion) {
    let mut group = c.benchmark_group("validation/sample_covariance");
    let scenario = lookup("fig4a-spectral").unwrap();
    for &snapshots in &[1_000usize, 10_000, 50_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(snapshots),
            &snapshots,
            |b, &snapshots| {
                let mut gen = scenario.build(3).unwrap();
                let snaps = gen.generate_snapshots(snapshots);
                b.iter(|| sample_covariance(&snaps))
            },
        );
    }
    group.finish();
}

fn bench_ks_test(c: &mut Criterion) {
    let mut group = c.benchmark_group("validation/rayleigh_ks_test");
    let scenario = lookup("fig4a-spectral").unwrap();
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut gen = scenario.build(5).unwrap();
            let env: Vec<f64> = gen.generate_envelope_paths(n).remove(0);
            let sigma = corrfade_stats::rayleigh_scale(1.0);
            b.iter(|| ks_test(&env, |r| corrfade_specfun::rayleigh_cdf(r, sigma)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sample_covariance, bench_ks_test);
criterion_main!(benches);

//! Bench: the Young–Beaulieu Doppler substrate of experiment E6 — filter
//! design (Eq. 21), the M-point IDFT, the real-signal `rfft`/`irfft` pair
//! and one full single-envelope generation, for the paper's M = 4096 and
//! neighbouring sizes. The normalized Doppler frequency and `σ²_orig` come
//! from the registered `fig4a-spectral` scenario's Doppler settings.

use corrfade_dsp::{fft, ifft, irfft, rfft, rfft_len, DopplerFilter, IdftRayleighGenerator};
use corrfade_linalg::c64;
use corrfade_randn::RandomStream;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn paper_doppler() -> corrfade_scenarios::DopplerSettings {
    corrfade_scenarios::lookup("fig4a-spectral")
        .unwrap()
        .doppler
}

fn bench_filter_design(c: &mut Criterion) {
    let fm = paper_doppler().normalized_doppler;
    let mut group = c.benchmark_group("doppler/filter_design");
    for &m in &[1024usize, 4096, 16384] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| DopplerFilter::new(m, fm).unwrap())
        });
    }
    group.finish();
}

fn bench_ifft(c: &mut Criterion) {
    let mut group = c.benchmark_group("doppler/ifft");
    for &m in &[1024usize, 4096, 16384] {
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let x: Vec<_> = (0..m).map(|i| c64((i as f64 * 0.1).sin(), 0.2)).collect();
            b.iter(|| ifft(&x))
        });
    }
    // Non-power-of-two goes through Bluestein.
    group.bench_function("bluestein_4000", |b| {
        let x: Vec<_> = (0..4000)
            .map(|i| c64((i as f64 * 0.1).sin(), 0.2))
            .collect();
        b.iter(|| fft(&x))
    });
    group.finish();
}

fn bench_rfft(c: &mut Criterion) {
    // The real-signal pair vs. the generic complex transform of the same
    // (conjugate-symmetric) data — the halved-work specialization used by
    // the autocorrelation kernel.
    let mut group = c.benchmark_group("doppler/rfft");
    for &m in &[1024usize, 4096] {
        group.throughput(Throughput::Elements(m as u64));
        let x: Vec<f64> = (0..m).map(|i| (i as f64 * 0.1).sin()).collect();
        group.bench_with_input(BenchmarkId::new("rfft", m), &m, |b, _| b.iter(|| rfft(&x)));
        let complexified: Vec<_> = x.iter().map(|&v| c64(v, 0.0)).collect();
        group.bench_with_input(BenchmarkId::new("full_fft", m), &m, |b, _| {
            b.iter(|| fft(&complexified))
        });
        let half = rfft(&x);
        assert_eq!(half.len(), rfft_len(m));
        group.bench_with_input(BenchmarkId::new("irfft", m), &m, |b, _| {
            b.iter(|| irfft(&half, m))
        });
    }
    group.finish();
}

fn bench_single_envelope_generation(c: &mut Criterion) {
    let doppler = paper_doppler();
    let mut group = c.benchmark_group("doppler/young_beaulieu_generate");
    group.sample_size(30);
    for &m in &[1024usize, 4096] {
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let gen = IdftRayleighGenerator::new(
                DopplerFilter::new(m, doppler.normalized_doppler).unwrap(),
                doppler.sigma_orig_sq,
            )
            .unwrap();
            let mut rng = RandomStream::new(1);
            b.iter(|| gen.generate(&mut rng))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_filter_design,
    bench_ifft,
    bench_rfft,
    bench_single_envelope_generation
);
criterion_main!(benches);

//! Bench: the decomposition cost comparison of experiment E9 —
//! Hermitian-Jacobi eigendecomposition (proposed coloring path) vs Cholesky
//! factorization (conventional coloring path) as the number of envelopes
//! grows, on both real and genuinely complex covariance matrices.

use corrfade_bench::scenarios::{complex_exponential_correlation, exponential_correlation};
use corrfade_linalg::{cholesky, hermitian_eigen};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_real_covariances(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposition/real");
    for &n in &[2usize, 4, 8, 16, 32, 64] {
        let k = exponential_correlation(n, 0.7);
        group.bench_with_input(BenchmarkId::new("hermitian_eigen", n), &k, |b, k| {
            b.iter(|| hermitian_eigen(k).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("cholesky", n), &k, |b, k| {
            b.iter(|| cholesky(k).unwrap())
        });
    }
    group.finish();
}

fn bench_complex_covariances(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposition/complex");
    for &n in &[4usize, 16, 64] {
        let k = complex_exponential_correlation(n, 0.8, 0.7);
        group.bench_with_input(BenchmarkId::new("hermitian_eigen", n), &k, |b, k| {
            b.iter(|| hermitian_eigen(k).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("cholesky", n), &k, |b, k| {
            b.iter(|| cholesky(k).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_real_covariances, bench_complex_covariances);
criterion_main!(benches);

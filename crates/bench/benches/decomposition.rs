//! Bench: the decomposition cost comparison of experiment E9 —
//! Hermitian-Jacobi eigendecomposition (proposed coloring path) vs Cholesky
//! factorization (conventional coloring path) as the number of envelopes
//! grows, on the registered `scaling-exp-rho07` (real) and
//! `complex-exp-rho08` (genuinely complex) covariance families.

use corrfade_linalg::{cholesky, hermitian_eigen};
use corrfade_scenarios::lookup;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_real_covariances(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposition/real");
    let family = lookup("scaling-exp-rho07").unwrap();
    for &n in &[2usize, 4, 8, 16, 32, 64] {
        let k = family.with_envelopes(n).covariance_matrix().unwrap();
        group.bench_with_input(BenchmarkId::new("hermitian_eigen", n), &k, |b, k| {
            b.iter(|| hermitian_eigen(k).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("cholesky", n), &k, |b, k| {
            b.iter(|| cholesky(k).unwrap())
        });
    }
    group.finish();
}

fn bench_complex_covariances(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposition/complex");
    let family = lookup("complex-exp-rho08").unwrap();
    for &n in &[4usize, 16, 64] {
        let k = family.with_envelopes(n).covariance_matrix().unwrap();
        group.bench_with_input(BenchmarkId::new("hermitian_eigen", n), &k, |b, k| {
            b.iter(|| hermitian_eigen(k).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("cholesky", n), &k, |b, k| {
            b.iter(|| cholesky(k).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_real_covariances, bench_complex_covariances);
criterion_main!(benches);

//! Bench: throughput of the Monte-Carlo engine of experiment E9 —
//! single-threaded generation vs the persistent-pool engine at several
//! worker caps, the streaming covariance estimator, and parallel Doppler
//! blocks, on the registered `scaling-exp-rho07` scenario (N = 16).
//!
//! The `parallel/pool_vs_spawn_small` group is the pool-reuse gate: on a
//! workload small enough that orchestration dominates, the persistent
//! [`corrfade_parallel::Runtime`] pool (condvar wake per call) is measured
//! against the historical spawn-a-scope-per-call execution
//! ([`corrfade_parallel::spawn`], bit-identical results). Pool reuse is
//! expected to win by ≥ 1.3× there; the committed baseline and the CI
//! regression gate keep it that way.

use corrfade_parallel::{
    generate_realtime_paths, generate_snapshots, monte_carlo_covariance, spawn, ParallelConfig,
};
use corrfade_scenarios::lookup;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const TOTAL: usize = 100_000;

/// The small-block configuration of the pool-vs-spawn comparison: little
/// enough generation work (one minimum-size chunk) that per-call
/// thread spawn/join overhead dominates the call.
const SMALL_TOTAL: usize = 64;

fn bench_snapshot_generation(c: &mut Criterion) {
    let scenario = lookup("scaling-exp-rho07").unwrap();
    let k = scenario.covariance_matrix().unwrap();
    let mut group = c.benchmark_group("parallel/snapshots_n16");
    group.throughput(Throughput::Elements(TOTAL as u64));
    group.sample_size(10);

    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut gen = scenario.build(1).unwrap();
            gen.generate_snapshots(TOTAL)
        })
    });
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("engine", threads),
            &threads,
            |b, &threads| {
                let cfg = ParallelConfig {
                    threads,
                    chunk_size: 8192,
                    seed: 1,
                };
                b.iter(|| generate_snapshots(&k, TOTAL, &cfg).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_streaming_covariance(c: &mut Criterion) {
    let k = lookup("scaling-exp-rho07")
        .unwrap()
        .covariance_matrix()
        .unwrap();
    let mut group = c.benchmark_group("parallel/streaming_covariance_n16");
    group.throughput(Throughput::Elements(TOTAL as u64));
    group.sample_size(10);
    for &threads in &[1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let cfg = ParallelConfig {
                    threads,
                    chunk_size: 8192,
                    seed: 1,
                };
                b.iter(|| monte_carlo_covariance(&k, TOTAL, &cfg).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_realtime_blocks(c: &mut Criterion) {
    // Parallel Doppler-block generation: pool workers stream reseeded
    // generators into pinned planar blocks (one cached eigendecomposition +
    // one filter design total).
    let base = lookup("fig4a-spectral")
        .unwrap()
        .realtime_config(1)
        .unwrap();
    let blocks = 8usize;
    let mut group = c.benchmark_group("parallel/realtime_blocks_m4096");
    group.throughput(Throughput::Elements((base.idft_size * 3 * blocks) as u64));
    group.sample_size(10);
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let cfg = ParallelConfig {
                    threads,
                    chunk_size: 8192,
                    seed: 1,
                };
                b.iter(|| generate_realtime_paths(&base, blocks, &cfg).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_pool_vs_spawn(c: &mut Criterion) {
    // Identical jobs, identical results — only the execution strategy
    // differs: wake the persistent pool vs spawn-and-join a fresh
    // `std::thread::scope` per call.
    let k = lookup("fig4b-spatial")
        .unwrap()
        .covariance_matrix()
        .unwrap();
    let cfg = ParallelConfig {
        threads: 0, // all cores
        chunk_size: 256,
        seed: 1,
    };
    let mut group = c.benchmark_group("parallel/pool_vs_spawn_small");
    group.throughput(Throughput::Elements(SMALL_TOTAL as u64));
    group.sample_size(40);

    group.bench_function("snapshots/pool", |b| {
        b.iter(|| generate_snapshots(&k, SMALL_TOTAL, &cfg).unwrap())
    });
    group.bench_function("snapshots/spawn", |b| {
        b.iter(|| spawn::generate_snapshots(&k, SMALL_TOTAL, &cfg).unwrap())
    });

    group.bench_function("covariance/pool", |b| {
        b.iter(|| monte_carlo_covariance(&k, SMALL_TOTAL, &cfg).unwrap())
    });
    group.bench_function("covariance/spawn", |b| {
        b.iter(|| spawn::monte_carlo_covariance(&k, SMALL_TOTAL, &cfg).unwrap())
    });

    let mut small_rt = lookup("fig4b-spatial").unwrap().realtime_config(1).unwrap();
    small_rt.idft_size = 64;
    let blocks = 2usize;
    group.bench_function("realtime/pool", |b| {
        b.iter(|| generate_realtime_paths(&small_rt, blocks, &cfg).unwrap())
    });
    group.bench_function("realtime/spawn", |b| {
        b.iter(|| spawn::generate_realtime_paths(&small_rt, blocks, &cfg).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_snapshot_generation,
    bench_streaming_covariance,
    bench_realtime_blocks,
    bench_pool_vs_spawn
);
criterion_main!(benches);

//! Bench: throughput of the Monte-Carlo engine of experiment E9 —
//! single-threaded generation vs the scoped-thread engine at several worker
//! counts, and the streaming covariance estimator, on the registered
//! `scaling-exp-rho07` scenario (N = 16).

use corrfade_parallel::{
    generate_realtime_paths, generate_snapshots, monte_carlo_covariance, ParallelConfig,
};
use corrfade_scenarios::lookup;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const TOTAL: usize = 100_000;

fn bench_snapshot_generation(c: &mut Criterion) {
    let scenario = lookup("scaling-exp-rho07").unwrap();
    let k = scenario.covariance_matrix().unwrap();
    let mut group = c.benchmark_group("parallel/snapshots_n16");
    group.throughput(Throughput::Elements(TOTAL as u64));
    group.sample_size(10);

    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut gen = scenario.build(1).unwrap();
            gen.generate_snapshots(TOTAL)
        })
    });
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("engine", threads),
            &threads,
            |b, &threads| {
                let cfg = ParallelConfig {
                    threads,
                    chunk_size: 8192,
                    seed: 1,
                };
                b.iter(|| generate_snapshots(&k, TOTAL, &cfg).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_streaming_covariance(c: &mut Criterion) {
    let k = lookup("scaling-exp-rho07")
        .unwrap()
        .covariance_matrix()
        .unwrap();
    let mut group = c.benchmark_group("parallel/streaming_covariance_n16");
    group.throughput(Throughput::Elements(TOTAL as u64));
    group.sample_size(10);
    for &threads in &[1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let cfg = ParallelConfig {
                    threads,
                    chunk_size: 8192,
                    seed: 1,
                };
                b.iter(|| monte_carlo_covariance(&k, TOTAL, &cfg).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_realtime_blocks(c: &mut Criterion) {
    // Parallel Doppler-block generation: workers stream reseeded generators
    // into pooled planar blocks (one eigendecomposition + filter design
    // total).
    let base = lookup("fig4a-spectral")
        .unwrap()
        .realtime_config(1)
        .unwrap();
    let blocks = 8usize;
    let mut group = c.benchmark_group("parallel/realtime_blocks_m4096");
    group.throughput(Throughput::Elements((base.idft_size * 3 * blocks) as u64));
    group.sample_size(10);
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let cfg = ParallelConfig {
                    threads,
                    chunk_size: 8192,
                    seed: 1,
                };
                b.iter(|| generate_realtime_paths(&base, blocks, &cfg).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_snapshot_generation,
    bench_streaming_covariance,
    bench_realtime_blocks
);
criterion_main!(benches);

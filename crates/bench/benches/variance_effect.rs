//! Bench: the two real-time combinations compared by experiment E8 —
//! variance-aware (proposed) vs unit-variance-assuming (ref. [6]) — at the
//! same Doppler/IDFT settings, to show the correction costs nothing.

use corrfade::{RealtimeConfig, RealtimeGenerator};
use corrfade_baselines::SorooshyariDautRealtimeGenerator;
use corrfade_models::paper_covariance_matrix_22;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const M: usize = 2048;
const FM: f64 = 0.05;

fn bench_realtime_combinations(c: &mut Criterion) {
    let mut group = c.benchmark_group("variance_effect/block_m2048");
    group.throughput(Throughput::Elements((M * 3) as u64));
    group.sample_size(20);

    group.bench_function("proposed_variance_aware", |b| {
        let mut gen = RealtimeGenerator::new(RealtimeConfig {
            covariance: paper_covariance_matrix_22(),
            idft_size: M,
            normalized_doppler: FM,
            sigma_orig_sq: 0.5,
            seed: 1,
        })
        .unwrap();
        b.iter(|| gen.generate_block())
    });

    group.bench_function("ref6_unit_variance_assumption", |b| {
        let mut gen =
            SorooshyariDautRealtimeGenerator::new(&paper_covariance_matrix_22(), M, FM, 0.5, 1)
                .unwrap();
        b.iter(|| gen.generate_block())
    });
    group.finish();
}

criterion_group!(benches, bench_realtime_combinations);
criterion_main!(benches);

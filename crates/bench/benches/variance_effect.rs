//! Bench: the two real-time combinations compared by experiment E8 —
//! variance-aware (proposed) vs unit-variance-assuming (ref. \[6\]) — on the
//! registered `fig4a-spectral` scenario at the same Doppler/IDFT settings,
//! to show the correction costs nothing. Both are driven through the shared
//! `ChannelStream` interface with a pooled planar block.

use corrfade::{ChannelStream, RealtimeGenerator, SampleBlock};
use corrfade_baselines::SorooshyariDautRealtimeGenerator;
use corrfade_scenarios::lookup;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const M: usize = 2048;

fn bench_realtime_combinations(c: &mut Criterion) {
    let mut group = c.benchmark_group("variance_effect/block_m2048");
    group.throughput(Throughput::Elements((M * 3) as u64));
    group.sample_size(20);
    let scenario = lookup("fig4a-spectral").unwrap();

    group.bench_function("proposed_variance_aware", |b| {
        let mut cfg = scenario.realtime_config(1).unwrap();
        cfg.idft_size = M;
        let mut gen = RealtimeGenerator::new(cfg).unwrap();
        let mut block = SampleBlock::empty();
        b.iter(|| gen.next_block_into(&mut block).unwrap())
    });

    group.bench_function("ref6_unit_variance_assumption", |b| {
        let k = scenario.covariance_matrix().unwrap();
        let fm = scenario.doppler.normalized_doppler;
        let sigma = scenario.doppler.sigma_orig_sq;
        let mut gen = SorooshyariDautRealtimeGenerator::new(&k, M, fm, sigma, 1).unwrap();
        let mut block = SampleBlock::empty();
        b.iter(|| gen.next_block_into(&mut block).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_realtime_combinations);
criterion_main!(benches);

//! Bench: regenerating the paper's Fig. 4 experiments — one full real-time
//! block (M = 4096 samples of N = 3 correlated envelopes) for the spectral
//! (Fig. 4a) and spatial (Fig. 4b) scenarios, plus the single-instant mode
//! for reference.

use corrfade::{CorrelatedRayleighGenerator, RealtimeConfig, RealtimeGenerator};
use corrfade_models::{paper_covariance_matrix_22, paper_covariance_matrix_23};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_realtime_blocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/realtime_block_m4096");
    group.throughput(Throughput::Elements(4096 * 3));
    group.sample_size(20);

    group.bench_function("fig4a_spectral", |b| {
        let mut gen = RealtimeGenerator::new(RealtimeConfig::paper_defaults(
            paper_covariance_matrix_22(),
            1,
        ))
        .unwrap();
        b.iter(|| gen.generate_block())
    });
    group.bench_function("fig4b_spatial", |b| {
        let mut gen = RealtimeGenerator::new(RealtimeConfig::paper_defaults(
            paper_covariance_matrix_23(),
            1,
        ))
        .unwrap();
        b.iter(|| gen.generate_block())
    });
    group.finish();
}

fn bench_single_instant(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/single_instant_4096_samples");
    group.throughput(Throughput::Elements(4096 * 3));
    group.bench_function("spectral_eq22", |b| {
        let mut gen = CorrelatedRayleighGenerator::new(paper_covariance_matrix_22(), 1).unwrap();
        b.iter(|| gen.generate_snapshots(4096))
    });
    group.bench_function("spatial_eq23", |b| {
        let mut gen = CorrelatedRayleighGenerator::new(paper_covariance_matrix_23(), 1).unwrap();
        b.iter(|| gen.generate_snapshots(4096))
    });
    group.finish();
}

criterion_group!(benches, bench_realtime_blocks, bench_single_instant);
criterion_main!(benches);

//! Bench: regenerating the paper's Fig. 4 experiments — one full real-time
//! block (M = 4096 samples of N = 3 correlated envelopes) for the registered
//! `fig4a-spectral` and `fig4b-spatial` scenarios, plus the single-instant
//! mode for reference.
//!
//! Each mode is measured twice: through the zero-allocation streaming API
//! (`next_block_into` with a pooled planar `SampleBlock`) and through the
//! allocating legacy wrappers, so the cost of the per-block allocations is
//! visible in the report.

use corrfade::{ChannelStream, Precision, SampleBlock, SampleBlock32};
use corrfade_scenarios::lookup;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_realtime_blocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/realtime_block_m4096");
    group.throughput(Throughput::Elements(4096 * 3));
    group.sample_size(20);

    for name in ["fig4a-spectral", "fig4b-spatial"] {
        group.bench_function(format!("{name}/stream"), |b| {
            let mut gen = lookup(name).unwrap().build_realtime(1).unwrap();
            let mut block = SampleBlock::empty();
            b.iter(|| gen.next_block_into(&mut block).unwrap())
        });
        // The f32 fast tier through its native half-width block (no
        // widening pass) — same scenario, seed, and draw sequence.
        group.bench_function(format!("{name}/stream_f32"), |b| {
            let mut gen = lookup(name)
                .unwrap()
                .with_precision(Precision::F32)
                .build_realtime(1)
                .unwrap();
            let mut block = SampleBlock32::empty();
            b.iter(|| gen.next_block32_into(&mut block).unwrap())
        });
        group.bench_function(format!("{name}/legacy_alloc"), |b| {
            let mut gen = lookup(name).unwrap().build_realtime(1).unwrap();
            b.iter(|| gen.generate_block())
        });
    }
    group.finish();
}

fn bench_single_instant(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/single_instant_4096_samples");
    group.throughput(Throughput::Elements(4096 * 3));
    for name in ["fig4a-spectral", "fig4b-spatial"] {
        group.bench_function(format!("{name}/stream"), |b| {
            let mut gen = lookup(name)
                .unwrap()
                .build(1)
                .unwrap()
                .with_stream_block_len(4096);
            let mut block = SampleBlock::empty();
            b.iter(|| gen.next_block_into(&mut block).unwrap())
        });
        group.bench_function(format!("{name}/legacy_alloc"), |b| {
            let mut gen = lookup(name).unwrap().build(1).unwrap();
            b.iter(|| gen.generate_snapshots(4096))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_realtime_blocks, bench_single_instant);
criterion_main!(benches);

//! Bench: regenerating the paper's Fig. 4 experiments — one full real-time
//! block (M = 4096 samples of N = 3 correlated envelopes) for the registered
//! `fig4a-spectral` and `fig4b-spatial` scenarios, plus the single-instant
//! mode for reference.

use corrfade_scenarios::lookup;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_realtime_blocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/realtime_block_m4096");
    group.throughput(Throughput::Elements(4096 * 3));
    group.sample_size(20);

    for name in ["fig4a-spectral", "fig4b-spatial"] {
        group.bench_function(name, |b| {
            let mut gen = lookup(name).unwrap().build_realtime(1).unwrap();
            b.iter(|| gen.generate_block())
        });
    }
    group.finish();
}

fn bench_single_instant(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/single_instant_4096_samples");
    group.throughput(Throughput::Elements(4096 * 3));
    for name in ["fig4a-spectral", "fig4b-spatial"] {
        group.bench_function(name, |b| {
            let mut gen = lookup(name).unwrap().build(1).unwrap();
            b.iter(|| gen.generate_snapshots(4096))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_realtime_blocks, bench_single_instant);
criterion_main!(benches);

//! Bench: resume fast-forward vs. full regeneration.
//!
//! A v2 resume subscription replays only the RNG draws of the skipped
//! blocks ([`RealtimeGenerator::skip_blocks`]) instead of running the IDFT
//! and coloring transform for each — the server-side cost of fast-forwarding
//! a fresh subscription to a client's cursor. This group measures the
//! advantage directly:
//!
//! * `serve/resume_fast_forward/generate_64` — 64 blocks produced in full,
//!   the cost a resume would pay without the skip path.
//! * `serve/resume_fast_forward/skip_64` — the same 64 blocks fast-forwarded.
//!
//! Both advance a long-lived stream (per-block cost is state-independent),
//! so the ratio is the pure per-block saving. Throughput is blocks per
//! second.

use corrfade::{ChannelStream, SampleBlock};
use corrfade_scenarios::lookup;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const SCENARIO: &str = "two-envelope-complex";
const SEED: u64 = 7;
const BLOCKS: u64 = 64;

fn fresh_stream() -> corrfade::RealtimeGenerator {
    lookup(SCENARIO)
        .expect("bench scenario exists")
        .build_realtime(SEED)
        .expect("bench scenario builds")
}

fn bench_resume_fast_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve/resume_fast_forward");
    group.throughput(Throughput::Elements(BLOCKS));
    group.sample_size(10);

    let mut generated = fresh_stream();
    let mut block = SampleBlock::empty();
    group.bench_function("generate_64", |b| {
        b.iter(|| {
            for _ in 0..BLOCKS {
                generated.next_block_into(&mut block).unwrap();
            }
        })
    });

    let mut skipped = fresh_stream();
    group.bench_function("skip_64", |b| b.iter(|| skipped.skip_blocks(BLOCKS)));

    group.finish();
}

criterion_group!(benches, bench_resume_fast_forward);
criterion_main!(benches);

//! Bench: scalar vs. vectorized kernel backends, per kernel.
//!
//! Each hot-path kernel behind `corrfade_linalg::kernel` (and the FFT
//! dispatch in `corrfade-dsp`) is measured on both backends through the
//! explicit `*_with(backend, …)` entry points, so the speedup of the
//! vectorized path is visible independent of the process-wide
//! `CORRFADE_KERNEL` selection. The sizes mirror the paper's hot path:
//! `N = 3` envelopes × `M = 4096` samples, plus a larger `N` to show the
//! cache-blocked scaling.

use corrfade_dsp::{
    color_idft_block32_with, color_idft_block_with, ifft32_in_place_with, ifft_in_place_with,
};
use corrfade_linalg::kernel::{
    accumulate_covariance_with, color_block_f32_with, color_block_with, envelope_into_f32_with,
    envelope_into_with, matvec_into_with,
};
use corrfade_linalg::{c64, Backend, Complex32, Complex64};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const BACKENDS: [(&str, Backend); 2] = [("scalar", Backend::Scalar), ("vector", Backend::Vector)];

fn signal(len: usize) -> Vec<Complex64> {
    (0..len)
        .map(|i| {
            let t = i as f64;
            c64((0.37 * t).sin(), 0.5 * (0.71 * t).cos())
        })
        .collect()
}

fn signal32(len: usize) -> Vec<Complex32> {
    signal(len).into_iter().map(Complex32::narrow).collect()
}

fn bench_color_block(c: &mut Criterion) {
    for (n, m) in [(3usize, 4096usize), (16, 4096)] {
        let mut group = c.benchmark_group(format!("kernel/coloring_n{n}_m{m}"));
        group.throughput(Throughput::Elements((n * m) as u64));
        let a = signal(n * n);
        let raw = signal(n * m);
        for (name, backend) in BACKENDS {
            group.bench_with_input(BenchmarkId::from_parameter(name), &backend, |b, &bk| {
                let mut out = vec![Complex64::ZERO; n * m];
                let mut w = Vec::new();
                let mut planes = Vec::new();
                b.iter(|| color_block_with(bk, n, m, &a, 0.5, &raw, &mut out, &mut w, &mut planes))
            });
        }
        group.finish();
    }
}

fn bench_color_block_f32(c: &mut Criterion) {
    let (n, m) = (3usize, 4096usize);
    let mut group = c.benchmark_group(format!("kernel/coloring_f32_n{n}_m{m}"));
    group.throughput(Throughput::Elements((n * m) as u64));
    let a = signal32(n * n);
    let raw = signal32(n * m);
    for (name, backend) in BACKENDS {
        group.bench_with_input(BenchmarkId::from_parameter(name), &backend, |b, &bk| {
            let mut out = vec![Complex32::ZERO; n * m];
            let mut w = Vec::new();
            let mut planes = Vec::new();
            b.iter(|| color_block_f32_with(bk, n, m, &a, 0.5, &raw, &mut out, &mut w, &mut planes))
        });
    }
    group.finish();
}

/// The fused coloring+IDFT kernel against the two-pass composition it
/// replaces, in both precisions, on the paper's block shape. Every variant
/// pays the identical `copy_from_slice` refill per iteration (the transforms
/// destroy their input), so the medians compare like for like.
fn bench_color_idft(c: &mut Criterion) {
    let (n, m) = (3usize, 4096usize);
    let a = signal(n * n);
    let raw = signal(n * m);
    let (a32, raw32) = (signal32(n * n), signal32(n * m));

    let mut group = c.benchmark_group(format!("kernel/color_idft_two_pass_n{n}_m{m}"));
    group.throughput(Throughput::Elements((n * m) as u64));
    for (name, backend) in BACKENDS {
        group.bench_with_input(BenchmarkId::from_parameter(name), &backend, |b, &bk| {
            let mut work = raw.clone();
            let mut out = vec![Complex64::ZERO; n * m];
            let (mut w, mut planes) = (Vec::new(), Vec::new());
            b.iter(|| {
                work.copy_from_slice(&raw);
                for j in 0..n {
                    ifft_in_place_with(bk, &mut work[j * m..(j + 1) * m]);
                }
                color_block_with(bk, n, m, &a, 0.5, &work, &mut out, &mut w, &mut planes)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group(format!("kernel/color_idft_fused_n{n}_m{m}"));
    group.throughput(Throughput::Elements((n * m) as u64));
    for (name, backend) in BACKENDS {
        group.bench_with_input(BenchmarkId::from_parameter(name), &backend, |b, &bk| {
            let mut work = raw.clone();
            let mut out = vec![Complex64::ZERO; n * m];
            let (mut w, mut planes) = (Vec::new(), Vec::new());
            b.iter(|| {
                work.copy_from_slice(&raw);
                color_idft_block_with(bk, n, m, &a, 0.5, &mut work, &mut out, &mut w, &mut planes)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group(format!("kernel/color_idft_fused_f32_n{n}_m{m}"));
    group.throughput(Throughput::Elements((n * m) as u64));
    for (name, backend) in BACKENDS {
        group.bench_with_input(BenchmarkId::from_parameter(name), &backend, |b, &bk| {
            let mut work = raw32.clone();
            let mut out = vec![Complex32::ZERO; n * m];
            let (mut w, mut planes) = (Vec::new(), Vec::new());
            b.iter(|| {
                work.copy_from_slice(&raw32);
                color_idft_block32_with(
                    bk,
                    n,
                    m,
                    &a32,
                    0.5,
                    &mut work,
                    &mut out,
                    &mut w,
                    &mut planes,
                )
            })
        });
    }
    group.finish();
}

fn bench_matvec(c: &mut Criterion) {
    let n = 64;
    let mut group = c.benchmark_group(format!("kernel/matvec_n{n}"));
    group.throughput(Throughput::Elements((n * n) as u64));
    let a = signal(n * n);
    let x = signal(n);
    for (name, backend) in BACKENDS {
        group.bench_with_input(BenchmarkId::from_parameter(name), &backend, |b, &bk| {
            let mut y = vec![Complex64::ZERO; n];
            b.iter(|| matvec_into_with(bk, n, n, &a, &x, &mut y))
        });
    }
    group.finish();
}

fn bench_accumulate_covariance(c: &mut Criterion) {
    let (n, m) = (3usize, 4096usize);
    let mut group = c.benchmark_group(format!("kernel/accumulate_covariance_n{n}_m{m}"));
    group.throughput(Throughput::Elements((n * m) as u64));
    let data = signal(n * m);
    for (name, backend) in BACKENDS {
        group.bench_with_input(BenchmarkId::from_parameter(name), &backend, |b, &bk| {
            let mut acc = vec![Complex64::ZERO; n * n];
            b.iter(|| accumulate_covariance_with(bk, n, m, &data, &mut acc))
        });
    }
    group.finish();
}

fn bench_idft(c: &mut Criterion) {
    let m = 4096;
    let mut group = c.benchmark_group(format!("kernel/idft_m{m}"));
    group.throughput(Throughput::Elements(m as u64));
    let x = signal(m);
    for (name, backend) in BACKENDS {
        group.bench_with_input(BenchmarkId::from_parameter(name), &backend, |b, &bk| {
            let mut data = x.clone();
            b.iter(|| ifft_in_place_with(bk, &mut data))
        });
    }
    group.finish();
}

fn bench_idft_f32(c: &mut Criterion) {
    let m = 4096;
    let mut group = c.benchmark_group(format!("kernel/idft_f32_m{m}"));
    group.throughput(Throughput::Elements(m as u64));
    let x = signal32(m);
    for (name, backend) in BACKENDS {
        group.bench_with_input(BenchmarkId::from_parameter(name), &backend, |b, &bk| {
            let mut data = x.clone();
            b.iter(|| ifft32_in_place_with(bk, &mut data))
        });
    }
    group.finish();
}

fn bench_envelope(c: &mut Criterion) {
    let len = 3 * 4096;
    let mut group = c.benchmark_group(format!("kernel/envelope_{len}"));
    group.throughput(Throughput::Elements(len as u64));
    let data = signal(len);
    for (name, backend) in BACKENDS {
        group.bench_with_input(BenchmarkId::from_parameter(name), &backend, |b, &bk| {
            let mut env = vec![0.0f64; len];
            b.iter(|| envelope_into_with(bk, &data, &mut env))
        });
    }
    group.finish();
}

fn bench_envelope_f32(c: &mut Criterion) {
    let len = 3 * 4096;
    let mut group = c.benchmark_group(format!("kernel/envelope_f32_{len}"));
    group.throughput(Throughput::Elements(len as u64));
    let data = signal32(len);
    for (name, backend) in BACKENDS {
        group.bench_with_input(BenchmarkId::from_parameter(name), &backend, |b, &bk| {
            let mut env = vec![0.0f32; len];
            b.iter(|| envelope_into_f32_with(bk, &data, &mut env))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_color_block,
    bench_color_block_f32,
    bench_color_idft,
    bench_matvec,
    bench_accumulate_covariance,
    bench_idft,
    bench_idft_f32,
    bench_envelope,
    bench_envelope_f32
);
criterion_main!(benches);

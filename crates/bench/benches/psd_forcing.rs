//! Bench: the PSD-forcing ablation of experiment E7 — zero-clipping
//! (proposed) vs ε-replacement (ref. \[6\]) on the registered
//! `indefinite-rho09` family at growing size, plus the pure forcing step on
//! PSD inputs (`scaling-exp-rho07`, the fast path).

use corrfade::force_positive_semidefinite;
use corrfade_baselines::epsilon_psd_forcing;
use corrfade_scenarios::lookup;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_forcing_indefinite(c: &mut Criterion) {
    let mut group = c.benchmark_group("psd_forcing/indefinite");
    let family = lookup("indefinite-rho09").unwrap();
    for &n in &[4usize, 8, 16, 32] {
        let k = family.with_envelopes(n).covariance_matrix().unwrap();
        group.bench_with_input(BenchmarkId::new("zero_clip", n), &k, |b, k| {
            b.iter(|| force_positive_semidefinite(k).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("epsilon_1e-4", n), &k, |b, k| {
            b.iter(|| epsilon_psd_forcing(k, 1e-4).unwrap())
        });
    }
    group.finish();
}

fn bench_forcing_psd_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("psd_forcing/already_psd");
    let family = lookup("scaling-exp-rho07").unwrap();
    for &n in &[8usize, 32] {
        let k = family.with_envelopes(n).covariance_matrix().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &k, |b, k| {
            b.iter(|| force_positive_semidefinite(k).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_forcing_indefinite,
    bench_forcing_psd_fast_path
);
criterion_main!(benches);

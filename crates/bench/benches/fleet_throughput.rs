//! Bench: the multi-stream batch engine driving **all 16 registered
//! scenarios concurrently** — the ROADMAP's "many simultaneous workloads"
//! serving shape.
//!
//! * `fleet/advance_all16/*` measures one batch advance (every stream's
//!   next Doppler block) sequentially on the calling thread, on the global
//!   pool, and on explicit pools of several sizes. On a multi-core machine
//!   the pooled ids are expected to scale near-linearly with the worker
//!   count until streams run out (16 independent streams, uncontended
//!   locks, zero steady-state allocation).
//! * `fleet/open_all16/*` measures fleet construction with a cold vs warm
//!   process-wide decomposition cache — the per-stream setup the cache
//!   amortizes away for every open after the first.

use corrfade_parallel::{Runtime, StreamFleet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_fleet_advance(c: &mut Criterion) {
    let names = corrfade_scenarios::names();
    assert_eq!(names.len(), 16, "the full catalog is the fleet under test");
    let mut fleet = StreamFleet::open(&names, 7).unwrap();
    let samples = fleet.samples_per_advance() as u64;

    let mut group = c.benchmark_group("fleet/advance_all16");
    group.throughput(Throughput::Elements(samples));
    group.sample_size(10);

    group.bench_function("sequential", |b| {
        b.iter(|| fleet.advance_sequential().unwrap())
    });
    group.bench_function("pooled_global", |b| b.iter(|| fleet.advance().unwrap()));
    for &workers in &[2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("pooled", workers),
            &workers,
            |b, &workers| {
                let rt = Runtime::new(workers);
                b.iter(|| fleet.advance_on(&rt).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_fleet_open(c: &mut Criterion) {
    let names = corrfade_scenarios::names();
    let mut group = c.benchmark_group("fleet/open_all16");
    group.sample_size(10);

    group.bench_function("cold_cache", |b| {
        b.iter(|| {
            corrfade::clear_coloring_caches();
            StreamFleet::open(&names, 7).unwrap()
        })
    });
    group.bench_function("warm_cache", |b| {
        // Populate once, then every open shares the cached decompositions.
        let _warm = StreamFleet::open(&names, 7).unwrap();
        b.iter(|| StreamFleet::open(&names, 7).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_fleet_advance, bench_fleet_open);
criterion_main!(benches);

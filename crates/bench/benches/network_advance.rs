//! Bench: WSN-scale lockstep advance — the ROADMAP's "massive-network
//! workload" shape, >1000 correlated links per epoch.
//!
//! A 23×23 unit grid yields 1012 links, decomposed into correlated groups of
//! at most 64 under the configured spatial model; one `advance` generates a
//! Doppler block for every link. Throughput is reported in **links per
//! second** (`Throughput::Elements(link_count)`), the figure the
//! `network-scale` CI job regression-gates.
//!
//! * `network/advance_1012/*` — one lockstep epoch, sequentially and on
//!   pools of several sizes.
//! * `network/metrics_1012` — the per-link trace-extraction pass (envelope
//!   view + outage/LCR/AFD) over a warm epoch, allocation-free by contract.

use corrfade_models::wsn::LinkCorrelationModel;
use corrfade_network::{NetworkSim, NetworkSimConfig, Topology};
use corrfade_parallel::Runtime;
use corrfade_scenarios::DopplerSettings;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn network_config() -> NetworkSimConfig {
    NetworkSimConfig {
        correlation: LinkCorrelationModel::distance_only(0.4),
        correlation_threshold: 0.1,
        max_group_size: 64,
        doppler: DopplerSettings {
            idft_size: 256,
            normalized_doppler: 0.05,
            sigma_orig_sq: 0.5,
        },
        ..NetworkSimConfig::default()
    }
}

fn open_sim() -> NetworkSim {
    let topology = Topology::grid(23, 23, 1.0).unwrap();
    assert_eq!(topology.link_count(), 1012, "bench topology drifted");
    NetworkSim::open(topology, &network_config(), 7).unwrap()
}

fn bench_network_advance(c: &mut Criterion) {
    let mut sim = open_sim();
    let links = sim.link_count() as u64;

    let mut group = c.benchmark_group("network/advance_1012");
    group.throughput(Throughput::Elements(links));
    group.sample_size(10);

    group.bench_function("sequential", |b| {
        b.iter(|| sim.advance_sequential().unwrap())
    });
    group.bench_function("pooled_global", |b| b.iter(|| sim.advance().unwrap()));
    for &workers in &[2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("pooled", workers),
            &workers,
            |b, &workers| {
                let rt = Runtime::new(workers);
                b.iter(|| sim.advance_on(&rt).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_network_metrics(c: &mut Criterion) {
    let mut sim = open_sim();
    sim.advance().unwrap();
    let links = sim.link_count() as u64;

    let mut group = c.benchmark_group("network/metrics_1012");
    group.throughput(Throughput::Elements(links));
    group.sample_size(10);

    group.bench_function("trace_extraction", |b| {
        b.iter(|| {
            let mut outages = 0.0f64;
            for link in 0..sim.link_count() {
                outages += sim.link_metrics(link).unwrap().outage_probability;
            }
            outages
        })
    });
    group.finish();
}

criterion_group!(benches, bench_network_advance, bench_network_metrics);
criterion_main!(benches);

//! Bench: building the desired covariance matrices of the paper's two
//! experiments (E1/E2) from the correlation models — Eq. (3)-(4) + (12)-(13)
//! for the spectral case and Eq. (5)-(7) + (12)-(13) for the spatial case.

use corrfade_models::{paper_spatial_scenario, paper_spectral_scenario, SalzWintersSpatialModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_paper_matrices(c: &mut Criterion) {
    let mut group = c.benchmark_group("covariance_build/paper");
    group.bench_function("eq22_spectral_3x3", |b| {
        let (model, freqs, delays) = paper_spectral_scenario();
        b.iter(|| model.covariance_matrix(&freqs, &delays).unwrap())
    });
    group.bench_function("eq23_spatial_3x3", |b| {
        let model = paper_spatial_scenario();
        b.iter(|| model.covariance_matrix(3).unwrap())
    });
    group.finish();
}

fn bench_spatial_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("covariance_build/spatial_scaling");
    for &n in &[2usize, 4, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let model = SalzWintersSpatialModel::new(1.0, 0.5, 0.3, 0.2);
            b.iter(|| model.covariance_matrix(n).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_paper_matrices, bench_spatial_scaling);
criterion_main!(benches);

//! Bench: building the desired covariance matrices of the paper's two
//! experiments (E1/E2) from the correlation models — Eq. (3)-(4) + (12)-(13)
//! for the spectral case and Eq. (5)-(7) + (12)-(13) for the spatial case —
//! resolved from the scenario registry by name.

use corrfade_scenarios::lookup;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_paper_matrices(c: &mut Criterion) {
    let mut group = c.benchmark_group("covariance_build/paper");
    for name in ["fig4a-spectral", "fig4b-spatial"] {
        let scenario = lookup(name).unwrap();
        group.bench_function(name, |b| b.iter(|| scenario.covariance_matrix().unwrap()));
    }
    group.finish();
}

fn bench_spatial_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("covariance_build/spatial_scaling");
    let family = lookup("mimo-offbroadside").unwrap();
    for &n in &[2usize, 4, 8, 16, 32] {
        let scenario = family.with_envelopes(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &scenario, |b, s| {
            b.iter(|| s.covariance_matrix().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_paper_matrices, bench_spatial_scaling);
criterion_main!(benches);

//! Sample covariance estimation for complex Gaussian processes.
//!
//! The headline claim of the paper is `E(Z·Zᴴ) = K̄` (Sec. 4.5): the sample
//! covariance of the generated vectors must converge to the (PSD-forced)
//! desired covariance matrix. This module estimates that matrix from the
//! generated sample paths, along with the four real covariances
//! `Rxx`, `Ryy`, `Rxy`, `Ryx` of Eq. (1)–(2) so tests can verify the
//! decomposition in Eq. (13) term by term.

use corrfade_linalg::{c64, CMatrix, Complex64, SampleBlock};

/// Sample covariance matrix `K̂ = (1/S)·Σ_s z_s·z_sᴴ` of `N` zero-mean
/// complex processes observed over `S` snapshots.
///
/// `samples[s]` is the length-`N` snapshot at time `s` (one draw of the
/// vector `Z` of the paper).
///
/// # Panics
/// Panics if the snapshots are ragged or there are none.
pub fn sample_covariance(samples: &[Vec<Complex64>]) -> CMatrix {
    assert!(!samples.is_empty(), "sample_covariance: no snapshots");
    let n = samples[0].len();
    let mut k = CMatrix::zeros(n, n);
    for (s, snap) in samples.iter().enumerate() {
        assert_eq!(
            snap.len(),
            n,
            "sample_covariance: snapshot {s} has ragged length"
        );
        for i in 0..n {
            for j in 0..n {
                k[(i, j)] += snap[i] * snap[j].conj();
            }
        }
    }
    k.scale_real(1.0 / samples.len() as f64)
}

/// Sample covariance from per-process sample paths: `paths[j]` is the whole
/// time series of process `j` (all paths must have equal length). This is the
/// transposed layout of [`sample_covariance`], convenient when the generator
/// returns one long sequence per envelope.
///
/// # Panics
/// Panics if the paths are ragged or empty.
pub fn sample_covariance_from_paths(paths: &[Vec<Complex64>]) -> CMatrix {
    assert!(!paths.is_empty(), "sample_covariance_from_paths: no paths");
    let len = paths[0].len();
    assert!(len > 0, "sample_covariance_from_paths: empty paths");
    let n = paths.len();
    let mut k = CMatrix::zeros(n, n);
    for i in 0..n {
        assert_eq!(
            paths[i].len(),
            len,
            "sample_covariance_from_paths: path {i} has ragged length"
        );
        for j in 0..n {
            let mut acc = Complex64::ZERO;
            for (zi, zj) in paths[i].iter().zip(paths[j].iter()) {
                acc += *zi * zj.conj();
            }
            k[(i, j)] = acc.unscale(len as f64);
        }
    }
    k
}

/// Sample covariance straight from a planar [`SampleBlock`] — no snapshot
/// or path vectors are materialized. Every sample of the block counts as one
/// snapshot, matching [`sample_covariance`] over
/// [`SampleBlock::to_snapshots`] bit for bit.
///
/// # Panics
/// Panics if the block is empty.
pub fn sample_covariance_from_block(block: &SampleBlock) -> CMatrix {
    assert!(
        block.samples() > 0 && block.envelopes() > 0,
        "sample_covariance_from_block: empty block"
    );
    let n = block.envelopes();
    let mut k = CMatrix::zeros(n, n);
    block.accumulate_covariance(&mut k);
    k.scale_real(1.0 / block.samples() as f64)
}

/// The four real cross-covariances of Eq. (1)–(2) between processes `k` and
/// `j`, estimated from their sample paths:
/// `(Rxx, Ryy, Rxy, Ryx)` with `Rxy = E[x_k·y_j]` etc.
///
/// # Panics
/// Panics if the paths have different lengths.
pub fn real_imag_covariances(path_k: &[Complex64], path_j: &[Complex64]) -> (f64, f64, f64, f64) {
    assert_eq!(
        path_k.len(),
        path_j.len(),
        "real_imag_covariances: length mismatch"
    );
    assert!(!path_k.is_empty(), "real_imag_covariances: empty paths");
    let n = path_k.len() as f64;
    let mut rxx = 0.0;
    let mut ryy = 0.0;
    let mut rxy = 0.0;
    let mut ryx = 0.0;
    for (&zk, &zj) in path_k.iter().zip(path_j.iter()) {
        rxx += zk.re * zj.re;
        ryy += zk.im * zj.im;
        rxy += zk.re * zj.im;
        ryx += zk.im * zj.re;
    }
    (rxx / n, ryy / n, rxy / n, ryx / n)
}

/// Assembles the complex covariance `µ_{k,j}` of Eq. (13) from the four real
/// covariances: `(Rxx + Ryy) − i·(Rxy − Ryx)`.
pub fn complex_covariance_from_parts(rxx: f64, ryy: f64, rxy: f64, ryx: f64) -> Complex64 {
    c64(rxx + ryy, -(rxy - ryx))
}

/// Correlation-coefficient matrix obtained by normalizing a covariance
/// matrix: `ρ_{k,j} = K_{k,j} / √(K_{k,k}·K_{j,j})`.
///
/// # Panics
/// Panics if the matrix is not square or has a non-positive diagonal entry.
pub fn correlation_from_covariance(k: &CMatrix) -> CMatrix {
    assert!(
        k.is_square(),
        "correlation_from_covariance: matrix must be square"
    );
    let n = k.rows();
    let mut diag = Vec::with_capacity(n);
    for i in 0..n {
        let d = k[(i, i)].re;
        assert!(
            d > 0.0,
            "correlation_from_covariance: non-positive variance at index {i}"
        );
        diag.push(d);
    }
    CMatrix::from_fn(n, n, |i, j| k[(i, j)].unscale((diag[i] * diag[j]).sqrt()))
}

/// Relative Frobenius error `‖K̂ − K‖_F / ‖K‖_F` — the figure of merit used
/// throughout the experiments to quantify how well the generated samples
/// achieve the desired covariance.
pub fn relative_frobenius_error(achieved: &CMatrix, desired: &CMatrix) -> f64 {
    let denom = desired.frobenius_norm().max(f64::MIN_POSITIVE);
    achieved.frobenius_distance(desired) / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covariance_of_deterministic_snapshots() {
        // Two snapshots of a 2-vector with known outer products.
        let s1 = vec![c64(1.0, 0.0), c64(0.0, 1.0)];
        let s2 = vec![c64(0.0, 2.0), c64(2.0, 0.0)];
        let k = sample_covariance(&[s1, s2]);
        // K[0][0] = (|1|^2 + |2i|^2)/2 = 2.5
        assert!((k[(0, 0)].re - 2.5).abs() < 1e-12);
        // K[0][1] = (1*conj(i) + 2i*conj(2))/2 = (-i + 4i)/2 = 1.5i
        assert!(k[(0, 1)].approx_eq(c64(0.0, 1.5), 1e-12));
        // Hermitian.
        assert!(k[(1, 0)].approx_eq(k[(0, 1)].conj(), 1e-12));
    }

    #[test]
    fn block_and_snapshot_estimates_are_bit_identical() {
        let snapshots = [
            vec![c64(1.0, 1.0), c64(2.0, -1.0)],
            vec![c64(-1.0, 0.5), c64(0.0, 1.0)],
            vec![c64(0.25, -2.0), c64(1.0, 1.0)],
        ];
        let mut block = SampleBlock::new(2, 3);
        for (l, snap) in snapshots.iter().enumerate() {
            for (j, &z) in snap.iter().enumerate() {
                block.path_mut(j)[l] = z;
            }
        }
        let from_snaps = sample_covariance(&snapshots);
        let from_block = sample_covariance_from_block(&block);
        assert!(from_block.approx_eq(&from_snaps, 0.0));
    }

    #[test]
    fn paths_and_snapshots_agree() {
        let snapshots = vec![
            vec![c64(1.0, 1.0), c64(2.0, -1.0)],
            vec![c64(-1.0, 0.5), c64(0.0, 1.0)],
            vec![c64(0.25, -2.0), c64(1.0, 1.0)],
        ];
        let paths: Vec<Vec<Complex64>> = (0..2)
            .map(|j| snapshots.iter().map(|s| s[j]).collect())
            .collect();
        let k1 = sample_covariance(&snapshots);
        let k2 = sample_covariance_from_paths(&paths);
        assert!(k1.approx_eq(&k2, 1e-12));
    }

    #[test]
    fn real_imag_parts_compose_to_complex_covariance() {
        let a = vec![c64(1.0, 2.0), c64(-0.5, 1.0), c64(2.0, -1.0)];
        let b = vec![c64(0.5, -1.0), c64(1.5, 0.5), c64(-1.0, 2.0)];
        let (rxx, ryy, rxy, ryx) = real_imag_covariances(&a, &b);
        let mu = complex_covariance_from_parts(rxx, ryy, rxy, ryx);
        // Must equal E[z_a conj(z_b)] directly.
        let direct: Complex64 = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| x * y.conj())
            .sum::<Complex64>()
            / 3.0;
        assert!(mu.approx_eq(direct, 1e-12));
    }

    #[test]
    fn correlation_matrix_has_unit_diagonal() {
        let k = CMatrix::from_rows(&[
            vec![c64(4.0, 0.0), c64(1.0, 1.0)],
            vec![c64(1.0, -1.0), c64(9.0, 0.0)],
        ]);
        let rho = correlation_from_covariance(&k);
        assert!(rho[(0, 0)].approx_eq(Complex64::ONE, 1e-12));
        assert!(rho[(1, 1)].approx_eq(Complex64::ONE, 1e-12));
        assert!(rho[(0, 1)].approx_eq(c64(1.0 / 6.0, 1.0 / 6.0), 1e-12));
    }

    #[test]
    fn relative_error_metric() {
        let a = CMatrix::identity(3);
        let b = CMatrix::identity(3).scale_real(1.1);
        let e = relative_frobenius_error(&b, &a);
        assert!((e - 0.1).abs() < 1e-12);
        assert_eq!(relative_frobenius_error(&a, &a), 0.0);
    }

    #[test]
    #[should_panic(expected = "no snapshots")]
    fn empty_input_rejected() {
        let _ = sample_covariance(&[]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_snapshots_rejected() {
        let _ = sample_covariance(&[
            vec![Complex64::ZERO],
            vec![Complex64::ZERO, Complex64::ZERO],
        ]);
    }
}

//! Rayleigh-distribution helpers and the paper's power-conversion relations.
//!
//! The paper works with two notions of "power":
//!
//! * `σ_g²` — the variance (power) of the complex Gaussian variable
//!   `z = x + iy`, i.e. `E|z|²`,
//! * `σ_r²` — the variance of the Rayleigh envelope `r = |z|`.
//!
//! They are linked by Eq. (11), (14), (15):
//!
//! ```text
//! E[r]      = σ_g·√(π)/2        ≈ 0.8862·σ_g      (Eq. 14)
//! Var[r]    = σ_g²·(1 − π/4)    ≈ 0.2146·σ_g²     (Eq. 15)
//! σ_g²      = σ_r² / (1 − π/4)                     (Eq. 11)
//! ```
//!
//! In the classical parameterization `Rayleigh(σ)` (σ = mode), the envelope
//! of a complex Gaussian with total variance `σ_g²` has `σ = σ_g/√2`.

use core::f64::consts::PI;

/// Theoretical mean of the envelope `r = |z|` for a complex Gaussian with
/// total variance `sigma_g_sq` (paper Eq. 14).
pub fn envelope_mean(sigma_g_sq: f64) -> f64 {
    assert!(sigma_g_sq >= 0.0, "variance must be non-negative");
    sigma_g_sq.sqrt() * PI.sqrt() / 2.0
}

/// Theoretical variance of the envelope (paper Eq. 15).
pub fn envelope_variance(sigma_g_sq: f64) -> f64 {
    assert!(sigma_g_sq >= 0.0, "variance must be non-negative");
    sigma_g_sq * (1.0 - PI / 4.0)
}

/// Theoretical mean-square (power) of the envelope, `E[r²] = σ_g²`.
pub fn envelope_mean_square(sigma_g_sq: f64) -> f64 {
    assert!(sigma_g_sq >= 0.0, "variance must be non-negative");
    sigma_g_sq
}

/// Converts a desired Rayleigh-envelope variance `σ_r²` into the complex
/// Gaussian variance `σ_g²` the generator must use (paper Eq. 11).
pub fn gaussian_variance_from_envelope_variance(sigma_r_sq: f64) -> f64 {
    assert!(sigma_r_sq >= 0.0, "variance must be non-negative");
    sigma_r_sq / (1.0 - PI / 4.0)
}

/// Inverse of [`gaussian_variance_from_envelope_variance`].
pub fn envelope_variance_from_gaussian_variance(sigma_g_sq: f64) -> f64 {
    envelope_variance(sigma_g_sq)
}

/// Classical Rayleigh scale parameter `σ` (the mode) of the envelope of a
/// complex Gaussian with total variance `sigma_g_sq`: `σ = σ_g/√2`.
pub fn rayleigh_scale(sigma_g_sq: f64) -> f64 {
    assert!(sigma_g_sq >= 0.0, "variance must be non-negative");
    (sigma_g_sq / 2.0).sqrt()
}

/// Rayleigh probability density with scale `sigma` (mode):
/// `f(r) = r/σ²·exp(−r²/(2σ²))` for `r ≥ 0`.
pub fn rayleigh_pdf(r: f64, sigma: f64) -> f64 {
    assert!(sigma > 0.0, "rayleigh_pdf requires sigma > 0");
    if r < 0.0 {
        0.0
    } else {
        r / (sigma * sigma) * (-r * r / (2.0 * sigma * sigma)).exp()
    }
}

/// Maximum-likelihood estimate of the Rayleigh scale from envelope samples:
/// `σ̂² = (1/2n)·Σ r²`.
///
/// # Panics
/// Panics if `data` is empty.
pub fn rayleigh_mle_scale(data: &[f64]) -> f64 {
    assert!(!data.is_empty(), "rayleigh_mle_scale: empty data");
    (data.iter().map(|&r| r * r).sum::<f64>() / (2.0 * data.len() as f64)).sqrt()
}

/// Summary of how closely an envelope sample matches the Rayleigh statistics
/// predicted by the paper for a given `σ_g²`.
#[derive(Debug, Clone, Copy)]
pub struct EnvelopeMomentCheck {
    /// Sample mean of the envelope.
    pub sample_mean: f64,
    /// Theoretical mean `0.8862·σ_g` (Eq. 14).
    pub theoretical_mean: f64,
    /// Sample variance of the envelope.
    pub sample_variance: f64,
    /// Theoretical variance `0.2146·σ_g²` (Eq. 15).
    pub theoretical_variance: f64,
    /// Sample mean square (power) of the envelope.
    pub sample_power: f64,
    /// Theoretical power `σ_g²`.
    pub theoretical_power: f64,
}

impl EnvelopeMomentCheck {
    /// Largest relative deviation among mean, variance and power.
    pub fn max_relative_error(&self) -> f64 {
        let e1 = relative_error(self.sample_mean, self.theoretical_mean);
        let e2 = relative_error(self.sample_variance, self.theoretical_variance);
        let e3 = relative_error(self.sample_power, self.theoretical_power);
        e1.max(e2).max(e3)
    }
}

fn relative_error(measured: f64, expected: f64) -> f64 {
    if expected == 0.0 {
        measured.abs()
    } else {
        (measured - expected).abs() / expected.abs()
    }
}

/// Compares the sample moments of an envelope sequence against the
/// theoretical Rayleigh moments for a complex Gaussian variance `sigma_g_sq`.
///
/// # Panics
/// Panics if `envelope` is empty.
pub fn check_envelope_moments(envelope: &[f64], sigma_g_sq: f64) -> EnvelopeMomentCheck {
    assert!(!envelope.is_empty(), "check_envelope_moments: empty data");
    let sample_mean = crate::descriptive::mean(envelope);
    let sample_variance = crate::descriptive::variance(envelope);
    let sample_power = crate::descriptive::mean_square(envelope);
    EnvelopeMomentCheck {
        sample_mean,
        theoretical_mean: envelope_mean(sigma_g_sq),
        sample_variance,
        theoretical_variance: envelope_variance(sigma_g_sq),
        sample_power,
        theoretical_power: envelope_mean_square(sigma_g_sq),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        // Eq. (14): E{r} = 0.8862 σg for σg = 1.
        assert!((envelope_mean(1.0) - 0.8862).abs() < 1e-4);
        // Eq. (15): Var{r} = 0.2146 σg².
        assert!((envelope_variance(1.0) - 0.2146).abs() < 1e-4);
        assert_eq!(envelope_mean_square(2.5), 2.5);
    }

    #[test]
    fn power_conversion_round_trip() {
        // Eq. (11) composed with Eq. (15) must be the identity.
        for &sr2 in &[0.1, 1.0, 3.7] {
            let sg2 = gaussian_variance_from_envelope_variance(sr2);
            assert!((envelope_variance_from_gaussian_variance(sg2) - sr2).abs() < 1e-12);
        }
        // Explicit constant: 1/(1 - π/4) ≈ 4.6598.
        assert!((gaussian_variance_from_envelope_variance(1.0) - 4.659792366325487).abs() < 1e-9);
    }

    #[test]
    fn mean_and_variance_consistent_with_envelope_power() {
        // E[r²] = Var[r] + E[r]² = σg².
        let sg2 = 1.8;
        let total = envelope_variance(sg2) + envelope_mean(sg2).powi(2);
        assert!((total - sg2).abs() < 1e-12);
    }

    #[test]
    fn pdf_integrates_to_one_and_peaks_at_sigma() {
        let sigma = 1.3;
        let dr = 1e-3;
        let mut integral = 0.0;
        let mut r = 0.0;
        while r < 15.0 {
            integral += rayleigh_pdf(r + 0.5 * dr, sigma) * dr;
            r += dr;
        }
        assert!((integral - 1.0).abs() < 1e-4);
        // Mode at r = sigma.
        assert!(rayleigh_pdf(sigma, sigma) > rayleigh_pdf(sigma * 0.9, sigma));
        assert!(rayleigh_pdf(sigma, sigma) > rayleigh_pdf(sigma * 1.1, sigma));
        assert_eq!(rayleigh_pdf(-1.0, sigma), 0.0);
    }

    #[test]
    fn mle_recovers_scale_from_exact_moments() {
        // If every sample equals sqrt(2)·σ, then Σr²/(2n) = σ².
        let sigma = 0.9;
        let data = vec![sigma * 2.0f64.sqrt(); 100];
        assert!((rayleigh_mle_scale(&data) - sigma).abs() < 1e-12);
    }

    #[test]
    fn scale_relation() {
        assert!((rayleigh_scale(2.0) - 1.0).abs() < 1e-12);
        assert!((rayleigh_scale(1.0) - core::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn moment_check_on_synthetic_rayleigh_data() {
        // Deterministic construction: envelopes drawn via inverse-CDF from a
        // uniform grid are "perfectly Rayleigh".
        let sigma_g_sq = 2.0;
        let sigma = rayleigh_scale(sigma_g_sq);
        let n = 200_000;
        let data: Vec<f64> = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                sigma * (-2.0 * (1.0 - u).ln()).sqrt()
            })
            .collect();
        let check = check_envelope_moments(&data, sigma_g_sq);
        assert!(
            check.max_relative_error() < 0.01,
            "moment check failed: {check:?}"
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_variance_rejected() {
        let _ = envelope_mean(-1.0);
    }
}

//! # corrfade-stats
//!
//! Statistical validation toolbox for the `corrfade` workspace. The paper
//! validates its generator with envelope plots and analytic moment relations;
//! this crate provides the quantitative machinery the experiment harness uses
//! instead:
//!
//! * [`descriptive`] — means, variances, higher moments, quantiles,
//! * [`covariance`] — complex sample covariance `E(Z·Zᴴ)`, the four real
//!   covariances of Eq. (1)–(2) and the Frobenius error against a desired
//!   covariance matrix,
//! * [`histogram`] — histograms, empirical PDFs/CDFs,
//! * [`gof`] — Kolmogorov–Smirnov and chi-square goodness-of-fit tests
//!   against the Rayleigh law,
//! * [`rayleigh`] — the paper's power-conversion relations (Eq. 11, 14, 15),
//! * [`autocorr`] — autocorrelation estimation against the `J₀(2π·f_m·d)`
//!   target of Eq. (20),
//! * [`fading_metrics`] — level-crossing rate, average fade duration and the
//!   "dB around RMS" scaling of the paper's Fig. 4.

#![warn(missing_docs)]

pub mod autocorr;
pub mod covariance;
pub mod descriptive;
pub mod fading_metrics;
pub mod gof;
pub mod histogram;
pub mod rayleigh;

pub use autocorr::{
    autocorrelation, autocorrelation_real, cross_correlation, max_autocorrelation_deviation,
    normalized_autocorrelation,
};
pub use covariance::{
    complex_covariance_from_parts, correlation_from_covariance, real_imag_covariances,
    relative_frobenius_error, sample_covariance, sample_covariance_from_block,
    sample_covariance_from_paths,
};
pub use descriptive::{
    kurtosis, mean, mean_square, median, pearson_correlation, quantile, rms, skewness, std_dev,
    variance,
};
pub use fading_metrics::{
    empirical_afd, empirical_afd_block, empirical_lcr, empirical_lcr_block, envelope_db_around_rms,
    envelope_rms, outage_count, outage_count_block, theoretical_afd, theoretical_lcr,
};
pub use gof::{chi_square_test, kolmogorov_sf, ks_test, ChiSquareTest, KsTest};
pub use histogram::{EmpiricalCdf, Histogram};
pub use rayleigh::{
    check_envelope_moments, envelope_mean, envelope_variance,
    gaussian_variance_from_envelope_variance, rayleigh_mle_scale, rayleigh_pdf, rayleigh_scale,
    EnvelopeMomentCheck,
};

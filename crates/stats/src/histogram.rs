//! Histograms, empirical PDFs and empirical CDFs.
//!
//! Used to compare the distribution of generated Rayleigh envelopes against
//! the theoretical Rayleigh density, mirroring the visual checks behind the
//! paper's Fig. 4 with quantitative ones.

/// A fixed-width histogram over `[lo, hi)`.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            hi > lo,
            "histogram range must be non-empty (lo {lo}, hi {hi})"
        );
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Builds a histogram from data, spanning exactly the data range.
    ///
    /// # Panics
    /// Panics if `data` is empty or `bins == 0`.
    pub fn from_data(data: &[f64], bins: usize) -> Self {
        assert!(!data.is_empty(), "Histogram::from_data: empty data");
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let hi = if hi > lo {
            hi * (1.0 + 1e-12) + 1e-300
        } else {
            lo + 1.0
        };
        let mut h = Self::new(lo, hi, bins);
        h.add_all(data);
        h
    }

    /// Adds a single observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Adds every observation in the slice.
    pub fn add_all(&mut self, data: &[f64]) {
        for &x in data {
            self.add(x);
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Raw counts per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations added (including out-of-range ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of observations that fell below / above the range.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Empirical probability density: `count / (total · bin_width)`.
    pub fn density(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let norm = 1.0 / (self.total as f64 * self.bin_width());
        self.counts.iter().map(|&c| c as f64 * norm).collect()
    }
}

/// Empirical cumulative distribution function of a sample.
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds the ECDF (the data is copied and sorted).
    ///
    /// # Panics
    /// Panics if `data` is empty.
    pub fn new(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "EmpiricalCdf: empty data");
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
        Self { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when there are no samples (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F̂(x)` — the fraction of samples ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        // Index of the first element strictly greater than x.
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The sorted sample values (used by the KS statistic).
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_the_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add_all(&[0.5, 1.5, 1.7, 9.99, -1.0, 10.0, 25.0]);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.out_of_range(), (1, 2));
        assert_eq!(h.total(), 7);
        assert_eq!(h.bins(), 10);
        assert!((h.bin_width() - 1.0).abs() < 1e-15);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn density_integrates_to_in_range_fraction() {
        let mut h = Histogram::new(0.0, 1.0, 20);
        let data: Vec<f64> = (0..1000).map(|i| (i as f64) / 1000.0).collect();
        h.add_all(&data);
        let integral: f64 = h.density().iter().map(|d| d * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_data_covers_the_whole_range() {
        let data = [3.0, 1.0, 2.0, 5.0, 4.0];
        let h = Histogram::from_data(&data, 4);
        assert_eq!(h.out_of_range(), (0, 0));
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts().iter().sum::<u64>(), 5);
    }

    #[test]
    fn from_data_with_constant_values() {
        let h = Histogram::from_data(&[2.0, 2.0, 2.0], 3);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().iter().sum::<u64>(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn empirical_cdf_basics() {
        let cdf = EmpiricalCdf::new(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(cdf.len(), 4);
        assert!(!cdf.is_empty());
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.5), 0.5);
        assert_eq!(cdf.eval(100.0), 1.0);
        assert_eq!(cdf.sorted_values(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn empirical_cdf_with_ties() {
        let cdf = EmpiricalCdf::new(&[1.0, 1.0, 1.0, 2.0]);
        assert_eq!(cdf.eval(1.0), 0.75);
        assert_eq!(cdf.eval(0.999), 0.0);
    }
}

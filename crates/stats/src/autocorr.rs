//! Autocorrelation and cross-correlation estimation.
//!
//! The real-time experiments (E6, E8) verify that each generated fading
//! process has the normalized autocorrelation `J₀(2π·f_m·d)` predicted by
//! Eq. (16)–(20) of the paper, and that the cross-correlation between
//! envelopes matches the desired covariance matrix.

use corrfade_linalg::Complex64;

/// Biased sample autocorrelation of a complex sequence at lags
/// `0 … max_lag`: `r[d] = (1/L)·Σ_{l} u[l+d]·conj(u[l])`.
///
/// The biased (divide-by-`L`) estimator is used because it guarantees a
/// positive semi-definite correlation sequence, matching the convention of
/// ref. \[7\].
///
/// # Panics
/// Panics if `data` is empty or `max_lag >= data.len()`.
pub fn autocorrelation(data: &[Complex64], max_lag: usize) -> Vec<Complex64> {
    assert!(!data.is_empty(), "autocorrelation: empty data");
    assert!(
        max_lag < data.len(),
        "autocorrelation: max_lag {max_lag} must be < data length {}",
        data.len()
    );
    let l = data.len();
    (0..=max_lag)
        .map(|d| {
            let mut acc = Complex64::ZERO;
            for i in 0..(l - d) {
                acc += data[i + d] * data[i].conj();
            }
            acc.unscale(l as f64)
        })
        .collect()
}

/// Normalized autocorrelation `r[d]/r[0]` (real part), the quantity compared
/// against the `J₀(2π·f_m·d)` target.
///
/// # Panics
/// Panics under the same conditions as [`autocorrelation`], or if the
/// zero-lag power vanishes.
pub fn normalized_autocorrelation(data: &[Complex64], max_lag: usize) -> Vec<f64> {
    let r = autocorrelation(data, max_lag);
    let r0 = r[0].re;
    assert!(r0 > 0.0, "normalized_autocorrelation: zero power sequence");
    r.iter().map(|c| c.re / r0).collect()
}

/// Biased sample autocorrelation of a real sequence.
///
/// # Panics
/// Panics if `data` is empty or `max_lag >= data.len()`.
pub fn autocorrelation_real(data: &[f64], max_lag: usize) -> Vec<f64> {
    assert!(!data.is_empty(), "autocorrelation_real: empty data");
    assert!(
        max_lag < data.len(),
        "autocorrelation_real: max_lag {max_lag} must be < data length {}",
        data.len()
    );
    let l = data.len();
    (0..=max_lag)
        .map(|d| {
            let mut acc = 0.0;
            for i in 0..(l - d) {
                acc += data[i + d] * data[i];
            }
            acc / l as f64
        })
        .collect()
}

/// Biased sample cross-correlation `r_ab[d] = (1/L)·Σ_l a[l+d]·conj(b[l])`
/// between two complex sequences of equal length.
///
/// # Panics
/// Panics if the lengths differ, are zero, or `max_lag` is out of range.
pub fn cross_correlation(a: &[Complex64], b: &[Complex64], max_lag: usize) -> Vec<Complex64> {
    assert_eq!(a.len(), b.len(), "cross_correlation: length mismatch");
    assert!(!a.is_empty(), "cross_correlation: empty data");
    assert!(max_lag < a.len(), "cross_correlation: max_lag out of range");
    let l = a.len();
    (0..=max_lag)
        .map(|d| {
            let mut acc = Complex64::ZERO;
            for i in 0..(l - d) {
                acc += a[i + d] * b[i].conj();
            }
            acc.unscale(l as f64)
        })
        .collect()
}

/// Maximum absolute deviation between an estimated normalized
/// autocorrelation and a theoretical target over the common lag range.
pub fn max_autocorrelation_deviation(estimated: &[f64], target: &[f64]) -> f64 {
    estimated
        .iter()
        .zip(target.iter())
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_linalg::c64;

    #[test]
    fn zero_lag_is_the_power() {
        let data = vec![c64(1.0, 1.0), c64(2.0, 0.0), c64(0.0, -1.0)];
        let r = autocorrelation(&data, 0);
        let power: f64 = data.iter().map(|z| z.norm_sqr()).sum::<f64>() / 3.0;
        assert!((r[0].re - power).abs() < 1e-12);
        assert!(r[0].im.abs() < 1e-12);
    }

    #[test]
    fn constant_sequence_has_flat_triangular_autocorrelation() {
        let data = vec![c64(1.0, 0.0); 10];
        let r = autocorrelation(&data, 5);
        for (d, &rd) in r.iter().enumerate() {
            // Biased estimator: r[d] = (L-d)/L.
            assert!((rd.re - (10 - d) as f64 / 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn complex_exponential_has_rotating_autocorrelation() {
        let omega = 0.3;
        let data: Vec<Complex64> = (0..2000)
            .map(|l| Complex64::cis(omega * l as f64))
            .collect();
        let r = normalized_autocorrelation(&data, 10);
        for (d, &rd) in r.iter().enumerate() {
            // The real part of the normalized autocorrelation is cos(ω d)
            // up to the small bias of the estimator.
            assert!(
                (rd - (omega * d as f64).cos()).abs() < 0.02,
                "lag {d}: {rd} vs {}",
                (omega * d as f64).cos()
            );
        }
    }

    #[test]
    fn real_autocorrelation_matches_complex_on_real_data() {
        let real: Vec<f64> = (0..100).map(|i| ((i as f64) * 0.17).sin()).collect();
        let cplx: Vec<Complex64> = real.iter().map(|&x| c64(x, 0.0)).collect();
        let rr = autocorrelation_real(&real, 10);
        let rc = autocorrelation(&cplx, 10);
        for d in 0..=10 {
            assert!((rr[d] - rc[d].re).abs() < 1e-12);
        }
    }

    #[test]
    fn cross_correlation_of_identical_sequences_is_autocorrelation() {
        let data: Vec<Complex64> = (0..50)
            .map(|i| c64((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let auto = autocorrelation(&data, 5);
        let cross = cross_correlation(&data, &data, 5);
        for d in 0..=5 {
            assert!(auto[d].approx_eq(cross[d], 1e-12));
        }
    }

    #[test]
    fn deviation_metric() {
        let a = [1.0, 0.5, 0.2];
        let b = [1.0, 0.4, 0.25];
        assert!((max_autocorrelation_deviation(&a, &b) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "max_lag")]
    fn out_of_range_lag_panics() {
        let _ = autocorrelation(&[Complex64::ZERO], 1);
    }
}

//! Goodness-of-fit tests.
//!
//! The paper validates its generator visually (envelope plots) and
//! analytically (Eq. 14–15). The experiment harness replaces the visual check
//! with two quantitative ones applied to every generated envelope:
//!
//! * a one-sample **Kolmogorov–Smirnov** test against the theoretical
//!   Rayleigh CDF,
//! * a **chi-square** test on a binned histogram against the theoretical
//!   density.

use corrfade_specfun::chi_square_sf;

use crate::histogram::EmpiricalCdf;

/// Result of a one-sample Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTest {
    /// The KS statistic `D_n = sup_x |F̂(x) − F(x)|`.
    pub statistic: f64,
    /// Asymptotic p-value `Pr[D > D_n]` under the null hypothesis.
    pub p_value: f64,
    /// Number of samples.
    pub n: usize,
}

impl KsTest {
    /// `true` when the null hypothesis is **not** rejected at significance
    /// level `alpha`.
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2·Σ_{k≥1} (−1)^{k−1}·e^{−2k²λ²}`.
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        if term < 1e-16 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// One-sample Kolmogorov–Smirnov test of `data` against the hypothesized CDF
/// `cdf`.
///
/// # Panics
/// Panics if `data` is empty.
pub fn ks_test(data: &[f64], cdf: impl Fn(f64) -> f64) -> KsTest {
    assert!(!data.is_empty(), "ks_test: empty data");
    let ecdf = EmpiricalCdf::new(data);
    let n = ecdf.len();
    let mut d = 0.0f64;
    for (i, &x) in ecdf.sorted_values().iter().enumerate() {
        let f = cdf(x);
        let before = i as f64 / n as f64;
        let after = (i + 1) as f64 / n as f64;
        d = d.max((f - before).abs()).max((after - f).abs());
    }
    // Asymptotic p-value with the standard finite-n correction.
    let sqrt_n = (n as f64).sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    KsTest {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
        n,
    }
}

/// Result of a chi-square goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareTest {
    /// The chi-square statistic `Σ (O_i − E_i)²/E_i`.
    pub statistic: f64,
    /// Degrees of freedom used for the p-value.
    pub dof: usize,
    /// p-value `Pr[χ²_dof > statistic]`.
    pub p_value: f64,
}

impl ChiSquareTest {
    /// `true` when the null hypothesis is **not** rejected at significance
    /// level `alpha`.
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// Chi-square test from observed counts and expected counts (same length).
/// Bins with an expected count below `min_expected` are merged into their
/// right neighbour (last bin merges left) to keep the approximation valid.
/// `extra_constraints` is the number of distribution parameters estimated
/// from the data (reduces the degrees of freedom).
///
/// # Panics
/// Panics if the slices have different lengths or fewer than two usable bins
/// remain.
pub fn chi_square_test(
    observed: &[f64],
    expected: &[f64],
    min_expected: f64,
    extra_constraints: usize,
) -> ChiSquareTest {
    assert_eq!(
        observed.len(),
        expected.len(),
        "chi_square_test: length mismatch"
    );
    assert!(!observed.is_empty(), "chi_square_test: empty input");

    // Merge low-expectation bins.
    let mut merged: Vec<(f64, f64)> = Vec::new();
    let mut acc_o = 0.0;
    let mut acc_e = 0.0;
    for (&o, &e) in observed.iter().zip(expected.iter()) {
        acc_o += o;
        acc_e += e;
        if acc_e >= min_expected {
            merged.push((acc_o, acc_e));
            acc_o = 0.0;
            acc_e = 0.0;
        }
    }
    if acc_e > 0.0 || acc_o > 0.0 {
        if let Some(last) = merged.last_mut() {
            last.0 += acc_o;
            last.1 += acc_e;
        } else {
            merged.push((acc_o, acc_e));
        }
    }
    assert!(
        merged.len() >= 2,
        "chi_square_test: fewer than two bins remain after merging"
    );

    let statistic: f64 = merged
        .iter()
        .map(|&(o, e)| if e > 0.0 { (o - e) * (o - e) / e } else { 0.0 })
        .sum();
    let dof = merged.len().saturating_sub(1 + extra_constraints).max(1);
    ChiSquareTest {
        statistic,
        dof,
        p_value: chi_square_sf(statistic, dof as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_specfun::rayleigh_cdf;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn kolmogorov_sf_reference_values() {
        // Known values of the Kolmogorov distribution.
        assert!((kolmogorov_sf(1.3581015157406195) - 0.05).abs() < 1e-6);
        assert!((kolmogorov_sf(1.2238478702170825) - 0.10).abs() < 1e-6);
        assert!(kolmogorov_sf(0.0) == 1.0);
        assert!(kolmogorov_sf(3.0) < 1e-7);
    }

    #[test]
    fn ks_accepts_samples_from_the_hypothesized_distribution() {
        let mut rng = StdRng::seed_from_u64(1);
        // Uniform(0,1) samples against the uniform CDF.
        let data: Vec<f64> = (0..5000).map(|_| rng.gen::<f64>()).collect();
        let t = ks_test(&data, |x| x.clamp(0.0, 1.0));
        assert!(t.passes(0.01), "KS should accept: {t:?}");
        assert!(t.statistic < 0.03);
        assert_eq!(t.n, 5000);
    }

    #[test]
    fn ks_rejects_samples_from_a_different_distribution() {
        let mut rng = StdRng::seed_from_u64(2);
        // Uniform(0,1)^2 is not uniform.
        let data: Vec<f64> = (0..5000).map(|_| rng.gen::<f64>().powi(2)).collect();
        let t = ks_test(&data, |x| x.clamp(0.0, 1.0));
        assert!(!t.passes(0.01), "KS should reject: {t:?}");
    }

    #[test]
    fn ks_accepts_rayleigh_envelope_of_gaussian_pairs() {
        let mut rng = StdRng::seed_from_u64(3);
        let sigma: f64 = 0.7;
        let mut sampler = corrfade_randn::NormalSampler::default();
        let data: Vec<f64> = (0..20000)
            .map(|_| {
                let x = sampler.sample_with(&mut rng, 0.0, sigma);
                let y = sampler.sample_with(&mut rng, 0.0, sigma);
                (x * x + y * y).sqrt()
            })
            .collect();
        let t = ks_test(&data, |r| rayleigh_cdf(r, sigma));
        assert!(t.passes(0.01), "Rayleigh envelope rejected: {t:?}");
    }

    #[test]
    fn chi_square_accepts_matching_counts() {
        let observed = [98.0, 105.0, 97.0, 100.0, 100.0];
        let expected = [100.0, 100.0, 100.0, 100.0, 100.0];
        let t = chi_square_test(&observed, &expected, 5.0, 0);
        assert!(t.passes(0.05), "{t:?}");
        assert_eq!(t.dof, 4);
    }

    #[test]
    fn chi_square_rejects_grossly_wrong_counts() {
        let observed = [10.0, 250.0, 10.0, 250.0, 10.0];
        let expected = [106.0, 106.0, 106.0, 106.0, 106.0];
        let t = chi_square_test(&observed, &expected, 5.0, 0);
        assert!(!t.passes(0.05), "{t:?}");
    }

    #[test]
    fn chi_square_merges_small_bins() {
        let observed = [50.0, 1.0, 1.0, 48.0];
        let expected = [50.0, 0.5, 0.5, 49.0];
        let t = chi_square_test(&observed, &expected, 5.0, 0);
        // After merging, fewer dof than bins-1.
        assert!(t.dof < 3);
        assert!(t.p_value > 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn chi_square_length_mismatch_panics() {
        let _ = chi_square_test(&[1.0], &[1.0, 2.0], 5.0, 0);
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn ks_empty_panics() {
        let _ = ks_test(&[], |x| x);
    }
}

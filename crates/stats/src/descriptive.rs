//! Descriptive statistics of real-valued samples.
//!
//! These are the primitives the experiment harness uses to check the
//! envelope statistics the paper derives analytically (Eq. 14–15): sample
//! means, variances and higher moments of Rayleigh envelopes and of the
//! real/imaginary parts of the generated complex Gaussian variables.

/// Arithmetic mean. Returns `0.0` for an empty slice.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Population variance (division by `n`). Returns `0.0` for fewer than two
/// samples.
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64
}

/// Sample variance (division by `n − 1`). Returns `0.0` for fewer than two
/// samples.
pub fn sample_variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    variance(data) * data.len() as f64 / (data.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Mean of the squares, `E[x²]` — for a zero-mean process this is the power.
pub fn mean_square(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().map(|&x| x * x).sum::<f64>() / data.len() as f64
}

/// Root-mean-square value.
pub fn rms(data: &[f64]) -> f64 {
    mean_square(data).sqrt()
}

/// Sample skewness (third standardized moment). Returns `0.0` when the
/// variance vanishes.
pub fn skewness(data: &[f64]) -> f64 {
    let m = mean(data);
    let v = variance(data);
    if v <= 0.0 || data.is_empty() {
        return 0.0;
    }
    let n = data.len() as f64;
    data.iter().map(|&x| (x - m).powi(3)).sum::<f64>() / n / v.powf(1.5)
}

/// Sample excess-free kurtosis (fourth standardized moment; 3 for a normal
/// distribution). Returns `0.0` when the variance vanishes.
pub fn kurtosis(data: &[f64]) -> f64 {
    let m = mean(data);
    let v = variance(data);
    if v <= 0.0 || data.is_empty() {
        return 0.0;
    }
    let n = data.len() as f64;
    data.iter().map(|&x| (x - m).powi(4)).sum::<f64>() / n / (v * v)
}

/// Minimum value. Returns `f64::NAN` for an empty slice.
pub fn min(data: &[f64]) -> f64 {
    data.iter().copied().fold(f64::NAN, f64::min)
}

/// Maximum value. Returns `f64::NAN` for an empty slice.
pub fn max(data: &[f64]) -> f64 {
    data.iter().copied().fold(f64::NAN, f64::max)
}

/// Linear-interpolated quantile `q ∈ [0, 1]` of the data.
///
/// # Panics
/// Panics if `q` is outside `[0, 1]` or the slice is empty.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile must be in [0, 1], got {q}"
    );
    assert!(!data.is_empty(), "quantile of empty slice");
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median (the 0.5 quantile).
pub fn median(data: &[f64]) -> f64 {
    quantile(data, 0.5)
}

/// Pearson correlation coefficient between two equally-long real sequences.
///
/// # Panics
/// Panics if the lengths differ.
pub fn pearson_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson_correlation: length mismatch");
    if a.len() < 2 {
        return 0.0;
    }
    let ma = mean(a);
    let mb = mean(b);
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        num += (x - ma) * (y - mb);
        da += (x - ma) * (x - ma);
        db += (y - mb) * (y - mb);
    }
    if da <= 0.0 || db <= 0.0 {
        return 0.0;
    }
    num / (da * db).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((mean(&data) - 3.0).abs() < 1e-15);
        assert!((variance(&data) - 2.0).abs() < 1e-15);
        assert!((sample_variance(&data) - 2.5).abs() < 1e-15);
        assert!((std_dev(&data) - 2.0f64.sqrt()).abs() < 1e-15);
        assert!((mean_square(&data) - 11.0).abs() < 1e-15);
        assert!((rms(&data) - 11.0f64.sqrt()).abs() < 1e-15);
        assert!(skewness(&data).abs() < 1e-12, "symmetric data has no skew");
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(skewness(&[2.0, 2.0, 2.0]), 0.0);
        assert_eq!(kurtosis(&[2.0, 2.0]), 0.0);
        assert!(min(&[]).is_nan());
        assert!(max(&[]).is_nan());
    }

    #[test]
    fn min_max_median_quantiles() {
        let data = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(min(&data), 1.0);
        assert_eq!(max(&data), 5.0);
        assert_eq!(median(&data), 3.0);
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 5.0);
        assert!((quantile(&data, 0.25) - 2.0).abs() < 1e-15);
        assert!((quantile(&data, 0.125) - 1.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_range_checked() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn kurtosis_of_two_point_distribution() {
        // Symmetric ±1 distribution has kurtosis 1.
        let data = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!((kurtosis(&data) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_correlation_limits() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let c = [4.0, 3.0, 2.0, 1.0];
        assert!((pearson_correlation(&a, &b) - 1.0).abs() < 1e-12);
        assert!((pearson_correlation(&a, &c) + 1.0).abs() < 1e-12);
        let flat = [1.0, 1.0, 1.0, 1.0];
        assert_eq!(pearson_correlation(&a, &flat), 0.0);
        assert_eq!(pearson_correlation(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn skewness_of_asymmetric_data_is_positive() {
        let data = [0.0, 0.0, 0.0, 0.0, 10.0];
        assert!(skewness(&data) > 1.0);
    }
}

//! Second-order fading statistics: level-crossing rate (LCR) and average
//! fade duration (AFD).
//!
//! These are the standard figures of merit used to judge whether a fading
//! simulator reproduces realistic temporal behaviour (Rappaport, ref. \[9\] of
//! the paper). For a Rayleigh process with maximum Doppler frequency `f_m`
//! and normalized threshold `ρ = R/R_rms`:
//!
//! ```text
//! LCR(ρ) = √(2π)·f_m·ρ·e^{−ρ²}            (crossings per second, or per
//!                                           sample when f_m is normalized)
//! AFD(ρ) = (e^{ρ²} − 1) / (ρ·f_m·√(2π))
//! ```
//!
//! The experiment harness uses the empirical estimators to verify the
//! real-time generator produces sequences consistent with the theory.
//!
//! The `_block` variants ([`empirical_lcr_block`], [`empirical_afd_block`],
//! [`outage_count_block`]) evaluate the same estimators directly on a
//! [`SampleBlock`]'s lazily cached envelope view — no per-envelope copy, so
//! a warm per-link trace-extraction pass (the `corrfade-network` layer runs
//! one per link per epoch) performs **zero heap allocation**.

use corrfade_linalg::SampleBlock;

/// Theoretical level-crossing rate of a Rayleigh process at normalized
/// threshold `rho = R / R_rms`, per unit of whatever `fm` is expressed in
/// (crossings per sample when `fm` is the normalized Doppler frequency).
pub fn theoretical_lcr(rho: f64, fm: f64) -> f64 {
    assert!(rho >= 0.0, "threshold must be non-negative");
    assert!(fm >= 0.0, "Doppler frequency must be non-negative");
    (2.0 * core::f64::consts::PI).sqrt() * fm * rho * (-rho * rho).exp()
}

/// Theoretical average fade duration of a Rayleigh process at normalized
/// threshold `rho = R / R_rms` (same time unit as [`theoretical_lcr`]).
pub fn theoretical_afd(rho: f64, fm: f64) -> f64 {
    assert!(rho > 0.0, "threshold must be positive");
    assert!(fm > 0.0, "Doppler frequency must be positive");
    ((rho * rho).exp() - 1.0) / (rho * fm * (2.0 * core::f64::consts::PI).sqrt())
}

/// Empirical level-crossing rate: number of upward crossings of `threshold`
/// divided by the number of samples (crossings per sample).
///
/// # Panics
/// Panics if `envelope` has fewer than two samples.
pub fn empirical_lcr(envelope: &[f64], threshold: f64) -> f64 {
    assert!(
        envelope.len() >= 2,
        "empirical_lcr: need at least two samples"
    );
    let crossings = envelope
        .windows(2)
        .filter(|w| w[0] < threshold && w[1] >= threshold)
        .count();
    crossings as f64 / envelope.len() as f64
}

/// Empirical average fade duration: mean number of consecutive samples spent
/// below `threshold`, in samples. Returns `0.0` when the envelope never
/// fades below the threshold.
///
/// # Panics
/// Panics if `envelope` is empty.
pub fn empirical_afd(envelope: &[f64], threshold: f64) -> f64 {
    assert!(!envelope.is_empty(), "empirical_afd: empty envelope");
    let mut fades = 0usize;
    let mut total_below = 0usize;
    let mut in_fade = false;
    for &r in envelope {
        if r < threshold {
            total_below += 1;
            if !in_fade {
                fades += 1;
                in_fade = true;
            }
        } else {
            in_fade = false;
        }
    }
    if fades == 0 {
        0.0
    } else {
        total_below as f64 / fades as f64
    }
}

/// Number of samples of `envelope` strictly below `threshold` — the outage
/// count, with `outage_count / len` the empirical outage probability
/// `Pr[r < R_th]`.
#[must_use]
pub fn outage_count(envelope: &[f64], threshold: f64) -> usize {
    envelope.iter().filter(|&&r| r < threshold).count()
}

/// [`empirical_lcr`] evaluated on envelope `j` of a [`SampleBlock`] through
/// its cached envelope view — no copy of the envelope series is made, so a
/// warm block is measured without any heap allocation.
///
/// # Panics
/// Panics if `j` is out of range or the block has fewer than two samples.
pub fn empirical_lcr_block(block: &mut SampleBlock, j: usize, threshold: f64) -> f64 {
    empirical_lcr(block.envelope_path(j), threshold)
}

/// [`empirical_afd`] evaluated on envelope `j` of a [`SampleBlock`] through
/// its cached envelope view (zero-copy, zero-allocation when warm).
///
/// # Panics
/// Panics if `j` is out of range or the block is empty.
pub fn empirical_afd_block(block: &mut SampleBlock, j: usize, threshold: f64) -> f64 {
    empirical_afd(block.envelope_path(j), threshold)
}

/// [`outage_count`] evaluated on envelope `j` of a [`SampleBlock`] through
/// its cached envelope view (zero-copy, zero-allocation when warm).
///
/// # Panics
/// Panics if `j` is out of range.
pub fn outage_count_block(block: &mut SampleBlock, j: usize, threshold: f64) -> usize {
    outage_count(block.envelope_path(j), threshold)
}

/// Root-mean-square value of an envelope — the reference level for the
/// normalized threshold `ρ`.
///
/// # Panics
/// Panics if `envelope` is empty.
pub fn envelope_rms(envelope: &[f64]) -> f64 {
    assert!(!envelope.is_empty(), "envelope_rms: empty envelope");
    crate::descriptive::rms(envelope)
}

/// Converts an envelope to decibels around its RMS value — exactly the y-axis
/// of the paper's Fig. 4 ("dB around rms value").
///
/// # Panics
/// Panics if `envelope` is empty or its RMS vanishes.
pub fn envelope_db_around_rms(envelope: &[f64]) -> Vec<f64> {
    let rms = envelope_rms(envelope);
    assert!(rms > 0.0, "envelope_db_around_rms: zero RMS");
    envelope
        .iter()
        .map(|&r| 20.0 * (r.max(1e-300) / rms).log10())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theoretical_lcr_peaks_near_rho_of_one_over_sqrt2() {
        let fm = 0.05;
        let peak_rho = core::f64::consts::FRAC_1_SQRT_2;
        let at_peak = theoretical_lcr(peak_rho, fm);
        assert!(at_peak > theoretical_lcr(0.3, fm));
        assert!(at_peak > theoretical_lcr(1.5, fm));
        assert_eq!(theoretical_lcr(0.0, fm), 0.0);
    }

    #[test]
    fn theoretical_lcr_scales_linearly_with_fm() {
        assert!((theoretical_lcr(1.0, 0.1) - 2.0 * theoretical_lcr(1.0, 0.05)).abs() < 1e-15);
    }

    #[test]
    fn lcr_times_afd_equals_outage_probability() {
        // Identity: LCR(ρ)·AFD(ρ) = Pr[r < ρ·R_rms] = 1 − e^{−ρ²}.
        for &rho in &[0.1, 0.5, 1.0, 2.0] {
            for &fm in &[0.01, 0.05, 0.2] {
                let product = theoretical_lcr(rho, fm) * theoretical_afd(rho, fm);
                let outage = 1.0 - (-rho * rho).exp();
                assert!(
                    (product - outage).abs() < 1e-12,
                    "identity failed at rho={rho}, fm={fm}"
                );
            }
        }
    }

    #[test]
    fn empirical_lcr_counts_upward_crossings() {
        let env = [0.5, 1.5, 0.5, 1.5, 0.5, 1.5];
        // Threshold 1.0: upward crossings at indices 0->1, 2->3, 4->5.
        assert!((empirical_lcr(&env, 1.0) - 3.0 / 6.0).abs() < 1e-12);
        // Threshold above everything: no crossings.
        assert_eq!(empirical_lcr(&env, 10.0), 0.0);
    }

    #[test]
    fn empirical_afd_measures_fade_lengths() {
        //            below  below        below
        let env = [0.1, 0.2, 5.0, 5.0, 0.3, 5.0];
        // Fades below 1.0: [0.1, 0.2] (length 2) and [0.3] (length 1) → mean 1.5.
        assert!((empirical_afd(&env, 1.0) - 1.5).abs() < 1e-12);
        // Never below a tiny threshold.
        assert_eq!(empirical_afd(&env, 0.01), 0.0);
    }

    #[test]
    fn db_conversion_is_zero_at_rms() {
        let env = vec![2.0; 10];
        let db = envelope_db_around_rms(&env);
        for &d in &db {
            assert!(d.abs() < 1e-12);
        }
        // A value at half the RMS is about −6.02 dB.
        let env2 = [2.0, 2.0, 2.0, 2.0, 1.0];
        let db2 = envelope_db_around_rms(&env2);
        let rms = envelope_rms(&env2);
        assert!((db2[4] - 20.0 * (1.0f64 / rms).log10()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn lcr_needs_two_samples() {
        let _ = empirical_lcr(&[1.0], 0.5);
    }

    #[test]
    fn afd_is_zero_when_envelope_never_fades() {
        // All-above edge case: no fade is ever entered, so the average fade
        // duration is 0.0 — never NaN or infinity.
        let env = [2.0, 3.0, 2.5, 4.0];
        let afd = empirical_afd(&env, 1.0);
        assert!(afd.is_finite());
        assert_eq!(afd, 0.0);
    }

    #[test]
    fn afd_covers_the_whole_block_when_envelope_never_recovers() {
        // All-below edge case: one fade spanning every sample.
        let env = [0.1, 0.2, 0.05, 0.3, 0.15];
        let afd = empirical_afd(&env, 1.0);
        assert!(afd.is_finite());
        assert_eq!(afd, env.len() as f64);
        // LCR sees no upward crossing in either degenerate regime.
        assert_eq!(empirical_lcr(&env, 1.0), 0.0);
        assert_eq!(empirical_lcr(&[2.0, 3.0], 1.0), 0.0);
    }

    #[test]
    fn outage_count_counts_samples_below_threshold() {
        let env = [0.1, 0.2, 5.0, 5.0, 0.3, 5.0];
        assert_eq!(outage_count(&env, 1.0), 3);
        assert_eq!(outage_count(&env, 0.01), 0);
        assert_eq!(outage_count(&env, 10.0), env.len());
    }

    #[test]
    fn block_variants_match_the_slice_estimators() {
        use corrfade_linalg::c64;

        // Two envelopes with known moduli: 3-4-5 triangles scaled.
        let mut block = SampleBlock::new(2, 4);
        let moduli = [[0.5, 2.0, 0.25, 3.0], [2.0, 2.0, 2.0, 2.0]];
        for (j, row) in moduli.iter().enumerate() {
            for (l, &r) in row.iter().enumerate() {
                block.path_mut(j)[l] = c64(0.6 * r, 0.8 * r);
            }
        }
        for (j, row) in moduli.iter().enumerate() {
            let env: Vec<f64> = row.to_vec();
            assert!(
                (empirical_lcr_block(&mut block, j, 1.0) - empirical_lcr(&env, 1.0)).abs() < 1e-12
            );
            assert!(
                (empirical_afd_block(&mut block, j, 1.0) - empirical_afd(&env, 1.0)).abs() < 1e-12
            );
            assert_eq!(
                outage_count_block(&mut block, j, 1.0),
                outage_count(&env, 1.0)
            );
        }
        // The all-above envelope reports the degenerate-case contracts.
        assert_eq!(empirical_afd_block(&mut block, 1, 1.0), 0.0);
        assert_eq!(outage_count_block(&mut block, 1, 1.0), 0);
    }
}

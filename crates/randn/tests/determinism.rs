//! Determinism and stream-independence guarantees of the random substrate.
//!
//! The parallel engine and every statistical regression test in the
//! workspace rely on two properties proved here end-to-end (uniform stream →
//! normal transform → complex Gaussian vector):
//!
//! 1. **Reproducibility** — the same `(seed, stream)` pair always produces
//!    the identical sample sequence, across generator instances.
//! 2. **Stream independence** — different stream ids of one master seed
//!    produce statistically decorrelated sequences (no overlap, negligible
//!    sample correlation).

use corrfade_randn::{complex_gaussian_vector, ComplexGaussian, NormalSampler, RandomStream};
use rand::RngCore;

#[test]
fn same_seed_identical_uniform_sequence() {
    let mut a = RandomStream::substream(0xDEAD_BEEF, 3);
    let mut b = RandomStream::substream(0xDEAD_BEEF, 3);
    let seq_a: Vec<u64> = (0..256).map(|_| a.next_u64()).collect();
    let seq_b: Vec<u64> = (0..256).map(|_| b.next_u64()).collect();
    assert_eq!(seq_a, seq_b);
}

#[test]
fn same_seed_identical_normal_sequence() {
    let draw = || {
        let mut rng = RandomStream::substream(42, 0);
        let mut sampler = NormalSampler::default();
        (0..512)
            .map(|_| sampler.sample(&mut rng))
            .collect::<Vec<f64>>()
    };
    let a = draw();
    let b = draw();
    assert_eq!(a, b, "normal transform must be bit-reproducible per seed");
}

#[test]
fn same_seed_identical_complex_gaussian_vector() {
    let a = complex_gaussian_vector(7, 2, 128, 1.5);
    let b = complex_gaussian_vector(7, 2, 128, 1.5);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_produce_disjoint_sequences() {
    let mut a = RandomStream::new(1);
    let mut b = RandomStream::new(2);
    let collisions = (0..512).filter(|_| a.next_u64() == b.next_u64()).count();
    assert_eq!(collisions, 0);
}

#[test]
fn different_stream_ids_are_decorrelated() {
    // Pearson correlation between the uniform outputs of neighbouring
    // streams must be statistically indistinguishable from zero.
    let n = 50_000;
    for pair in [(0u64, 1u64), (1, 2), (0, 1 << 40)] {
        let mut s1 = RandomStream::substream(99, pair.0);
        let mut s2 = RandomStream::substream(99, pair.1);
        let to_unit = |v: u64| (v >> 11) as f64 / (1u64 << 53) as f64;
        let x: Vec<f64> = (0..n).map(|_| to_unit(s1.next_u64())).collect();
        let y: Vec<f64> = (0..n).map(|_| to_unit(s2.next_u64())).collect();
        let mx = x.iter().sum::<f64>() / n as f64;
        let my = y.iter().sum::<f64>() / n as f64;
        let cov: f64 = x
            .iter()
            .zip(&y)
            .map(|(a, b)| (a - mx) * (b - my))
            .sum::<f64>();
        let vx: f64 = x.iter().map(|a| (a - mx).powi(2)).sum::<f64>();
        let vy: f64 = y.iter().map(|b| (b - my).powi(2)).sum::<f64>();
        let rho = cov / (vx * vy).sqrt();
        // 4σ bound for i.i.d. uniforms: σ_ρ ≈ 1/√n ≈ 0.0045.
        assert!(rho.abs() < 0.018, "streams {pair:?} correlate: rho = {rho}");
    }
}

#[test]
fn different_stream_ids_change_gaussian_output() {
    let mut g = ComplexGaussian::default();
    let mut r0 = RandomStream::substream(5, 0);
    let mut r1 = RandomStream::substream(5, 1);
    let a = g.sample_vec(&mut r0, 64, 1.0);
    let mut g2 = ComplexGaussian::default();
    let b = g2.sample_vec(&mut r1, 64, 1.0);
    assert_ne!(a, b);
}

#[test]
fn child_streams_are_deterministic_functions_of_parent_identity() {
    let parent_a = RandomStream::substream(11, 6);
    let parent_b = RandomStream::substream(11, 6);
    let mut c1 = parent_a.child(4);
    let mut c2 = parent_b.child(4);
    for _ in 0..64 {
        assert_eq!(c1.next_u64(), c2.next_u64());
    }
    // ... and distinct child indices diverge.
    let mut c3 = parent_a.child(5);
    let collisions = {
        let mut c1 = parent_a.child(4);
        (0..256).filter(|_| c1.next_u64() == c3.next_u64()).count()
    };
    assert_eq!(collisions, 0);
}

//! Seeded, splittable random streams.
//!
//! Monte-Carlo validation of the generator statistics and the parallel
//! engine both need *reproducible* randomness that can be split into
//! independent substreams (one per thread / per envelope block) without any
//! coordination. [`RandomStream`] wraps a ChaCha20 generator keyed by a
//! 64-bit master seed plus a 64-bit stream index; distinct indices give
//! statistically independent, non-overlapping streams.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha20Rng;

/// A seeded, splittable uniform random stream.
#[derive(Debug, Clone)]
pub struct RandomStream {
    rng: ChaCha20Rng,
    seed: u64,
    stream: u64,
}

impl RandomStream {
    /// Creates stream `0` of the given master seed.
    pub fn new(seed: u64) -> Self {
        Self::substream(seed, 0)
    }

    /// Creates substream `stream` of the given master seed. Distinct
    /// `(seed, stream)` pairs produce independent sequences.
    pub fn substream(seed: u64, stream: u64) -> Self {
        // Key = seed repeated and mixed; the stream index goes into ChaCha's
        // dedicated 64-bit stream field so substreams never overlap.
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&seed.to_le_bytes());
        key[8..16].copy_from_slice(
            &seed
                .rotate_left(17)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .to_le_bytes(),
        );
        key[16..24].copy_from_slice(
            &seed
                .rotate_left(31)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                .to_le_bytes(),
        );
        key[24..32].copy_from_slice(
            &seed
                .rotate_left(47)
                .wrapping_mul(0x94D0_49BB_1331_11EB)
                .to_le_bytes(),
        );
        let mut rng = ChaCha20Rng::from_seed(key);
        rng.set_stream(stream);
        Self { rng, seed, stream }
    }

    /// The master seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The stream index this stream was created from.
    pub fn stream_index(&self) -> u64 {
        self.stream
    }

    /// Derives a child stream with the same master seed and a different
    /// stream index. Useful when a component needs to hand independent
    /// randomness to sub-components deterministically.
    pub fn child(&self, index: u64) -> Self {
        Self::substream(
            self.seed,
            self.stream.wrapping_mul(0x1_0000).wrapping_add(index + 1),
        )
    }
}

impl RngCore for RandomStream {
    fn next_u32(&mut self) -> u32 {
        self.rng.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.rng.fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.rng.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = RandomStream::new(42);
        let mut b = RandomStream::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RandomStream::new(1);
        let mut b = RandomStream::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_are_independent() {
        let mut a = RandomStream::substream(7, 0);
        let mut b = RandomStream::substream(7, 1);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn child_streams_are_reproducible_and_distinct() {
        let parent = RandomStream::substream(9, 3);
        let mut c1 = parent.child(0);
        let mut c1_again = parent.child(0);
        let mut c2 = parent.child(1);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn accessors_report_identity() {
        let s = RandomStream::substream(11, 4);
        assert_eq!(s.seed(), 11);
        assert_eq!(s.stream_index(), 4);
    }

    #[test]
    fn uniform_samples_are_roughly_uniform() {
        let mut s = RandomStream::new(1234);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| s.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01);
    }

    #[test]
    fn fill_bytes_works() {
        let mut s = RandomStream::new(5);
        let mut buf = [0u8; 64];
        s.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut buf2 = [0u8; 64];
        s.try_fill_bytes(&mut buf2).unwrap();
        assert_ne!(buf, buf2);
    }
}

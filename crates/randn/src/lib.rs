//! # corrfade-randn
//!
//! Seeded Gaussian and complex-Gaussian random sources for the `corrfade`
//! workspace:
//!
//! * [`RandomStream`] — reproducible, splittable ChaCha20 uniform streams,
//! * [`NormalSampler`] — `N(0, 1)` via Box–Muller or Marsaglia's polar
//!   transform,
//! * [`ComplexGaussian`] — circularly-symmetric `CN(0, σ²)` variables and the
//!   `A[k] − i·B[k]` input sequences of the Young–Beaulieu Doppler generator.
//!
//! The crate deliberately re-implements the normal transform instead of
//! pulling in `rand_distr`: the offline dependency set only guarantees
//! `rand`, and having the transform in-tree lets the statistics tests
//! cross-validate the two classic methods against each other.

#![warn(missing_docs)]

pub mod complex_gaussian;
pub mod normal;
pub mod streams;

pub use complex_gaussian::ComplexGaussian;
pub use normal::{NormalMethod, NormalSampler};
pub use streams::RandomStream;

/// Convenience: draws `n` i.i.d. circularly-symmetric complex Gaussian
/// samples `CN(0, variance)` from a fresh substream of `seed`.
pub fn complex_gaussian_vector(
    seed: u64,
    stream: u64,
    n: usize,
    variance: f64,
) -> Vec<corrfade_linalg::Complex64> {
    let mut rng = RandomStream::substream(seed, stream);
    let mut g = ComplexGaussian::default();
    g.sample_vec(&mut rng, n, variance)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convenience_vector_is_reproducible() {
        let a = complex_gaussian_vector(1, 0, 16, 1.0);
        let b = complex_gaussian_vector(1, 0, 16, 1.0);
        let c = complex_gaussian_vector(1, 1, 16, 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
    }
}

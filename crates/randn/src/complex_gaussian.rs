//! Zero-mean complex Gaussian (circularly-symmetric and per-dimension)
//! sampling.
//!
//! A zero-mean complex Gaussian variable `z = x + iy` with **total** variance
//! `σ_g² = E|z|²` and independent real/imaginary parts of equal variance
//! `σ_g²/2` has a Rayleigh-distributed modulus — this is the raw material of
//! every generator in the workspace (step 6 of the paper's algorithm).
//!
//! The paper also stresses the *general* case where the per-dimension
//! variances differ (`σ_gx² ≠ σ_gy²`, Sec. 4.1); [`ComplexGaussian::sample_split`]
//! covers it so the test-suite can exercise that corner too.

use corrfade_linalg::{c64, Complex64};
use rand::Rng;

use crate::normal::{NormalMethod, NormalSampler};

/// Sampler of zero-mean complex Gaussian variables.
#[derive(Debug, Clone, Default)]
pub struct ComplexGaussian {
    sampler: NormalSampler,
}

impl ComplexGaussian {
    /// Creates a sampler using the given normal transform.
    pub fn new(method: NormalMethod) -> Self {
        Self {
            sampler: NormalSampler::new(method),
        }
    }

    /// Draws one circularly-symmetric sample `CN(0, variance)`: the real and
    /// imaginary parts are independent `N(0, variance/2)`.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R, variance: f64) -> Complex64 {
        assert!(
            variance >= 0.0,
            "variance must be non-negative, got {variance}"
        );
        let std = (variance * 0.5).sqrt();
        c64(
            self.sampler.sample_with(rng, 0.0, std),
            self.sampler.sample_with(rng, 0.0, std),
        )
    }

    /// Draws one sample with independent per-dimension variances
    /// `x ~ N(0, var_re)`, `y ~ N(0, var_im)` — the unequal-dimension case of
    /// Sec. 4.1 of the paper.
    pub fn sample_split<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        var_re: f64,
        var_im: f64,
    ) -> Complex64 {
        assert!(
            var_re >= 0.0 && var_im >= 0.0,
            "variances must be non-negative"
        );
        c64(
            self.sampler.sample_with(rng, 0.0, var_re.sqrt()),
            self.sampler.sample_with(rng, 0.0, var_im.sqrt()),
        )
    }

    /// Draws a vector of `n` i.i.d. `CN(0, variance)` samples — exactly the
    /// vector `W` of step 6 of the paper's algorithm.
    pub fn sample_vec<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        n: usize,
        variance: f64,
    ) -> Vec<Complex64> {
        (0..n).map(|_| self.sample(rng, variance)).collect()
    }

    /// Fills a buffer with i.i.d. `CN(0, variance)` samples.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, buf: &mut [Complex64], variance: f64) {
        for z in buf.iter_mut() {
            *z = self.sample(rng, variance);
        }
    }

    /// Draws `n` samples of `A[k] − i·B[k]` where `A`, `B` are independent
    /// real `N(0, σ²_orig)` sequences — the input format of the Young–Beaulieu
    /// Doppler generator (step 3 of the real-time algorithm, Sec. 5).
    pub fn sample_doppler_input<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        n: usize,
        sigma_orig_sq: f64,
    ) -> Vec<Complex64> {
        assert!(sigma_orig_sq >= 0.0, "variance must be non-negative");
        let std = sigma_orig_sq.sqrt();
        (0..n)
            .map(|_| {
                let a = self.sampler.sample_with(rng, 0.0, std);
                let b = self.sampler.sample_with(rng, 0.0, std);
                c64(a, -b)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn circular_sample_has_right_variance_split() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = ComplexGaussian::default();
        let n = 200_000;
        let variance = 2.5;
        let samples = g.sample_vec(&mut rng, n, variance);
        let mean: Complex64 = samples.iter().copied().sum::<Complex64>() / n as f64;
        assert!(mean.abs() < 0.02);
        let var_total: f64 = samples.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!(
            (var_total - variance).abs() < 0.05,
            "total variance {var_total}"
        );
        let var_re: f64 = samples.iter().map(|z| z.re * z.re).sum::<f64>() / n as f64;
        let var_im: f64 = samples.iter().map(|z| z.im * z.im).sum::<f64>() / n as f64;
        assert!((var_re - variance / 2.0).abs() < 0.05);
        assert!((var_im - variance / 2.0).abs() < 0.05);
        // Real and imaginary parts uncorrelated.
        let cov: f64 = samples.iter().map(|z| z.re * z.im).sum::<f64>() / n as f64;
        assert!(cov.abs() < 0.02);
    }

    #[test]
    fn split_sample_respects_each_dimension() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = ComplexGaussian::default();
        let n = 100_000;
        let (vr, vi) = (4.0, 0.25);
        let samples: Vec<Complex64> = (0..n).map(|_| g.sample_split(&mut rng, vr, vi)).collect();
        let var_re: f64 = samples.iter().map(|z| z.re * z.re).sum::<f64>() / n as f64;
        let var_im: f64 = samples.iter().map(|z| z.im * z.im).sum::<f64>() / n as f64;
        assert!((var_re - vr).abs() < 0.1, "var_re = {var_re}");
        assert!((var_im - vi).abs() < 0.01, "var_im = {var_im}");
    }

    #[test]
    fn envelope_of_circular_sample_is_rayleigh_in_the_mean() {
        // E|z| = sqrt(pi/4 * variance) = 0.8862 * sigma_g  (paper Eq. 14).
        let mut rng = StdRng::seed_from_u64(8);
        let mut g = ComplexGaussian::default();
        let n = 200_000;
        let variance: f64 = 1.0;
        let mean_env: f64 = g
            .sample_vec(&mut rng, n, variance)
            .iter()
            .map(|z| z.abs())
            .sum::<f64>()
            / n as f64;
        let expected = 0.8862 * variance.sqrt();
        assert!(
            (mean_env - expected).abs() < 0.01,
            "mean envelope {mean_env}, expected {expected}"
        );
    }

    #[test]
    fn doppler_input_format() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = ComplexGaussian::default();
        let n = 100_000;
        let sigma_orig_sq = 0.5;
        let samples = g.sample_doppler_input(&mut rng, n, sigma_orig_sq);
        assert_eq!(samples.len(), n);
        let var_re: f64 = samples.iter().map(|z| z.re * z.re).sum::<f64>() / n as f64;
        let var_im: f64 = samples.iter().map(|z| z.im * z.im).sum::<f64>() / n as f64;
        assert!((var_re - sigma_orig_sq).abs() < 0.02);
        assert!((var_im - sigma_orig_sq).abs() < 0.02);
    }

    #[test]
    fn zero_variance_gives_zero_samples() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = ComplexGaussian::default();
        assert_eq!(g.sample(&mut rng, 0.0), Complex64::ZERO);
    }

    #[test]
    fn fill_and_sample_vec_agree() {
        let mut g1 = ComplexGaussian::default();
        let mut g2 = ComplexGaussian::default();
        let mut rng1 = StdRng::seed_from_u64(77);
        let mut rng2 = StdRng::seed_from_u64(77);
        let v = g1.sample_vec(&mut rng1, 8, 1.0);
        let mut buf = vec![Complex64::ZERO; 8];
        g2.fill(&mut rng2, &mut buf, 1.0);
        assert_eq!(v, buf);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_variance_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = ComplexGaussian::default();
        let _ = g.sample(&mut rng, -1.0);
    }
}

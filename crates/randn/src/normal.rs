//! Zero-mean Gaussian sampling on top of a uniform random source.
//!
//! The paper's algorithm consumes two kinds of Gaussian input:
//!
//! * step 6 (Sec. 4.4): a vector `W` of `N` i.i.d. zero-mean **complex**
//!   Gaussian samples with common variance `σ_g²`,
//! * step 3 of the real-time algorithm (Sec. 5): the real sequences
//!   `{A[k]}`, `{B[k]}` with variance `σ²_orig` feeding the Doppler filter.
//!
//! Both reduce to sampling `N(0, 1)` and scaling. Two classic transforms are
//! provided — Box–Muller and Marsaglia's polar method — mostly so the test
//! suite can cross-validate them against each other; the polar method is the
//! default because it avoids the trigonometric calls.

use rand::Rng;

/// Algorithm used to turn uniform variates into standard-normal variates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NormalMethod {
    /// Marsaglia's polar (rejection) method. Default.
    #[default]
    Polar,
    /// The classic Box–Muller transform.
    BoxMuller,
}

/// A reusable sampler of standard-normal variates.
///
/// Both supported transforms naturally produce samples in pairs; the spare
/// sample is cached so no randomness is wasted.
#[derive(Debug, Clone, Default)]
pub struct NormalSampler {
    method: NormalMethod,
    cached: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler using the given transform.
    pub fn new(method: NormalMethod) -> Self {
        Self {
            method,
            cached: None,
        }
    }

    /// The transform in use.
    pub fn method(&self) -> NormalMethod {
        self.method
    }

    /// Draws one `N(0, 1)` sample using the supplied uniform source.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(v) = self.cached.take() {
            return v;
        }
        let (a, b) = match self.method {
            NormalMethod::Polar => polar_pair(rng),
            NormalMethod::BoxMuller => box_muller_pair(rng),
        };
        self.cached = Some(b);
        a
    }

    /// Draws one `N(mean, std²)` sample.
    pub fn sample_with<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, std: f64) -> f64 {
        assert!(
            std >= 0.0,
            "standard deviation must be non-negative, got {std}"
        );
        mean + std * self.sample(rng)
    }

    /// Fills a slice with i.i.d. `N(mean, std²)` samples.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, buf: &mut [f64], mean: f64, std: f64) {
        for x in buf.iter_mut() {
            *x = self.sample_with(rng, mean, std);
        }
    }

    /// Discards any cached spare sample (useful when reproducibility across
    /// differently-sized draws matters more than throughput).
    pub fn reset(&mut self) {
        self.cached = None;
    }
}

/// One Box–Muller pair of independent `N(0, 1)` samples.
fn box_muller_pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    // u1 ∈ (0, 1]: guard against ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * core::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// One Marsaglia-polar pair of independent `N(0, 1)` samples.
fn polar_pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    loop {
        let x: f64 = 2.0 * rng.gen::<f64>() - 1.0;
        let y: f64 = 2.0 * rng.gen::<f64>() - 1.0;
        let s = x * x + y * y;
        if s > 0.0 && s < 1.0 {
            let f = (-2.0 * s.ln() / s).sqrt();
            return (x * f, y * f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64, f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let skew = samples.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n / var.powf(1.5);
        let kurt = samples.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n / var.powi(2);
        (mean, var, skew, kurt)
    }

    fn check_standard_normal(method: NormalMethod) {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sampler = NormalSampler::new(method);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sampler.sample(&mut rng)).collect();
        let (mean, var, skew, kurt) = moments(&samples);
        assert!(mean.abs() < 0.01, "{method:?}: mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "{method:?}: var = {var}");
        assert!(skew.abs() < 0.03, "{method:?}: skew = {skew}");
        assert!((kurt - 3.0).abs() < 0.1, "{method:?}: kurtosis = {kurt}");
    }

    #[test]
    fn polar_produces_standard_normal_moments() {
        check_standard_normal(NormalMethod::Polar);
    }

    #[test]
    fn box_muller_produces_standard_normal_moments() {
        check_standard_normal(NormalMethod::BoxMuller);
    }

    #[test]
    fn sample_with_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sampler = NormalSampler::default();
        let n = 100_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| sampler.sample_with(&mut rng, 3.0, 2.0))
            .collect();
        let (mean, var, _, _) = moments(&samples);
        assert!((mean - 3.0).abs() < 0.03);
        assert!((var - 4.0).abs() < 0.1);
    }

    #[test]
    fn fill_matches_repeated_sampling() {
        let mut rng1 = StdRng::seed_from_u64(11);
        let mut rng2 = StdRng::seed_from_u64(11);
        let mut s1 = NormalSampler::default();
        let mut s2 = NormalSampler::default();
        let mut buf = [0.0; 16];
        s1.fill(&mut rng1, &mut buf, 0.0, 1.0);
        for &b in &buf {
            assert_eq!(b, s2.sample_with(&mut rng2, 0.0, 1.0));
        }
    }

    #[test]
    fn reset_discards_cached_sample() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = NormalSampler::default();
        let _ = s.sample(&mut rng);
        s.reset();
        assert!(s.cached.is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = NormalSampler::default();
        let mut b = NormalSampler::default();
        let mut rng_a = StdRng::seed_from_u64(123);
        let mut rng_b = StdRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.sample(&mut rng_a), b.sample(&mut rng_b));
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_std_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = NormalSampler::default();
        let _ = s.sample_with(&mut rng, 0.0, -1.0);
    }
}

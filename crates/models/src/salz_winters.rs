//! Spatial fading correlation across a uniform linear antenna array after
//! Salz & Winters (paper Sec. 3, Eq. 5–7; paper ref. \[1\]).
//!
//! All scatterers seen from a given receiver arrive within an angular spread
//! `±Δ` around a mean angle-of-arrival `Φ`. For transmit antennas `k` and `j`
//! separated by `|k − j|·D` (element spacing `D`, wavelength `λ`,
//! `z = 2π·D/λ`) the normalized covariances are Bessel series:
//!
//! ```text
//! R̃xx = R̃yy = J₀(z·(k−j)) + 2·Σ_{m≥1} J_{2m}(z·(k−j))·cos(2mΦ)·sin(2mΔ)/(2mΔ)
//! R̃xy = −R̃yx = 2·Σ_{m≥0} J_{2m+1}(z·(k−j))·sin((2m+1)Φ)·sin((2m+1)Δ)/((2m+1)Δ)
//! ```
//!
//! normalized by the per-dimension variance `σ²/2` (Eq. 7: `R = σ²·R̃/2`).
//! This is the MIMO-flavoured correlation model of the paper's second
//! experiment (covariance matrix Eq. 23, Fig. 4b).

use corrfade_linalg::CMatrix;
use corrfade_specfun::{bessel_j0, bessel_jn};

use crate::covariance::{covariance_matrix_equal_power, CovarianceBuildError, QuadCovariance};

/// Number of series terms after which the Bessel series is truncated.
/// `J_n(x)` decays super-exponentially once `n > x`; the arguments of
/// interest (`z·(k−j)` for arrays of a few dozen elements at ≤ a few
/// wavelengths spacing) are far below the orders reached here.
const MAX_SERIES_TERMS: usize = 200;

/// Relative tolerance at which the series is considered converged.
const SERIES_TOL: f64 = 1e-14;

/// Salz–Winters spatial-correlation model for a uniform linear array of
/// equal-power channels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SalzWintersSpatialModel {
    /// Common power `σ²` of the complex Gaussian channel gains.
    pub sigma_sq: f64,
    /// Antenna spacing in wavelengths, `D/λ`.
    pub spacing_wavelengths: f64,
    /// Mean angle of arrival `Φ` in radians, `|Φ| ≤ π`.
    pub angle_of_arrival_rad: f64,
    /// Angular spread `Δ` in radians, `0 < Δ ≤ π`.
    pub angular_spread_rad: f64,
}

impl SalzWintersSpatialModel {
    /// Creates the model.
    ///
    /// # Panics
    /// Panics if the power or spacing is non-positive, `|Φ| > π`, or
    /// `Δ ∉ (0, π]`.
    pub fn new(
        sigma_sq: f64,
        spacing_wavelengths: f64,
        angle_of_arrival_rad: f64,
        angular_spread_rad: f64,
    ) -> Self {
        assert!(sigma_sq > 0.0, "power must be positive, got {sigma_sq}");
        assert!(
            spacing_wavelengths > 0.0,
            "antenna spacing must be positive"
        );
        assert!(
            angle_of_arrival_rad.abs() <= core::f64::consts::PI,
            "angle of arrival must satisfy |Phi| <= pi"
        );
        assert!(
            angular_spread_rad > 0.0 && angular_spread_rad <= core::f64::consts::PI,
            "angular spread must lie in (0, pi]"
        );
        Self {
            sigma_sq,
            spacing_wavelengths,
            angle_of_arrival_rad,
            angular_spread_rad,
        }
    }

    /// The electrical spacing `z = 2π·D/λ`.
    pub fn z(&self) -> f64 {
        2.0 * core::f64::consts::PI * self.spacing_wavelengths
    }

    /// The normalized covariances `(R̃xx, R̃xy)` of Eq. (5)–(6) for antenna
    /// index difference `k − j` (may be negative; the model depends on it
    /// through `z·(k−j)`).
    pub fn normalized_covariances(&self, index_difference: i64) -> (f64, f64) {
        let arg = self.z() * index_difference as f64;
        let phi = self.angle_of_arrival_rad;
        let delta = self.angular_spread_rad;

        // Eq. (5): even series.
        let mut rxx = bessel_j0(arg);
        for m in 1..=MAX_SERIES_TERMS {
            let order = 2 * m as u32;
            let term = 2.0
                * bessel_jn(order, arg)
                * (2.0 * m as f64 * phi).cos()
                * (2.0 * m as f64 * delta).sin()
                / (2.0 * m as f64 * delta);
            rxx += term;
            if term.abs() < SERIES_TOL && order as f64 > arg.abs() {
                break;
            }
        }

        // Eq. (6): odd series.
        let mut rxy = 0.0;
        for m in 0..=MAX_SERIES_TERMS {
            let order = 2 * m as u32 + 1;
            let o = order as f64;
            let term =
                2.0 * bessel_jn(order, arg) * (o * phi).sin() * (o * delta).sin() / (o * delta);
            rxy += term;
            if term.abs() < SERIES_TOL && o > arg.abs() {
                break;
            }
        }

        (rxx, rxy)
    }

    /// The (un-normalized) covariance quadruple for antennas `k` and `j`
    /// (Eq. 5–7): `Rxx = Ryy = σ²·R̃xx/2`, `Rxy = −Ryx = σ²·R̃xy/2`.
    pub fn covariances(&self, k: usize, j: usize) -> QuadCovariance {
        let (rxx_n, rxy_n) = self.normalized_covariances(k as i64 - j as i64);
        QuadCovariance::symmetric(self.sigma_sq * rxx_n / 2.0, self.sigma_sq * rxy_n / 2.0)
    }

    /// The complex covariance `µ_{k,j} = σ²·(R̃xx − i·R̃xy)` between antennas
    /// `k` and `j`.
    pub fn complex_covariance(&self, k: usize, j: usize) -> corrfade_linalg::Complex64 {
        self.covariances(k, j).complex_covariance()
    }

    /// Builds the full `N × N` covariance matrix (Eq. 12–13) for a uniform
    /// linear array of `n_antennas` elements.
    ///
    /// # Errors
    /// Propagates [`CovarianceBuildError`] from the builder.
    pub fn covariance_matrix(&self, n_antennas: usize) -> Result<CMatrix, CovarianceBuildError> {
        covariance_matrix_equal_power(n_antennas, self.sigma_sq, |k, j| self.covariances(k, j))
    }
}

/// The exact parameter set of the paper's second experiment (Sec. 6):
/// three transmit antennas with `D/λ = 1` (D = 33.3 cm at GSM 900),
/// angular spread `Δ = π/18` (10°), broadside arrival `Φ = 0`, `σ_g² = 1`.
pub fn paper_spatial_scenario() -> SalzWintersSpatialModel {
    SalzWintersSpatialModel::new(1.0, 1.0, 0.0, core::f64::consts::PI / 18.0)
}

/// The desired covariance matrix the paper reports for the spatial scenario
/// (Eq. 23), for comparison in tests and experiments.
pub fn paper_covariance_matrix_23() -> CMatrix {
    CMatrix::from_real_slice(
        3,
        3,
        &[
            1.0, 0.8123, 0.3730, 0.8123, 1.0, 0.8123, 0.3730, 0.8123, 1.0,
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_index_difference_gives_unit_normalized_covariance() {
        let m = paper_spatial_scenario();
        let (rxx, rxy) = m.normalized_covariances(0);
        // J0(0) = 1 and every higher-order term vanishes.
        assert!((rxx - 1.0).abs() < 1e-12);
        assert!(rxy.abs() < 1e-12);
        // µ_{k,k} would be σ² (the builder uses the powers directly there).
        assert!(m
            .complex_covariance(1, 1)
            .approx_eq(corrfade_linalg::c64(1.0, 0.0), 1e-12));
    }

    #[test]
    fn broadside_arrival_makes_covariances_real() {
        // Φ = 0 ⇒ sin((2m+1)Φ) = 0 ⇒ R̃xy = 0 ⇒ K real (paper's remark after
        // Eq. 23).
        let m = paper_spatial_scenario();
        for d in 1..4i64 {
            let (_, rxy) = m.normalized_covariances(d);
            assert!(rxy.abs() < 1e-12, "R̃xy must vanish at Φ = 0, got {rxy}");
        }
    }

    #[test]
    fn reproduces_paper_equation_23() {
        // Headline check of experiment E2: Eq. (5)-(7)+(12)-(13) must
        // reproduce the covariance matrix the paper prints.
        let m = paper_spatial_scenario();
        let k = m.covariance_matrix(3).unwrap();
        let expected = paper_covariance_matrix_23();
        assert!(
            k.max_abs_diff(&expected) < 5e-4,
            "computed covariance deviates from the paper's Eq. (23):\n{k:?}\nvs\n{expected:?}"
        );
        assert!(k.is_hermitian(1e-12));
    }

    #[test]
    fn eq23_is_positive_definite_as_the_paper_states() {
        let m = paper_spatial_scenario();
        let k = m.covariance_matrix(3).unwrap();
        assert!(corrfade_linalg::is_positive_definite(&k));
    }

    #[test]
    fn correlation_decays_with_antenna_separation() {
        let m = paper_spatial_scenario();
        let c1 = m.complex_covariance(0, 1).abs();
        let c2 = m.complex_covariance(0, 2).abs();
        assert!(c1 > c2, "spatial correlation must decay: {c1} vs {c2}");
        assert!(c1 < 1.0);
    }

    #[test]
    fn covariance_is_symmetric_in_antenna_order() {
        // µ_{k,j} = conj(µ_{j,k}); for Φ = 0 they are equal and real, for
        // Φ ≠ 0 the imaginary part flips sign.
        let m = SalzWintersSpatialModel::new(1.0, 0.5, 0.7, core::f64::consts::PI / 12.0);
        let kj = m.complex_covariance(0, 2);
        let jk = m.complex_covariance(2, 0);
        assert!(kj.approx_eq(jk.conj(), 1e-12));
        assert!(
            kj.im.abs() > 1e-6,
            "off-broadside arrival must give complex covariances"
        );
    }

    #[test]
    fn off_broadside_covariance_matrix_is_hermitian_complex() {
        let m = SalzWintersSpatialModel::new(2.0, 0.5, core::f64::consts::FRAC_PI_3, 0.2);
        let k = m.covariance_matrix(4).unwrap();
        assert!(k.is_hermitian(1e-12));
        assert!((k[(0, 0)].re - 2.0).abs() < 1e-12);
        // At least one off-diagonal entry has a significant imaginary part —
        // the case ref. [5]'s real-covariance restriction cannot express.
        assert!(k[(0, 1)].im.abs() > 1e-3);
    }

    #[test]
    fn wide_angular_spread_decorrelates_antennas() {
        // Δ = π (isotropic scattering) reduces R̃xx to J0(z·(k−j)).
        let iso = SalzWintersSpatialModel::new(1.0, 0.5, 0.0, core::f64::consts::PI);
        let (rxx, _) = iso.normalized_covariances(1);
        let j0 = bessel_j0(iso.z());
        assert!(
            (rxx - j0).abs() < 1e-10,
            "isotropic limit must reduce to J0: {rxx} vs {j0}"
        );
        // And the narrow-spread case is much more correlated.
        let narrow = paper_spatial_scenario();
        assert!(narrow.normalized_covariances(1).0 > rxx.abs());
    }

    #[test]
    #[should_panic(expected = "angular spread")]
    fn invalid_angular_spread_rejected() {
        let _ = SalzWintersSpatialModel::new(1.0, 1.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "spacing")]
    fn invalid_spacing_rejected() {
        let _ = SalzWintersSpatialModel::new(1.0, 0.0, 0.0, 0.1);
    }
}

//! Spectral/temporal fading correlation after Jakes (paper Sec. 2, Eq. 3–4).
//!
//! For two equal-power complex Gaussian processes at carrier frequencies
//! `f_k`, `f_j` observed with an arrival-time offset `τ_{k,j}`, Jakes'
//! model gives
//!
//! ```text
//! Rxx = Ryy =  σ²·J₀(2π·F_m·τ) / (2·[1 + (Δω·σ_τ)²])
//! Rxy = −Ryx = −Δω·σ_τ·Rxx
//! ```
//!
//! with `Δω = 2π(f_k − f_j)` the angular frequency separation, `F_m` the
//! maximum Doppler frequency and `σ_τ` the RMS delay spread of the channel.
//! This is the OFDM-flavoured correlation model used for the paper's first
//! experiment (covariance matrix Eq. 22, Fig. 4a).

use corrfade_linalg::CMatrix;
use corrfade_specfun::bessel_j0;

use crate::covariance::{covariance_matrix_equal_power, CovarianceBuildError, QuadCovariance};

/// Speed of light in m/s, used to derive the maximum Doppler frequency from
/// carrier frequency and mobile speed.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Maximum Doppler frequency `F_m = v·f_c/c` for a mobile speed `v` (m/s) and
/// carrier frequency `f_c` (Hz).
pub fn max_doppler_frequency(mobile_speed_mps: f64, carrier_freq_hz: f64) -> f64 {
    assert!(
        mobile_speed_mps >= 0.0 && carrier_freq_hz > 0.0,
        "invalid Doppler parameters"
    );
    mobile_speed_mps * carrier_freq_hz / SPEED_OF_LIGHT
}

/// Jakes spectral-correlation model for equal-power processes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JakesSpectralModel {
    /// Common power `σ²` of the complex Gaussian processes.
    pub sigma_sq: f64,
    /// Maximum Doppler frequency `F_m` in Hz.
    pub max_doppler_hz: f64,
    /// RMS delay spread `σ_τ` of the channel in seconds.
    pub rms_delay_spread_s: f64,
}

impl JakesSpectralModel {
    /// Creates the model.
    ///
    /// # Panics
    /// Panics if any parameter is negative or the power is non-positive.
    pub fn new(sigma_sq: f64, max_doppler_hz: f64, rms_delay_spread_s: f64) -> Self {
        assert!(sigma_sq > 0.0, "power must be positive, got {sigma_sq}");
        assert!(
            max_doppler_hz >= 0.0,
            "Doppler frequency must be non-negative"
        );
        assert!(
            rms_delay_spread_s >= 0.0,
            "delay spread must be non-negative"
        );
        Self {
            sigma_sq,
            max_doppler_hz,
            rms_delay_spread_s,
        }
    }

    /// The covariance quadruple (Eq. 3–4) for a frequency separation
    /// `delta_f_hz = f_k − f_j` and arrival-time delay `tau_s = τ_{k,j}`.
    pub fn covariances(&self, delta_f_hz: f64, tau_s: f64) -> QuadCovariance {
        let delta_omega = 2.0 * core::f64::consts::PI * delta_f_hz;
        let dws = delta_omega * self.rms_delay_spread_s;
        let rxx = self.sigma_sq
            * bessel_j0(2.0 * core::f64::consts::PI * self.max_doppler_hz * tau_s)
            / (2.0 * (1.0 + dws * dws));
        let rxy = -dws * rxx;
        QuadCovariance::symmetric(rxx, rxy)
    }

    /// The complex covariance `µ_{k,j}` for a frequency separation and delay,
    /// i.e. the off-diagonal entry of Eq. (13) under this model.
    pub fn complex_covariance(&self, delta_f_hz: f64, tau_s: f64) -> corrfade_linalg::Complex64 {
        self.covariances(delta_f_hz, tau_s).complex_covariance()
    }

    /// Builds the full `N × N` covariance matrix (Eq. 12–13) for processes at
    /// the given carrier frequencies and with the given pairwise arrival
    /// delays (`delays_s[k][j] = τ_{k,j}`, only the `k < j` entries are
    /// read).
    ///
    /// # Errors
    /// Propagates [`CovarianceBuildError`] from the builder.
    ///
    /// # Panics
    /// Panics if `delays_s` is not an `N × N` table.
    pub fn covariance_matrix(
        &self,
        frequencies_hz: &[f64],
        delays_s: &[Vec<f64>],
    ) -> Result<CMatrix, CovarianceBuildError> {
        let n = frequencies_hz.len();
        assert_eq!(delays_s.len(), n, "delay table must be N×N");
        for row in delays_s {
            assert_eq!(row.len(), n, "delay table must be N×N");
        }
        covariance_matrix_equal_power(n, self.sigma_sq, |k, j| {
            self.covariances(frequencies_hz[k] - frequencies_hz[j], delays_s[k][j])
        })
    }
}

/// Builds a pairwise delay table from per-process arrival times:
/// `τ_{k,j} = t_j − t_k` is the additional delay of process `j` relative to
/// process `k` (the sign only affects `J₀`, which is even, so either
/// convention yields the same covariances).
pub fn pairwise_delays_from_arrival_times(arrival_times_s: &[f64]) -> Vec<Vec<f64>> {
    let n = arrival_times_s.len();
    (0..n)
        .map(|k| {
            (0..n)
                .map(|j| (arrival_times_s[j] - arrival_times_s[k]).abs())
                .collect()
        })
        .collect()
}

/// The exact parameter set of the paper's first experiment (Sec. 6):
/// `N = 3`, `σ_g² = 1`, `F_s = 1 kHz`, `F_m = 50 Hz`, adjacent carrier
/// spacing 200 kHz with `f₁ > f₂ > f₃`, `σ_τ = 1 µs`, and pairwise delays
/// `τ₁,₂ = 1 ms`, `τ₂,₃ = 3 ms`, `τ₁,₃ = 4 ms`. Returns the model, the
/// carrier-frequency list (offsets around an arbitrary centre) and the delay
/// table, ready for [`JakesSpectralModel::covariance_matrix`].
pub fn paper_spectral_scenario() -> (JakesSpectralModel, Vec<f64>, Vec<Vec<f64>>) {
    let model = JakesSpectralModel::new(1.0, 50.0, 1e-6);
    // Only frequency *differences* matter; use offsets 400, 200, 0 kHz so
    // that f1 > f2 > f3 with 200 kHz adjacent spacing.
    let frequencies = vec![400e3, 200e3, 0.0];
    // Pairwise delays exactly as given in the paper.
    let delays = vec![
        vec![0.0, 1e-3, 4e-3],
        vec![1e-3, 0.0, 3e-3],
        vec![4e-3, 3e-3, 0.0],
    ];
    (model, frequencies, delays)
}

/// The desired covariance matrix the paper reports for the spectral scenario
/// (Eq. 22), for comparison in tests and experiments.
pub fn paper_covariance_matrix_22() -> CMatrix {
    use corrfade_linalg::c64;
    CMatrix::from_rows(&[
        vec![c64(1.0, 0.0), c64(0.3782, 0.4753), c64(0.0878, 0.2207)],
        vec![c64(0.3782, -0.4753), c64(1.0, 0.0), c64(0.3063, 0.3849)],
        vec![c64(0.0878, -0.2207), c64(0.3063, -0.3849), c64(1.0, 0.0)],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doppler_frequency_helper() {
        // 900 MHz carrier, 60 km/h ≈ 16.67 m/s → Fm ≈ 50 Hz (paper's setup).
        let fm = max_doppler_frequency(60.0 / 3.6, 900e6);
        assert!((fm - 50.0).abs() < 0.1, "Fm = {fm}");
    }

    #[test]
    fn zero_separation_zero_delay_gives_half_power_per_dimension() {
        let m = JakesSpectralModel::new(2.0, 50.0, 1e-6);
        let q = m.covariances(0.0, 0.0);
        // Rxx = σ²/2, Rxy = 0 → µ = σ².
        assert!((q.rxx - 1.0).abs() < 1e-12);
        assert!(q.rxy.abs() < 1e-15);
        assert!(m
            .complex_covariance(0.0, 0.0)
            .approx_eq(corrfade_linalg::c64(2.0, 0.0), 1e-12));
    }

    #[test]
    fn covariance_decays_with_frequency_separation() {
        let m = JakesSpectralModel::new(1.0, 50.0, 1e-6);
        let c0 = m.complex_covariance(0.0, 0.0).abs();
        let c1 = m.complex_covariance(200e3, 0.0).abs();
        let c2 = m.complex_covariance(400e3, 0.0).abs();
        assert!(c0 > c1 && c1 > c2, "covariance must decay: {c0} {c1} {c2}");
    }

    #[test]
    fn covariance_oscillates_with_delay_via_bessel() {
        let m = JakesSpectralModel::new(1.0, 50.0, 0.0);
        // With zero delay spread, µ = σ² J0(2π Fm τ); the first zero of J0 is
        // at 2.4048, i.e. τ ≈ 7.65 ms for Fm = 50 Hz.
        let tau_zero = 2.404825557695773 / (2.0 * core::f64::consts::PI * 50.0);
        assert!(m.complex_covariance(0.0, tau_zero).abs() < 1e-9);
        assert!(m.complex_covariance(0.0, tau_zero * 1.8).re < 0.0);
    }

    #[test]
    fn reproduces_paper_equation_22() {
        // The headline check of experiment E1: our Eq. (3)-(4)+(12)-(13)
        // implementation must reproduce the covariance matrix the paper
        // prints, to the 4 decimal places the paper reports.
        let (model, freqs, delays) = paper_spectral_scenario();
        let k = model.covariance_matrix(&freqs, &delays).unwrap();
        let expected = paper_covariance_matrix_22();
        assert!(
            k.max_abs_diff(&expected) < 5e-4,
            "computed covariance deviates from the paper's Eq. (22):\n{k:?}\nvs\n{expected:?}"
        );
        assert!(k.is_hermitian(1e-12));
    }

    #[test]
    fn eq22_is_positive_definite_as_the_paper_states() {
        let (model, freqs, delays) = paper_spectral_scenario();
        let k = model.covariance_matrix(&freqs, &delays).unwrap();
        assert!(corrfade_linalg::is_positive_definite(&k));
    }

    #[test]
    fn arrival_time_helper_is_symmetric_and_consistent() {
        let d = pairwise_delays_from_arrival_times(&[0.0, 1e-3, 4e-3]);
        assert_eq!(d[0][1], 1e-3);
        assert_eq!(d[1][2], 3e-3);
        assert_eq!(d[0][2], 4e-3);
        assert_eq!(d[2][0], d[0][2]);
        assert_eq!(d[1][1], 0.0);
    }

    #[test]
    fn covariance_matrix_from_arrival_times_matches_paper_delays() {
        let (model, freqs, _) = paper_spectral_scenario();
        let delays = pairwise_delays_from_arrival_times(&[0.0, 1e-3, 4e-3]);
        let k = model.covariance_matrix(&freqs, &delays).unwrap();
        assert!(k.max_abs_diff(&paper_covariance_matrix_22()) < 5e-4);
    }

    #[test]
    #[should_panic(expected = "power must be positive")]
    fn non_positive_power_rejected() {
        let _ = JakesSpectralModel::new(0.0, 50.0, 1e-6);
    }

    #[test]
    #[should_panic(expected = "N×N")]
    fn ragged_delay_table_rejected() {
        let m = JakesSpectralModel::new(1.0, 50.0, 1e-6);
        let _ = m.covariance_matrix(&[0.0, 1.0], &[vec![0.0, 1.0]]);
    }
}

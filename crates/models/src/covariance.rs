//! Covariance-matrix assembly (paper Eq. 12–13).
//!
//! The proposed algorithm is driven entirely by the covariance matrix **K**
//! of the complex Gaussian variables (as opposed to the covariance of the
//! Rayleigh envelopes used by several conventional methods). Its entries are
//!
//! ```text
//! µ_{k,j} = σ_g²_j                                    for k = j
//! µ_{k,j} = (Rxx + Ryy) − i·(Rxy − Ryx)               for k ≠ j
//! ```
//!
//! where `Rxx`, `Ryy`, `Rxy`, `Ryx` are the four real covariances between the
//! real/imaginary parts of processes `k` and `j` (Eq. 1–2). The
//! [`CovarianceBuilder`] assembles that matrix from per-pair covariances
//! supplied either directly or by one of the correlation models in this
//! crate.

use corrfade_linalg::{c64, CMatrix, Complex64};

/// The four real covariances between the real and imaginary parts of two
/// zero-mean complex Gaussian processes `z_k` and `z_j` (paper Eq. 1–2).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuadCovariance {
    /// `Rxx = E[x_k·x_j]`.
    pub rxx: f64,
    /// `Ryy = E[y_k·y_j]`.
    pub ryy: f64,
    /// `Rxy = E[x_k·y_j]`.
    pub rxy: f64,
    /// `Ryx = E[y_k·x_j]`.
    pub ryx: f64,
}

impl QuadCovariance {
    /// Creates the quadruple from its four components.
    pub fn new(rxx: f64, ryy: f64, rxy: f64, ryx: f64) -> Self {
        Self { rxx, ryy, rxy, ryx }
    }

    /// The symmetric special case `Rxx = Ryy`, `Rxy = −Ryx` that both the
    /// Jakes and the Salz–Winters models produce.
    pub fn symmetric(rxx: f64, rxy: f64) -> Self {
        Self {
            rxx,
            ryy: rxx,
            rxy,
            ryx: -rxy,
        }
    }

    /// The complex covariance `µ_{k,j} = (Rxx + Ryy) − i·(Rxy − Ryx)`
    /// (paper Eq. 13, off-diagonal case).
    pub fn complex_covariance(&self) -> Complex64 {
        c64(self.rxx + self.ryy, -(self.rxy - self.ryx))
    }

    /// The covariance quadruple seen from the swapped pair `(j, k)`:
    /// `Rxx` and `Ryy` are symmetric, `Rxy` and `Ryx` swap roles.
    pub fn transposed(&self) -> Self {
        Self {
            rxx: self.rxx,
            ryy: self.ryy,
            rxy: self.ryx,
            ryx: self.rxy,
        }
    }
}

/// Errors produced while assembling a covariance matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum CovarianceBuildError {
    /// A variance (power) is negative.
    NegativePower {
        /// Index of the offending envelope.
        index: usize,
        /// The supplied power.
        value: f64,
    },
    /// The number of supplied powers does not match the requested dimension.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Supplied dimension.
        actual: usize,
    },
}

impl core::fmt::Display for CovarianceBuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CovarianceBuildError::NegativePower { index, value } => {
                write!(
                    f,
                    "power of envelope {index} must be non-negative, got {value}"
                )
            }
            CovarianceBuildError::DimensionMismatch { expected, actual } => {
                write!(f, "expected {expected} powers, got {actual}")
            }
        }
    }
}

impl std::error::Error for CovarianceBuildError {}

/// Incremental builder of the covariance matrix **K** of Eq. (12)–(13).
#[derive(Debug, Clone)]
pub struct CovarianceBuilder {
    n: usize,
    matrix: CMatrix,
}

impl CovarianceBuilder {
    /// Starts a builder for `N` envelopes with the given complex-Gaussian
    /// powers `σ_g²_j` on the diagonal.
    ///
    /// # Errors
    /// [`CovarianceBuildError::NegativePower`] if any power is negative.
    pub fn new(gaussian_powers: &[f64]) -> Result<Self, CovarianceBuildError> {
        for (i, &p) in gaussian_powers.iter().enumerate() {
            if p < 0.0 || p.is_nan() {
                return Err(CovarianceBuildError::NegativePower { index: i, value: p });
            }
        }
        let n = gaussian_powers.len();
        let mut matrix = CMatrix::zeros(n, n);
        for (i, &p) in gaussian_powers.iter().enumerate() {
            matrix[(i, i)] = c64(p, 0.0);
        }
        Ok(Self { n, matrix })
    }

    /// Number of envelopes.
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// Sets the off-diagonal pair `(k, j)` (and its Hermitian mirror) from a
    /// covariance quadruple.
    ///
    /// # Panics
    /// Panics if `k == j` or either index is out of range.
    pub fn set_pair(&mut self, k: usize, j: usize, cov: QuadCovariance) -> &mut Self {
        assert!(
            k != j,
            "set_pair: use the constructor powers for the diagonal"
        );
        assert!(k < self.n && j < self.n, "set_pair: index out of range");
        let mu = cov.complex_covariance();
        self.matrix[(k, j)] = mu;
        self.matrix[(j, k)] = mu.conj();
        self
    }

    /// Sets the off-diagonal pair `(k, j)` (and its Hermitian mirror)
    /// directly from a complex covariance `µ_{k,j} = E[z_k·conj(z_j)]`.
    ///
    /// # Panics
    /// Panics if `k == j` or either index is out of range.
    pub fn set_complex_pair(&mut self, k: usize, j: usize, mu: Complex64) -> &mut Self {
        assert!(
            k != j,
            "set_complex_pair: use the constructor powers for the diagonal"
        );
        assert!(
            k < self.n && j < self.n,
            "set_complex_pair: index out of range"
        );
        self.matrix[(k, j)] = mu;
        self.matrix[(j, k)] = mu.conj();
        self
    }

    /// Fills every off-diagonal pair from a closure producing the covariance
    /// quadruple for `(k, j)` with `k < j`.
    pub fn fill_pairs(&mut self, mut f: impl FnMut(usize, usize) -> QuadCovariance) -> &mut Self {
        for k in 0..self.n {
            for j in (k + 1)..self.n {
                self.set_pair(k, j, f(k, j));
            }
        }
        self
    }

    /// Finishes the build and returns the Hermitian covariance matrix.
    pub fn build(&self) -> CMatrix {
        self.matrix.clone()
    }
}

/// Convenience: builds the covariance matrix for equal-power envelopes from a
/// closure giving the covariance quadruple of each pair `k < j`.
pub fn covariance_matrix_equal_power(
    n: usize,
    sigma_g_sq: f64,
    f: impl FnMut(usize, usize) -> QuadCovariance,
) -> Result<CMatrix, CovarianceBuildError> {
    let mut b = CovarianceBuilder::new(&vec![sigma_g_sq; n])?;
    b.fill_pairs(f);
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_covariance_composition() {
        let q = QuadCovariance::new(0.2, 0.3, 0.1, -0.05);
        let mu = q.complex_covariance();
        assert!(mu.approx_eq(c64(0.5, -0.15), 1e-15));
        let t = q.transposed();
        assert_eq!(t.rxy, -0.05);
        assert_eq!(t.ryx, 0.1);
        // Symmetric constructor implements Rxx=Ryy, Rxy=-Ryx.
        let s = QuadCovariance::symmetric(0.25, 0.1);
        assert_eq!(s.ryy, 0.25);
        assert_eq!(s.ryx, -0.1);
        assert!(s.complex_covariance().approx_eq(c64(0.5, -0.2), 1e-15));
    }

    #[test]
    fn builder_produces_hermitian_matrix_with_powers_on_diagonal() {
        let powers = [1.0, 2.0, 0.5];
        let mut b = CovarianceBuilder::new(&powers).unwrap();
        assert_eq!(b.dimension(), 3);
        b.set_pair(0, 1, QuadCovariance::symmetric(0.3, 0.1));
        b.set_complex_pair(0, 2, c64(0.2, -0.4));
        b.set_pair(1, 2, QuadCovariance::new(0.05, 0.1, 0.0, 0.02));
        let k = b.build();
        assert!(k.is_hermitian(1e-14));
        for (i, &p) in powers.iter().enumerate() {
            assert!(k[(i, i)].approx_eq(c64(p, 0.0), 1e-15));
        }
        assert!(k[(0, 1)].approx_eq(c64(0.6, -0.2), 1e-15));
        assert!(k[(1, 0)].approx_eq(c64(0.6, 0.2), 1e-15));
        assert!(k[(0, 2)].approx_eq(c64(0.2, -0.4), 1e-15));
        assert!(k[(2, 0)].approx_eq(c64(0.2, 0.4), 1e-15));
    }

    #[test]
    fn fill_pairs_visits_upper_triangle_once() {
        let mut visited = Vec::new();
        let k = covariance_matrix_equal_power(4, 1.0, |a, b| {
            visited.push((a, b));
            QuadCovariance::symmetric(0.1 * (a + b) as f64, 0.0)
        })
        .unwrap();
        assert_eq!(visited.len(), 6);
        assert!(visited.iter().all(|&(a, b)| a < b));
        assert!(k.is_hermitian(1e-14));
    }

    #[test]
    fn negative_power_rejected() {
        let err = CovarianceBuilder::new(&[1.0, -0.5]).unwrap_err();
        assert!(matches!(
            err,
            CovarianceBuildError::NegativePower { index: 1, .. }
        ));
        assert!(err.to_string().contains("envelope 1"));
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn diagonal_pair_rejected() {
        let mut b = CovarianceBuilder::new(&[1.0, 1.0]).unwrap();
        b.set_pair(1, 1, QuadCovariance::default());
    }
}

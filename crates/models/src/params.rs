//! Physical channel / radio parameters and derived quantities.
//!
//! The paper's experiments are specified in physical units (GSM 900 carrier,
//! 60 km/h mobile, 1 kHz sampling, 200 kHz carrier spacing, 1 µs delay
//! spread). This module holds those parameters in one place and derives the
//! normalized quantities the algorithms actually consume (`F_m`, `f_m = F_m/F_s`,
//! `k_m = ⌊f_m·M⌋`).

use crate::jakes::{max_doppler_frequency, SPEED_OF_LIGHT};

/// Radio / mobility parameters describing one fading scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChannelParams {
    /// Carrier frequency `f_c` in Hz.
    pub carrier_freq_hz: f64,
    /// Mobile speed `v` in m/s.
    pub mobile_speed_mps: f64,
    /// Sampling frequency `F_s` of the transmitted signal in Hz.
    pub sampling_freq_hz: f64,
    /// RMS delay spread `σ_τ` of the channel in seconds.
    pub rms_delay_spread_s: f64,
}

impl ChannelParams {
    /// The parameter set used throughout the paper's Sec. 6 experiments:
    /// GSM 900 (900 MHz), 60 km/h, `F_s` = 1 kHz, `σ_τ` = 1 µs
    /// (giving `F_m ≈ 50 Hz`, `f_m = 0.05`).
    pub fn paper_defaults() -> Self {
        Self {
            carrier_freq_hz: 900e6,
            mobile_speed_mps: 60.0 / 3.6,
            sampling_freq_hz: 1e3,
            rms_delay_spread_s: 1e-6,
        }
    }

    /// Maximum Doppler frequency `F_m = v·f_c/c` in Hz.
    pub fn max_doppler_hz(&self) -> f64 {
        max_doppler_frequency(self.mobile_speed_mps, self.carrier_freq_hz)
    }

    /// Normalized maximum Doppler frequency `f_m = F_m / F_s`.
    pub fn normalized_doppler(&self) -> f64 {
        self.max_doppler_hz() / self.sampling_freq_hz
    }

    /// Carrier wavelength `λ = c / f_c` in metres.
    pub fn wavelength_m(&self) -> f64 {
        SPEED_OF_LIGHT / self.carrier_freq_hz
    }

    /// The Doppler band-edge index `k_m = ⌊f_m·M⌋` for an `M`-point IDFT.
    pub fn doppler_band_edge(&self, m: usize) -> usize {
        (self.normalized_doppler() * m as f64).floor() as usize
    }

    /// Coherence time estimate `T_c ≈ 0.423 / F_m` in seconds (Rappaport's
    /// rule of thumb), handy for choosing observation lengths in examples.
    pub fn coherence_time_s(&self) -> f64 {
        0.423 / self.max_doppler_hz()
    }
}

impl Default for ChannelParams {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_the_reported_derived_values() {
        let p = ChannelParams::paper_defaults();
        // The paper: Fm = 50 Hz, fm = 0.05, km = 204 at M = 4096.
        assert!((p.max_doppler_hz() - 50.0).abs() < 0.1);
        assert!((p.normalized_doppler() - 0.05).abs() < 1e-4);
        assert_eq!(p.doppler_band_edge(4096), 204);
        // GSM 900 wavelength ≈ 33.3 cm (paper: D = 33.3 cm for D/λ = 1).
        assert!((p.wavelength_m() - 0.333).abs() < 1e-3);
    }

    #[test]
    fn coherence_time_is_inverse_in_doppler() {
        let slow = ChannelParams {
            mobile_speed_mps: 1.0,
            ..ChannelParams::paper_defaults()
        };
        let fast = ChannelParams {
            mobile_speed_mps: 30.0,
            ..ChannelParams::paper_defaults()
        };
        assert!(slow.coherence_time_s() > fast.coherence_time_s());
        assert!((slow.coherence_time_s() / fast.coherence_time_s() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn default_is_paper_defaults() {
        assert_eq!(ChannelParams::default(), ChannelParams::paper_defaults());
    }
}

//! # corrfade-models
//!
//! Fading-correlation models and covariance-matrix assembly for the
//! `corrfade` workspace — the "step 1 to step 3" part of the paper's
//! algorithm:
//!
//! * [`jakes`] — spectral/temporal correlation as a function of frequency
//!   separation and arrival delay (paper Eq. 3–4; OFDM scenario, Eq. 22),
//! * [`salz_winters`] — spatial correlation across a uniform linear antenna
//!   array (paper Eq. 5–7; MIMO scenario, Eq. 23),
//! * [`covariance`] — the covariance quadruple of Eq. (1)–(2) and the
//!   assembly of the complex covariance matrix **K** of Eq. (12)–(13),
//! * [`params`] — physical channel parameters (carrier, speed, sampling
//!   rate) and the derived normalized Doppler quantities,
//! * [`wsn`] — network-scale spatial-field helpers: node layouts, link
//!   extraction by connectivity radius, exponential-decay link correlation,
//!   log-distance path loss and the assembled link-field covariance the
//!   `corrfade-network` layer and the generated `network/*` scenario
//!   family build on.
//!
//! Both models ship the exact parameter sets of the paper's Sec. 6
//! experiments ([`jakes::paper_spectral_scenario`],
//! [`salz_winters::paper_spatial_scenario`]) together with the covariance
//! matrices the paper reports (Eq. 22 / Eq. 23) so the test-suite and the
//! benchmark harness can verify the reproduction end to end.

#![warn(missing_docs)]

pub mod covariance;
pub mod jakes;
pub mod params;
pub mod salz_winters;
pub mod wsn;

pub use covariance::{
    covariance_matrix_equal_power, CovarianceBuildError, CovarianceBuilder, QuadCovariance,
};
pub use jakes::{
    max_doppler_frequency, pairwise_delays_from_arrival_times, paper_covariance_matrix_22,
    paper_spectral_scenario, JakesSpectralModel, SPEED_OF_LIGHT,
};
pub use params::ChannelParams;
pub use salz_winters::{
    paper_covariance_matrix_23, paper_spatial_scenario, SalzWintersSpatialModel,
};
pub use wsn::{
    grid_positions, link_field_covariance, links_within_radius, LinkCorrelationModel,
    LogDistancePathLoss,
};

//! Spatial-field helpers for network-scale (WSN) link simulation.
//!
//! The paper's algorithm takes an arbitrary covariance matrix; a wireless
//! *network* derives that matrix from geometry. This module provides the
//! geometry → covariance building blocks shared by the `corrfade-network`
//! crate and the generated `network/*` scenario family:
//!
//! * [`grid_positions`] / [`links_within_radius`] — node layouts and
//!   deterministic link extraction via a connectivity radius,
//! * [`LinkCorrelationModel`] — shadowing-style correlation between two
//!   links, exponentially decaying in the physical separation of their
//!   midpoints and in their angular separation (Gudmundson-style, the
//!   standard WSN spatial-correlation shape),
//! * [`LogDistancePathLoss`] — log-distance path loss mapping link length
//!   to a per-link mean SNR (the per-envelope Gaussian power),
//! * [`link_field_covariance`] — the assembled Hermitian covariance **K**
//!   over a set of links, built through [`crate::CovarianceBuilder`]
//!   (paper Eq. 12–13) with the path-loss powers on the diagonal.
//!
//! All functions are pure and iterate in a fixed order, so the produced
//! matrices are **bitwise deterministic** in their inputs — the foundation
//! of the network layer's partition-invariance guarantee.

use corrfade_linalg::{c64, CMatrix};

use crate::covariance::{CovarianceBuildError, CovarianceBuilder};

/// Euclidean distance between two points.
#[must_use]
pub fn distance(a: [f64; 2], b: [f64; 2]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    (dx * dx + dy * dy).sqrt()
}

/// Midpoint of the segment `a`–`b` — the reference point of a link when
/// evaluating spatial correlation between links.
#[must_use]
pub fn midpoint(a: [f64; 2], b: [f64; 2]) -> [f64; 2] {
    [0.5 * (a[0] + b[0]), 0.5 * (a[1] + b[1])]
}

/// Orientation of the undirected segment `a`–`b` in radians, folded into
/// `[0, π)` (a link and its reverse have the same orientation).
#[must_use]
pub fn link_orientation(a: [f64; 2], b: [f64; 2]) -> f64 {
    let theta = (b[1] - a[1]).atan2(b[0] - a[0]);
    let theta = if theta < 0.0 {
        theta + core::f64::consts::PI
    } else {
        theta
    };
    // atan2 can return exactly π for direction (-1, -0.0); fold it to 0.
    if theta >= core::f64::consts::PI {
        theta - core::f64::consts::PI
    } else {
        theta
    }
}

/// Acute angle between two undirected orientations in `[0, π)`, returned in
/// `[0, π/2]`.
#[must_use]
pub fn angular_separation(theta_a: f64, theta_b: f64) -> f64 {
    let diff = (theta_a - theta_b).abs() % core::f64::consts::PI;
    diff.min(core::f64::consts::PI - diff)
}

/// Node positions of an `nx × ny` rectangular grid with the given spacing,
/// row-major: node `iy·nx + ix` sits at `(ix·spacing, iy·spacing)`.
#[must_use]
pub fn grid_positions(nx: usize, ny: usize, spacing: f64) -> Vec<[f64; 2]> {
    let mut positions = Vec::with_capacity(nx * ny);
    for iy in 0..ny {
        for ix in 0..nx {
            positions.push([ix as f64 * spacing, iy as f64 * spacing]);
        }
    }
    positions
}

/// Every node pair within `radius` of each other, as `(k, j)` with `k < j`,
/// in lexicographic order — the **deterministic link ordering** every layer
/// above (group partitioning, seeding, sharding) relies on.
#[must_use]
pub fn links_within_radius(positions: &[[f64; 2]], radius: f64) -> Vec<(usize, usize)> {
    let mut links = Vec::new();
    for k in 0..positions.len() {
        for j in (k + 1)..positions.len() {
            if distance(positions[k], positions[j]) <= radius {
                links.push((k, j));
            }
        }
    }
    links
}

/// Exponential-decay spatial correlation between two links, evaluated on
/// the physical separation of their midpoints and their angular
/// separation:
///
/// ```text
/// ρ = min(exp(−d/D_c) · exp(−Δθ/θ_c), ρ_max)
/// ```
///
/// The distance factor is the classic Gudmundson shadowing-correlation
/// model; the angular factor captures that links observing the scatter
/// field from similar directions fade together. Both kernels are of
/// Laplacian type (positive semidefinite on their metric), so the
/// assembled matrices are PSD up to round-off — and the generator's
/// Sec. 4.2 eigenvalue clipping absorbs any residual negative tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkCorrelationModel {
    /// Decorrelation distance `D_c` (same unit as the node positions);
    /// must be positive and finite.
    pub decorrelation_distance: f64,
    /// Angular decorrelation scale `θ_c` in radians; `f64::INFINITY`
    /// disables the angular factor.
    pub angular_scale_rad: f64,
    /// Upper clamp applied to every off-diagonal correlation, keeping
    /// distinct links strictly less than fully correlated so the matrix
    /// stays decomposable (default `0.99`).
    pub max_correlation: f64,
}

impl LinkCorrelationModel {
    /// Distance-only decay (angular factor disabled), clamped at `0.99`.
    #[must_use]
    pub fn distance_only(decorrelation_distance: f64) -> Self {
        Self {
            decorrelation_distance,
            angular_scale_rad: f64::INFINITY,
            max_correlation: 0.99,
        }
    }

    /// Distance and angular decay, clamped at `0.99`.
    #[must_use]
    pub fn new(decorrelation_distance: f64, angular_scale_rad: f64) -> Self {
        Self {
            decorrelation_distance,
            angular_scale_rad,
            max_correlation: 0.99,
        }
    }

    /// The correlation coefficient for a link pair separated by
    /// `midpoint_distance` with angular separation `angular_sep` —
    /// always in `[0, max_correlation]`.
    #[must_use]
    pub fn correlation(&self, midpoint_distance: f64, angular_sep: f64) -> f64 {
        assert!(
            self.decorrelation_distance > 0.0,
            "decorrelation distance must be positive"
        );
        let mut rho = (-midpoint_distance / self.decorrelation_distance).exp();
        if self.angular_scale_rad.is_finite() {
            assert!(
                self.angular_scale_rad > 0.0,
                "angular scale must be positive"
            );
            rho *= (-angular_sep / self.angular_scale_rad).exp();
        }
        rho.clamp(0.0, self.max_correlation)
    }
}

/// Log-distance path loss mapping a link's length to its mean SNR — the
/// standard `PL(d) = PL(d₀) + 10·n·log₁₀(d/d₀)` model expressed directly
/// in SNR terms:
///
/// ```text
/// γ̄(d) = γ̄(d₀) − 10·n·log₁₀(d/d₀)       [dB],  d clamped to ≥ d₀
/// ```
///
/// The linear mean SNR doubles as the link's complex-Gaussian power
/// `σ_g²` (unit noise power), so the instantaneous SNR of the generated
/// envelope `r` is simply `r²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogDistancePathLoss {
    /// Mean SNR in dB at the reference distance.
    pub reference_snr_db: f64,
    /// Reference distance `d₀` (same unit as node positions); positive.
    pub reference_distance: f64,
    /// Path-loss exponent `n` (≈ 2 free space, 2.7–4 urban/indoor).
    pub exponent: f64,
}

impl LogDistancePathLoss {
    /// Mean SNR in dB of a link of the given length (lengths below the
    /// reference distance saturate at the reference SNR).
    #[must_use]
    pub fn mean_snr_db(&self, link_length: f64) -> f64 {
        assert!(
            self.reference_distance > 0.0,
            "reference distance must be positive"
        );
        let d = link_length.max(self.reference_distance);
        self.reference_snr_db - 10.0 * self.exponent * (d / self.reference_distance).log10()
    }

    /// Linear mean SNR of a link of the given length — the link's Gaussian
    /// power `σ_g²`.
    #[must_use]
    pub fn mean_snr_linear(&self, link_length: f64) -> f64 {
        10f64.powf(self.mean_snr_db(link_length) / 10.0)
    }
}

/// Assembles the Hermitian covariance matrix **K** of a set of links:
/// diagonal = per-link Gaussian power from the path-loss model, off-diagonal
/// `µ_{k,j} = ρ_{k,j}·√(p_k·p_j)` from the spatial correlation model
/// evaluated on the links' midpoint separation and angular separation.
///
/// `links` holds `(a, b)` node-index pairs into `positions`; entries are
/// produced in the order given, so the matrix is bitwise deterministic in
/// `(positions, links, models)`.
///
/// # Errors
/// [`CovarianceBuildError`] when a computed power is invalid (only possible
/// for non-finite geometry).
///
/// # Panics
/// Panics if a link references a node index out of range.
pub fn link_field_covariance(
    positions: &[[f64; 2]],
    links: &[(usize, usize)],
    correlation: &LinkCorrelationModel,
    path_loss: &LogDistancePathLoss,
) -> Result<CMatrix, CovarianceBuildError> {
    let n = links.len();
    let mut powers = Vec::with_capacity(n);
    let mut midpoints = Vec::with_capacity(n);
    let mut orientations = Vec::with_capacity(n);
    for &(a, b) in links {
        let (pa, pb) = (positions[a], positions[b]);
        powers.push(path_loss.mean_snr_linear(distance(pa, pb)));
        midpoints.push(midpoint(pa, pb));
        orientations.push(link_orientation(pa, pb));
    }
    let mut builder = CovarianceBuilder::new(&powers)?;
    for k in 0..n {
        for j in (k + 1)..n {
            let rho = correlation.correlation(
                distance(midpoints[k], midpoints[j]),
                angular_separation(orientations[k], orientations[j]),
            );
            builder.set_complex_pair(k, j, c64(rho * (powers[k] * powers[j]).sqrt(), 0.0));
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_positions_are_row_major() {
        let p = grid_positions(3, 2, 2.0);
        assert_eq!(p.len(), 6);
        assert_eq!(p[0], [0.0, 0.0]);
        assert_eq!(p[2], [4.0, 0.0]);
        assert_eq!(p[3], [0.0, 2.0]);
        assert_eq!(p[5], [4.0, 2.0]);
    }

    #[test]
    fn links_within_radius_is_sorted_and_complete() {
        // Unit 2x2 grid: 4 orthogonal links at distance 1, 2 diagonals at √2.
        let p = grid_positions(2, 2, 1.0);
        let links = links_within_radius(&p, 1.25);
        assert_eq!(links, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        let all = links_within_radius(&p, 1.5);
        assert_eq!(all.len(), 6, "diagonals included at radius 1.5");
        assert!(all.windows(2).all(|w| w[0] < w[1]), "lexicographic order");
    }

    #[test]
    fn orientation_is_direction_invariant() {
        let a = [0.0, 0.0];
        let b = [1.0, 1.0];
        assert!((link_orientation(a, b) - link_orientation(b, a)).abs() < 1e-15);
        // Horizontal link measured in either direction folds to 0.
        assert!(link_orientation([1.0, 0.0], [0.0, 0.0]).abs() < 1e-15);
        assert!(link_orientation([0.0, 0.0], [1.0, 0.0]).abs() < 1e-15);
    }

    #[test]
    fn angular_separation_is_acute() {
        let quarter = core::f64::consts::FRAC_PI_2;
        assert!((angular_separation(0.0, quarter) - quarter).abs() < 1e-15);
        // 170° vs 10° of undirected lines are only 20° apart.
        let a = 170f64.to_radians();
        let b = 10f64.to_radians();
        assert!((angular_separation(a, b) - 20f64.to_radians()).abs() < 1e-12);
        assert_eq!(angular_separation(0.3, 0.3), 0.0);
    }

    #[test]
    fn correlation_decays_and_clamps() {
        let m = LinkCorrelationModel::distance_only(2.0);
        assert!((m.correlation(0.0, 0.0) - 0.99).abs() < 1e-15, "clamped");
        let near = m.correlation(1.0, 0.0);
        let far = m.correlation(4.0, 0.0);
        assert!(near > far && far > 0.0);
        assert!((near - (-0.5f64).exp()).abs() < 1e-15);

        // The angular factor only engages when finite.
        let ang = LinkCorrelationModel::new(2.0, 0.5);
        assert!(ang.correlation(1.0, 0.4) < m.correlation(1.0, 0.4));
    }

    #[test]
    fn path_loss_saturates_below_reference() {
        let pl = LogDistancePathLoss {
            reference_snr_db: 20.0,
            reference_distance: 1.0,
            exponent: 3.0,
        };
        assert!((pl.mean_snr_db(0.5) - 20.0).abs() < 1e-15);
        assert!((pl.mean_snr_db(10.0) - (20.0 - 30.0)).abs() < 1e-12);
        assert!((pl.mean_snr_linear(1.0) - 100.0).abs() < 1e-10);
    }

    #[test]
    fn link_field_covariance_is_hermitian_psd_with_powers_on_diagonal() {
        let p = grid_positions(3, 3, 1.0);
        let links = links_within_radius(&p, 1.25);
        let correlation = LinkCorrelationModel::new(1.0, 1.0);
        let path_loss = LogDistancePathLoss {
            reference_snr_db: 15.0,
            reference_distance: 1.0,
            exponent: 2.7,
        };
        let k = link_field_covariance(&p, &links, &correlation, &path_loss).unwrap();
        assert_eq!(k.rows(), links.len());
        assert!(k.is_hermitian(1e-14));
        for i in 0..links.len() {
            // Unit-length links all sit at the reference SNR.
            assert!((k[(i, i)].re - path_loss.mean_snr_linear(1.0)).abs() < 1e-12);
        }
        // Off-diagonals are bounded by the clamp times the power geometry.
        for i in 0..links.len() {
            for j in 0..links.len() {
                if i != j {
                    let bound = 0.99 * (k[(i, i)].re * k[(j, j)].re).sqrt();
                    assert!(k[(i, j)].abs() <= bound + 1e-12);
                }
            }
        }
        let eig = corrfade_linalg::hermitian_eigen(&k).unwrap();
        assert!(
            eig.is_positive_semidefinite(1e-8),
            "spatial covariance must be PSD up to round-off"
        );
    }
}

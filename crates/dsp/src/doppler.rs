//! Doppler filter design and the Young–Beaulieu IDFT Rayleigh generator
//! (paper ref. \[7\], Fig. 2), the substrate of the real-time algorithm of
//! Sec. 5.
//!
//! The generator produces one baseband Rayleigh-fading sequence whose
//! normalized autocorrelation approximates the Clarke/Jakes target
//! `J₀(2π·f_m·d)` (`f_m` = maximum Doppler frequency normalized by the
//! sampling frequency, `d` = sample lag):
//!
//! 1. draw `M` i.i.d. complex Gaussians `A[k] − i·B[k]` with per-dimension
//!    variance `σ²_orig`,
//! 2. weight them by the real filter coefficients `F[k]` of Eq. (21),
//! 3. take an `M`-point IDFT.
//!
//! Crucially for the paper's contribution, the filter **changes the
//! variance** of the sequence: the output variance is
//! `σ_g² = 2·σ²_orig/M² · Σ_k F[k]²` (Eq. 19), *not* `σ²_orig`. The proposed
//! algorithm feeds this value into its coloring step; the Sorooshyari–Daut
//! baseline ignores it, which is exactly the flaw experiment E8 demonstrates.

use corrfade_linalg::{c64, Complex32, Complex64};
use corrfade_specfun::bessel_j0;
use rand::Rng;

use crate::error::DspError;
use crate::fft::{ifft_in_place, irfft, rfft_len};

/// Young's Doppler filter (paper Eq. 21): the square root of a discretized
/// Jakes power spectral density, with the band-edge bins adjusted so that the
/// filtered sequence reproduces `J₀(2π·f_m·d)` exactly in the limit.
#[derive(Debug, Clone)]
pub struct DopplerFilter {
    m: usize,
    fm: f64,
    km: usize,
    coeffs: Vec<f64>,
}

impl DopplerFilter {
    /// Designs the filter for an `m`-point IDFT and a normalized maximum
    /// Doppler frequency `fm = Fm / Fs`.
    ///
    /// # Errors
    /// * [`DspError::InvalidLength`] when `m < 8`,
    /// * [`DspError::InvalidDopplerFrequency`] when `fm` is outside
    ///   `(0, 0.5)` or `⌊fm·m⌋ < 1` (the filter would have no pass-band
    ///   bins).
    pub fn new(m: usize, fm: f64) -> Result<Self, DspError> {
        if m < 8 {
            return Err(DspError::InvalidLength {
                length: m,
                minimum: 8,
            });
        }
        if !(fm > 0.0 && fm < 0.5) {
            return Err(DspError::InvalidDopplerFrequency { fm });
        }
        let km = (fm * m as f64).floor() as usize;
        if km < 1 {
            return Err(DspError::InvalidDopplerFrequency { fm });
        }
        if 2 * km + 1 >= m {
            return Err(DspError::InvalidDopplerFrequency { fm });
        }

        let mut coeffs = vec![0.0f64; m];
        let mfm = m as f64 * fm;
        // Band-edge value (Eq. 21, k = km and k = M − km):
        // sqrt( km/2 · [π/2 − arctan((km−1)/√(2km−1))] ).
        let km_f = km as f64;
        let edge = (km_f / 2.0
            * (core::f64::consts::FRAC_PI_2 - ((km_f - 1.0) / (2.0 * km_f - 1.0).sqrt()).atan()))
        .sqrt();

        for (k, c) in coeffs.iter_mut().enumerate() {
            *c = if k == 0 {
                0.0
            } else if k < km {
                let r = k as f64 / mfm;
                (1.0 / (2.0 * (1.0 - r * r).sqrt())).sqrt()
            } else if k == km || k == m - km {
                edge
            } else if k > m - km {
                let r = (m - k) as f64 / mfm;
                (1.0 / (2.0 * (1.0 - r * r).sqrt())).sqrt()
            } else {
                0.0
            };
        }

        Ok(Self { m, fm, km, coeffs })
    }

    /// IDFT length `M`.
    pub fn len(&self) -> usize {
        self.m
    }

    /// `true` if the filter has no taps (never the case for a constructed
    /// filter, provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Normalized maximum Doppler frequency `fm = Fm / Fs`.
    pub fn fm(&self) -> f64 {
        self.fm
    }

    /// Index of the band edge, `km = ⌊fm·M⌋`.
    pub fn km(&self) -> usize {
        self.km
    }

    /// The filter coefficients `F[k]`, `k = 0 … M−1`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// `Σ_k F[k]²` — the energy term of Eq. (19).
    pub fn sum_squared(&self) -> f64 {
        self.coeffs.iter().map(|&f| f * f).sum()
    }

    /// Output variance `σ_g²` of the generated complex sequence for a given
    /// input per-dimension variance `σ²_orig` (paper Eq. 19):
    /// `σ_g² = 2·σ²_orig/M² · Σ_k F[k]²`.
    pub fn output_variance(&self, sigma_orig_sq: f64) -> f64 {
        assert!(sigma_orig_sq >= 0.0, "variance must be non-negative");
        2.0 * sigma_orig_sq / (self.m as f64 * self.m as f64) * self.sum_squared()
    }

    /// The sequence `g[d] = (1/M)·Σ_k F[k]²·e^{i2πkd/M}` of Eq. (17); the
    /// theoretical (non-normalized) autocorrelation of the generator output
    /// is `σ²_orig/M · Re{g[d]}` (Eq. 16).
    ///
    /// The spectrum `F[k]²` is real and even (`F[k] = F[M−k]`), so `g` is a
    /// real sequence and the inverse transform runs through [`irfft`] — one
    /// half-size complex FFT instead of a full `M`-point one — on **every**
    /// kernel backend. Unlike the generation paths, this analysis helper is
    /// therefore not covered by the `CORRFADE_KERNEL=scalar` bit-exactness
    /// pin: values agree with pre-kernel releases to ≤ 1e-12, and the
    /// imaginary parts (previously round-off noise) are now exactly zero.
    pub fn autocorrelation_kernel(&self) -> Vec<Complex64> {
        // The non-redundant half of the conjugate-symmetric spectrum
        // (irfft applies the 1/M factor of Eq. 17).
        let half: Vec<Complex64> = self.coeffs[..rfft_len(self.m)]
            .iter()
            .map(|&f| c64(f * f, 0.0))
            .collect();
        irfft(&half, self.m)
            .into_iter()
            .map(|g| c64(g, 0.0))
            .collect()
    }

    /// Normalized autocorrelation `ρ[d] = Re{g[d]} / Re{g[0]}` of the
    /// generated fading process. By the filter's construction this
    /// approximates the Clarke/Jakes target `J₀(2π·f_m·d)` (paper Eq. 20).
    pub fn normalized_autocorrelation(&self, max_lag: usize) -> Vec<f64> {
        let g = self.autocorrelation_kernel();
        let g0 = g[0].re;
        (0..=max_lag.min(self.m - 1))
            .map(|d| g[d].re / g0)
            .collect()
    }

    /// The ideal target autocorrelation `J₀(2π·f_m·d)` for lags
    /// `0 … max_lag` — what [`Self::normalized_autocorrelation`] converges to
    /// as `M` grows.
    pub fn target_autocorrelation(&self, max_lag: usize) -> Vec<f64> {
        (0..=max_lag)
            .map(|d| bessel_j0(2.0 * core::f64::consts::PI * self.fm * d as f64))
            .collect()
    }
}

/// The Young–Beaulieu IDFT Rayleigh generator (paper Fig. 2): one instance
/// produces one independent baseband fading sequence of length `M` per call.
#[derive(Debug, Clone)]
pub struct IdftRayleighGenerator {
    filter: DopplerFilter,
    sigma_orig_sq: f64,
}

impl IdftRayleighGenerator {
    /// Creates a generator from a designed filter and the per-dimension input
    /// variance `σ²_orig` of the Gaussian sequences `{A[k]}`, `{B[k]}`.
    pub fn new(filter: DopplerFilter, sigma_orig_sq: f64) -> Result<Self, DspError> {
        if sigma_orig_sq <= 0.0 || sigma_orig_sq.is_nan() {
            return Err(DspError::InvalidVariance {
                value: sigma_orig_sq,
            });
        }
        Ok(Self {
            filter,
            sigma_orig_sq,
        })
    }

    /// The underlying Doppler filter.
    pub fn filter(&self) -> &DopplerFilter {
        &self.filter
    }

    /// Per-dimension variance of the Gaussian input sequences.
    pub fn sigma_orig_sq(&self) -> f64 {
        self.sigma_orig_sq
    }

    /// Output variance `σ_g²` of the generated sequence (Eq. 19). This is the
    /// value the paper's real-time algorithm must feed into its coloring step
    /// instead of assuming unit variance.
    pub fn output_variance(&self) -> f64 {
        self.filter.output_variance(self.sigma_orig_sq)
    }

    /// Generates one fading sequence `u[l]`, `l = 0 … M−1`:
    /// `u = IDFT{ F[k]·(A[k] − i·B[k]) }`.
    ///
    /// The envelope `|u[l]|` is Rayleigh distributed and the sequence has the
    /// autocorrelation of Eq. (16).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Complex64> {
        let mut out = vec![Complex64::ZERO; self.filter.len()];
        self.generate_into(rng, &mut out);
        out
    }

    /// Generates one fading sequence directly into a caller-owned buffer:
    /// the Doppler-weighted spectrum is written into `out` and transformed
    /// in place, so for power-of-two `M` the call performs **no
    /// steady-state heap allocation** (on the vector kernel backend the
    /// first transform of a given `M` builds the shared twiddle tables —
    /// see [`crate::fft::ifft_in_place`]). Numerically (and RNG-stream)
    /// identical to [`IdftRayleighGenerator::generate`], and bit-identical
    /// across releases under `CORRFADE_KERNEL=scalar`.
    ///
    /// # Panics
    /// Panics if `out.len()` differs from the filter length `M`.
    pub fn generate_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [Complex64]) {
        self.fill_spectrum_into(rng, out);
        ifft_in_place(out);
    }

    /// Writes the Doppler-weighted spectrum `F[k]·(A[k] − i·B[k])` into
    /// `out` **without** transforming it — the first half of
    /// [`IdftRayleighGenerator::generate_into`], split out so the fused
    /// coloring+IDFT kernel ([`crate::fused`]) can own the transform.
    /// Consumes exactly the same RNG draws in the same order as
    /// `generate_into` (two per bin).
    ///
    /// # Panics
    /// Panics if `out.len()` differs from the filter length `M`.
    pub fn fill_spectrum_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [Complex64]) {
        let m = self.filter.len();
        assert_eq!(
            out.len(),
            m,
            "generate_into: buffer length {} does not match IDFT size {m}",
            out.len()
        );
        let std = self.sigma_orig_sq.sqrt();
        // Draw A[k], B[k] ~ N(0, σ²_orig) i.i.d. and weight by F[k].
        let mut sampler = corrfade_randn::NormalSampler::default();
        for (slot, &f) in out.iter_mut().zip(self.filter.coefficients()) {
            let a = sampler.sample_with(rng, 0.0, std);
            let b = sampler.sample_with(rng, 0.0, std);
            *slot = c64(f * a, -f * b);
        }
    }

    /// Consumes exactly the RNG draws of one
    /// [`IdftRayleighGenerator::fill_spectrum_into`] call **without**
    /// producing a spectrum — the fast-forward primitive behind stream
    /// resume (`RealtimeGenerator::skip_blocks`): advancing a stream past
    /// blocks a reconnecting client already holds only needs the RNG state
    /// moved, not the transform or coloring work.
    ///
    /// The draw pattern must stay bit-for-bit identical to
    /// `fill_spectrum_into`: a fresh [`corrfade_randn::NormalSampler`] per
    /// call (the pair cache never crosses spectra) and two `N(0, σ_orig)`
    /// samples per bin, in bin order. The polar method's rejection count
    /// depends only on the RNG output sequence, so replaying the draws
    /// replays the consumption exactly.
    pub fn skip_spectrum<R: Rng + ?Sized>(&self, rng: &mut R) {
        let std = self.sigma_orig_sq.sqrt();
        let mut sampler = corrfade_randn::NormalSampler::default();
        for _ in 0..self.filter.len() {
            let _ = sampler.sample_with(rng, 0.0, std);
            let _ = sampler.sample_with(rng, 0.0, std);
        }
    }

    /// [`IdftRayleighGenerator::fill_spectrum_into`] narrowed to the f32
    /// fast tier: the Gaussians are drawn **in `f64` from the identical RNG
    /// stream** (same draw count and order, so a stream can switch
    /// precision without re-seeding) and each weighted bin is narrowed once
    /// at the fill — the single point where the fast tier leaves double
    /// precision ahead of the transform.
    ///
    /// # Panics
    /// Panics if `out.len()` differs from the filter length `M`.
    pub fn fill_spectrum32_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [Complex32]) {
        let m = self.filter.len();
        assert_eq!(
            out.len(),
            m,
            "generate_into: buffer length {} does not match IDFT size {m}",
            out.len()
        );
        let std = self.sigma_orig_sq.sqrt();
        let mut sampler = corrfade_randn::NormalSampler::default();
        for (slot, &f) in out.iter_mut().zip(self.filter.coefficients()) {
            let a = sampler.sample_with(rng, 0.0, std);
            let b = sampler.sample_with(rng, 0.0, std);
            *slot = Complex32::new((f * a) as f32, (-f * b) as f32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_randn::RandomStream;

    /// Paper parameters: M = 4096, fm = 0.05 → km = 204.
    fn paper_filter() -> DopplerFilter {
        DopplerFilter::new(4096, 0.05).unwrap()
    }

    #[test]
    fn paper_km_value() {
        let f = paper_filter();
        assert_eq!(
            f.km(),
            204,
            "paper reports km = 204 for fm = 0.05, M = 4096"
        );
        assert_eq!(f.len(), 4096);
        assert!((f.fm() - 0.05).abs() < 1e-15);
        assert!(!f.is_empty());
    }

    #[test]
    fn filter_structure_matches_eq21() {
        let f = paper_filter();
        let c = f.coefficients();
        let m = f.len();
        let km = f.km();
        // k = 0 and the stop band are zero.
        assert_eq!(c[0], 0.0);
        for (k, &ck) in c.iter().enumerate().take(m - km).skip(km + 1) {
            assert_eq!(ck, 0.0, "stop band must be zero at k = {k}");
        }
        // Symmetry F[k] = F[M-k] for k in the pass band.
        for k in 1..=km {
            assert!(
                (c[k] - c[m - k]).abs() < 1e-12,
                "filter must be symmetric at k = {k}"
            );
        }
        // Pass-band values follow the closed form.
        let mfm = m as f64 * f.fm();
        for (k, &ck) in c.iter().enumerate().take(km).skip(1) {
            let expected = (1.0 / (2.0 * (1.0 - (k as f64 / mfm).powi(2)).sqrt())).sqrt();
            assert!((ck - expected).abs() < 1e-12);
        }
        // Band-edge value is finite and positive (the raw Jakes PSD diverges
        // there; Young's correction keeps it bounded).
        assert!(c[km] > 0.0 && c[km].is_finite());
    }

    #[test]
    fn output_variance_formula() {
        let f = paper_filter();
        let sum_sq = f.sum_squared();
        let sigma_orig_sq = 0.5;
        let expected = 2.0 * sigma_orig_sq / (4096.0 * 4096.0) * sum_sq;
        assert!((f.output_variance(sigma_orig_sq) - expected).abs() < 1e-15);
        // Doubling the input variance doubles the output variance.
        assert!((f.output_variance(1.0) - 2.0 * f.output_variance(0.5)).abs() < 1e-15);
    }

    #[test]
    fn normalized_autocorrelation_tracks_bessel_target() {
        let f = paper_filter();
        let max_lag = 100;
        let rho = f.normalized_autocorrelation(max_lag);
        let target = f.target_autocorrelation(max_lag);
        assert!((rho[0] - 1.0).abs() < 1e-12);
        // Young's design reproduces J0(2π fm d) closely for lags well inside
        // the observation window.
        for d in 0..=max_lag {
            assert!(
                (rho[d] - target[d]).abs() < 0.02,
                "lag {d}: rho = {}, J0 = {}",
                rho[d],
                target[d]
            );
        }
    }

    #[test]
    fn generated_sequence_has_predicted_variance() {
        let f = DopplerFilter::new(2048, 0.05).unwrap();
        let gen = IdftRayleighGenerator::new(f, 0.5).unwrap();
        let predicted = gen.output_variance();
        let mut rng = RandomStream::new(42);
        // Average the empirical variance over several independent sequences.
        let runs = 20;
        let mut acc = 0.0;
        for _ in 0..runs {
            let u = gen.generate(&mut rng);
            acc += u.iter().map(|z| z.norm_sqr()).sum::<f64>() / u.len() as f64;
        }
        let empirical = acc / runs as f64;
        assert!(
            (empirical - predicted).abs() / predicted < 0.05,
            "empirical variance {empirical} vs predicted {predicted}"
        );
        // And it is definitely NOT the input variance σ²_orig — the
        // variance-changing effect the paper corrects for.
        assert!((empirical - 0.5).abs() / 0.5 > 0.5);
    }

    #[test]
    fn generated_sequence_is_zero_mean_and_circular() {
        let f = DopplerFilter::new(1024, 0.1).unwrap();
        let gen = IdftRayleighGenerator::new(f, 1.0).unwrap();
        let mut rng = RandomStream::new(7);
        let mut mean = Complex64::ZERO;
        let mut cross = 0.0;
        let mut count = 0usize;
        for _ in 0..30 {
            let u = gen.generate(&mut rng);
            for &z in &u {
                mean += z;
                cross += z.re * z.im;
                count += 1;
            }
        }
        let mean = mean / count as f64;
        let cross = cross / count as f64;
        let sigma = gen.output_variance().sqrt();
        assert!(mean.abs() < 0.05 * sigma, "mean {mean}");
        assert!(
            cross.abs() < 0.05 * sigma * sigma,
            "re/im correlation {cross}"
        );
    }

    #[test]
    fn empirical_autocorrelation_matches_kernel() {
        let f = DopplerFilter::new(1024, 0.08).unwrap();
        let gen = IdftRayleighGenerator::new(f.clone(), 0.5).unwrap();
        let mut rng = RandomStream::new(3);
        let runs = 200;
        let max_lag = 30;
        let mut acc = vec![0.0f64; max_lag + 1];
        for _ in 0..runs {
            let u = gen.generate(&mut rng);
            let m = u.len();
            for d in 0..=max_lag {
                let mut s = 0.0;
                for l in 0..m {
                    s += u[l].re * u[(l + d) % m].re;
                }
                acc[d] += s / m as f64;
            }
        }
        for v in acc.iter_mut() {
            *v /= runs as f64;
        }
        let rho_emp: Vec<f64> = acc.iter().map(|&v| v / acc[0]).collect();
        let rho_theory = f.normalized_autocorrelation(max_lag);
        for d in 0..=max_lag {
            assert!(
                (rho_emp[d] - rho_theory[d]).abs() < 0.06,
                "lag {d}: empirical {} vs theoretical {}",
                rho_emp[d],
                rho_theory[d]
            );
        }
    }

    #[test]
    fn generate_into_is_bit_identical_to_generate() {
        for m in [1024usize, 1000] {
            let f = DopplerFilter::new(m, 0.05).unwrap();
            let gen = IdftRayleighGenerator::new(f, 0.5).unwrap();
            let a = gen.generate(&mut RandomStream::new(11));
            let mut b = vec![Complex64::ZERO; m];
            gen.generate_into(&mut RandomStream::new(11), &mut b);
            assert_eq!(a, b, "m = {m}");
        }
    }

    #[test]
    fn fill_spectrum32_narrows_the_same_rng_stream() {
        let f = DopplerFilter::new(1024, 0.05).unwrap();
        let gen = IdftRayleighGenerator::new(f, 0.5).unwrap();
        let mut wide = vec![Complex64::ZERO; 1024];
        gen.fill_spectrum_into(&mut RandomStream::new(19), &mut wide);
        let mut narrow = vec![Complex32::ZERO; 1024];
        gen.fill_spectrum32_into(&mut RandomStream::new(19), &mut narrow);
        for (w, n) in wide.iter().zip(narrow.iter()) {
            assert_eq!(*n, Complex32::narrow(*w));
        }
        // And both consume the same number of draws: the next f64 value from
        // each stream agrees.
        use rand::RngCore;
        let mut r1 = RandomStream::new(19);
        let mut r2 = RandomStream::new(19);
        gen.fill_spectrum_into(&mut r1, &mut wide);
        gen.fill_spectrum32_into(&mut r2, &mut narrow);
        assert_eq!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    fn skip_spectrum_consumes_exactly_one_fill_of_rng() {
        // Fast-forward contract: skipping then filling must land on the same
        // RNG state (and therefore the same bits) as filling twice.
        let f = DopplerFilter::new(1024, 0.05).unwrap();
        let gen = IdftRayleighGenerator::new(f, 0.5).unwrap();

        let mut reference_rng = RandomStream::new(33);
        let mut first = vec![Complex64::ZERO; 1024];
        let mut second = vec![Complex64::ZERO; 1024];
        gen.fill_spectrum_into(&mut reference_rng, &mut first);
        gen.fill_spectrum_into(&mut reference_rng, &mut second);

        let mut skipping_rng = RandomStream::new(33);
        gen.skip_spectrum(&mut skipping_rng);
        let mut resumed = vec![Complex64::ZERO; 1024];
        gen.fill_spectrum_into(&mut skipping_rng, &mut resumed);

        for (a, b) in second.iter().zip(resumed.iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        let bits = |v: &[Complex64]| -> Vec<u64> { v.iter().map(|z| z.re.to_bits()).collect() };
        assert_ne!(
            bits(&first),
            bits(&second),
            "consecutive spectra must differ for the test to mean anything"
        );
    }

    #[test]
    #[should_panic(expected = "does not match IDFT size")]
    fn generate_into_checks_buffer_length() {
        let f = DopplerFilter::new(1024, 0.05).unwrap();
        let gen = IdftRayleighGenerator::new(f, 0.5).unwrap();
        let mut short = vec![Complex64::ZERO; 512];
        gen.generate_into(&mut RandomStream::new(1), &mut short);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(matches!(
            DopplerFilter::new(4, 0.05),
            Err(DspError::InvalidLength { .. })
        ));
        assert!(matches!(
            DopplerFilter::new(1024, 0.0),
            Err(DspError::InvalidDopplerFrequency { .. })
        ));
        assert!(matches!(
            DopplerFilter::new(1024, 0.6),
            Err(DspError::InvalidDopplerFrequency { .. })
        ));
        // fm so small that km = 0.
        assert!(matches!(
            DopplerFilter::new(64, 0.001),
            Err(DspError::InvalidDopplerFrequency { .. })
        ));
        let f = DopplerFilter::new(1024, 0.05).unwrap();
        assert!(matches!(
            IdftRayleighGenerator::new(f, 0.0),
            Err(DspError::InvalidVariance { .. })
        ));
    }
}

//! Error types for the DSP building blocks.

use core::fmt;

/// Errors produced by the Doppler-filter design and the IDFT generators.
#[derive(Debug, Clone, PartialEq)]
pub enum DspError {
    /// A transform/filter length is too small to be meaningful.
    InvalidLength {
        /// The supplied length.
        length: usize,
        /// The minimum accepted length.
        minimum: usize,
    },
    /// The normalized maximum Doppler frequency is outside the usable range
    /// `(0, 0.5)` or too small for the chosen IDFT length (`⌊fm·M⌋ < 1`).
    InvalidDopplerFrequency {
        /// The supplied normalized Doppler frequency.
        fm: f64,
    },
    /// A variance parameter is non-positive.
    InvalidVariance {
        /// The supplied variance.
        value: f64,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::InvalidLength { length, minimum } => {
                write!(f, "length {length} is too small (minimum {minimum})")
            }
            DspError::InvalidDopplerFrequency { fm } => write!(
                f,
                "normalized Doppler frequency {fm} is invalid: must lie in (0, 0.5) with floor(fm*M) >= 1"
            ),
            DspError::InvalidVariance { value } => {
                write!(f, "variance must be strictly positive, got {value}")
            }
        }
    }
}

impl std::error::Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_key_information() {
        assert!(DspError::InvalidLength {
            length: 2,
            minimum: 8
        }
        .to_string()
        .contains("2"));
        assert!(DspError::InvalidDopplerFrequency { fm: 0.7 }
            .to_string()
            .contains("0.7"));
        assert!(DspError::InvalidVariance { value: -1.0 }
            .to_string()
            .contains("-1"));
    }
}

//! Fused coloring + inverse-DFT kernel — the real-time hot path written
//! with one output pass instead of two.
//!
//! The two-pass real-time pipeline (Sec. 5 of the paper) first inverts each
//! row's Doppler spectrum (`ifft_in_place`, writing all `N·M` samples once)
//! and then colors the block (`kernel::color_block`, reading all `N·M` raw
//! samples and writing all `N·M` output samples). This kernel folds the
//! coloring into the IDFT's **final butterfly stage**: the last stage of a
//! radix-2 length-`M` transform produces the sample pairs
//! `(x[k], x[k + M/2])` from `(u, v·w_k)` in one pass over `k < M/2`, so the
//! coloring matrix can be applied to each pair *while it is still in
//! registers/L1* — the raw block is never written back after the final
//! stage, and each realtime output sample is written exactly once. For the
//! paper's `N = 3`, `M = 4096` that removes one full block write + read
//! (~393 KiB of round-trip memory traffic per block in f64).
//!
//! # Bit-exactness contract
//!
//! For every backend the fused kernel executes **the same floating-point
//! operation sequence per sample** as the two-pass path, so its output is
//! bit-identical to `ifft_in_place_with` + `color_block_with` on the same
//! backend (pinned by the `fused_*_bit_identical` tests and the
//! `fused_equivalence` proptests):
//!
//! * **scalar** — bit reversal and all butterfly stages except the last run
//!   through the exact historical loops ([`mod@crate::fft`]'s
//!   `scalar_bit_reverse` / `scalar_butterflies`); the final stage advances
//!   its twiddle by the identical serial `w ·= wlen` chain, and the
//!   coloring dot products fold in the same `j` order via the same
//!   [`corrfade_linalg::vector::dot`].
//! * **vector** — the planned table-driven stages run except the last; the
//!   final stage reads the same cached twiddle table with the same
//!   FMA-or-not formula selection, and the coloring accumulates with the
//!   exact [`corrfade_linalg::kernel::axpy_planar`] /
//!   [`corrfade_linalg::kernel::interleave_scaled_into`] inner loops of
//!   `color_block`.
//!
//! Because the f64 scalar path is bit-identical to the two-pass scalar
//! path, which is itself the pinned historical reference, switching the
//! realtime generator to the fused kernel changes **no golden output**.
//!
//! Lengths that are not a power of two (and `M = 1`, which has no final
//! stage) fall back to literally running the two-pass code, so the
//! contract holds trivially there.

use corrfade_linalg::kernel::{self, backend, Backend};
use corrfade_linalg::vector::{dot, dot32};
use corrfade_linalg::{Complex32, Complex64};

use crate::fft::{
    is_power_of_two, planned_bit_reverse, planned_butterflies, scalar_bit_reverse,
    scalar_butterflies, tables_for,
};
use crate::fft32::{bit_reverse32, butterflies32, ifft32_in_place_with, tables32_for};

/// Inverse-transforms each of the `n` length-`m` rows of `raw` (including
/// the `1/m` factor) and colors the block into `out` in a single fused
/// output pass:
/// `out[i·m + l] = scale · Σ_j a[i·n + j] · IDFT(raw_j)[l]`.
///
/// Runs on the process-wide kernel backend; bit-identical to
/// [`crate::ifft_in_place`] per row followed by
/// [`corrfade_linalg::kernel::color_block`] (see the [module docs](self)).
/// **`raw` is destroyed** (it holds partially-transformed data on return).
/// `w_scratch` and `scratch` are caller-pooled buffers exactly as in
/// `color_block`; with warm buffers the call performs no heap allocation.
///
/// # Panics
/// Panics on any dimension mismatch.
#[allow(clippy::too_many_arguments)]
pub fn color_idft_block(
    n: usize,
    m: usize,
    a: &[Complex64],
    scale: f64,
    raw: &mut [Complex64],
    out: &mut [Complex64],
    w_scratch: &mut Vec<Complex64>,
    scratch: &mut Vec<f64>,
) {
    color_idft_block_with(backend(), n, m, a, scale, raw, out, w_scratch, scratch);
}

/// [`color_idft_block`] on an explicit kernel backend — the entry point the
/// fused-vs-two-pass bit-identity tests and the `kernel_dispatch` benchmark
/// drive.
///
/// # Panics
/// Panics on any dimension mismatch.
#[allow(clippy::too_many_arguments)]
pub fn color_idft_block_with(
    b: Backend,
    n: usize,
    m: usize,
    a: &[Complex64],
    scale: f64,
    raw: &mut [Complex64],
    out: &mut [Complex64],
    w_scratch: &mut Vec<Complex64>,
    scratch: &mut Vec<f64>,
) {
    assert_eq!(a.len(), n * n, "color_idft_block: coloring matrix storage");
    assert_eq!(raw.len(), n * m, "color_idft_block: raw block length");
    assert_eq!(out.len(), n * m, "color_idft_block: output block length");
    if n == 0 || m == 0 {
        return;
    }
    if m == 1 || !is_power_of_two(m) {
        // No final radix-2 stage to fuse into — run the two-pass path
        // (bit-identity is then definitional).
        for j in 0..n {
            crate::fft::ifft_in_place_with(b, &mut raw[j * m..(j + 1) * m]);
        }
        kernel::color_block_with(b, n, m, a, scale, raw, out, w_scratch, scratch);
        return;
    }
    match b {
        Backend::Scalar => fused_scalar(n, m, a, scale, raw, out, w_scratch),
        Backend::Vector => fused_vector(n, m, a, scale, raw, out, scratch),
    }
}

/// Scalar fused kernel: historical butterflies for all stages but the last,
/// then the final stage's serial twiddle chain interleaved with the
/// historical gather → dot → scatter coloring.
fn fused_scalar(
    n: usize,
    m: usize,
    a: &[Complex64],
    scale: f64,
    raw: &mut [Complex64],
    out: &mut [Complex64],
    w_scratch: &mut Vec<Complex64>,
) {
    for j in 0..n {
        let row = &mut raw[j * m..(j + 1) * m];
        scalar_bit_reverse(row);
        scalar_butterflies(row, true, m / 2);
    }
    let half = m / 2;
    let inv_m = 1.0 / m as f64;
    // The final stage's twiddle chain, exactly as scalar_butterflies runs
    // it for len = m (one start block, w advanced by serial multiplication).
    let ang = 2.0 * core::f64::consts::PI / m as f64; // sign = +1: inverse
    let wlen = Complex64::cis(ang);
    // Snapshot vectors for the low/high halves of the butterfly pair.
    w_scratch.resize(2 * n, Complex64::ZERO);
    let (w_lo, w_hi) = w_scratch.split_at_mut(n);
    let mut w = Complex64::ONE;
    for k in 0..half {
        for (j, (lo, hi)) in w_lo.iter_mut().zip(w_hi.iter_mut()).enumerate() {
            let u = raw[j * m + k];
            let v = raw[j * m + k + half] * w;
            // The two-pass path stores u ± v and scales by 1/m afterwards;
            // same two operations in the same order here.
            *lo = (u + v).scale(inv_m);
            *hi = (u - v).scale(inv_m);
        }
        for i in 0..n {
            let row = &a[i * n..(i + 1) * n];
            out[i * m + k] = dot(row, w_lo).scale(scale);
            out[i * m + k + half] = dot(row, w_hi).scale(scale);
        }
        w *= wlen;
    }
}

/// Vector fused kernel: planned stages except the last, then the final
/// stage computed per [`COLOR_TILE`](kernel::COLOR_TILE)-pair tile straight
/// into split-complex planes, colored with the exact `color_block` AXPY
/// inner loops. Multiversioned like the planned butterflies: on AVX2+FMA
/// hardware the whole body compiles under `avx2,fma` (and uses the
/// `mul_add` twiddle formula), matching `butterflies_body` bit for bit —
/// without the multiversioning the final-stage tile loop runs baseline
/// codegen and loses more than the fusion saves.
fn fused_vector(
    n: usize,
    m: usize,
    a: &[Complex64],
    scale: f64,
    raw: &mut [Complex64],
    out: &mut [Complex64],
    scratch: &mut Vec<f64>,
) {
    #[cfg(target_arch = "x86_64")]
    if kernel::vector_uses_fma() {
        // SAFETY: guarded by the kernel layer's runtime AVX2+FMA detection.
        unsafe { fused_vector_avx2(n, m, a, scale, raw, out, scratch) };
        return;
    }
    fused_vector_body::<false>(n, m, a, scale, raw, out, scratch);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn fused_vector_avx2(
    n: usize,
    m: usize,
    a: &[Complex64],
    scale: f64,
    raw: &mut [Complex64],
    out: &mut [Complex64],
    scratch: &mut Vec<f64>,
) {
    fused_vector_body::<true>(n, m, a, scale, raw, out, scratch);
}

#[inline(always)]
fn fused_vector_body<const FMA: bool>(
    n: usize,
    m: usize,
    a: &[Complex64],
    scale: f64,
    raw: &mut [Complex64],
    out: &mut [Complex64],
    scratch: &mut Vec<f64>,
) {
    let tables = tables_for(m);
    let nstages = tables.stages.len();
    for j in 0..n {
        let row = &mut raw[j * m..(j + 1) * m];
        planned_bit_reverse(row, &tables);
        planned_butterflies(row, &tables, true, nstages - 1);
    }
    let final_tw = &tables.stages[nstages - 1];
    let half = m / 2;
    let inv_m = 1.0 / m as f64;

    let tile = kernel::COLOR_TILE.min(half);
    // Layout: N lo-re, N lo-im, N hi-re, N hi-im planes, y re/im planes.
    scratch.resize((4 * n + 2) * tile, 0.0);
    let (x_planes, y_planes) = scratch.split_at_mut(4 * n * tile);
    let (lo_planes, hi_planes) = x_planes.split_at_mut(2 * n * tile);
    let (lo_re, lo_im) = lo_planes.split_at_mut(n * tile);
    let (hi_re, hi_im) = hi_planes.split_at_mut(n * tile);
    let (y_re, y_im) = y_planes.split_at_mut(tile);

    let mut k0 = 0;
    while k0 < half {
        let t = tile.min(half - k0);
        for j in 0..n {
            let base = j * m;
            for (idx, k) in (k0..k0 + t).enumerate() {
                let u = raw[base + k];
                let v = raw[base + k + half];
                let w = final_tw[k];
                let wr = w.re;
                let wi = -w.im; // the inverse conjugates the forward table
                let (vr, vi) = if FMA {
                    (v.re.mul_add(wr, -(v.im * wi)), v.re.mul_add(wi, v.im * wr))
                } else {
                    (v.re * wr - v.im * wi, v.re * wi + v.im * wr)
                };
                lo_re[j * tile + idx] = (u.re + vr) * inv_m;
                lo_im[j * tile + idx] = (u.im + vi) * inv_m;
                hi_re[j * tile + idx] = (u.re - vr) * inv_m;
                hi_im[j * tile + idx] = (u.im - vi) * inv_m;
            }
        }
        for i in 0..n {
            for (planes_re, planes_im, off) in
                [(&*lo_re, &*lo_im, k0), (&*hi_re, &*hi_im, half + k0)]
            {
                y_re[..t].fill(0.0);
                y_im[..t].fill(0.0);
                for j in 0..n {
                    let c = a[i * n + j];
                    kernel::axpy_planar(
                        c.re,
                        c.im,
                        &planes_re[j * tile..j * tile + t],
                        &planes_im[j * tile..j * tile + t],
                        &mut y_re[..t],
                        &mut y_im[..t],
                    );
                }
                kernel::interleave_scaled_into(
                    &y_re[..t],
                    &y_im[..t],
                    scale,
                    &mut out[i * m + off..i * m + off + t],
                );
            }
        }
        k0 += t;
    }
}

// ---------------------------------------------------------------------------
// f32 fast tier
// ---------------------------------------------------------------------------

/// [`color_idft_block`] in `f32` — half the memory traffic on top of the
/// fusion win. Bit-identical to [`crate::fft32::ifft32_in_place`] per row
/// followed by [`corrfade_linalg::kernel::color_block_f32`] on the same
/// backend, by the same per-sample operation-sequence argument as the f64
/// kernel. **`raw` is destroyed.**
///
/// # Panics
/// Panics on any dimension mismatch.
#[allow(clippy::too_many_arguments)]
pub fn color_idft_block32(
    n: usize,
    m: usize,
    a: &[Complex32],
    scale: f32,
    raw: &mut [Complex32],
    out: &mut [Complex32],
    w_scratch: &mut Vec<Complex32>,
    scratch: &mut Vec<f32>,
) {
    color_idft_block32_with(backend(), n, m, a, scale, raw, out, w_scratch, scratch);
}

/// [`color_idft_block32`] on an explicit kernel backend.
///
/// # Panics
/// Panics on any dimension mismatch.
#[allow(clippy::too_many_arguments)]
pub fn color_idft_block32_with(
    b: Backend,
    n: usize,
    m: usize,
    a: &[Complex32],
    scale: f32,
    raw: &mut [Complex32],
    out: &mut [Complex32],
    w_scratch: &mut Vec<Complex32>,
    scratch: &mut Vec<f32>,
) {
    assert_eq!(
        a.len(),
        n * n,
        "color_idft_block32: coloring matrix storage"
    );
    assert_eq!(raw.len(), n * m, "color_idft_block32: raw block length");
    assert_eq!(out.len(), n * m, "color_idft_block32: output block length");
    if n == 0 || m == 0 {
        return;
    }
    if m == 1 || !is_power_of_two(m) {
        for j in 0..n {
            ifft32_in_place_with(b, &mut raw[j * m..(j + 1) * m]);
        }
        kernel::color_block_f32_with(b, n, m, a, scale, raw, out, w_scratch, scratch);
        return;
    }
    match b {
        Backend::Scalar => fused_scalar32(n, m, a, scale, raw, out, w_scratch),
        Backend::Vector => fused_vector32(n, m, a, scale, raw, out, scratch),
    }
}

/// Scalar f32 fused kernel. The f32 tier's scalar transform is table-driven
/// (see [`crate::fft32`]), so the final stage reads the same narrowed
/// twiddle table with the same plain mul/add formula as
/// `butterflies32_body::<false>`.
fn fused_scalar32(
    n: usize,
    m: usize,
    a: &[Complex32],
    scale: f32,
    raw: &mut [Complex32],
    out: &mut [Complex32],
    w_scratch: &mut Vec<Complex32>,
) {
    let tables = tables32_for(m);
    let nstages = tables.stages.len();
    for j in 0..n {
        let row = &mut raw[j * m..(j + 1) * m];
        bit_reverse32(row, &tables);
        butterflies32(Backend::Scalar, row, &tables, true, nstages - 1);
    }
    let final_tw = &tables.stages[nstages - 1];
    let half = m / 2;
    let inv_m = 1.0f32 / m as f32;
    w_scratch.resize(2 * n, Complex32::ZERO);
    let (w_lo, w_hi) = w_scratch.split_at_mut(n);
    for k in 0..half {
        let w = final_tw[k];
        let wr = w.re;
        let wi = -w.im; // the inverse conjugates the forward table
        for (j, (lo, hi)) in w_lo.iter_mut().zip(w_hi.iter_mut()).enumerate() {
            let u = raw[j * m + k];
            let v = raw[j * m + k + half];
            let (vr, vi) = (v.re * wr - v.im * wi, v.re * wi + v.im * wr);
            *lo = Complex32::new((u.re + vr) * inv_m, (u.im + vi) * inv_m);
            *hi = Complex32::new((u.re - vr) * inv_m, (u.im - vi) * inv_m);
        }
        for i in 0..n {
            let row = &a[i * n..(i + 1) * n];
            out[i * m + k] = dot32(row, w_lo).scale(scale);
            out[i * m + k + half] = dot32(row, w_hi).scale(scale);
        }
    }
}

/// Vector f32 fused kernel — the half-width sibling of the f64 vector path
/// with twice the butterfly pairs per tile at the same byte footprint.
/// Multiversioned exactly like [`fused_vector`].
fn fused_vector32(
    n: usize,
    m: usize,
    a: &[Complex32],
    scale: f32,
    raw: &mut [Complex32],
    out: &mut [Complex32],
    scratch: &mut Vec<f32>,
) {
    #[cfg(target_arch = "x86_64")]
    if kernel::vector_uses_fma() {
        // SAFETY: guarded by the kernel layer's runtime AVX2+FMA detection.
        unsafe { fused_vector32_avx2(n, m, a, scale, raw, out, scratch) };
        return;
    }
    fused_vector32_body::<false>(n, m, a, scale, raw, out, scratch);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn fused_vector32_avx2(
    n: usize,
    m: usize,
    a: &[Complex32],
    scale: f32,
    raw: &mut [Complex32],
    out: &mut [Complex32],
    scratch: &mut Vec<f32>,
) {
    fused_vector32_body::<true>(n, m, a, scale, raw, out, scratch);
}

#[inline(always)]
fn fused_vector32_body<const FMA: bool>(
    n: usize,
    m: usize,
    a: &[Complex32],
    scale: f32,
    raw: &mut [Complex32],
    out: &mut [Complex32],
    scratch: &mut Vec<f32>,
) {
    let tables = tables32_for(m);
    let nstages = tables.stages.len();
    for j in 0..n {
        let row = &mut raw[j * m..(j + 1) * m];
        bit_reverse32(row, &tables);
        butterflies32(Backend::Vector, row, &tables, true, nstages - 1);
    }
    let final_tw = &tables.stages[nstages - 1];
    let half = m / 2;
    let inv_m = 1.0f32 / m as f32;

    let tile = kernel::COLOR_TILE.min(half);
    scratch.resize((4 * n + 2) * tile, 0.0);
    let (x_planes, y_planes) = scratch.split_at_mut(4 * n * tile);
    let (lo_planes, hi_planes) = x_planes.split_at_mut(2 * n * tile);
    let (lo_re, lo_im) = lo_planes.split_at_mut(n * tile);
    let (hi_re, hi_im) = hi_planes.split_at_mut(n * tile);
    let (y_re, y_im) = y_planes.split_at_mut(tile);

    let mut k0 = 0;
    while k0 < half {
        let t = tile.min(half - k0);
        for j in 0..n {
            let base = j * m;
            for (idx, k) in (k0..k0 + t).enumerate() {
                let u = raw[base + k];
                let v = raw[base + k + half];
                let w = final_tw[k];
                let wr = w.re;
                let wi = -w.im;
                let (vr, vi) = if FMA {
                    (v.re.mul_add(wr, -(v.im * wi)), v.re.mul_add(wi, v.im * wr))
                } else {
                    (v.re * wr - v.im * wi, v.re * wi + v.im * wr)
                };
                lo_re[j * tile + idx] = (u.re + vr) * inv_m;
                lo_im[j * tile + idx] = (u.im + vi) * inv_m;
                hi_re[j * tile + idx] = (u.re - vr) * inv_m;
                hi_im[j * tile + idx] = (u.im - vi) * inv_m;
            }
        }
        for i in 0..n {
            for (planes_re, planes_im, off) in
                [(&*lo_re, &*lo_im, k0), (&*hi_re, &*hi_im, half + k0)]
            {
                y_re[..t].fill(0.0);
                y_im[..t].fill(0.0);
                for j in 0..n {
                    let c = a[i * n + j];
                    kernel::axpy_planar_f32(
                        c.re,
                        c.im,
                        &planes_re[j * tile..j * tile + t],
                        &planes_im[j * tile..j * tile + t],
                        &mut y_re[..t],
                        &mut y_im[..t],
                    );
                }
                kernel::interleave_scaled_into_f32(
                    &y_re[..t],
                    &y_im[..t],
                    scale,
                    &mut out[i * m + off..i * m + off + t],
                );
            }
        }
        k0 += t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_linalg::c64;

    fn block(n: usize, m: usize) -> Vec<Complex64> {
        (0..n * m)
            .map(|i| {
                let t = i as f64;
                c64((0.37 * t).sin(), (0.71 * t).cos() * 0.5)
            })
            .collect()
    }

    fn matrix(n: usize) -> Vec<Complex64> {
        (0..n * n)
            .map(|i| c64(0.3 + 0.1 * i as f64, -0.05 * i as f64))
            .collect()
    }

    fn block32(n: usize, m: usize) -> Vec<Complex32> {
        block(n, m).into_iter().map(Complex32::narrow).collect()
    }

    fn matrix32(n: usize) -> Vec<Complex32> {
        matrix(n).into_iter().map(Complex32::narrow).collect()
    }

    /// Shapes covering the paper's (3, 4096), tiny powers of two (including
    /// the no-middle-stages m = 2), multi-tile halves and the non-pow2 and
    /// m = 1 fallbacks.
    const SHAPES: [(usize, usize); 7] = [
        (1, 8),
        (2, 2),
        (3, 64),
        (3, 1024),
        (4, 512),
        (2, 100),
        (3, 1),
    ];

    #[test]
    fn fused_f64_is_bit_identical_to_two_pass() {
        for b in [Backend::Scalar, Backend::Vector] {
            for (n, m) in SHAPES {
                let a = matrix(n);
                let raw = block(n, m);
                let scale = 0.83;

                let mut two_pass_raw = raw.clone();
                let mut expected = vec![Complex64::ZERO; n * m];
                let (mut w, mut s) = (Vec::new(), Vec::new());
                for j in 0..n {
                    crate::fft::ifft_in_place_with(b, &mut two_pass_raw[j * m..(j + 1) * m]);
                }
                kernel::color_block_with(
                    b,
                    n,
                    m,
                    &a,
                    scale,
                    &two_pass_raw,
                    &mut expected,
                    &mut w,
                    &mut s,
                );

                let mut fused_raw = raw;
                let mut got = vec![Complex64::ZERO; n * m];
                let (mut w, mut s) = (Vec::new(), Vec::new());
                color_idft_block_with(b, n, m, &a, scale, &mut fused_raw, &mut got, &mut w, &mut s);
                assert_eq!(got, expected, "{b:?} n={n} m={m}");
            }
        }
    }

    #[test]
    fn fused_f32_is_bit_identical_to_two_pass() {
        for b in [Backend::Scalar, Backend::Vector] {
            for (n, m) in SHAPES {
                let a = matrix32(n);
                let raw = block32(n, m);
                let scale = 0.83f32;

                let mut two_pass_raw = raw.clone();
                let mut expected = vec![Complex32::ZERO; n * m];
                let (mut w, mut s) = (Vec::new(), Vec::new());
                for j in 0..n {
                    ifft32_in_place_with(b, &mut two_pass_raw[j * m..(j + 1) * m]);
                }
                kernel::color_block_f32_with(
                    b,
                    n,
                    m,
                    &a,
                    scale,
                    &two_pass_raw,
                    &mut expected,
                    &mut w,
                    &mut s,
                );

                let mut fused_raw = raw;
                let mut got = vec![Complex32::ZERO; n * m];
                let (mut w, mut s) = (Vec::new(), Vec::new());
                color_idft_block32_with(
                    b,
                    n,
                    m,
                    &a,
                    scale,
                    &mut fused_raw,
                    &mut got,
                    &mut w,
                    &mut s,
                );
                assert_eq!(got, expected, "{b:?} n={n} m={m}");
            }
        }
    }

    #[test]
    fn fused_backends_agree_within_vector_tolerance() {
        let (n, m) = (3, 256);
        let a = matrix(n);
        let raw = block(n, m);
        let mut outs = [Vec::new(), Vec::new()];
        for (slot, b) in outs.iter_mut().zip([Backend::Scalar, Backend::Vector]) {
            let mut r = raw.clone();
            let mut out = vec![Complex64::ZERO; n * m];
            let (mut w, mut s) = (Vec::new(), Vec::new());
            color_idft_block_with(b, n, m, &a, 1.0, &mut r, &mut out, &mut w, &mut s);
            *slot = out;
        }
        for (s, v) in outs[0].iter().zip(outs[1].iter()) {
            assert!(s.approx_eq(*v, 1e-12), "{s} vs {v}");
        }
    }

    #[test]
    fn empty_dimensions_are_no_ops() {
        let (mut w, mut s) = (Vec::new(), Vec::new());
        color_idft_block(0, 0, &[], 1.0, &mut [], &mut [], &mut w, &mut s);
        let (mut w, mut s) = (Vec::new(), Vec::new());
        color_idft_block32(0, 0, &[], 1.0, &mut [], &mut [], &mut w, &mut s);
    }
}
